/**
 * @file
 * Figure 8 — the effect of core-to-core (GRB) latency on the
 * speedup of contesting the best pair over the benchmark's own
 * customized core, swept from the paper's 1 ns baseline to 100 ns.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig08()
{
    printBenchPreamble("Figure 8: core-to-core latency sweep");
    Runner &runner = benchRunner();

    std::vector<TimePs> latencies{TimePs{1'000}, TimePs{2'000},
                                  TimePs{5'000}, TimePs{10'000},
                                  TimePs{100'000}};
    if (benchFastMode())
        latencies = {TimePs{1'000}, TimePs{10'000}, TimePs{100'000}};

    std::vector<std::string> head{"bench", "pair"};
    for (TimePs l : latencies)
        head.push_back(std::to_string(l.count() / 1000) + "ns");

    TextTable t("Figure 8: contesting speedup over the own "
                "customized core at different GRB latencies");
    t.header(head);

    unsigned top = benchFastMode() ? 2 : 5;
    std::vector<double> avg(latencies.size(), 0.0);
    auto names = profileNames();
    for (const auto &bench : names) {
        double own = runner.single(bench, bench).result.ipt;
        auto choice = runner.bestContestingPair(bench, {}, top);

        std::vector<std::string> cells{
            bench, choice.coreA + "+" + choice.coreB};
        for (std::size_t li = 0; li < latencies.size(); ++li) {
            ContestConfig cfg;
            cfg.grbLatencyPs = latencies[li];
            double ipt = latencies[li] == 1'000
                ? choice.result.ipt
                : runner
                      .contestedPair(bench, choice.coreA,
                                     choice.coreB, cfg)
                      .ipt;
            double sp = speedup(ipt, own);
            avg[li] += sp;
            cells.push_back(TextTable::pct(sp));
        }
        t.row(cells);
    }

    std::vector<std::string> avg_row{"AVERAGE", ""};
    for (std::size_t li = 0; li < latencies.size(); ++li)
        avg_row.push_back(TextTable::pct(
            avg[li] / static_cast<double>(names.size())));
    t.row(avg_row);
    t.print();

    std::printf(
        "Paper: the average benefit decreases with latency, down to "
        "~6%% at 100 ns; sensitivity differs strongly per benchmark "
        "(bzip <1%% loss from 1 ns to 2 ns, gzip >35%%).\n\n");
    std::fflush(stdout);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runFig08)
