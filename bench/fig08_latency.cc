/**
 * @file
 * Figure 8 — the effect of core-to-core (GRB) latency on the
 * speedup of contesting the best pair over the benchmark's own
 * customized core, swept from the paper's 1 ns baseline to 100 ns.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig08(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    std::vector<TimePs> latencies{TimePs{1'000}, TimePs{2'000},
                                  TimePs{5'000}, TimePs{10'000},
                                  TimePs{100'000}};
    if (benchFastMode())
        latencies = {TimePs{1'000}, TimePs{10'000}, TimePs{100'000}};

    std::vector<std::string> head{"bench", "pair"};
    for (TimePs l : latencies)
        head.push_back(std::to_string(l.count() / 1000) + "ns");

    auto &t = art.table("Figure 8: contesting speedup over the own "
                        "customized core at different GRB latencies");
    t.columns = head;

    unsigned top = benchFastMode() ? 2 : 5;
    std::vector<double> avg(latencies.size(), 0.0);
    auto names = profileNames();
    for (const auto &bench : names) {
        double own = runner.single(bench, bench).result.ipt;
        auto choice = runner.bestContestingPair(bench, {}, top);

        std::vector<ArtifactCell> cells{
            cellText(bench),
            cellText(choice.coreA + "+" + choice.coreB)};
        for (std::size_t li = 0; li < latencies.size(); ++li) {
            ContestConfig cfg;
            cfg.grbLatencyPs = latencies[li];
            double ipt = latencies[li] == 1'000
                ? choice.result.ipt
                : runner
                      .contestedPair(bench, choice.coreA,
                                     choice.coreB, cfg)
                      .ipt;
            double sp = speedup(ipt, own);
            avg[li] += sp;
            cells.push_back(cellPct(sp));
        }
        t.row(std::move(cells));
    }

    std::vector<ArtifactCell> avg_row{cellText("AVERAGE"),
                                      cellText("")};
    for (std::size_t li = 0; li < latencies.size(); ++li)
        avg_row.push_back(cellPct(
            avg[li] / static_cast<double>(names.size())));
    t.row(std::move(avg_row));

    art.scalar("avg_speedup_baseline",
               avg.front() / static_cast<double>(names.size()));
    art.scalar("avg_speedup_slowest",
               avg.back() / static_cast<double>(names.size()));
    art.note("Paper: the average benefit decreases with latency, "
             "down to ~6% at 100 ns; sensitivity differs strongly "
             "per benchmark (bzip <1% loss from 1 ns to 2 ns, gzip "
             ">35%).");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig08", "Figure 8: core-to-core latency sweep",
                    runFig08);

} // namespace
} // namespace contest
