/**
 * @file
 * Simulator throughput benchmark: wall-clock simulation rate
 * (simulated Mticks/s and committed instructions/s) for every
 * palette core type running alone, plus one representative 2-way
 * contest. Registered standalone (REGISTER_EXPERIMENT_STANDALONE):
 * its artifact embeds wall-clock measurements, so it can never be
 * bit-stable and must stay out of `--all` and the golden gate. CI's
 * perf-smoke job runs it by name and archives BENCH_throughput.json
 * for trend tracking.
 */

#include "bench/bench_common.hh"

#include <chrono>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedSec(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

void
runThroughput(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    // One representative workload; the rate is a property of the
    // simulator, not of the benchmark mix.
    const std::string bench = "gcc";
    auto trace = makeBenchmarkTrace(bench, runner.workloadSeed(),
                                    runner.traceLen());

    auto &t = art.table("Simulator throughput on '" + bench + "' ("
                        + std::to_string(trace->size())
                        + " instructions)");
    t.columns = {"core", "wall s", "Mticks/s", "instr/s",
                 "ticks skipped"};

    double total_mticks = 0.0;
    std::size_t measured = 0;
    const bool no_skip = simNoSkip();
    SimTimeline *tl = runner.timeline();
    for (const auto &cfg : appendixAPalette()) {
        OooCore core(cfg, trace);
        const std::uint64_t step = core.periodPs().count();
        auto span_start = SimTimeline::now();
        auto start = Clock::now();
        TimePs now{};
        while (!core.done()) {
            core.tick(now);
            std::uint64_t ticks = 1;
            if (!no_skip && !core.done())
                ticks += core.skipIdleCycles(Cycles::max()).count();
            now += TimePs{step * ticks};
        }
        double sec = elapsedSec(start);
        if (tl != nullptr)
            tl->record(SimTimeline::Kind::Single,
                       bench + '@' + cfg.name, span_start, span_start,
                       SimTimeline::now(), false);
        double ticks = static_cast<double>(core.stats().cycles);
        double mticks_s = sec > 0.0 ? ticks / sec / 1e6 : 0.0;
        double instr_s = sec > 0.0
            ? static_cast<double>(core.stats().retired) / sec
            : 0.0;
        double skip_frac = ticks > 0.0
            ? static_cast<double>(core.idleSkipped()) / ticks
            : 0.0;
        t.row({cellText(cfg.name), cellNum(sec, 3),
               cellNum(mticks_s), cellNum(instr_s),
               cellPct(skip_frac)});
        total_mticks += mticks_s;
        ++measured;
    }

    // One contested pair: the sync points (GRB polling, store
    // queue, frontier tracking) bound how much skipping can help.
    // Run it once sequentially and once sharded across worker
    // threads (results are bit-identical; only the wall clock may
    // move) so CI tracks the windowed path's speedup too.
    double contest_seq_sec = 0.0;
    for (unsigned jobs : {1u, 2u, 4u}) {
        ContestSystem sys({coreConfigByName("gcc"),
                           coreConfigByName("twolf")},
                          trace);
        auto span_start = SimTimeline::now();
        auto start = Clock::now();
        ContestResult r = sys.run(jobs);
        double sec = elapsedSec(start);
        const std::string label = "gcc+twolf contest, "
            + std::to_string(jobs) + (jobs == 1 ? " lane" : " lanes");
        if (tl != nullptr)
            tl->record(SimTimeline::Kind::Contest,
                       bench + "@gcc+twolf/j"
                           + std::to_string(jobs),
                       span_start, span_start, SimTimeline::now(),
                       false);
        double ticks = 0.0;
        std::uint64_t retired = 0;
        std::uint64_t skipped = 0;
        for (CoreId c = 0; c < 2; ++c) {
            ticks += static_cast<double>(r.coreStats[c].cycles);
            retired += r.coreStats[c].retired;
            skipped += sys.core(c).idleSkipped().count();
        }
        double mticks_s = sec > 0.0 ? ticks / sec / 1e6 : 0.0;
        double instr_s = sec > 0.0
            ? static_cast<double>(retired) / sec
            : 0.0;
        double skip_frac =
            ticks > 0.0 ? static_cast<double>(skipped) / ticks : 0.0;
        t.row({cellText(label), cellNum(sec, 3),
               cellNum(mticks_s), cellNum(instr_s),
               cellPct(skip_frac)});
        if (jobs == 1) {
            // Only the sequential contest joins the mean: the lane
            // sweep is an A/B measurement, not more coverage.
            total_mticks += mticks_s;
            ++measured;
            contest_seq_sec = sec;
        } else if (jobs == 2) {
            art.scalar("contest_speedup_2_lanes",
                       sec > 0.0 ? contest_seq_sec / sec : 0.0);
        } else {
            art.scalar("contest_speedup_4_lanes",
                       sec > 0.0 ? contest_seq_sec / sec : 0.0);
        }
        if (jobs > 1) {
            const WindowStats &w = sys.windowStats();
            if (tl != nullptr && w.active())
                tl->recordWindowStats(bench + "@gcc+twolf/j"
                                          + std::to_string(jobs),
                                      w);
            if (jobs == 4 && w.active()) {
                // Commit the 4-lane run's overhead split as scalars
                // so BENCH_history tracks the window schedule, not
                // just the end-to-end speedup.
                art.scalar("win4_windows",
                           static_cast<double>(w.windows));
                art.scalar("win4_window_ticks",
                           static_cast<double>(w.windowTicks));
                art.scalar("win4_mean_window_ticks",
                           w.meanWindowTicks());
                art.scalar("win4_seq_steps",
                           static_cast<double>(w.seqSteps));
                art.scalar("win4_burst_steps",
                           static_cast<double>(w.burstSteps));
                art.scalar("win4_degenerate_fallbacks",
                           static_cast<double>(w.degenerateFallbacks));
                art.scalar("win4_final_cap_ticks",
                           static_cast<double>(w.finalCapTicks));
                art.scalar("win4_oracle_sec", w.oracleSec);
                art.scalar("win4_horizon_sec", w.horizonSec);
                art.scalar("win4_lane_sec", w.laneSec);
                art.scalar("win4_commit_sec", w.commitSec);
            }
        }
    }

    art.scalar("mean_mticks_per_s",
               total_mticks / static_cast<double>(measured));
    if (tl != nullptr) {
        // Export the per-simulation timeline so the perf-smoke CI
        // artifact carries scheduling data alongside the rates.
        SimTimeline::Summary s = tl->summary();
        art.scalar("timeline_sims", static_cast<double>(s.sims));
        art.scalar("timeline_busy_sec", s.busySec);
        art.scalar("timeline_wall_sec", s.wallSec);
        art.scalar("timeline_concurrency", s.concurrency());
    }
    art.note("wall-clock rates; not comparable across machines or "
             "against goldens. CONTEST_NO_SKIP=1 disables "
             "idle-cycle fast-forwarding for A/B measurements.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT_STANDALONE(
    "BENCH_throughput",
    "Simulator throughput (wall-clock Mticks/s, instr/s)",
    runThroughput);

} // namespace
} // namespace contest
