/**
 * @file
 * Contesting vs migrational approaches — the quantitative backing
 * for the paper's Section 2/3 argument that previously proposed
 * migrational techniques are too sluggish. For each benchmark the
 * best pair of cores is evaluated three ways: oracle migration at
 * several decision granularities and migration costs, realistic
 * history-based migration, and actual contesting.
 */

#include "bench/bench_common.hh"

#include "harness/migration.hh"

namespace contest
{
namespace
{

void
runCmpMigration(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    struct Scheme
    {
        const char *label;
        MigrationConfig cfg;
    };
    std::vector<Scheme> schemes{
        // A free oracle at 1280 instructions: the best any
        // positional/temporal scheme could hope for.
        {"oracle@1.3k/free",
         {64, TimePs{}, MigrationPolicy::Oracle}},
        // The same oracle paying a 5us thread migration.
        {"oracle@1.3k/5us",
         {64, TimePs{5'000'000}, MigrationPolicy::Oracle}},
        // OS-quantum-grained oracle with the same cost.
        {"oracle@100k/5us",
         {5120, TimePs{5'000'000}, MigrationPolicy::Oracle}},
        // Realistic: last-phase predictor at 10k instructions.
        {"history@10k/5us",
         {512, TimePs{5'000'000}, MigrationPolicy::History}},
    };
    if (benchFastMode())
        schemes.resize(2);

    auto &t = art.table("Contesting vs migration: speedup over the "
                        "benchmark's own customized core");
    t.columns = {"bench", "pair"};
    for (const auto &s : schemes)
        t.columns.push_back(s.label);
    t.columns.push_back("contesting");

    std::vector<double> avg(schemes.size() + 1, 0.0);
    unsigned top = benchFastMode() ? 2 : 5;
    auto names = profileNames();
    for (const auto &bench : names) {
        const auto &own = runner.single(bench, bench);
        auto choice = runner.bestContestingPair(bench, {}, top);
        const auto &ra = runner.single(bench, choice.coreA);
        const auto &rb = runner.single(bench, choice.coreB);

        std::vector<ArtifactCell> cells{
            cellText(bench),
            cellText(choice.coreA + "+" + choice.coreB)};
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            auto m = simulateMigration(ra.regions->series(),
                                       rb.regions->series(),
                                       schemes[si].cfg);
            double sp = static_cast<double>(own.regions->total())
                    / static_cast<double>(m.totalPs)
                - 1.0;
            avg[si] += sp;
            cells.push_back(cellPct(sp));
        }
        double contest_sp = speedup(choice.result.ipt,
                                    own.result.ipt);
        avg.back() += contest_sp;
        cells.push_back(cellPct(contest_sp));
        t.row(cells);
    }

    std::vector<ArtifactCell> avg_row{cellText("AVERAGE"),
                                      cellText("")};
    for (double a : avg)
        avg_row.push_back(
            cellPct(a / static_cast<double>(names.size())));
    t.row(avg_row);

    art.scalar("avg_contest_speedup",
               avg.back() / static_cast<double>(names.size()));
    art.scalar("avg_best_oracle_speedup",
               avg.front() / static_cast<double>(names.size()));
    art.note("Contesting needs no phase detector, no decision policy "
             "and no migration cost: it reaches the fine-grain "
             "regime that even a free 1.3k-instruction oracle only "
             "approximates, while costed and history-based migration "
             "surrender most of the benefit (the paper's Section 2/3 "
             "argument).");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("cmp_migration",
                    "Contesting vs migrational baselines",
                    runCmpMigration);

} // namespace
} // namespace contest
