/**
 * @file
 * Serving benchmark: measures the contest service end-to-end —
 * socket, framing, admission queue, ThreadPool dispatch, Runner
 * memoization — by standing up an in-process server per --jobs value
 * and replaying the identical request mix twice. The first (cold)
 * phase simulates everything; the second (warm) phase must be served
 * entirely from the memo tables, so its requests/s measures protocol
 * and scheduling overhead alone and its executed-simulation count
 * must be zero.
 *
 * Registered standalone (REGISTER_EXPERIMENT_STANDALONE): the
 * artifact embeds wall-clock rates, so it can never be bit-stable
 * and stays out of `--all` and the golden gate. CI's serve-smoke job
 * runs it by name and archives BENCH_serving.json;
 * tools/bench_history.py appends its scalars to BENCH_history.json.
 */

#include "bench/bench_common.hh"

#include <string>
#include <unistd.h>
#include <vector>

#include "serve/loadgen.hh"
#include "serve/server.hh"

namespace contest
{
namespace
{

/** One jobs-value's cold/warm measurement. */
struct ServingSample
{
    unsigned jobs = 0;
    LoadPhase cold;
    LoadPhase warm;

    double
    warmSpeedup() const
    {
        return cold.rps() > 0.0 ? warm.rps() / cold.rps() : 0.0;
    }
};

void
runServing(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    const bool fast = benchFastMode();

    // The mix draws from a small palette corner so the cold phase
    // stays minutes-scale at the default trace length: up to 6
    // unique singles and 12 unique ordered contest pairs.
    LoadSpec spec;
    spec.benches = {"gcc", "twolf"};
    spec.cores = {"gcc", "twolf", "crafty"};
    spec.clients = 4;
    spec.requestsPerClient = fast ? 6 : 16;
    spec.contestFraction = 0.25;
    spec.mixSeed = 7;

    std::vector<ServingSample> samples;
    for (unsigned jobs : {1u, 2u, 4u}) {
        ServeOptions opts;
        opts.target.unixPath = "/tmp/contest_serving_"
                               + std::to_string(getpid()) + "_"
                               + std::to_string(jobs) + ".sock";
        opts.jobs = jobs;
        opts.traceLen = ctx.runner.traceLen();
        opts.seed = ctx.runner.workloadSeed();
        opts.quiet = true;

        // A fresh server (own Runner, own pool) per jobs value, so
        // every cold phase really is cold instead of riding the
        // previous sweep's memo tables.
        ContestServer server(opts);
        std::string error;
        fatal_if(!server.start(&error),
                 "BENCH_serving cannot start its in-process server: "
                 "%s",
                 error.c_str());

        spec.target = server.target();
        ServingSample sample;
        sample.jobs = jobs;
        fatal_if(!runLoadPhase(spec, sample.cold, &error),
                 "BENCH_serving cold phase failed against the "
                 "in-process server: %s",
                 error.c_str());
        fatal_if(!runLoadPhase(spec, sample.warm, &error),
                 "BENCH_serving warm phase failed against the "
                 "in-process server: %s",
                 error.c_str());
        server.requestShutdown();
        server.waitUntilStopped();
        ::unlink(opts.target.unixPath.c_str());
        samples.push_back(std::move(sample));
    }

    auto &t = art.table(
        "Contest service: identical mix served cold (everything "
        "simulates) then warm (memo tables only); "
        + std::to_string(spec.clients) + " clients x "
        + std::to_string(spec.requestsPerClient) + " requests");
    t.columns = {"jobs",         "cold req/s", "cold p99 ms",
                 "warm req/s",   "warm p99 ms", "warm/cold",
                 "warm sims"};
    for (const ServingSample &s : samples) {
        const std::uint64_t warmSims =
            s.warm.simsDuring + s.warm.contestsDuring;
        t.row({cellText(std::to_string(s.jobs)),
               cellNum(s.cold.rps()),
               cellNum(s.cold.percentileMs(99)),
               cellNum(s.warm.rps()),
               cellNum(s.warm.percentileMs(99), 3),
               cellNum(s.warmSpeedup()),
               cellText(std::to_string(warmSims))});

        const std::string j = std::to_string(s.jobs);
        art.scalar("serving_cold_rps_j" + j, s.cold.rps());
        art.scalar("serving_warm_rps_j" + j, s.warm.rps());
        art.scalar("serving_warm_speedup_j" + j, s.warmSpeedup());
        art.scalar("serving_warm_p50_ms_j" + j,
                   s.warm.percentileMs(50));
        art.scalar("serving_warm_sims_j" + j,
                   static_cast<double>(warmSims));
        art.scalar("serving_cold_errors_j" + j,
                   static_cast<double>(s.cold.errors));
        art.scalar("serving_warm_errors_j" + j,
                   static_cast<double>(s.warm.errors));
    }

    art.note("wall-clock rates over a Unix socket; not comparable "
             "across machines or against goldens. The warm phase "
             "replays the identical mix (same mix seed), so "
             "serving_warm_sims_* must be 0: every warm response "
             "comes from the Runner's memo tables.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT_STANDALONE(
    "BENCH_serving",
    "Contest service throughput (cold vs warm, by --jobs)",
    runServing);

} // namespace
} // namespace contest
