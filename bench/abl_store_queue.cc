/**
 * @file
 * Ablation C — synchronizing store queue depth (paper Section 4.2).
 * The queue bounds how many stores the leader may run ahead of the
 * laggers; shallow queues backpressure the leader, which matters
 * more as the GRB latency (and therefore the natural lagging
 * distance) grows.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    std::vector<std::size_t> depths{64, 256, 1024, 4096};
    std::vector<TimePs> latencies{TimePs{1'000}, TimePs{10'000}};
    if (benchFastMode()) {
        depths = {64, 4096};
        latencies = {TimePs{10'000}};
    }

    // A representative benchmark subset keeps this ablation fast.
    std::vector<std::string> benches{"gcc", "twolf", "gzip",
                                     "parser", "vpr"};

    for (TimePs lat : latencies) {
        auto &t = art.table(
            "Ablation C: contested IPT vs store queue depth at "
            + std::to_string(lat.count() / 1000) + "ns GRB latency");
        t.columns = {"bench", "pair"};
        for (auto d : depths)
            t.columns.push_back("depth " + std::to_string(d));
        t.columns.push_back("leader stalls @min");

        for (const auto &bench : benches) {
            auto choice = runner.bestContestingPair(bench, {}, 3);
            std::vector<ArtifactCell> cells{
                cellText(bench),
                cellText(choice.coreA + "+" + choice.coreB)};
            Cycles min_depth_stalls{};
            for (std::size_t di = 0; di < depths.size(); ++di) {
                ContestConfig cfg;
                cfg.grbLatencyPs = lat;
                cfg.storeQueueCapacity = depths[di];
                auto r = runner.contestedPair(bench, choice.coreA,
                                              choice.coreB, cfg);
                cells.push_back(cellNum(r.ipt));
                if (di == 0)
                    min_depth_stalls =
                        r.coreStats[0].storeQueueStalls
                        + r.coreStats[1].storeQueueStalls;
            }
            cells.push_back(cellCount(min_depth_stalls.count()));
            t.row(cells);
        }
    }

    art.note("Shallow queues bound the lagging distance through "
             "commit backpressure; with a generous queue the FIFO "
             "capacity and saturation detector take over that role.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_store_queue", "Ablation C: store queue depth",
                    runAblation);

} // namespace
} // namespace contest
