/**
 * @file
 * Figure 9 — per-benchmark IPT on the five CMP designs of Table 1,
 * each benchmark running on the most suitable core type available
 * in the design.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig09(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    ParallelStats ps = warmMatrix(runner);
    const auto &m = runner.matrix();

    auto het_a = designCmp(m, 2, Merit::Avg, "HET-A");
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    auto het_c = designCmp(m, 2, Merit::CwHar, "HET-C");
    auto hom = designHom(m, Merit::Avg, "HOM");
    auto het_all = designHetAll(m, "HET-ALL");
    std::vector<const CmpDesign *> designs{&het_a, &het_b, &het_c,
                                           &hom, &het_all};

    auto &t = art.table("Figure 9: IPT on the most suitable core of "
                        "each design");
    std::vector<std::string> head{"bench"};
    for (const auto *d : designs)
        head.push_back(d->name + " (" + designCoreNames(m, *d)
                       + ")");
    // HET-ALL's core list is long; shorten its header.
    head.back() = "HET-ALL";
    t.columns = head;

    for (std::size_t b = 0; b < m.numBenches(); ++b) {
        std::vector<ArtifactCell> cells{cellText(m.benchNames[b])};
        for (const auto *d : designs)
            cells.push_back(
                cellNum(m.ipt[b][bestCoreFor(m, b, d->cores)]));
        t.row(std::move(cells));
    }

    art.note("Paper: the choice of available core types visibly "
             "moves individual benchmarks (Figure 9); HET-ALL "
             "upper-bounds every row.");
    art.note(parallelNote(ps));
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig09", "Figure 9: per-benchmark IPT per CMP design",
                    runFig09);

} // namespace
} // namespace contest
