/**
 * @file
 * Figure 12 — contesting on the HET-C design (two core types chosen
 * by the contention-weighted har figure of merit). The paper's
 * headline robustness result: HET-C was designed for heavy loading,
 * and contesting restores (and then some) the single-thread
 * performance given up to that goal.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig12()
{
    printBenchPreamble("Figure 12: contesting on HET-C");
    Runner &runner = benchRunner();
    const auto &m = runner.matrix();
    auto het_c = designCmp(m, 2, Merit::CwHar, "HET-C");
    auto hom = designHom(m, Merit::Avg, "HOM");
    auto exp = runHetExperiment(runner, het_c, hom);
    printHetExperiment(exp, m, "Figure 12");

    std::printf(
        "Contesting multiplies the heterogeneity advantage over HOM "
        "by %.1fx (paper: ~3x — +34%% with contesting vs +11%% "
        "without). Paper HET-C: avg +22%%, max +50%% (vpr).\n\n",
        exp.avgNoContestVsHom != 0.0
            ? exp.avgVsHom / exp.avgNoContestVsHom
            : 0.0);
    std::fflush(stdout);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runFig12)
