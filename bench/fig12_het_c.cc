/**
 * @file
 * Figure 12 — contesting on the HET-C design (two core types chosen
 * by the contention-weighted har figure of merit). The paper's
 * headline robustness result: HET-C was designed for heavy loading,
 * and contesting restores (and then some) the single-thread
 * performance given up to that goal.
 */

#include "bench/bench_common.hh"

#include <cstdio>

namespace contest
{
namespace
{

void
runFig12(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &m = runner.matrix();
    auto het_c = designCmp(m, 2, Merit::CwHar, "HET-C");
    auto hom = designHom(m, Merit::Avg, "HOM");
    auto exp = runHetExperiment(runner, het_c, hom);
    hetArtifact(art, exp, m, "Figure 12");

    double het_multiplier = exp.avgNoContestVsHom != 0.0
        ? exp.avgVsHom / exp.avgNoContestVsHom
        : 0.0;
    art.scalar("het_advantage_multiplier", het_multiplier);
    char summary[240];
    std::snprintf(
        summary, sizeof(summary),
        "Contesting multiplies the heterogeneity advantage over HOM "
        "by %.1fx (paper: ~3x — +34%% with contesting vs +11%% "
        "without). Paper HET-C: avg +22%%, max +50%% (vpr).",
        het_multiplier);
    art.note(summary);
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig12", "Figure 12: contesting on HET-C",
                    runFig12);

} // namespace
} // namespace contest
