/**
 * @file
 * Ablation D — saturated-lagger handling (paper Section 4.1.4).
 * When one core's peak retirement rate exceeds what the other can
 * absorb, the lagger's result FIFO overflows. The paper disables
 * contesting for the saturated lagger; the ablation compares that
 * policy against dropping overflowed results and limping along.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runAblation()
{
    printBenchPreamble("Ablation D: saturated lagger policy");
    Runner &runner = benchRunner();
    const auto &m = runner.matrix();

    // HET-B (har) is the design the paper observes saturation on:
    // it pairs a fast core with the slow-clocked memory core.
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    const std::string core_a = m.coreNames[het_b.cores[0]];
    const std::string core_b = m.coreNames[het_b.cores[1]];

    TextTable t("Ablation D: " + core_a + "+" + core_b
                + " contesting with park vs drop policy "
                  "(small FIFOs force saturation)");
    t.header({"bench", "park (paper)", "drop", "delta", "parked?"});

    std::vector<double> deltas;
    unsigned parked_count = 0;
    for (const auto &bench : profileNames()) {
        ContestConfig park_cfg;
        park_cfg.fifoCapacity = 512;
        park_cfg.parkSaturatedLaggers = true;
        auto park = runner.contestedPair(bench, core_a, core_b,
                                         park_cfg);

        ContestConfig drop_cfg = park_cfg;
        drop_cfg.parkSaturatedLaggers = false;
        auto drop = runner.contestedPair(bench, core_a, core_b,
                                         drop_cfg);

        bool parked = park.unitStats[0].saturated
            || park.unitStats[1].saturated;
        parked_count += parked ? 1 : 0;
        double delta = speedup(park.ipt, drop.ipt);
        deltas.push_back(delta);
        t.row({bench, TextTable::num(park.ipt),
               TextTable::num(drop.ipt), TextTable::pct(delta),
               parked ? "yes" : "no"});
    }
    t.print();
    std::printf(
        "Parking vs dropping: avg %s; %u of %zu benchmarks "
        "saturated a lagger. Paper: a saturated lagger falls behind "
        "unboundedly, so contesting is simply disabled for it.\n\n",
        TextTable::pct(arithmeticMean(deltas)).c_str(),
        parked_count, profileNames().size());
    std::fflush(stdout);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runAblation)
