/**
 * @file
 * Ablation D — saturated-lagger handling (paper Section 4.1.4).
 * When one core's peak retirement rate exceeds what the other can
 * absorb, the lagger's result FIFO overflows. The paper disables
 * contesting for the saturated lagger; the ablation compares that
 * policy against dropping overflowed results and limping along.
 */

#include "bench/bench_common.hh"

#include <cstdio>

namespace contest
{
namespace
{

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &m = runner.matrix();

    // HET-B (har) is the design the paper observes saturation on:
    // it pairs a fast core with the slow-clocked memory core.
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    const std::string core_a = m.coreNames[het_b.cores[0]];
    const std::string core_b = m.coreNames[het_b.cores[1]];

    auto &t = art.table("Ablation D: " + core_a + "+" + core_b
                        + " contesting with park vs drop policy "
                          "(small FIFOs force saturation)");
    t.columns = {"bench", "park (paper)", "drop", "delta", "parked?"};

    std::vector<double> deltas;
    unsigned parked_count = 0;
    for (const auto &bench : profileNames()) {
        ContestConfig park_cfg;
        park_cfg.fifoCapacity = 512;
        park_cfg.parkSaturatedLaggers = true;
        auto park = runner.contestedPair(bench, core_a, core_b,
                                         park_cfg);

        ContestConfig drop_cfg = park_cfg;
        drop_cfg.parkSaturatedLaggers = false;
        auto drop = runner.contestedPair(bench, core_a, core_b,
                                         drop_cfg);

        bool parked = park.unitStats[0].saturated
            || park.unitStats[1].saturated;
        parked_count += parked ? 1 : 0;
        double delta = speedup(park.ipt, drop.ipt);
        deltas.push_back(delta);
        t.row({cellText(bench), cellNum(park.ipt), cellNum(drop.ipt),
               cellPct(delta), cellText(parked ? "yes" : "no")});
    }

    art.scalar("avg_park_delta", arithmeticMean(deltas));
    art.scalar("saturated_benchmarks",
               static_cast<double>(parked_count));
    char summary[256];
    std::snprintf(
        summary, sizeof(summary),
        "Parking vs dropping: avg %s; %u of %zu benchmarks "
        "saturated a lagger. Paper: a saturated lagger falls behind "
        "unboundedly, so contesting is simply disabled for it.",
        TextTable::pct(arithmeticMean(deltas)).c_str(), parked_count,
        profileNames().size());
    art.note(summary);
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_saturated_lagger",
                    "Ablation D: saturated lagger policy",
                    runAblation);

} // namespace
} // namespace contest
