/**
 * @file
 * Ablation F — the energy cost of contesting. The paper frames
 * contesting as an optional mode trading power for single-thread
 * performance; this ablation quantifies the trade: energy per
 * instruction and energy-delay product for the benchmark's own core
 * alone versus the best contested pair.
 */

#include "bench/bench_common.hh"

#include <cstdio>

#include "power/energy.hh"

namespace contest
{
namespace
{

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    auto &t = art.table("Ablation F: energy per instruction (nJ) "
                        "and energy-delay product, single vs "
                        "contested");
    t.columns = {"bench", "pair", "speedup", "EPI single",
                 "EPI pair", "energy ratio", "ED ratio"};

    std::vector<double> e_ratios;
    std::vector<double> ed_ratios;
    unsigned top = benchFastMode() ? 2 : 5;
    for (const auto &bench : profileNames()) {
        const auto &own = runner.single(bench, bench);
        auto choice = runner.bestContestingPair(bench, {}, top);
        const auto &r = choice.result;

        double insts = static_cast<double>(runner.traceLen());
        double epi_single = own.result.energy.totalNj() / insts;
        double epi_pair = r.totalEnergyNj() / insts;
        double e_ratio = epi_pair / epi_single;
        // Energy-delay product, normalized to the single-core run.
        double delay_ratio = static_cast<double>(r.timePs)
            / static_cast<double>(own.result.timePs);
        double ed_ratio = e_ratio * delay_ratio;
        e_ratios.push_back(e_ratio);
        ed_ratios.push_back(ed_ratio);

        t.row({cellText(bench),
               cellText(choice.coreA + "+" + choice.coreB),
               cellPct(speedup(r.ipt, own.result.ipt)),
               cellNum(epi_single, 2), cellNum(epi_pair, 2),
               cellCustom(e_ratio, TextTable::num(e_ratio, 2) + "x"),
               cellCustom(ed_ratio,
                          TextTable::num(ed_ratio, 2) + "x")});
    }

    art.scalar("avg_energy_ratio", arithmeticMean(e_ratios));
    art.scalar("avg_ed_ratio", arithmeticMean(ed_ratios));
    char summary[320];
    std::snprintf(
        summary, sizeof(summary),
        "Contesting costs %.1fx the energy (two active cores plus "
        "the GRB) for its single-thread speedup; energy-delay lands "
        "at %.1fx. This is the paper's point about employing "
        "contesting on a need-to-have basis: it is a mode, not a "
        "default.",
        arithmeticMean(e_ratios), arithmeticMean(ed_ratios));
    art.note(summary);
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_energy",
                    "Ablation F: the energy cost of contesting",
                    runAblation);

} // namespace
} // namespace contest
