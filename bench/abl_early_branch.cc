/**
 * @file
 * Ablation B — the Figure 5 corner case: resolving a mispredicted
 * branch early from a received retired instance, which flips the
 * core from Scenario #1 into Scenario #2. Disabling it forces every
 * mispredicted branch to resolve through the core's own pipeline.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runAblation()
{
    printBenchPreamble("Ablation B: early branch resolution");
    Runner &runner = benchRunner();

    TextTable t("Ablation B: contested IPT with and without early "
                "branch resolution");
    t.header({"bench", "pair", "enabled", "disabled", "benefit",
              "early resolves"});

    std::vector<double> benefits;
    for (const auto &bench : profileNames()) {
        auto choice = runner.bestContestingPair(bench, {}, 3);

        ContestConfig off;
        off.earlyBranchResolve = false;
        auto no_early = runner.contestedPair(bench, choice.coreA,
                                             choice.coreB, off);
        double benefit = speedup(choice.result.ipt, no_early.ipt);
        benefits.push_back(benefit);
        std::uint64_t resolves =
            choice.result.coreStats[0].earlyResolves
            + choice.result.coreStats[1].earlyResolves;
        t.row({bench, choice.coreA + "+" + choice.coreB,
               TextTable::num(choice.result.ipt),
               TextTable::num(no_early.ipt),
               TextTable::pct(benefit), std::to_string(resolves)});
    }
    t.print();
    std::printf(
        "Early resolution benefit: avg %s. The mechanism matters "
        "most for branchy workloads where the trailing core's "
        "retired outcomes arrive before the leader resolves its own "
        "mispredictions.\n\n",
        TextTable::pct(arithmeticMean(benefits)).c_str());
    std::fflush(stdout);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runAblation)
