/**
 * @file
 * Ablation B — the Figure 5 corner case: resolving a mispredicted
 * branch early from a received retired instance, which flips the
 * core from Scenario #1 into Scenario #2. Disabling it forces every
 * mispredicted branch to resolve through the core's own pipeline.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    auto &t = art.table("Ablation B: contested IPT with and without "
                        "early branch resolution");
    t.columns = {"bench", "pair", "enabled", "disabled", "benefit",
                 "early resolves"};

    std::vector<double> benefits;
    for (const auto &bench : profileNames()) {
        auto choice = runner.bestContestingPair(bench, {}, 3);

        ContestConfig off;
        off.earlyBranchResolve = false;
        auto no_early = runner.contestedPair(bench, choice.coreA,
                                             choice.coreB, off);
        double benefit = speedup(choice.result.ipt, no_early.ipt);
        benefits.push_back(benefit);
        std::uint64_t resolves =
            choice.result.coreStats[0].earlyResolves
            + choice.result.coreStats[1].earlyResolves;
        t.row({cellText(bench),
               cellText(choice.coreA + "+" + choice.coreB),
               cellNum(choice.result.ipt), cellNum(no_early.ipt),
               cellPct(benefit), cellCount(resolves)});
    }

    art.scalar("avg_benefit", arithmeticMean(benefits));
    art.note("Early resolution benefit: avg "
             + TextTable::pct(arithmeticMean(benefits))
             + ". The mechanism matters most for branchy workloads "
               "where the trailing core's retired outcomes arrive "
               "before the leader resolves its own mispredictions.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_early_branch",
                    "Ablation B: early branch resolution",
                    runAblation);

} // namespace
} // namespace contest
