/**
 * @file
 * Multiprogrammed-load validation of Section 6.1: the three designs
 * of Table 1 under stochastic job arrivals with the paper's
 * queue-at-preferred-type scheduling. The contention-weighted
 * harmonic-mean merit exists precisely to predict this experiment's
 * ranking under heavy load — and a design like HET-C, which
 * balances the benchmarks across its core types, should hold up
 * where single-thread-optimal designs queue-collapse.
 */

#include "bench/bench_common.hh"

#include "sched/scheduler.hh"

namespace contest
{
namespace
{

void
runSchedContention(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &m = runner.matrix();

    auto het_a = designCmp(m, 2, Merit::Avg, "HET-A");
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    auto het_c = designCmp(m, 2, Merit::CwHar, "HET-C");
    auto hom = designHom(m, Merit::Avg, "HOM");
    std::vector<const CmpDesign *> designs{&het_a, &het_b, &het_c,
                                           &hom};

    // Arrival rates from near-idle to saturation.
    struct Load
    {
        const char *label;
        double interarrivalNs;
    };
    std::vector<Load> loads{{"light", 4'000'000.0},
                            {"medium", 1'200'000.0},
                            {"heavy", 700'000.0}};
    if (benchFastMode())
        loads = {{"light", 4'000'000.0}, {"heavy", 700'000.0}};

    for (const auto &load : loads) {
        auto &t = art.table(std::string("Mean job turnaround (us) "
                                        "under ")
                            + load.label
                            + " load, 4 cores, "
                              "queue-at-preferred-type");
        t.columns = {"design", "core types", "cw-har score",
                     "mean turnaround", "p95", "queue share"};
        for (const auto *d : designs) {
            SchedConfig cfg;
            cfg.totalCores = 4;
            cfg.jobInsts = 4e6;
            cfg.meanInterarrivalNs = load.interarrivalNs;
            cfg.numJobs = 4000;
            cfg.seed = 11;
            auto r = simulateLoad(m, *d, cfg);
            double queue_share = r.meanTurnaroundNs > 0.0
                ? r.meanQueueNs / r.meanTurnaroundNs
                : 0.0;
            t.row({cellText(d->name),
                   cellText(designCoreNames(m, *d)),
                   cellNum(scoreCmp(m, d->cores, Merit::CwHar), 3),
                   cellNum(r.meanTurnaroundNs / 1000.0, 1),
                   cellNum(r.p95TurnaroundNs / 1000.0, 1),
                   cellPct(queue_share)});
        }
    }

    art.note("Under light load the heterogeneous designs win on pure "
             "service time. Under heavy load with the paper's "
             "queue-at-preferred-type policy, turnaround ranks "
             "exactly by the cw-har score: designs that split the "
             "benchmarks evenly across their types queue least, and "
             "pooled homogeneous capacity is the limiting case of "
             "that balance. This is the Little's-law argument behind "
             "cw-har (Section 6.1) — and why HET-C plus "
             "contesting-when-idle is the paper's robust design "
             "point (Section 7.1).");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("sched_contention",
                    "Section 6.1: multiprogrammed contention",
                    runSchedContention);

} // namespace
} // namespace contest
