/**
 * @file
 * Figure 11 — contesting on the HET-B design (two core types chosen
 * by the har figure of merit). In the paper HET-B pairs the gcc and
 * mcf cores; the slow-clocked partner tends to become a saturated
 * lagger for half the benchmarks, which caps the benefit.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig11(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &m = runner.matrix();
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    auto hom = designHom(m, Merit::Avg, "HOM");
    auto exp = runHetExperiment(runner, het_b, hom);
    hetArtifact(art, exp, m, "Figure 11");

    unsigned parked = 0;
    for (const auto &row : exp.rows)
        parked += row.parked ? 1 : 0;
    art.scalar("parked_benchmarks", parked);
    art.note("Saturated laggers parked on " + std::to_string(parked)
             + " of " + std::to_string(exp.rows.size())
             + " benchmarks. Paper: the mcf core's long clock "
               "period makes it a saturated lagger for half the "
               "benchmarks; HET-B contesting still averages +13%, "
               "max +39% (twolf).");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig11", "Figure 11: contesting on HET-B",
                    runFig11);

} // namespace
} // namespace contest
