/**
 * @file
 * Figure 11 — contesting on the HET-B design (two core types chosen
 * by the har figure of merit). In the paper HET-B pairs the gcc and
 * mcf cores; the slow-clocked partner tends to become a saturated
 * lagger for half the benchmarks, which caps the benefit.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig11()
{
    printBenchPreamble("Figure 11: contesting on HET-B");
    Runner &runner = benchRunner();
    const auto &m = runner.matrix();
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    auto hom = designHom(m, Merit::Avg, "HOM");
    auto exp = runHetExperiment(runner, het_b, hom);
    printHetExperiment(exp, m, "Figure 11");

    unsigned parked = 0;
    for (const auto &row : exp.rows)
        parked += row.parked ? 1 : 0;
    std::printf(
        "Saturated laggers parked on %u of %zu benchmarks. Paper: "
        "the mcf core's long clock period makes it a saturated "
        "lagger for half the benchmarks; HET-B contesting still "
        "averages +13%%, max +39%% (twolf).\n\n",
        parked, exp.rows.size());
    std::fflush(stdout);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runFig11)
