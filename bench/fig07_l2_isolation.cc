/**
 * @file
 * Figure 7 — isolating the contribution of L2-cache heterogeneity.
 * Each benchmark's best contesting pair (X, Y) is re-run with two
 * cores that differ only in their L2: core X against X-with-Y's-L2,
 * and Y against Y-with-X's-L2; the better of the two trials is the
 * "L2 heterogeneity only" bar, the original pair the full bar.
 */

#include "bench/bench_common.hh"

#include <algorithm>

namespace contest
{
namespace
{

/** Core @p base with the L2 (geometry and latency) of @p donor. */
CoreConfig
withL2Of(const CoreConfig &base, const CoreConfig &donor)
{
    CoreConfig c = base;
    c.l2 = donor.l2;
    c.name = base.name + "+" + donor.name + "L2";
    return c;
}

void
runFig07(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    auto &t = art.table("Figure 7: fraction of the contesting "
                        "speedup attributable to L2 heterogeneity "
                        "alone");
    t.columns = {"bench", "pair", "full speedup", "L2-only speedup",
                 "L2-only share"};

    unsigned top = benchFastMode() ? 2 : 5;
    std::vector<double> shares;
    for (const auto &bench : profileNames()) {
        double own = runner.single(bench, bench).result.ipt;
        auto choice = runner.bestContestingPair(bench, {}, top);
        double full_sp = speedup(choice.result.ipt, own);

        const auto &core_x = coreConfigByName(choice.coreA);
        const auto &core_y = coreConfigByName(choice.coreB);
        auto trial_x = runner.contested(
            bench, {core_x, withL2Of(core_x, core_y)}, {});
        auto trial_y = runner.contested(
            bench, {core_y, withL2Of(core_y, core_x)}, {});
        double l2_ipt = std::max(trial_x.ipt, trial_y.ipt);
        double l2_sp = speedup(l2_ipt, own);

        double share = full_sp > 0.0
            ? std::clamp(l2_sp / full_sp, 0.0, 1.0)
            : 0.0;
        shares.push_back(share);
        t.row({cellText(bench),
               cellText(choice.coreA + "+" + choice.coreB),
               cellPct(full_sp), cellPct(l2_sp),
               cellCustom(share,
                          TextTable::num(share * 100.0, 0) + "%")});
    }

    art.scalar("mean_l2_only_share", arithmeticMean(shares));
    char summary[240];
    std::snprintf(
        summary, sizeof(summary),
        "Mean L2-only share %.0f%%. Paper: for most benchmarks only "
        "a minor portion of the enhancement comes from L2 "
        "heterogeneity alone (gcc and parser are the exceptions).",
        arithmeticMean(shares) * 100.0);
    art.note(summary);
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig07", "Figure 7: L2-heterogeneity isolation",
                    runFig07);

} // namespace
} // namespace contest
