/**
 * @file
 * Ablation H — front-end instruction supply. The paper's Appendix A
 * holds the I-cache fixed across core types (only the data hierarchy
 * is explored), which this library mirrors by defaulting to a
 * perfect I-cache. This ablation turns the 64KB L1I model on and
 * asks two questions: how much single-core performance the
 * instruction supply costs on the synthetic workloads, and whether
 * contesting's benefit survives it.
 */

#include "bench/bench_common.hh"

#include <algorithm>

namespace contest
{
namespace
{

CoreConfig
withICache(const CoreConfig &base)
{
    CoreConfig c = base;
    c.modelICache = true;
    return c;
}

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    auto &t = art.table("Ablation H: perfect vs 64KB L1I, alone and "
                        "contested");
    t.columns = {"bench", "own perfect-I$", "own 64KB-I$", "cost",
                 "pair contest w/ I$", "contest speedup"};

    std::vector<double> costs;
    std::vector<double> speedups;
    std::vector<std::string> benches{"gcc", "crafty", "twolf",
                                     "gzip", "perl", "vpr"};
    for (const auto &bench : benches) {
        auto trace = runner.trace(bench);
        const auto &own = coreConfigByName(bench);
        double perfect = runner.single(bench, bench).result.ipt;
        auto own_ic = withICache(own);
        double with_ic = runSingle(own_ic, trace).ipt;
        double cost = speedup(with_ic, perfect);
        costs.push_back(cost);

        auto choice = runner.bestContestingPair(bench, {}, 3);
        ContestSystem sys(
            {withICache(coreConfigByName(choice.coreA)),
             withICache(coreConfigByName(choice.coreB))},
            trace);
        auto contested = sys.run();
        double best_single_ic = std::max(
            with_ic,
            runSingle(withICache(coreConfigByName(
                          choice.coreA == bench ? choice.coreB
                                                : choice.coreA)),
                      trace)
                .ipt);
        double sp = speedup(contested.ipt, best_single_ic);
        speedups.push_back(sp);
        t.row({cellText(bench), cellNum(perfect), cellNum(with_ic),
               cellPct(cost), cellNum(contested.ipt), cellPct(sp)});
    }

    art.scalar("avg_icache_cost", arithmeticMean(costs));
    art.scalar("avg_contest_speedup", arithmeticMean(speedups));
    art.note("Modeling a 64KB L1I costs "
             + TextTable::pct(arithmeticMean(costs))
             + " single-core performance on these synthetic code "
               "footprints (~100KB of flat code per benchmark — far "
               "larger than real hot code), and contesting moves by "
             + TextTable::pct(arithmeticMean(speedups))
             + " against the best I-cached single core: when "
               "instruction supply dominates, both cores stall on "
               "the same fills, write-through store traffic thrashes "
               "the unified L2 that feeds the I-cache, and "
               "fine-grain lead changes stop paying. This is exactly "
               "why the palette (like Appendix A, which explores "
               "only the data hierarchy) runs with the I-cache held "
               "perfect by default.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_icache",
                    "Ablation H: instruction-cache modeling",
                    runAblation);

} // namespace
} // namespace contest
