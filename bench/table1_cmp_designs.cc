/**
 * @file
 * Table 1 — constrained heterogeneous CMP designs. Exhaustive
 * search over pairs of core types under the three figures of merit
 * (avg, har, cw-har) produces HET-A/B/C; HOM is the best single
 * core type; HET-ALL contains every customized core.
 */

#include "bench/bench_common.hh"

#include <algorithm>

namespace contest
{
namespace
{

void
runTable1(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    ParallelStats ps = warmMatrix(runner);
    const auto &m = runner.matrix();

    auto het_a = designCmp(m, 2, Merit::Avg, "HET-A");
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    auto het_c = designCmp(m, 2, Merit::CwHar, "HET-C");
    auto hom_avg = designHom(m, Merit::Avg, "HOM");
    auto hom_har = designHom(m, Merit::Har, "HOM");
    auto het_all = designHetAll(m, "HET-ALL");

    auto &t = art.table("Table 1: five CMP designs and their "
                        "performance");
    t.columns = {"design", "merit", "core types",
                 "harmonic-mean IPT"};
    for (const auto *d : {&het_a, &het_b, &het_c}) {
        t.row({cellText(d->name), cellText(meritName(d->merit)),
               cellText(designCoreNames(m, *d)),
               cellNum(designHarmonicIpt(m, *d))});
    }
    std::string hom_merits =
        hom_avg.cores == hom_har.cores ? "avg or har" : "avg";
    t.row({cellText("HOM"), cellText(hom_merits),
           cellText(designCoreNames(m, hom_avg)),
           cellNum(designHarmonicIpt(m, hom_avg))});
    if (hom_avg.cores != hom_har.cores)
        t.row({cellText("HOM(har)"), cellText("har"),
               cellText(designCoreNames(m, hom_har)),
               cellNum(designHarmonicIpt(m, hom_har))});
    t.row({cellText("HET-ALL"), cellText("n/a"),
           cellText("all customized cores"),
           cellNum(designHarmonicIpt(m, het_all))});

    double hom_ipt = designHarmonicIpt(m, hom_avg);
    double het_all_sp =
        speedup(designHarmonicIpt(m, het_all), hom_ipt);
    double best_two_sp =
        speedup(std::max({designHarmonicIpt(m, het_a),
                          designHarmonicIpt(m, het_b),
                          designHarmonicIpt(m, het_c)}),
                hom_ipt);
    art.scalar("het_all_over_hom", het_all_sp);
    art.scalar("best_two_type_over_hom", best_two_sp);
    art.note("HET-ALL over HOM: " + TextTable::pct(het_all_sp)
             + " (paper: +34%). Best two-type design over HOM: "
             + TextTable::pct(best_two_sp) + " (paper: HET-C +19%).");

    // The paper also notes a four-type design comes within 2% of
    // HET-ALL.
    auto het4 = designCmp(m, 4, Merit::Har, "HET-4");
    double het4_gap = speedup(designHarmonicIpt(m, het_all),
                              designHarmonicIpt(m, het4));
    art.scalar("four_type_gap_to_het_all", het4_gap);
    art.note("Four-type design (" + designCoreNames(m, het4)
             + "): harmonic-mean IPT "
             + TextTable::num(designHarmonicIpt(m, het4))
             + ", within " + TextTable::pct(het4_gap)
             + " of HET-ALL (paper: within 2%).");
    art.note(parallelNote(ps));
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("table1", "Table 1: CMP designs", runTable1);

} // namespace
} // namespace contest
