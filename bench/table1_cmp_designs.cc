/**
 * @file
 * Table 1 — constrained heterogeneous CMP designs. Exhaustive
 * search over pairs of core types under the three figures of merit
 * (avg, har, cw-har) produces HET-A/B/C; HOM is the best single
 * core type; HET-ALL contains every customized core.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runTable1()
{
    printBenchPreamble("Table 1: CMP designs");
    Runner &runner = benchRunner();
    ParallelStats ps = warmMatrix(runner);
    const auto &m = runner.matrix();

    auto het_a = designCmp(m, 2, Merit::Avg, "HET-A");
    auto het_b = designCmp(m, 2, Merit::Har, "HET-B");
    auto het_c = designCmp(m, 2, Merit::CwHar, "HET-C");
    auto hom_avg = designHom(m, Merit::Avg, "HOM");
    auto hom_har = designHom(m, Merit::Har, "HOM");
    auto het_all = designHetAll(m, "HET-ALL");

    TextTable t("Table 1: five CMP designs and their performance");
    t.header({"design", "merit", "core types",
              "harmonic-mean IPT"});
    for (const auto *d : {&het_a, &het_b, &het_c}) {
        t.row({d->name, meritName(d->merit),
               designCoreNames(m, *d),
               TextTable::num(designHarmonicIpt(m, *d))});
    }
    std::string hom_merits =
        hom_avg.cores == hom_har.cores ? "avg or har" : "avg";
    t.row({"HOM", hom_merits, designCoreNames(m, hom_avg),
           TextTable::num(designHarmonicIpt(m, hom_avg))});
    if (hom_avg.cores != hom_har.cores)
        t.row({"HOM(har)", "har", designCoreNames(m, hom_har),
               TextTable::num(designHarmonicIpt(m, hom_har))});
    t.row({"HET-ALL", "n/a", "all customized cores",
           TextTable::num(designHarmonicIpt(m, het_all))});
    t.print();

    double hom_ipt = designHarmonicIpt(m, hom_avg);
    std::printf(
        "HET-ALL over HOM: %s (paper: +34%%). Best two-type design "
        "over HOM: %s (paper: HET-C +19%%).\n",
        TextTable::pct(
            speedup(designHarmonicIpt(m, het_all), hom_ipt))
            .c_str(),
        TextTable::pct(
            speedup(std::max({designHarmonicIpt(m, het_a),
                              designHarmonicIpt(m, het_b),
                              designHarmonicIpt(m, het_c)}),
                    hom_ipt))
            .c_str());

    // The paper also notes a four-type design comes within 2% of
    // HET-ALL.
    auto het4 = designCmp(m, 4, Merit::Har, "HET-4");
    std::printf(
        "Four-type design (%s): harmonic-mean IPT %s, within %s of "
        "HET-ALL (paper: within 2%%).\n\n",
        designCoreNames(m, het4).c_str(),
        TextTable::num(designHarmonicIpt(m, het4)).c_str(),
        TextTable::pct(speedup(designHarmonicIpt(m, het_all),
                               designHarmonicIpt(m, het4)))
            .c_str());
    std::fflush(stdout);
    printParallelStats(ps);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runTable1)
