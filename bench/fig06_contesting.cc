/**
 * @file
 * Figure 6 — 2-way contesting against the benchmark's own
 * customized core. For each benchmark the best pair of customized
 * cores is contested (candidate pairs ranked by the Figure 1 oracle
 * fusion, the top few actually simulated) at the paper's 1 ns
 * core-to-core latency.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig06()
{
    printBenchPreamble("Figure 6: 2-way contesting vs own core");
    Runner &runner = benchRunner();

    TextTable t("Figure 6: IPT of contesting between the best two "
                "cores vs the benchmark's own customized core");
    t.header({"bench", "own core", "contest", "pair", "speedup",
              "lead A/B", "lead changes"});

    struct Row
    {
        double own = 0.0;
        Runner::PairChoice choice;
    };
    const auto benches = profileNames();
    unsigned top = benchFastMode() ? 2 : 5;
    ParallelStats ps;
    auto rows = runParallel(
        benches.size(),
        [&](std::size_t i) {
            Row row;
            row.own =
                runner.single(benches[i], benches[i]).result.ipt;
            row.choice = runner.bestContestingPair(benches[i], {},
                                                   top);
            return row;
        },
        &ps);

    std::vector<double> speedups;
    double max_speedup = -1.0;
    std::string max_bench;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &row = rows[i];
        double sp = speedup(row.choice.result.ipt, row.own);
        speedups.push_back(sp);
        if (sp > max_speedup) {
            max_speedup = sp;
            max_bench = benches[i];
        }
        char lead[32];
        std::snprintf(lead, sizeof(lead), "%.2f/%.2f",
                      row.choice.result.leadFraction[0],
                      row.choice.result.leadFraction[1]);
        t.row({benches[i], TextTable::num(row.own),
               TextTable::num(row.choice.result.ipt),
               row.choice.coreA + "+" + row.choice.coreB,
               TextTable::pct(sp), lead,
               std::to_string(row.choice.result.leadChanges)});
    }
    t.print();

    std::printf(
        "Average speedup %s, maximum %s (%s). Paper: average +15%%, "
        "maximum +25%% (gcc); four of eleven benchmarks above "
        "+18%%.\n\n",
        TextTable::pct(arithmeticMean(speedups)).c_str(),
        TextTable::pct(max_speedup).c_str(), max_bench.c_str());
    std::fflush(stdout);
    printParallelStats(ps);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runFig06)
