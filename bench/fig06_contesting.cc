/**
 * @file
 * Figure 6 — 2-way contesting against the benchmark's own
 * customized core. For each benchmark the best pair of customized
 * cores is contested (candidate pairs ranked by the Figure 1 oracle
 * fusion, the top few actually simulated) at the paper's 1 ns
 * core-to-core latency.
 */

#include "bench/bench_common.hh"

#include <cstdio>

namespace contest
{
namespace
{

void
runFig06(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    auto &t = art.table("Figure 6: IPT of contesting between the "
                        "best two cores vs the benchmark's own "
                        "customized core");
    t.columns = {"bench", "own core", "contest", "pair", "speedup",
                 "lead A/B", "lead changes"};

    struct Row
    {
        double own = 0.0;
        Runner::PairChoice choice;
    };
    const auto benches = profileNames();
    unsigned top = benchFastMode() ? 2 : 5;
    ParallelStats ps;
    auto rows = runParallel(
        benches.size(),
        [&](std::size_t i) {
            Row row;
            row.own =
                runner.single(benches[i], benches[i]).result.ipt;
            row.choice = runner.bestContestingPair(benches[i], {},
                                                   top);
            return row;
        },
        &ps);

    std::vector<double> speedups;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &row = rows[i];
        double sp = speedup(row.choice.result.ipt, row.own);
        speedups.push_back(sp);
        char lead[32];
        std::snprintf(lead, sizeof(lead), "%.2f/%.2f",
                      row.choice.result.leadFraction[0],
                      row.choice.result.leadFraction[1]);
        t.row({cellText(benches[i]), cellNum(row.own),
               cellNum(row.choice.result.ipt),
               cellText(row.choice.coreA + "+" + row.choice.coreB),
               cellPct(sp), cellText(lead),
               cellCount(row.choice.result.leadChanges)});
    }

    std::size_t max_at = argmaxFirst(speedups);
    art.scalar("avg_speedup", arithmeticMean(speedups));
    art.scalar("max_speedup", speedups[max_at]);
    art.note("Average speedup "
             + TextTable::pct(arithmeticMean(speedups)) + ", maximum "
             + TextTable::pct(speedups[max_at]) + " ("
             + benches[max_at]
             + "). Paper: average +15%, maximum +25% (gcc); four of "
               "eleven benchmarks above +18%.");
    art.note(parallelNote(ps));
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig06", "Figure 6: 2-way contesting vs own core",
                    runFig06);

} // namespace
} // namespace contest
