/**
 * @file
 * Figure 1 — the Section 2 limit study. For every benchmark, the
 * execution is logged in 20-instruction regions on every customized
 * core; for each pair of configurations an oracle retires each
 * granularity-sized block on whichever configuration was faster.
 * The figure reports the best pair's speedup over the benchmark's
 * own customized core at each switching granularity.
 */

#include "bench/bench_common.hh"

#include <algorithm>

namespace contest
{
namespace
{

void
runFig01(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &palette = appendixAPalette();

    // Granularities in instructions (regions are 20 instructions).
    std::vector<std::uint64_t> grans{20,   80,    320,   1280,
                                     5120, 20480, 81920};
    if (benchFastMode())
        grans = {20, 1280, 81920};
    std::uint64_t whole = runner.traceLen();
    grans.push_back(whole);

    std::vector<std::string> head{"bench"};
    for (auto g : grans)
        head.push_back(g == whole ? "whole" : std::to_string(g));
    head.push_back("best pair @20");

    auto &t = art.table("Figure 1: % speedup of oracle "
                        "pair-switching over the benchmark's own "
                        "customized core");
    t.columns = head;

    std::vector<double> avg_speedup(grans.size(), 0.0);
    for (const auto &bench : profileNames()) {
        TimePs own_total =
            runner.single(bench, bench).regions->total();

        std::vector<ArtifactCell> cells{cellText(bench)};
        std::string finest_pair;
        for (std::size_t gi = 0; gi < grans.size(); ++gi) {
            std::uint64_t regions_per_block = std::max<std::uint64_t>(
                1, grans[gi] / RegionLog::regionInsts);
            double best = 0.0;
            std::string best_pair;
            for (std::size_t a = 0; a < palette.size(); ++a) {
                const auto &ra = runner.single(bench,
                                               palette[a].name);
                for (std::size_t b = a + 1; b < palette.size();
                     ++b) {
                    const auto &rb = runner.single(bench,
                                                   palette[b].name);
                    TimePs fused = fuseRegionTimes(
                        ra.regions->series(), rb.regions->series(),
                        regions_per_block);
                    double sp = static_cast<double>(own_total)
                            / static_cast<double>(fused)
                        - 1.0;
                    if (sp > best) {
                        best = sp;
                        best_pair = palette[a].name + std::string("+")
                            + palette[b].name;
                    }
                }
            }
            cells.push_back(cellPct(best));
            if (gi == 0)
                finest_pair = best_pair.empty() ? "-" : best_pair;
            avg_speedup[gi] += best;
        }
        cells.push_back(cellText(finest_pair));
        t.row(std::move(cells));
    }

    std::vector<ArtifactCell> avg_row{cellText("AVERAGE")};
    std::size_t n = profileNames().size();
    for (std::size_t gi = 0; gi < grans.size(); ++gi)
        avg_row.push_back(
            cellPct(avg_speedup[gi] / static_cast<double>(n)));
    avg_row.push_back(cellText(""));
    t.row(std::move(avg_row));

    art.scalar("avg_speedup_finest",
               avg_speedup.front() / static_cast<double>(n));
    art.scalar("avg_speedup_whole",
               avg_speedup.back() / static_cast<double>(n));
    art.note("Paper: up to ~25% below 1k-instruction granularity, "
             "~5% near 1280, ~0% at whole-SimPoint granularity; "
             "knee near 1280 instructions.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig01", "Figure 1: oracle switching granularity",
                    runFig01);

} // namespace
} // namespace contest
