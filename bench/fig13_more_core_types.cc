/**
 * @file
 * Figure 13 — contesting between two core types (HET-C) versus
 * exploiting more core types without contesting: HET-D (the best
 * three-type design under har) and HET-ALL (every benchmark on its
 * own customized core, as in the paper).
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig13(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &m = runner.matrix();

    auto het_c = designCmp(m, 2, Merit::CwHar, "HET-C");
    auto het_d = designCmp(m, 3, Merit::Har, "HET-D");
    const std::string core_a = m.coreNames[het_c.cores[0]];
    const std::string core_b = m.coreNames[het_c.cores[1]];

    auto &t = art.table("Figure 13: HET-C ("
                        + designCoreNames(m, het_c)
                        + ") contesting vs HET-D ("
                        + designCoreNames(m, het_d)
                        + ") and HET-ALL without contesting");
    t.columns = {"bench", "HET-C contest", "HET-D no-contest",
                 "HET-ALL (own core)"};

    // The per-benchmark HET-C contests are independent: sweep them
    // on the harness pool.
    ParallelStats ps;
    auto contests = runParallel(
        m.numBenches(),
        [&](std::size_t b) {
            return runner.contestedPair(m.benchNames[b], core_a,
                                        core_b);
        },
        &ps);

    std::vector<double> c_ipts;
    std::vector<double> d_ipts;
    std::vector<double> all_ipts;
    for (std::size_t b = 0; b < m.numBenches(); ++b) {
        const auto &bench = m.benchNames[b];
        const auto &r = contests[b];
        double d_ipt = m.ipt[b][bestCoreFor(m, b, het_d.cores)];
        double own_ipt = m.ipt[b][m.coreIndex(bench)];
        c_ipts.push_back(r.ipt);
        d_ipts.push_back(d_ipt);
        all_ipts.push_back(own_ipt);
        t.row({cellText(bench), cellNum(r.ipt), cellNum(d_ipt),
               cellNum(own_ipt)});
    }
    t.row({cellText("HAR-MEAN"), cellNum(harmonicMean(c_ipts)),
           cellNum(harmonicMean(d_ipts)),
           cellNum(harmonicMean(all_ipts))});

    double two_vs_three =
        speedup(harmonicMean(c_ipts), harmonicMean(d_ipts));
    art.scalar("two_type_contest_vs_three_type", two_vs_three);
    art.note("Two-type contesting vs three-type selection: "
             + TextTable::pct(two_vs_three)
             + " (harmonic mean). Paper: contesting between two core "
               "types matches or beats executing on the best of "
               "three types, and on average matches eleven types — a "
               "more cost-effective route to single-thread "
               "performance than more core types.");
    art.note(parallelNote(ps));
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig13", "Figure 13: contesting vs more core types",
                    runFig13);

} // namespace
} // namespace contest
