/**
 * @file
 * Driver main for the experiment suite. Linked into contest_bench
 * (all experiments in one process, sharing one Runner so every
 * single-core simulation happens at most once for the whole suite)
 * and into each standalone figure binary (which registers exactly
 * one experiment and therefore runs it when invoked with no
 * selection).
 *
 * With more than one experiment selected and more than one job, the
 * suite runs under the pipelined SuiteScheduler: every experiment is
 * posted to the shared pool up front and results are drained in
 * registry order, so stdout and artifacts are byte-identical to the
 * sequential loop while experiment bodies overlap. A
 * single-experiment invocation (every standalone figure binary),
 * --jobs 1, or --sequential bypasses the scheduler entirely and runs
 * the plain sequential loop.
 *
 * Usage:
 *   contest_bench --list
 *   contest_bench fig06 fig08 [--out-dir artifacts]
 *   contest_bench --all [--fast] [--jobs N] [--cache-dir DIR]
 *                 [--timing] [--sequential]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "harness/scheduler.hh"

namespace
{

using namespace contest;

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: contest_bench [options] [experiment...]\n"
        "\n"
        "  --list           list registered experiments and exit\n"
        "  --all            run every registered experiment\n"
        "  --out-dir DIR    write one JSON artifact per experiment\n"
        "  --cache-dir DIR  persistent single-core result cache\n"
        "  --fast           shrink sweeps (CONTEST_FAST=1)\n"
        "  --trace-len N    instructions per trace\n"
        "  --seed N         workload generation seed\n"
        "  --jobs N         parallel harness concurrency\n"
        "  --contest-jobs N worker threads inside each contested\n"
        "                   run (bit-identical to 1; threads beyond\n"
        "                   the --jobs budget run inline)\n"
        "  --timing         per-simulation timeline report\n"
        "  --sequential     disable the pipelined scheduler\n"
        "\n"
        "With no selection, a binary with exactly one registered\n"
        "experiment runs it; contest_bench itself lists and exits.\n");
}

/** Flags that take a value as `--flag V` or `--flag=V`. */
bool
valueFlag(int argc, char **argv, int &i, const char *flag,
          std::string &value)
{
    std::size_t n = std::strlen(flag);
    if (std::strcmp(argv[i], flag) == 0) {
        fatal_if(i + 1 >= argc, "%s needs a value", flag);
        value = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=') {
        value = argv[i] + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    applyJobsFlag(&argc, argv);
    applyContestJobsFlag(&argc, argv);

    bool run_all = false;
    bool list_only = false;
    bool timing = false;
    bool sequential = false;
    std::string out_dir;
    std::string value;
    std::vector<std::string> selected;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            list_only = true;
        } else if (std::strcmp(argv[i], "--all") == 0) {
            run_all = true;
        } else if (std::strcmp(argv[i], "--fast") == 0) {
            setenv("CONTEST_FAST", "1", 1);
        } else if (std::strcmp(argv[i], "--timing") == 0) {
            timing = true;
        } else if (std::strcmp(argv[i], "--sequential") == 0) {
            sequential = true;
        } else if (valueFlag(argc, argv, i, "--out-dir", value)) {
            out_dir = value;
        } else if (valueFlag(argc, argv, i, "--cache-dir", value)) {
            setenv("CONTEST_CACHE_DIR", value.c_str(), 1);
        } else if (valueFlag(argc, argv, i, "--trace-len", value)) {
            setenv("CONTEST_TRACE_LEN", value.c_str(), 1);
        } else if (valueFlag(argc, argv, i, "--seed", value)) {
            setenv("CONTEST_SEED", value.c_str(), 1);
        } else if (std::strcmp(argv[i], "--help") == 0
                   || std::strcmp(argv[i], "-h") == 0) {
            printUsage(stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            printUsage(stderr);
            return 2;
        } else {
            selected.emplace_back(argv[i]);
        }
    }

    const ExperimentRegistry &registry =
        ExperimentRegistry::instance();
    fatal_if(registry.size() == 0, "no experiments are registered");

    if (list_only) {
        for (const ExperimentInfo *e : registry.all())
            std::printf("%-22s %s%s\n", e->name.c_str(),
                        e->title.c_str(),
                        e->inSuite ? "" : " [standalone]");
        return 0;
    }

    std::vector<const ExperimentInfo *> to_run;
    if (run_all) {
        for (const ExperimentInfo *e : registry.all())
            if (e->inSuite)
                to_run.push_back(e);
    } else if (!selected.empty()) {
        for (const auto &name : selected) {
            const ExperimentInfo *e = registry.find(name);
            if (e == nullptr) {
                std::fprintf(stderr,
                             "unknown experiment '%s'; known:\n",
                             name.c_str());
                for (const ExperimentInfo *known : registry.all())
                    std::fprintf(stderr, "  %s\n",
                                 known->name.c_str());
                return 2;
            }
            to_run.push_back(e);
        }
    } else if (registry.size() == 1) {
        to_run = registry.all(); // standalone figure binary
    } else {
        printUsage(stdout);
        std::printf("\nregistered experiments:\n");
        for (const ExperimentInfo *e : registry.all())
            std::printf("  %-20s %s\n", e->name.c_str(),
                        e->title.c_str());
        return 2;
    }

    Runner &runner = benchRunner();
    SimTimeline timeline;
    runner.setTimeline(&timeline);
    ArtifactSink sink(out_dir);
    ThreadPool &pool = ThreadPool::global();
    using Clock = std::chrono::steady_clock;
    auto suite_start = Clock::now();
    auto report = [](const ExperimentInfo &e, double sec) {
        std::printf("-- %s finished in %.2f s\n\n", e.name.c_str(),
                    sec);
        std::fflush(stdout);
    };
    if (sequential || pool.jobs() <= 1 || to_run.size() <= 1) {
        // Scheduler bypass: a single experiment (every standalone
        // figure binary) or a serial run pays no scheduler setup —
        // this is exactly the original sequential loop.
        for (const ExperimentInfo *e : to_run) {
            auto exp_start = Clock::now();
            ExperimentContext ctx{runner, sink, *e};
            e->fn(ctx);
            report(*e, std::chrono::duration<double>(Clock::now()
                                                     - exp_start)
                           .count());
        }
    } else {
        SuiteScheduler scheduler(runner, sink, pool);
        scheduler.run(to_run, report);
    }

    double suite_sec =
        std::chrono::duration<double>(Clock::now() - suite_start)
            .count();
    std::printf("== suite: %zu experiment(s) in %.2f s | %llu "
                "single-core simulation(s) + %llu contested run(s)",
                to_run.size(), suite_sec,
                static_cast<unsigned long long>(
                    runner.simulationsPerformed()),
                static_cast<unsigned long long>(
                    runner.contestsPerformed()));
    if (runner.resultCache() != nullptr)
        std::printf(", %llu + %llu disk cache hit(s) in %s",
                    static_cast<unsigned long long>(
                        runner.diskHits()),
                    static_cast<unsigned long long>(
                        runner.contestDiskHits()),
                    runner.resultCache()->directory().c_str());
    std::printf("\n");
    if (timing)
        std::fputs(timeline.renderReport(pool.jobs()).c_str(),
                   stdout);
    if (!out_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);
        std::string timeline_path = out_dir + "/SimTimeline.json";
        std::ofstream f(timeline_path, std::ios::trunc);
        fatal_if(!f.good(), "cannot open timeline file '%s'",
                 timeline_path.c_str());
        f << timeline.toJson(pool.jobs()).dump(2);
        f.close();
        fatal_if(!f.good(), "failed writing timeline file '%s'",
                 timeline_path.c_str());
        std::printf("== artifacts: %zu JSON file(s) under %s\n",
                    sink.writtenFiles().size(), out_dir.c_str());
    }
    std::fflush(stdout);
    return 0;
}
