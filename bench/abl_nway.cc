/**
 * @file
 * Ablation E — N-way contesting. Section 4 describes contesting for
 * N cores; the paper evaluates N=2. This ablation adds the third
 * and fourth most suitable core types to each benchmark's best pair
 * and measures whether the extra contestants pay for themselves.
 */

#include "bench/bench_common.hh"

#include <algorithm>

namespace contest
{
namespace
{

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &m = runner.matrix();

    auto &t = art.table("Ablation E: contested IPT for 2-, 3- and "
                        "4-way contesting (adding the next-best "
                        "core types)");
    t.columns = {"bench", "2-way pair", "2-way", "3-way", "4-way",
                 "3rd/4th cores"};

    std::vector<double> gain3;
    std::vector<double> gain4;
    for (const auto &bench : profileNames()) {
        auto choice = runner.bestContestingPair(bench, {}, 3);

        // Rank the remaining core types by single-core IPT for this
        // benchmark and add the best ones.
        std::size_t b = m.benchIndex(bench);
        std::vector<std::size_t> rest;
        for (std::size_t c = 0; c < m.numCores(); ++c) {
            const auto &name = m.coreNames[c];
            if (name != choice.coreA && name != choice.coreB)
                rest.push_back(c);
        }
        std::sort(rest.begin(), rest.end(),
                  [&](std::size_t x, std::size_t y) {
                      return m.ipt[b][x] > m.ipt[b][y];
                  });
        const std::string third = m.coreNames[rest[0]];
        const std::string fourth = m.coreNames[rest[1]];

        auto three = runner.contested(
            bench,
            {coreConfigByName(choice.coreA),
             coreConfigByName(choice.coreB),
             coreConfigByName(third)},
            {});
        auto four = runner.contested(
            bench,
            {coreConfigByName(choice.coreA),
             coreConfigByName(choice.coreB),
             coreConfigByName(third), coreConfigByName(fourth)},
            {});

        gain3.push_back(speedup(three.ipt, choice.result.ipt));
        gain4.push_back(speedup(four.ipt, choice.result.ipt));
        t.row({cellText(bench),
               cellText(choice.coreA + "+" + choice.coreB),
               cellNum(choice.result.ipt), cellNum(three.ipt),
               cellNum(four.ipt), cellText(third + "/" + fourth)});
    }

    art.scalar("avg_gain_3way", arithmeticMean(gain3));
    art.scalar("avg_gain_4way", arithmeticMean(gain4));
    art.note("Adding a third core: avg "
             + TextTable::pct(arithmeticMean(gain3)) + "; a fourth: "
             + "avg " + TextTable::pct(arithmeticMean(gain4))
             + " over 2-way. The paper's cost-effectiveness claim "
               "(Fig. 13) predicts rapidly diminishing returns "
               "beyond two contestants.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_nway", "Ablation E: N-way contesting",
                    runAblation);

} // namespace
} // namespace contest
