/**
 * @file
 * The contest service daemon. Keeps the core palette, the synthetic
 * traces, the Runner's memo tables, and the on-disk result cache
 * hot in one long-lived process and serves single/contest/experiment
 * requests over a Unix or loopback-TCP socket (serve/server.hh has
 * the threading model, serve/protocol.hh the wire schema).
 *
 * Linked with every suite experiment translation unit, so
 * `{"kind": "experiment", "name": "fig06"}` runs any in-suite
 * experiment against the shared warm Runner.
 *
 * Usage:
 *   contest_serve --socket /tmp/contest.sock [--jobs N]
 *   contest_serve --port 0 [--trace-len N] [--seed N]
 *                 [--cache-dir DIR] [--admission-depth N] [--quiet]
 *
 * SIGTERM and SIGINT drain gracefully: in-flight requests complete,
 * new ones are refused, then the process exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/log.hh"
#include "serve/server.hh"

namespace
{

using namespace contest;

/** The running server, for the signal handler. Written once before
 *  signals are installed. */
ContestServer *liveServer = nullptr;

void
handleStopSignal(int)
{
    // requestShutdown is async-signal-safe by contract (one atomic
    // store plus one self-pipe write).
    if (liveServer != nullptr)
        liveServer->requestShutdown();
}

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: contest_serve [options]\n"
        "\n"
        "  --socket PATH       listen on a Unix socket at PATH\n"
        "  --port N            listen on 127.0.0.1:N (0 picks an\n"
        "                      ephemeral port, printed at startup)\n"
        "  --jobs N            simulation workers (default\n"
        "                      CONTEST_JOBS / hardware concurrency)\n"
        "  --contest-jobs N    worker threads inside each contested\n"
        "                      run\n"
        "  --trace-len N       instructions per trace\n"
        "  --seed N            workload generation seed\n"
        "  --cache-dir DIR     persistent result cache\n"
        "  --admission-depth N admission queue depth (default 64)\n"
        "  --quiet             suppress startup/shutdown log lines\n");
}

bool
valueFlag(int argc, char **argv, int &i, const char *flag,
          std::string &value)
{
    const std::size_t n = std::strlen(flag);
    if (std::strcmp(argv[i], flag) == 0) {
        fatal_if(i + 1 >= argc, "%s needs a value", flag);
        value = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=') {
        value = argv[i] + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    applyJobsFlag(&argc, argv);
    applyContestJobsFlag(&argc, argv);

    ServeOptions opts;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        if (valueFlag(argc, argv, i, "--socket", value)) {
            opts.target.unixPath = value;
        } else if (valueFlag(argc, argv, i, "--port", value)) {
            opts.target.port = std::atoi(value.c_str());
        } else if (valueFlag(argc, argv, i, "--trace-len", value)) {
            setenv("CONTEST_TRACE_LEN", value.c_str(), 1);
        } else if (valueFlag(argc, argv, i, "--seed", value)) {
            setenv("CONTEST_SEED", value.c_str(), 1);
        } else if (valueFlag(argc, argv, i, "--cache-dir", value)) {
            opts.cacheDir = value;
        } else if (valueFlag(argc, argv, i, "--admission-depth",
                             value)) {
            opts.admissionDepth = static_cast<std::size_t>(
                std::atoi(value.c_str()));
            fatal_if(opts.admissionDepth == 0,
                     "--admission-depth needs a positive value");
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(argv[i], "--help") == 0
                   || std::strcmp(argv[i], "-h") == 0) {
            printUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            printUsage(stderr);
            return 2;
        }
    }
    if (!opts.target.valid()) {
        std::fprintf(stderr,
                     "contest_serve needs --socket PATH or "
                     "--port N\n");
        printUsage(stderr);
        return 2;
    }

    opts.jobs = defaultJobs();
    opts.traceLen = benchTraceLen();
    opts.seed = benchSeed();

    // The startup line carries the resolved (possibly ephemeral)
    // listen address, so it must be visible by default.
    if (!opts.quiet)
        setLogLevel(LogLevel::Inform);

    ContestServer server(std::move(opts));
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "contest_serve: %s\n", error.c_str());
        return 1;
    }

    liveServer = &server;
    struct sigaction sa = {};
    sa.sa_handler = handleStopSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    server.waitUntilStopped();
    return 0;
}
