/**
 * @file
 * Shared scaffolding for the bench binaries: a google-benchmark
 * main that runs the experiment exactly once (the experiment prints
 * its paper-style tables to stdout), plus the HET-design experiment
 * used by Figures 10-13.
 */

#ifndef CONTEST_BENCH_COMMON_HH
#define CONTEST_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "explore/cmp_design.hh"
#include "harness/experiment.hh"

namespace contest
{

/**
 * Wall-clock accounting of one runParallel() sweep. taskSec sums the
 * per-task wall times, i.e. the serial-equivalent cost, so
 * speedup() is the measured parallel speedup of the sweep.
 */
struct ParallelStats
{
    unsigned jobs = 1;
    std::size_t tasks = 0;
    double wallSec = 0.0;
    double taskSec = 0.0;

    double
    speedup() const
    {
        return wallSec > 0.0 ? taskSec / wallSec : 1.0;
    }
};

/**
 * Map fn over [0, n) on the process-wide thread pool and return the
 * results in index order. Each task writes only its own slot, so the
 * output is bit-identical to a serial loop for any CONTEST_JOBS.
 */
template <typename Fn>
auto
runParallel(std::size_t n, Fn fn, ParallelStats *stats = nullptr)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using Clock = std::chrono::steady_clock;
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    std::vector<double> task_sec(n, 0.0);
    auto wall_start = Clock::now();
    ThreadPool::global().parallelFor(n, [&](std::size_t i) {
        auto t0 = Clock::now();
        out[i] = fn(i);
        task_sec[i] =
            std::chrono::duration<double>(Clock::now() - t0).count();
    });
    if (stats != nullptr) {
        stats->jobs = ThreadPool::global().jobs();
        stats->tasks = n;
        stats->wallSec = std::chrono::duration<double>(Clock::now()
                                                       - wall_start)
                             .count();
        stats->taskSec = 0.0;
        for (double s : task_sec)
            stats->taskSec += s;
    }
    return out;
}

/** Print a sweep's measured wall-clock speedup under the figure. */
inline void
printParallelStats(const ParallelStats &s)
{
    std::printf("parallel harness: %zu tasks on %u jobs, wall "
                "%.2f s, serial-equivalent %.2f s (%.2fx "
                "wall-clock speedup)\n\n",
                s.tasks, s.jobs, s.wallSec, s.taskSec, s.speedup());
    std::fflush(stdout);
}

/**
 * Warm every (benchmark, core type) cell of the runner's IPT matrix
 * through runParallel() so the sweep's wall-clock speedup can be
 * reported; the subsequent matrix() call assembles from cache.
 */
inline ParallelStats
warmMatrix(Runner &runner)
{
    const auto benches = profileNames();
    const auto &palette = appendixAPalette();
    ParallelStats ps;
    runParallel(
        benches.size() * palette.size(),
        [&](std::size_t i) {
            runner.single(benches[i / palette.size()],
                          palette[i % palette.size()].name);
            return 0;
        },
        &ps);
    return ps;
}

/**
 * Figure 10/11/12 style experiment: each benchmark on the HOM core,
 * on the best core of a two-type HET design, and contested between
 * the design's two core types.
 */
struct HetRow
{
    std::string bench;
    double homIpt = 0.0;
    double bestIpt = 0.0;     //!< best available core, no contesting
    double contestIpt = 0.0;  //!< contested between the two types
    bool parked = false;      //!< a saturated lagger was parked
};

struct HetExperiment
{
    CmpDesign design;
    CmpDesign hom;
    std::vector<HetRow> rows;
    double avgContestSpeedup = 0.0; //!< vs best available core
    double maxContestSpeedup = 0.0;
    std::string maxSpeedupBench;
    double avgVsHom = 0.0;          //!< contesting vs HOM
    double avgNoContestVsHom = 0.0; //!< best-available vs HOM
};

/** Run the HET experiment for a given two-type design. */
inline HetExperiment
runHetExperiment(Runner &runner, const CmpDesign &design,
                 const CmpDesign &hom)
{
    const auto &m = runner.matrix();
    fatal_if(design.cores.size() != 2,
             "runHetExperiment needs a two-type design");
    const std::string core_a = m.coreNames[design.cores[0]];
    const std::string core_b = m.coreNames[design.cores[1]];
    const std::string hom_core = m.coreNames[hom.cores[0]];

    HetExperiment exp;
    exp.design = design;
    exp.hom = hom;

    std::vector<double> contest_speedups;
    std::vector<double> vs_hom;
    std::vector<double> nocontest_vs_hom;
    for (std::size_t b = 0; b < m.numBenches(); ++b) {
        HetRow row;
        row.bench = m.benchNames[b];
        row.homIpt = m.ipt[b][hom.cores[0]];
        row.bestIpt = m.ipt[b][bestCoreFor(m, b, design.cores)];
        auto r = runner.contestedPair(row.bench, core_a, core_b);
        row.contestIpt = r.ipt;
        row.parked =
            r.unitStats[0].saturated || r.unitStats[1].saturated;
        exp.rows.push_back(row);

        double sp = speedup(row.contestIpt, row.bestIpt);
        contest_speedups.push_back(sp);
        vs_hom.push_back(speedup(row.contestIpt, row.homIpt));
        nocontest_vs_hom.push_back(speedup(row.bestIpt, row.homIpt));
        if (sp >= exp.maxContestSpeedup) {
            exp.maxContestSpeedup = sp;
            exp.maxSpeedupBench = row.bench;
        }
    }
    exp.avgContestSpeedup = arithmeticMean(contest_speedups);
    exp.avgVsHom = arithmeticMean(vs_hom);
    exp.avgNoContestVsHom = arithmeticMean(nocontest_vs_hom);
    return exp;
}

/** Print a HET experiment in the Figure 10-12 format. */
inline void
printHetExperiment(const HetExperiment &exp, const IptMatrix &m,
                   const std::string &figure)
{
    TextTable t(figure + ": IPT on HOM ("
                + m.coreNames[exp.hom.cores[0]] + "), "
                + exp.design.name + " ("
                + designCoreNames(m, exp.design)
                + ") without and with contesting");
    t.header({"bench", "HOM", exp.design.name + " no-contest",
              exp.design.name + " contest", "speedup", "lagger"});
    for (const auto &row : exp.rows) {
        t.row({row.bench, TextTable::num(row.homIpt),
               TextTable::num(row.bestIpt),
               TextTable::num(row.contestIpt),
               TextTable::pct(speedup(row.contestIpt, row.bestIpt)),
               row.parked ? "parked" : "-"});
    }
    t.print();
    std::printf(
        "%s contesting: avg %s / max %s (%s) over the best "
        "available core; avg %s over HOM (no contesting: %s)\n\n",
        exp.design.name.c_str(),
        TextTable::pct(exp.avgContestSpeedup).c_str(),
        TextTable::pct(exp.maxContestSpeedup).c_str(),
        exp.maxSpeedupBench.c_str(),
        TextTable::pct(exp.avgVsHom).c_str(),
        TextTable::pct(exp.avgNoContestVsHom).c_str());
    std::fflush(stdout);
}

} // namespace contest

/**
 * Define the single-iteration google-benchmark entry point. The
 * experiment body runs once inside the timing loop, so the reported
 * wall time is the cost of regenerating the figure. `--jobs N`
 * (equivalent to CONTEST_JOBS=N) sizes the parallel harness and is
 * consumed before google-benchmark sees the arguments.
 */
#define CONTEST_BENCH_MAIN(fn)                                       \
    static void BM_Experiment(benchmark::State &state)              \
    {                                                               \
        for (auto _ : state)                                        \
            fn();                                                   \
    }                                                               \
    BENCHMARK(BM_Experiment)                                        \
        ->Iterations(1)                                             \
        ->Unit(benchmark::kSecond);                                 \
    int main(int argc, char **argv)                                 \
    {                                                               \
        contest::applyJobsFlag(&argc, argv);                        \
        benchmark::Initialize(&argc, argv);                         \
        benchmark::RunSpecifiedBenchmarks();                        \
        benchmark::Shutdown();                                      \
        return 0;                                                   \
    }

#endif // CONTEST_BENCH_COMMON_HH
