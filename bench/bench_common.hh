/**
 * @file
 * Shared scaffolding for the experiment suite: the parallel sweep
 * helper with wall-clock accounting, and the HET-design experiment
 * used by Figures 10-13. Experiments register themselves with
 * REGISTER_EXPERIMENT (harness/registry.hh) and emit FigureArtifacts
 * (harness/artifact.hh); the contest_bench driver — also linked into
 * every standalone figure binary — selects and runs them.
 */

#ifndef CONTEST_BENCH_COMMON_HH
#define CONTEST_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "explore/cmp_design.hh"
#include "harness/experiment.hh"
#include "harness/registry.hh"

namespace contest
{

/**
 * Wall-clock accounting of one runParallel() sweep. taskSec sums the
 * per-task wall times, i.e. the serial-equivalent cost, so
 * speedup() is the measured parallel speedup of the sweep.
 */
struct ParallelStats
{
    unsigned jobs = 1;
    std::size_t tasks = 0;
    double wallSec = 0.0;
    double taskSec = 0.0;

    double
    speedup() const
    {
        return wallSec > 0.0 ? taskSec / wallSec : 1.0;
    }
};

/**
 * Map fn over [0, n) on the process-wide thread pool and return the
 * results in index order. Each task writes only its own slot, so the
 * output is bit-identical to a serial loop for any CONTEST_JOBS.
 */
template <typename Fn>
auto
runParallel(std::size_t n, Fn fn, ParallelStats *stats = nullptr)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using Clock = std::chrono::steady_clock;
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    std::vector<double> task_sec(n, 0.0);
    auto wall_start = Clock::now();
    ThreadPool::global().parallelFor(n, [&](std::size_t i) {
        auto t0 = Clock::now();
        out[i] = fn(i);
        task_sec[i] =
            std::chrono::duration<double>(Clock::now() - t0).count();
    });
    if (stats != nullptr) {
        stats->jobs = ThreadPool::global().jobs();
        stats->tasks = n;
        stats->wallSec = std::chrono::duration<double>(Clock::now()
                                                       - wall_start)
                             .count();
        stats->taskSec = 0.0;
        for (double s : task_sec)
            stats->taskSec += s;
    }
    return out;
}

/** A sweep's measured wall-clock speedup, as an artifact note. */
inline std::string
parallelNote(const ParallelStats &s)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "parallel harness: %zu tasks on %u jobs, wall "
                  "%.2f s, serial-equivalent %.2f s (%.2fx "
                  "wall-clock speedup)",
                  s.tasks, s.jobs, s.wallSec, s.taskSec, s.speedup());
    return buf;
}

/**
 * Warm every (benchmark, core type) cell of the runner's IPT matrix
 * through runParallel() so the sweep's wall-clock speedup can be
 * reported; the subsequent matrix() call assembles from cache.
 */
inline ParallelStats
warmMatrix(Runner &runner)
{
    const auto benches = profileNames();
    const auto &palette = appendixAPalette();
    ParallelStats ps;
    runParallel(
        benches.size() * palette.size(),
        [&](std::size_t i) {
            runner.single(benches[i / palette.size()],
                          palette[i % palette.size()].name);
            return 0;
        },
        &ps);
    return ps;
}

/**
 * Figure 10/11/12 style experiment: each benchmark on the HOM core,
 * on the best core of a two-type HET design, and contested between
 * the design's two core types.
 */
struct HetRow
{
    std::string bench;
    double homIpt = 0.0;
    double bestIpt = 0.0;     //!< best available core, no contesting
    double contestIpt = 0.0;  //!< contested between the two types
    bool parked = false;      //!< a saturated lagger was parked
};

struct HetExperiment
{
    CmpDesign design;
    CmpDesign hom;
    std::vector<HetRow> rows;
    double avgContestSpeedup = 0.0; //!< vs best available core
    double maxContestSpeedup = 0.0;
    std::string maxSpeedupBench;
    double avgVsHom = 0.0;          //!< contesting vs HOM
    double avgNoContestVsHom = 0.0; //!< best-available vs HOM
};

/** Run the HET experiment for a given two-type design. */
inline HetExperiment
runHetExperiment(Runner &runner, const CmpDesign &design,
                 const CmpDesign &hom)
{
    const auto &m = runner.matrix();
    fatal_if(design.cores.size() != 2,
             "runHetExperiment needs a two-type design");
    const std::string core_a = m.coreNames[design.cores[0]];
    const std::string core_b = m.coreNames[design.cores[1]];

    HetExperiment exp;
    exp.design = design;
    exp.hom = hom;

    std::vector<double> contest_speedups;
    std::vector<double> vs_hom;
    std::vector<double> nocontest_vs_hom;
    for (std::size_t b = 0; b < m.numBenches(); ++b) {
        HetRow row;
        row.bench = m.benchNames[b];
        row.homIpt = m.ipt[b][hom.cores[0]];
        row.bestIpt = m.ipt[b][bestCoreFor(m, b, design.cores)];
        auto r = runner.contestedPair(row.bench, core_a, core_b);
        row.contestIpt = r.ipt;
        row.parked =
            r.unitStats[0].saturated || r.unitStats[1].saturated;
        exp.rows.push_back(row);

        contest_speedups.push_back(
            speedup(row.contestIpt, row.bestIpt));
        vs_hom.push_back(speedup(row.contestIpt, row.homIpt));
        nocontest_vs_hom.push_back(speedup(row.bestIpt, row.homIpt));
    }
    std::size_t max_at = argmaxFirst(contest_speedups);
    exp.maxContestSpeedup = contest_speedups[max_at];
    exp.maxSpeedupBench = exp.rows[max_at].bench;
    exp.avgContestSpeedup = arithmeticMean(contest_speedups);
    exp.avgVsHom = arithmeticMean(vs_hom);
    exp.avgNoContestVsHom = arithmeticMean(nocontest_vs_hom);
    return exp;
}

/**
 * Append a HET experiment to an artifact in the Figure 10-12 format:
 * the per-benchmark table, the summary scalars, and the summary
 * sentence as a note.
 */
inline void
hetArtifact(FigureArtifact &art, const HetExperiment &exp,
            const IptMatrix &m, const std::string &figure)
{
    auto &t = art.table(figure + ": IPT on HOM ("
                        + m.coreNames[exp.hom.cores[0]] + "), "
                        + exp.design.name + " ("
                        + designCoreNames(m, exp.design)
                        + ") without and with contesting");
    t.columns = {"bench", "HOM", exp.design.name + " no-contest",
                 exp.design.name + " contest", "speedup", "lagger"};
    for (const auto &row : exp.rows) {
        t.row({cellText(row.bench), cellNum(row.homIpt),
               cellNum(row.bestIpt), cellNum(row.contestIpt),
               cellPct(speedup(row.contestIpt, row.bestIpt)),
               cellText(row.parked ? "parked" : "-")});
    }

    art.scalar("avg_contest_speedup", exp.avgContestSpeedup);
    art.scalar("max_contest_speedup", exp.maxContestSpeedup);
    art.scalar("avg_vs_hom", exp.avgVsHom);
    art.scalar("avg_nocontest_vs_hom", exp.avgNoContestVsHom);

    art.note(exp.design.name + " contesting: avg "
             + TextTable::pct(exp.avgContestSpeedup) + " / max "
             + TextTable::pct(exp.maxContestSpeedup) + " ("
             + exp.maxSpeedupBench + ") over the best available "
             + "core; avg " + TextTable::pct(exp.avgVsHom)
             + " over HOM (no contesting: "
             + TextTable::pct(exp.avgNoContestVsHom) + ")");
}

} // namespace contest

#endif // CONTEST_BENCH_COMMON_HH
