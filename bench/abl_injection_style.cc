/**
 * @file
 * Ablation A — result-injection style (paper Section 4.1.3): the
 * primary port-stealing scheme (injected results complete at rename
 * and bypass the issue queue) versus the "more straightforward
 * alternative" that dispatches injected instructions into the issue
 * queue marked immediately ready.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    auto &t = art.table("Ablation A: contested IPT with "
                        "port-stealing vs mark-ready injection");
    t.columns = {"bench", "pair", "port-steal", "mark-ready",
                 "delta"};

    std::vector<double> deltas;
    for (const auto &bench : profileNames()) {
        auto choice = runner.bestContestingPair(bench, {}, 3);

        ContestConfig mark;
        mark.injectionStyle = InjectionStyle::MarkReady;
        auto mr = runner.contestedPair(bench, choice.coreA,
                                       choice.coreB, mark);
        double delta = speedup(choice.result.ipt, mr.ipt);
        deltas.push_back(delta);
        t.row({cellText(bench),
               cellText(choice.coreA + "+" + choice.coreB),
               cellNum(choice.result.ipt), cellNum(mr.ipt),
               cellPct(delta)});
    }

    art.scalar("avg_port_steal_delta", arithmeticMean(deltas));
    art.note("Port stealing over mark-ready: avg "
             + TextTable::pct(arithmeticMean(deltas))
             + ". Injected results that bypass the issue queue free "
               "issue slots and queue capacity for the lagger's "
               "catch-up sprint.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_injection_style", "Ablation A: injection style",
                    runAblation);

} // namespace
} // namespace contest
