/**
 * @file
 * Ablation A — result-injection style (paper Section 4.1.3): the
 * primary port-stealing scheme (injected results complete at rename
 * and bypass the issue queue) versus the "more straightforward
 * alternative" that dispatches injected instructions into the issue
 * queue marked immediately ready.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runAblation()
{
    printBenchPreamble("Ablation A: injection style");
    Runner &runner = benchRunner();

    TextTable t("Ablation A: contested IPT with port-stealing vs "
                "mark-ready injection");
    t.header({"bench", "pair", "port-steal", "mark-ready", "delta"});

    std::vector<double> deltas;
    for (const auto &bench : profileNames()) {
        auto choice = runner.bestContestingPair(bench, {}, 3);

        ContestConfig mark;
        mark.injectionStyle = InjectionStyle::MarkReady;
        auto mr = runner.contestedPair(bench, choice.coreA,
                                       choice.coreB, mark);
        double delta = speedup(choice.result.ipt, mr.ipt);
        deltas.push_back(delta);
        t.row({bench, choice.coreA + "+" + choice.coreB,
               TextTable::num(choice.result.ipt),
               TextTable::num(mr.ipt), TextTable::pct(delta)});
    }
    t.print();
    std::printf(
        "Port stealing over mark-ready: avg %s. Injected results "
        "that bypass the issue queue free issue slots and queue "
        "capacity for the lagger's catch-up sprint.\n\n",
        TextTable::pct(arithmeticMean(deltas)).c_str());
    std::fflush(stdout);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runAblation)
