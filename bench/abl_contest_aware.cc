/**
 * @file
 * Ablation G — customizing cores *for contesting* (paper Section
 * 7.2). Application-customized cores are not necessarily the best
 * contesting partners; the true potential appears when the partner
 * is explored with contesting in the objective. For a few
 * benchmarks, a partner core is annealed to maximize the contested
 * IPT alongside the benchmark's own customized core, and compared
 * with the best palette pair.
 */

#include "bench/bench_common.hh"

#include <algorithm>

#include "explore/annealer.hh"

namespace contest
{
namespace
{

void
runAblation(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;

    // Contest-aware exploration simulates a contested pair per
    // objective evaluation, so use shorter traces and a small
    // annealing budget (the paper's Section 7.2 notes exactly this
    // cost explosion).
    std::uint64_t explore_len =
        std::min<std::uint64_t>(runner.traceLen(), 60'000);
    std::uint64_t steps = benchFastMode() ? 15 : 40;
    std::vector<std::string> benches{"gcc", "twolf", "bzip"};

    auto &t = art.table("Ablation G: best palette pair vs a partner "
                        "core annealed with contesting in the "
                        "objective");
    t.columns = {"bench", "own core", "best palette pair",
                 "annealed partner", "evals"};

    for (const auto &bench : benches) {
        auto trace = runner.trace(bench, explore_len);
        const auto &own = coreConfigByName(bench);
        double own_ipt = runSingle(own, trace).ipt;

        // Best palette partner for the own core, contested. Routed
        // through the runner so the short-trace contests memoize and
        // persist like every other contested run.
        double best_pair = 0.0;
        std::string best_partner;
        for (const auto &cand : appendixAPalette()) {
            if (cand.name == bench)
                continue;
            double ipt =
                runner.contested(bench, {own, cand}, ContestConfig{},
                                 explore_len)
                    .ipt;
            if (ipt > best_pair) {
                best_pair = ipt;
                best_partner = cand.name;
            }
        }

        // Anneal a partner with the contested IPT as objective.
        auto objective = [&](const CoreConfig &partner) {
            return runner
                .contested(bench, {own, partner}, ContestConfig{},
                           explore_len)
                .ipt;
        };
        AnnealConfig ac;
        ac.steps = StepCount{steps};
        ac.seed = 13;
        // Fixed speculative batch depth: the annealing trajectory
        // depends on (seed, batch), so sizing it to the pool would
        // make the walk — and the golden artifact — vary with
        // --jobs. A serial pool just evaluates the batch in order.
        ac.batch = 4;
        CoreConfig start = own;
        start.name = bench + "-partner";
        auto annealed = annealCoreConfig(objective, start, ac);

        t.row({cellText(bench), cellNum(own_ipt),
               cellCustom(best_pair,
                          TextTable::num(best_pair) + " (+"
                              + best_partner + ")"),
               cellNum(annealed.bestScore),
               cellCount(annealed.evaluations)});
    }

    art.note("An explored partner can match or beat the best "
             "application-customized partner, at the cost of "
             "contested simulation inside the exploration loop — "
             "the tradeoff Section 7.2 describes.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("abl_contest_aware",
                    "Ablation G: contest-aware core exploration",
                    runAblation);

} // namespace
} // namespace contest
