/**
 * @file
 * Figure 10 — contesting on the HET-A design (two core types chosen
 * by the avg-IPT figure of merit): each benchmark on HOM, on the
 * best HET-A core without contesting, and contested between the two
 * HET-A core types.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig10()
{
    printBenchPreamble("Figure 10: contesting on HET-A");
    Runner &runner = benchRunner();
    const auto &m = runner.matrix();
    auto het_a = designCmp(m, 2, Merit::Avg, "HET-A");
    auto hom = designHom(m, Merit::Avg, "HOM");
    auto exp = runHetExperiment(runner, het_a, hom);
    printHetExperiment(exp, m, "Figure 10");
    std::printf(
        "Paper: HET-A contesting averages +16%% over not "
        "contesting, max +41%% (gcc); benchmarks that lost "
        "performance to the constrained design are more than "
        "compensated.\n\n");
    std::fflush(stdout);
}

} // namespace
} // namespace contest

CONTEST_BENCH_MAIN(contest::runFig10)
