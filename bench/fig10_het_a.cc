/**
 * @file
 * Figure 10 — contesting on the HET-A design (two core types chosen
 * by the avg-IPT figure of merit): each benchmark on HOM, on the
 * best HET-A core without contesting, and contested between the two
 * HET-A core types.
 */

#include "bench/bench_common.hh"

namespace contest
{
namespace
{

void
runFig10(ExperimentContext &ctx)
{
    FigureArtifact art = ctx.artifact();
    Runner &runner = ctx.runner;
    const auto &m = runner.matrix();
    auto het_a = designCmp(m, 2, Merit::Avg, "HET-A");
    auto hom = designHom(m, Merit::Avg, "HOM");
    auto exp = runHetExperiment(runner, het_a, hom);
    hetArtifact(art, exp, m, "Figure 10");
    art.note("Paper: HET-A contesting averages +16% over not "
             "contesting, max +41% (gcc); benchmarks that lost "
             "performance to the constrained design are more than "
             "compensated.");
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("fig10", "Figure 10: contesting on HET-A",
                    runFig10);

} // namespace
} // namespace contest
