/**
 * @file
 * Unit tests for the experiment registry and the suite-sharing
 * property it enables: experiments running back-to-back in one
 * process reuse the Runner's memoized single-core results, so the
 * second experiment performs zero new simulations.
 */

#include <gtest/gtest.h>

#include "harness/artifact.hh"
#include "harness/registry.hh"
#include "harness/runner.hh"

namespace contest
{
namespace
{

int firstRuns = 0;
int secondRuns = 0;

void
firstExperiment(ExperimentContext &ctx)
{
    ++firstRuns;
    FigureArtifact art = ctx.artifact();
    art.scalar("gcc_ipt",
               ctx.runner.single("gcc", "gcc").result.ipt);
    ctx.sink.emit(art);
}

void
secondExperiment(ExperimentContext &ctx)
{
    ++secondRuns;
    FigureArtifact art = ctx.artifact();
    // Same (bench, core) cells as the first experiment, plus one of
    // its own.
    art.scalar("gcc_ipt",
               ctx.runner.single("gcc", "gcc").result.ipt);
    art.scalar("vpr_ipt",
               ctx.runner.single("vpr", "gcc").result.ipt);
    ctx.sink.emit(art);
}

REGISTER_EXPERIMENT("zz_test_first", "Registry test A",
                    firstExperiment);
REGISTER_EXPERIMENT("zz_test_second", "Registry test B",
                    secondExperiment);

TEST(Registry, FindsRegisteredExperiments)
{
    auto &reg = ExperimentRegistry::instance();
    const ExperimentInfo *a = reg.find("zz_test_first");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->title, "Registry test A");
    EXPECT_EQ(a->fn, &firstExperiment);
    EXPECT_EQ(reg.find("no_such_experiment"), nullptr);
}

TEST(Registry, ListsAllSortedByName)
{
    auto &reg = ExperimentRegistry::instance();
    auto all = reg.all();
    ASSERT_EQ(all.size(), reg.size());
    ASSERT_GE(all.size(), 2u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);
}

TEST(Registry, RejectsDuplicateNames)
{
    EXPECT_EXIT(ExperimentRegistry::instance().add(
                    {"zz_test_first", "clone", firstExperiment}),
                ::testing::ExitedWithCode(1), "zz_test_first");
}

TEST(Registry, RejectsUnnamedOrNullExperiments)
{
    EXPECT_EXIT(ExperimentRegistry::instance().add(
                    {"", "anonymous", firstExperiment}),
                ::testing::ExitedWithCode(1),
                "needs a name and a function");
    EXPECT_EXIT(ExperimentRegistry::instance().add(
                    {"zz_test_null", "null fn", nullptr}),
                ::testing::ExitedWithCode(1),
                "needs a name and a function");
}

TEST(Registry, SecondExperimentReusesRunnerCache)
{
    // One process, one Runner, two experiments: the suite driver's
    // whole reason to exist. The second experiment re-requests the
    // first one's (bench, core) cell, which must be a pure cache hit.
    Runner runner(4000, 9);
    ArtifactSink sink("", /*echo=*/false);
    auto &reg = ExperimentRegistry::instance();

    const ExperimentInfo *first = reg.find("zz_test_first");
    const ExperimentInfo *second = reg.find("zz_test_second");
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);

    ExperimentContext ctx1{runner, sink, *first};
    first->fn(ctx1);
    std::uint64_t after_first = runner.simulationsPerformed();
    EXPECT_EQ(after_first, 1u);

    ExperimentContext ctx2{runner, sink, *second};
    second->fn(ctx2);
    // Only the genuinely new (vpr, gcc) cell simulates; the shared
    // gcc cell costs zero new single-core simulations.
    EXPECT_EQ(runner.simulationsPerformed(), after_first + 1);

    EXPECT_EQ(firstRuns, 1);
    EXPECT_EQ(secondRuns, 1);
    ASSERT_EQ(sink.emitted().size(), 2u);
    EXPECT_EQ(sink.emitted()[0].name, "zz_test_first");
    EXPECT_EQ(sink.emitted()[1].name, "zz_test_second");
    // Both experiments measured the identical memoized result.
    EXPECT_EQ(sink.emitted()[0].scalars[0].second,
              sink.emitted()[1].scalars[0].second);
}

} // namespace
} // namespace contest
