/**
 * @file
 * Tests of the contest service: the length-prefixed frame codec
 * (partial reads, pipelined frames, oversized-prefix poisoning),
 * request parsing and validation (every malformed shape must come
 * back as a structured error, never a panic), and the live server —
 * including the concurrency contract (two identical concurrent
 * requests simulate exactly once) and graceful-drain semantics
 * (in-flight work completes, new work is refused, the shutdown ack
 * arrives after the drain).
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "serve/client.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace contest
{
namespace
{

std::string
uniqueSocketPath(const char *tag)
{
    return "/tmp/contest_test_" + std::string(tag) + "_"
           + std::to_string(getpid()) + ".sock";
}

/** A quiet server on a fresh Unix socket with a tiny trace. */
ServeOptions
testOptions(const char *tag, unsigned jobs)
{
    ServeOptions opts;
    opts.target.unixPath = uniqueSocketPath(tag);
    opts.jobs = jobs;
    opts.traceLen = 4000;
    opts.seed = 99;
    opts.quiet = true;
    return opts;
}

JsonValue
request(const char *kind, double id)
{
    JsonValue req = JsonValue::object();
    req.set("kind", JsonValue::str(kind));
    req.set("id", JsonValue::number(id));
    return req;
}

JsonValue
singleRequest(const char *bench, const char *core, double id)
{
    JsonValue req = request("single", id);
    req.set("bench", JsonValue::str(bench));
    req.set("core", JsonValue::str(core));
    return req;
}

bool
okFlag(const JsonValue &resp)
{
    const JsonValue *ok = resp.find("ok");
    return ok != nullptr && ok->isBool() && ok->asBool();
}

std::string
errorText(const JsonValue &resp)
{
    const JsonValue *err = resp.find("error");
    return err != nullptr && err->isString() ? err->asString() : "";
}

TEST(ServeFrame, RoundTripsThroughArbitraryChunking)
{
    const std::vector<std::string> payloads = {
        "", "x", R"({"kind":"ping"})", std::string(100000, 'z')};
    std::string wire;
    for (const std::string &p : payloads)
        wire += encodeFrame(p);

    // Feed the whole stream one byte at a time: every frame must
    // come out intact regardless of read-chunk boundaries.
    FrameDecoder decoder;
    std::vector<std::string> out;
    std::string payload;
    for (char c : wire) {
        decoder.feed(&c, 1);
        while (decoder.next(payload) == FrameDecoder::Status::Frame)
            out.push_back(payload);
    }
    EXPECT_EQ(out, payloads);
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ServeFrame, YieldsAllPipelinedFramesFromOneFeed)
{
    std::string wire =
        encodeFrame("first") + encodeFrame("second")
        + encodeFrame("third");
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    std::string payload;
    ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::Frame);
    EXPECT_EQ(payload, "first");
    ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::Frame);
    EXPECT_EQ(payload, "second");
    ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::Frame);
    EXPECT_EQ(payload, "third");
    EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::NeedMore);
}

TEST(ServeFrame, OversizedLengthPrefixPoisonsTheStream)
{
    // 0xFFFFFFFF declared bytes: far above the payload cap, and a
    // length that could never be resynchronized.
    const char huge[4] = {'\xFF', '\xFF', '\xFF', '\xFF'};
    FrameDecoder decoder;
    decoder.feed(huge, 4);
    std::string payload;
    EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::Oversized);

    // Poisoning is sticky: even a subsequent valid frame must not
    // be trusted, because the stream position is garbage.
    const std::string valid = encodeFrame("after");
    decoder.feed(valid.data(), valid.size());
    EXPECT_EQ(decoder.next(payload), FrameDecoder::Status::Oversized);
}

TEST(ServeFrame, AcceptsPayloadExactlyAtTheCapBoundary)
{
    // A prefix of exactly kMaxFramePayload is legal; one byte more
    // poisons. Only headers are fed (the bodies would be 8 MiB).
    const std::uint32_t cap = kMaxFramePayload;
    const char at[4] = {static_cast<char>(cap >> 24),
                        static_cast<char>(cap >> 16),
                        static_cast<char>(cap >> 8),
                        static_cast<char>(cap)};
    FrameDecoder ok;
    ok.feed(at, 4);
    std::string payload;
    EXPECT_EQ(ok.next(payload), FrameDecoder::Status::NeedMore);

    const std::uint32_t over = cap + 1;
    const char above[4] = {static_cast<char>(over >> 24),
                           static_cast<char>(over >> 16),
                           static_cast<char>(over >> 8),
                           static_cast<char>(over)};
    FrameDecoder bad;
    bad.feed(above, 4);
    EXPECT_EQ(bad.next(payload), FrameDecoder::Status::Oversized);
}

TEST(ServeProtocol, RejectsEveryMalformedShapeWithAnError)
{
    struct Case
    {
        const char *json;
        const char *needle; //!< must appear in the error
    };
    const std::vector<Case> cases = {
        {R"([1,2,3])", "object"},
        {R"({})", "kind"},
        {R"({"kind":42})", "kind"},
        {R"({"kind":"launch_missiles"})", "unknown request kind"},
        {R"({"kind":"single","bench":7,"core":"gcc"})", "bench"},
        {R"({"kind":"single","bench":"nosuch","core":"gcc"})",
         "unknown benchmark"},
        {R"({"kind":"single","bench":"gcc","core":"nosuch"})",
         "unknown core type"},
        {R"({"kind":"contest","bench":"gcc","cores":"gcc"})",
         "array"},
        {R"({"kind":"contest","bench":"gcc","cores":["gcc"]})",
         "between 2 and"},
        {R"({"kind":"contest","bench":"gcc","cores":[1,2]})",
         "name string"},
        {R"({"kind":"contest","bench":"gcc","cores":["gcc","bad"]})",
         "unknown core type"},
        {R"({"kind":"contest","bench":"gcc","cores":["gcc","twolf"],
             "trace_len":-5})",
         "non-negative"},
        {R"({"kind":"contest","bench":"gcc","cores":["gcc","twolf"],
             "trace_len":1.5})",
         "non-negative"},
        {R"({"kind":"contest","bench":"gcc","cores":["gcc","twolf"],
             "trace_len":999999999})",
         "per-request limit"},
        {R"({"kind":"sleep","ms":99999})", "sleep limit"},
    };
    for (const Case &c : cases) {
        std::string parseError;
        JsonValue doc = JsonValue::parse(c.json, &parseError);
        ASSERT_TRUE(parseError.empty()) << c.json;
        ServeRequest req;
        std::string error;
        EXPECT_FALSE(parseServeRequest(doc, req, error)) << c.json;
        EXPECT_NE(error.find(c.needle), std::string::npos)
            << c.json << " -> " << error;
    }
}

TEST(ServeProtocol, ParsesValidRequestsAndEchoesIds)
{
    std::string parseError;
    JsonValue doc = JsonValue::parse(
        R"({"kind":"contest","id":"req-7","bench":"gcc",
            "cores":["twolf","gcc"],"trace_len":1000})",
        &parseError);
    ASSERT_TRUE(parseError.empty());
    ServeRequest req;
    std::string error;
    ASSERT_TRUE(parseServeRequest(doc, req, error)) << error;
    EXPECT_EQ(req.kind, ServeRequest::Kind::Contest);
    EXPECT_EQ(req.bench, "gcc");
    ASSERT_EQ(req.cores.size(), 2u);
    EXPECT_EQ(req.cores[0], "twolf");
    EXPECT_EQ(req.cores[1], "gcc");
    EXPECT_EQ(req.traceLenOverride, 1000u);
    ASSERT_TRUE(req.id.isString());
    EXPECT_EQ(req.id.asString(), "req-7");

    JsonValue resp = serveOkResponse(req);
    EXPECT_EQ(resp.at("id").asString(), "req-7");
    EXPECT_TRUE(resp.at("ok").asBool());
    EXPECT_EQ(resp.at("kind").asString(), "contest");
}

TEST(ServeServer, AnswersPingStatsAndDrainsOnShutdown)
{
    ContestServer server(testOptions("basic", 2));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServeClient client;
    ASSERT_TRUE(client.connect(server.target(), &error)) << error;

    JsonValue resp;
    ASSERT_TRUE(client.call(request("ping", 1), resp, &error))
        << error;
    EXPECT_TRUE(okFlag(resp));
    EXPECT_EQ(resp.at("id").asNumber(), 1.0);

    ASSERT_TRUE(client.call(request("stats", 2), resp, &error))
        << error;
    ASSERT_TRUE(okFlag(resp));
    const JsonValue *stats = resp.find("server");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->at("jobs").asNumber(), 2.0);
    EXPECT_FALSE(stats->at("draining").asBool());

    ASSERT_TRUE(client.call(request("shutdown", 3), resp, &error))
        << error;
    EXPECT_TRUE(okFlag(resp));
    EXPECT_TRUE(resp.at("drained").asBool());
    server.waitUntilStopped();
    ::unlink(server.target().unixPath.c_str());
}

TEST(ServeServer, RunsSinglesAndMarksRepeatsWarm)
{
    ContestServer server(testOptions("warm", 2));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServeClient client;
    ASSERT_TRUE(client.connect(server.target(), &error)) << error;

    JsonValue resp;
    ASSERT_TRUE(client.call(singleRequest("gcc", "twolf", 1), resp,
                            &error))
        << error;
    ASSERT_TRUE(okFlag(resp)) << errorText(resp);
    EXPECT_GT(resp.at("time_ps").asNumber(), 0.0);
    EXPECT_GT(resp.at("ipt").asNumber(), 0.0);
    EXPECT_FALSE(resp.at("timing").at("warm").asBool());
    const double coldPs = resp.at("time_ps").asNumber();

    ASSERT_TRUE(client.call(singleRequest("gcc", "twolf", 2), resp,
                            &error))
        << error;
    ASSERT_TRUE(okFlag(resp)) << errorText(resp);
    EXPECT_TRUE(resp.at("timing").at("warm").asBool());
    EXPECT_EQ(resp.at("time_ps").asNumber(), coldPs);
    EXPECT_EQ(server.runner().simulationsPerformed(), 1u);

    server.requestShutdown();
    server.waitUntilStopped();
    ::unlink(server.target().unixPath.c_str());
}

TEST(ServeServer, ConcurrentIdenticalRequestsSimulateExactlyOnce)
{
    ContestServer server(testOptions("dedup", 4));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Two independent connections fire the identical request at the
    // same moment. The Runner's per-key once-latch must serialize
    // them onto one simulation; both clients still get full results.
    const unsigned kClients = 2;
    std::vector<bool> got(kClients, false);
    std::vector<double> timePs(kClients, 0.0);
    {
        std::vector<std::thread> threads;
        for (unsigned i = 0; i < kClients; ++i)
            threads.emplace_back([&, i] {
                ServeClient c;
                std::string threadError;
                if (!c.connect(server.target(), &threadError))
                    return;
                JsonValue resp;
                if (!c.call(singleRequest("twolf", "crafty", i),
                            resp, &threadError))
                    return;
                if (okFlag(resp)) {
                    got[i] = true;
                    timePs[i] = resp.at("time_ps").asNumber();
                }
            });
        for (std::thread &t : threads)
            t.join();
    }
    for (unsigned i = 0; i < kClients; ++i) {
        EXPECT_TRUE(got[i]) << "client " << i;
        EXPECT_EQ(timePs[i], timePs[0]);
    }
    EXPECT_EQ(server.runner().simulationsPerformed(), 1u);

    server.requestShutdown();
    server.waitUntilStopped();
    ::unlink(server.target().unixPath.c_str());
}

TEST(ServeServer, MalformedInputGetsStructuredErrorsNotDisconnects)
{
    ContestServer server(testOptions("malformed", 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServeClient client;
    ASSERT_TRUE(client.connect(server.target(), &error)) << error;

    // Raw garbage that frames correctly but is not JSON.
    ASSERT_TRUE(sendAll(client.rawFd(),
                        encodeFrame("this is not json {")));
    JsonValue resp;
    ASSERT_TRUE(client.recv(resp, &error)) << error;
    EXPECT_FALSE(okFlag(resp));
    EXPECT_NE(errorText(resp).find("invalid JSON"),
              std::string::npos);

    // A parseable document with an unknown benchmark.
    ASSERT_TRUE(client.call(singleRequest("nosuch", "gcc", 5), resp,
                            &error))
        << error;
    EXPECT_FALSE(okFlag(resp));
    EXPECT_NE(errorText(resp).find("unknown benchmark"),
              std::string::npos);

    // Over-deep nesting exercises the parser's depth bound through
    // the full network path.
    std::string deep(200, '[');
    ASSERT_TRUE(sendAll(client.rawFd(), encodeFrame(deep)));
    ASSERT_TRUE(client.recv(resp, &error)) << error;
    EXPECT_FALSE(okFlag(resp));

    // The connection survived all of it.
    ASSERT_TRUE(client.call(request("ping", 6), resp, &error))
        << error;
    EXPECT_TRUE(okFlag(resp));

    server.requestShutdown();
    server.waitUntilStopped();
    ::unlink(server.target().unixPath.c_str());
}

TEST(ServeServer, OversizedFrameGetsAnErrorThenTheConnectionCloses)
{
    ContestServer server(testOptions("oversized", 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServeClient client;
    ASSERT_TRUE(client.connect(server.target(), &error)) << error;

    // A hostile length prefix claiming ~4 GiB.
    const char huge[4] = {'\xFF', '\xFF', '\xFF', '\xFE'};
    ASSERT_TRUE(sendAll(client.rawFd(), std::string(huge, 4)));

    JsonValue resp;
    ASSERT_TRUE(client.recv(resp, &error)) << error;
    EXPECT_FALSE(okFlag(resp));
    EXPECT_NE(errorText(resp).find("oversized"), std::string::npos);

    // The stream cannot be resynchronized, so the server closes it.
    EXPECT_FALSE(client.recv(resp, &error));

    server.requestShutdown();
    server.waitUntilStopped();
    ::unlink(server.target().unixPath.c_str());
}

TEST(ServeServer, HandlesPartialWritesAndPipelinedRequests)
{
    ContestServer server(testOptions("pipeline", 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServeClient client;
    ASSERT_TRUE(client.connect(server.target(), &error)) << error;

    // Two requests in one buffer, delivered in deliberately awkward
    // chunks (split mid-length-prefix and mid-payload).
    const std::string wire = encodeFrame(request("ping", 1).dump(0))
                             + encodeFrame(
                                 request("stats", 2).dump(0));
    const std::size_t cuts[] = {2, 9, wire.size()};
    std::size_t from = 0;
    for (std::size_t cut : cuts) {
        ASSERT_TRUE(
            sendAll(client.rawFd(), wire.substr(from, cut - from)));
        from = cut;
    }

    JsonValue resp;
    ASSERT_TRUE(client.recv(resp, &error)) << error;
    EXPECT_TRUE(okFlag(resp));
    EXPECT_EQ(resp.at("id").asNumber(), 1.0);
    EXPECT_EQ(resp.at("kind").asString(), "ping");
    ASSERT_TRUE(client.recv(resp, &error)) << error;
    EXPECT_TRUE(okFlag(resp));
    EXPECT_EQ(resp.at("id").asNumber(), 2.0);
    EXPECT_EQ(resp.at("kind").asString(), "stats");

    server.requestShutdown();
    server.waitUntilStopped();
    ::unlink(server.target().unixPath.c_str());
}

TEST(ServeServer, DrainCompletesInFlightWorkAndRefusesNewWork)
{
    ContestServer server(testOptions("drain", 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Client A parks a worker in a long sleep.
    ServeClient a;
    ASSERT_TRUE(a.connect(server.target(), &error)) << error;
    JsonValue sleepReq = request("sleep", 100);
    sleepReq.set("ms", JsonValue::number(500));
    ASSERT_TRUE(a.send(sleepReq, &error)) << error;

    // Client B waits until the sleep is in flight, then asks for
    // shutdown and immediately tries to queue more work.
    ServeClient b;
    ASSERT_TRUE(b.connect(server.target(), &error)) << error;
    JsonValue resp;
    for (int tries = 0; tries < 200; ++tries) {
        ASSERT_TRUE(b.call(request("stats", 200), resp, &error))
            << error;
        if (resp.at("server").at("in_flight").asNumber() >= 1.0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(resp.at("server").at("in_flight").asNumber(), 1.0);

    ASSERT_TRUE(b.send(request("shutdown", 201), &error)) << error;
    JsonValue refusedReq = request("sleep", 202);
    refusedReq.set("ms", JsonValue::number(1));
    ASSERT_TRUE(b.send(refusedReq, &error)) << error;

    // B's refusal arrives before the shutdown ack: the ack waits
    // for the drain, the refusal does not.
    ASSERT_TRUE(b.recv(resp, &error)) << error;
    EXPECT_EQ(resp.at("id").asNumber(), 202.0);
    EXPECT_FALSE(okFlag(resp));
    EXPECT_NE(errorText(resp).find("draining"), std::string::npos);

    // A's in-flight sleep still completes successfully.
    ASSERT_TRUE(a.recv(resp, &error)) << error;
    EXPECT_EQ(resp.at("id").asNumber(), 100.0);
    EXPECT_TRUE(okFlag(resp));

    // And only then does the shutdown ack land.
    ASSERT_TRUE(b.recv(resp, &error)) << error;
    EXPECT_EQ(resp.at("id").asNumber(), 201.0);
    EXPECT_TRUE(okFlag(resp));
    EXPECT_TRUE(resp.at("drained").asBool());

    server.waitUntilStopped();

    // New connections are refused once the drain has begun.
    ServeClient late;
    EXPECT_FALSE(late.connect(server.target(), &error));
    ::unlink(server.target().unixPath.c_str());
}

} // namespace
} // namespace contest
