/**
 * @file
 * Unit tests for the experiment harness: region logs, oracle
 * granularity fusion, the caching runner, and best-pair search.
 */

#include <gtest/gtest.h>

#include "core/palette.hh"
#include "harness/runner.hh"

namespace contest
{
namespace
{

TEST(RegionLog, ClosesEveryTwentyInstructions)
{
    RegionLog log;
    TimePs now{};
    for (InstSeq seq{}; seq < 100; ++seq) {
        now += 10;
        log.onRetire(seq, now);
    }
    EXPECT_EQ(log.size(), 5u);
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(log[i], 200u); // 20 retirements x 10 ps
    EXPECT_EQ(log.total(), 1000u);
}

TEST(Fusion, PicksTheFasterSeriesPerBlock)
{
    // Config A is fast in even regions, B in odd regions.
    std::vector<TimePs> a{TimePs{10}, TimePs{100}, TimePs{10}, TimePs{100}};
    std::vector<TimePs> b{TimePs{100}, TimePs{10}, TimePs{100}, TimePs{10}};
    // Granularity 1 region: oracle gets 10 everywhere.
    EXPECT_EQ(fuseRegionTimes(a, b, 1), 40u);
    // Granularity 2 regions: each block is 110 on both.
    EXPECT_EQ(fuseRegionTimes(a, b, 2), 220u);
    // Whole-run granularity: min(220, 220).
    EXPECT_EQ(fuseRegionTimes(a, b, 4), 220u);
}

TEST(Fusion, HandlesUnequalLengths)
{
    std::vector<TimePs> a{TimePs{10}, TimePs{10}, TimePs{10}};
    std::vector<TimePs> b{TimePs{5}, TimePs{5}};
    EXPECT_EQ(fuseRegionTimes(a, b, 1), 10u);
}

TEST(Runner, CachesSingleRuns)
{
    Runner runner(8000, 1);
    const auto &first = runner.single("vpr", "vpr");
    const auto &again = runner.single("vpr", "vpr");
    EXPECT_EQ(&first, &again);
    EXPECT_GT(first.result.ipt, 0.0);
    EXPECT_EQ(first.regions->size(), 8000u / RegionLog::regionInsts);
}

TEST(Runner, TraceIsSharedAcrossRuns)
{
    Runner runner(5000, 2);
    auto t1 = runner.trace("gcc");
    auto t2 = runner.trace("gcc");
    EXPECT_EQ(t1.get(), t2.get());
    EXPECT_EQ(t1->size(), 5000u);
}

TEST(Runner, MatrixCoversAllBenchmarksAndCores)
{
    Runner runner(4000, 3);
    const auto &m = runner.matrix();
    EXPECT_EQ(m.numBenches(), 11u);
    EXPECT_EQ(m.numCores(), 11u);
    m.validate();
    // Cached: same object on re-query.
    EXPECT_EQ(&m, &runner.matrix());
}

TEST(Runner, RegionLogTotalsMatchRunTime)
{
    Runner runner(8000, 4);
    const auto &run = runner.single("twolf", "twolf");
    // The region log accounts for every closed region; its total
    // cannot exceed the run time and must cover most of it.
    EXPECT_LE(run.regions->total(), run.result.timePs);
    EXPECT_GT(run.regions->total(), run.result.timePs / 2);
}

TEST(Runner, ContestedPairRuns)
{
    Runner runner(8000, 5);
    auto r = runner.contestedPair("gcc", "twolf", "gzip");
    EXPECT_GT(r.ipt, 0.0);
    EXPECT_EQ(r.coreStats.size(), 2u);
}

TEST(Runner, MatrixIsIdenticalForAnyJobCount)
{
    // The harness promises bit-identical results regardless of
    // concurrency: every matrix cell from a four-thread run must
    // compare exactly equal (not merely close) to the serial run.
    ThreadPool serial_pool(1);
    ThreadPool parallel_pool(4);
    Runner serial(4000, 3, &serial_pool);
    Runner parallel(4000, 3, &parallel_pool);
    const auto &ms = serial.matrix();
    const auto &mp = parallel.matrix();
    ASSERT_EQ(ms.numBenches(), mp.numBenches());
    ASSERT_EQ(ms.numCores(), mp.numCores());
    EXPECT_EQ(ms.benchNames, mp.benchNames);
    EXPECT_EQ(ms.coreNames, mp.coreNames);
    for (std::size_t b = 0; b < ms.numBenches(); ++b)
        for (std::size_t c = 0; c < ms.numCores(); ++c)
            EXPECT_EQ(ms.ipt[b][c], mp.ipt[b][c])
                << ms.benchNames[b] << " on " << ms.coreNames[c];
}

TEST(Runner, BestContestingPairIsIdenticalForAnyJobCount)
{
    ThreadPool serial_pool(1);
    ThreadPool parallel_pool(4);
    Runner serial(8000, 6, &serial_pool);
    Runner parallel(8000, 6, &parallel_pool);
    auto cs = serial.bestContestingPair("gcc", {}, 3);
    auto cp = parallel.bestContestingPair("gcc", {}, 3);
    EXPECT_EQ(cs.coreA, cp.coreA);
    EXPECT_EQ(cs.coreB, cp.coreB);
    EXPECT_EQ(cs.result.ipt, cp.result.ipt);
}

TEST(Runner, BestContestingPairBeatsOwnCore)
{
    Runner runner(20000, 6);
    auto choice = runner.bestContestingPair("gcc", {}, 3);
    EXPECT_FALSE(choice.coreA.empty());
    EXPECT_FALSE(choice.coreB.empty());
    EXPECT_NE(choice.coreA, choice.coreB);
    double own = runner.single("gcc", "gcc").result.ipt;
    // Contesting the best pair must at least match the benchmark's
    // own customized core (the paper's Figure 6 baseline).
    EXPECT_GT(choice.result.ipt, own * 0.98);
}

} // namespace
} // namespace contest
