/**
 * @file
 * Unit tests for the artifact pipeline: cell helpers, JSON
 * round-trips, the tolerance-based golden diff, and the sink.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "harness/artifact.hh"

namespace contest
{
namespace
{

FigureArtifact
sampleArtifact()
{
    FigureArtifact art("fig99", "Figure 99: a sample");
    art.meta.traceLen = 1000;
    art.meta.seed = 7;
    art.meta.jobs = 4;
    art.meta.fast = true;
    art.meta.git = "abc123";
    auto &t = art.table("speeds");
    t.columns = {"bench", "ipt", "speedup"};
    t.row({cellText("gcc"), cellNum(1.2345), cellPct(0.153)});
    t.row({cellText("vpr \"quoted\"\n"), cellNum(0.5), cellPct(-0.02)});
    art.scalar("avg_speedup", 0.0665);
    art.note("free-text commentary, 1.23 s wall clock");
    return art;
}

TEST(ArtifactCells, CarryTextAndValue)
{
    EXPECT_EQ(cellText("gcc").text, "gcc");
    EXPECT_FALSE(cellText("gcc").numeric);
    auto n = cellNum(1.2345);
    EXPECT_TRUE(n.numeric);
    EXPECT_DOUBLE_EQ(n.value, 1.2345);
    EXPECT_EQ(n.text, "1.23");
    auto p = cellPct(0.153);
    EXPECT_DOUBLE_EQ(p.value, 0.153);
    EXPECT_EQ(p.text, "+15.3%");
    auto c = cellCount(42);
    EXPECT_DOUBLE_EQ(c.value, 42.0);
    EXPECT_EQ(c.text, "42");
    auto x = cellCustom(1.5, "1.50x");
    EXPECT_DOUBLE_EQ(x.value, 1.5);
    EXPECT_EQ(x.text, "1.50x");
}

TEST(ArtifactJson, RoundTripsExactly)
{
    FigureArtifact art = sampleArtifact();
    std::string dumped = art.toJson().dump();

    std::string parse_error;
    JsonValue v = JsonValue::parse(dumped, &parse_error);
    EXPECT_TRUE(parse_error.empty()) << parse_error;

    std::string from_error;
    FigureArtifact back = FigureArtifact::fromJson(v, &from_error);
    EXPECT_TRUE(from_error.empty()) << from_error;

    EXPECT_EQ(back.name, art.name);
    EXPECT_EQ(back.title, art.title);
    EXPECT_EQ(back.meta.traceLen, art.meta.traceLen);
    EXPECT_EQ(back.meta.seed, art.meta.seed);
    EXPECT_EQ(back.meta.jobs, art.meta.jobs);
    EXPECT_EQ(back.meta.fast, art.meta.fast);
    EXPECT_EQ(back.meta.git, art.meta.git);
    ASSERT_EQ(back.tables.size(), 1u);
    EXPECT_EQ(back.tables[0].columns, art.tables[0].columns);
    ASSERT_EQ(back.tables[0].rows.size(), 2u);
    // The escaped-quote/newline label survives the round trip.
    EXPECT_EQ(back.tables[0].rows[1][0].text, "vpr \"quoted\"\n");
    // Numeric payloads are bit-identical (shortest round-trip
    // serialization), so a zero-tolerance diff sees no change.
    EXPECT_EQ(back.tables[0].rows[0][1].value,
              art.tables[0].rows[0][1].value);
    EXPECT_EQ(back.scalars, art.scalars);
    EXPECT_EQ(back.notes, art.notes);
    EXPECT_TRUE(diffArtifacts(art, back, {0.0, 0.0}).empty());
}

TEST(ArtifactJson, FromJsonRejectsNonObject)
{
    std::string error;
    FigureArtifact art =
        FigureArtifact::fromJson(JsonValue::number(3.0), &error);
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(art.name.empty());
}

TEST(ArtifactDiff, FlagsOffToleranceScalar)
{
    FigureArtifact golden = sampleArtifact();
    FigureArtifact cand = sampleArtifact();
    cand.scalars[0].second *= 1.01; // 1% off, rtol is 1e-6
    auto diffs = diffArtifacts(golden, cand);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_NE(diffs[0].find("avg_speedup"), std::string::npos);
    // A loose tolerance accepts the same change.
    EXPECT_TRUE(diffArtifacts(golden, cand, {0.05, 0.0}).empty());
}

TEST(ArtifactDiff, FlagsCellAndShapeChanges)
{
    FigureArtifact golden = sampleArtifact();

    FigureArtifact cell = sampleArtifact();
    cell.tables[0].rows[0][1].value += 0.5;
    EXPECT_FALSE(diffArtifacts(golden, cell).empty());

    FigureArtifact label = sampleArtifact();
    label.tables[0].rows[0][0].text = "gzip";
    EXPECT_FALSE(diffArtifacts(golden, label).empty());

    FigureArtifact shape = sampleArtifact();
    shape.tables[0].rows.pop_back();
    EXPECT_FALSE(diffArtifacts(golden, shape).empty());

    FigureArtifact meta = sampleArtifact();
    meta.meta.traceLen = 999;
    EXPECT_FALSE(diffArtifacts(golden, meta).empty());
}

TEST(ArtifactDiff, IgnoresInformationalFields)
{
    FigureArtifact golden = sampleArtifact();
    FigureArtifact cand = sampleArtifact();
    cand.meta.jobs = 16;
    cand.meta.git = "fff999-dirty";
    cand.notes[0] = "different wall clock text";
    EXPECT_TRUE(diffArtifacts(golden, cand).empty());
}

TEST(ArtifactDiff, NonFiniteValuesFailHard)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // An infinite golden would otherwise make rtol * |golden|
    // infinite and accept every finite candidate.
    FigureArtifact golden = sampleArtifact();
    FigureArtifact cand = sampleArtifact();
    golden.scalars[0].second = inf;
    EXPECT_FALSE(diffArtifacts(golden, cand, {0.05, 0.0}).empty());

    // Inf == Inf passes the naive equality fast path; a non-finite
    // measurement is a regression in itself, so it still fails.
    cand.scalars[0].second = inf;
    EXPECT_FALSE(diffArtifacts(golden, cand).empty());

    // NaN on either side (or both) fails, even though NaN != NaN
    // would also fail tolerance "by accident" — the point is the
    // diff must report it, not silently compare unordered.
    FigureArtifact nan_cand = sampleArtifact();
    nan_cand.tables[0].rows[0][1].value = nan;
    EXPECT_FALSE(diffArtifacts(sampleArtifact(), nan_cand).empty());
    FigureArtifact nan_golden = sampleArtifact();
    nan_golden.tables[0].rows[0][1].value = nan;
    EXPECT_FALSE(diffArtifacts(nan_golden, nan_cand).empty());
    EXPECT_FALSE(
        diffArtifacts(nan_golden, sampleArtifact()).empty());
}

TEST(ArtifactDiff, WithinToleranceIsClean)
{
    FigureArtifact golden = sampleArtifact();
    FigureArtifact cand = sampleArtifact();
    cand.scalars[0].second += 1e-12;
    cand.tables[0].rows[0][1].value += 1e-12;
    EXPECT_TRUE(diffArtifacts(golden, cand).empty());
}

TEST(ArtifactSink, WritesParsableJsonFiles)
{
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "contest_artifact_sink_test";
    fs::remove_all(dir);

    ArtifactSink sink(dir.string(), /*echo=*/false);
    sink.emit(sampleArtifact());
    ASSERT_EQ(sink.writtenFiles().size(), 1u);
    ASSERT_EQ(sink.emitted().size(), 1u);

    std::ifstream in(sink.writtenFiles()[0]);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string error;
    JsonValue v = JsonValue::parse(ss.str(), &error);
    EXPECT_TRUE(error.empty()) << error;
    FigureArtifact back = FigureArtifact::fromJson(v, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.name, "fig99");
    fs::remove_all(dir);
}

TEST(ArtifactScalars, RejectDuplicateNames)
{
    EXPECT_EXIT(([] {
                    FigureArtifact art("x", "X");
                    art.scalar("a", 1.0);
                    art.scalar("a", 2.0);
                }()),
                ::testing::ExitedWithCode(1), "already has a scalar");
}

TEST(ArtifactTables, RejectWidthMismatch)
{
    EXPECT_EXIT(([] {
                    FigureArtifact art("x", "X");
                    auto &t = art.table("T");
                    t.columns = {"a", "b"};
                    t.row({cellText("only-one")});
                }()),
                ::testing::ExitedWithCode(1), "row width");
}

} // namespace
} // namespace contest
