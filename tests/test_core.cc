/**
 * @file
 * Unit tests for the out-of-order core model, driven by handcrafted
 * traces with known timing properties.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ooo_core.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

/** A deterministic, easily-analyzed core configuration. */
CoreConfig
testConfig()
{
    CoreConfig c;
    c.name = "test";
    c.memAccessCycles = Cycles{100};
    c.frontEndDepth = 4;
    c.width = 4;
    c.robSize = 64;
    c.iqSize = 32;
    c.wakeupLatency = Cycles{1};
    c.schedDepth = Cycles{2};
    c.clockPeriodPs = TimePs{250};
    c.l1d = CacheConfig{64, 2, 64, Cycles{2}, false, true};
    c.l2 = CacheConfig{256, 4, 64, Cycles{8}, false, true};
    c.lsqSize = 32;
    c.l1dPorts = 2;
    c.mshrs = 8;
    return c;
}

/** ALU instruction writing @p dst, reading @p src (may be invalid). */
TraceInst
alu(RegId dst, RegId src = invalidReg)
{
    TraceInst i;
    i.op = OpClass::IntAlu;
    i.dst = dst;
    i.src1 = src;
    i.pc = 0x1000;
    return i;
}

TracePtr
makeTrace(const std::vector<TraceInst> &insts)
{
    auto t = std::make_shared<Trace>("hand");
    for (const auto &inst : insts)
        t->push(inst, 0);
    return t;
}

Cycles
runToCompletion(OooCore &core)
{
    TimePs now{};
    while (!core.done()) {
        core.tick(now);
        now += core.periodPs();
    }
    return core.cycle();
}

TEST(Core, IndependentAluSaturatesWidth)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 4000; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + (i % 60))));
    OooCore core(testConfig(), makeTrace(insts));
    Cycles cycles = runToCompletion(core);
    // 4000 independent ALU ops on a 4-wide core: ~1000 cycles plus
    // pipeline fill.
    EXPECT_GE(cycles, 1000u);
    EXPECT_LE(cycles, 1100u);
    EXPECT_EQ(core.retired(), 4000u);
}

TEST(Core, SerialChainPaysWakeupLatency)
{
    // Each instruction depends on the previous one: with execLat 1
    // and wakeupLatency 1, one instruction completes every 2 cycles.
    std::vector<TraceInst> insts;
    insts.push_back(alu(1));
    for (int i = 1; i < 1000; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + (i % 60)),
                            static_cast<RegId>(1 + ((i - 1) % 60))));
    OooCore core(testConfig(), makeTrace(insts));
    Cycles cycles = runToCompletion(core);
    EXPECT_GE(cycles, 1990u);
    EXPECT_LE(cycles, 2100u);
}

TEST(Core, WakeupZeroRunsChainsBackToBack)
{
    auto cfg = testConfig();
    cfg.wakeupLatency = Cycles{};
    std::vector<TraceInst> insts;
    insts.push_back(alu(1));
    for (int i = 1; i < 1000; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + (i % 60)),
                            static_cast<RegId>(1 + ((i - 1) % 60))));
    OooCore core(cfg, makeTrace(insts));
    Cycles cycles = runToCompletion(core);
    EXPECT_GE(cycles, 995u);
    EXPECT_LE(cycles, 1100u);
}

TEST(Core, RetiresInProgramOrder)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 500; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + (i % 60))));
    OooCore core(testConfig(), makeTrace(insts));
    InstSeq expected{};
    core.setRetireCallback([&](InstSeq seq, TimePs) {
        EXPECT_EQ(seq, expected);
        ++expected;
    });
    runToCompletion(core);
    EXPECT_EQ(expected, 500u);
}

TEST(Core, ColdLoadMissReachesMemory)
{
    std::vector<TraceInst> insts;
    TraceInst ld;
    ld.op = OpClass::Load;
    ld.dst = 1;
    ld.addr = 0x10000;
    ld.pc = 0x1000;
    insts.push_back(ld);
    // A dependent consumer must wait for the full miss.
    insts.push_back(alu(2, 1));
    OooCore core(testConfig(), makeTrace(insts));
    Cycles cycles = runToCompletion(core);
    // Memory latency 100 + L1 2 + L2 8 dominates.
    EXPECT_GE(cycles, 110u);
    EXPECT_EQ(core.memory().l1().misses(), 1u);
    EXPECT_EQ(core.memory().l2().misses(), 1u);
}

TEST(Core, WarmLoadHitsAreFast)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 200; ++i) {
        TraceInst ld;
        ld.op = OpClass::Load;
        ld.dst = static_cast<RegId>(1 + (i % 60));
        ld.addr = 0x100; // same block every time
        ld.pc = 0x1000;
        insts.push_back(ld);
    }
    OooCore core(testConfig(), makeTrace(insts));
    Cycles cycles = runToCompletion(core);
    // One cold miss, then port-limited (2/cycle): ~100 cycles + miss.
    EXPECT_LE(cycles, 300u);
    EXPECT_EQ(core.memory().l1().misses(), 1u);
}

TEST(Core, MispredictedBranchStallsFetch)
{
    // Baseline: straight ALU code.
    std::vector<TraceInst> plain;
    for (int i = 0; i < 400; ++i)
        plain.push_back(alu(static_cast<RegId>(1 + (i % 60))));
    OooCore base(testConfig(), makeTrace(plain));
    Cycles base_cycles = runToCompletion(base);

    // Same code plus taken branches the predictor has never seen:
    // the first instance of each static branch mispredicts.
    std::vector<TraceInst> branchy;
    for (int i = 0; i < 400; ++i) {
        branchy.push_back(alu(static_cast<RegId>(1 + (i % 60))));
        if (i % 40 == 20) {
            TraceInst br;
            br.op = OpClass::BranchCond;
            br.pc = 0x2000 + static_cast<Addr>(i) * 64;
            br.taken = true;
            br.target = 0x9000;
            br.src1 = branchy.back().dst;
            branchy.push_back(br);
        }
    }
    OooCore core(testConfig(), makeTrace(branchy));
    Cycles cycles = runToCompletion(core);
    EXPECT_GT(core.stats().mispredicts, 0u);
    EXPECT_GT(core.stats().fetchStallBranch, 0u);
    // Each mispredict costs at least resolution + front-end refill.
    EXPECT_GT(cycles,
              base_cycles + core.stats().mispredicts * 5);
}

TEST(Core, SyscallSerializesAndChargesHandler)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 50; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + i)));
    TraceInst sys;
    sys.op = OpClass::Syscall;
    sys.pc = 0x3000;
    insts.push_back(sys);
    for (int i = 0; i < 50; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + i)));

    auto cfg = testConfig();
    cfg.syscallHandlerCycles = Cycles{64};
    OooCore core(cfg, makeTrace(insts));
    Cycles cycles = runToCompletion(core);
    EXPECT_EQ(core.stats().syscalls, 1u);
    EXPECT_GE(core.stats().syscallStalls, 1u);
    // Two ~15-cycle halves plus a 64-cycle handler.
    EXPECT_GE(cycles, 80u);
}

TEST(Core, RobSizeDeterminesMemoryLevelParallelism)
{
    // Eight independent cold misses spaced 60 instructions apart: a
    // 512-entry window overlaps them all; a 16-entry window cannot
    // reach the next miss until the previous one commits, so the
    // misses serialize.
    std::vector<TraceInst> insts;
    for (int m = 0; m < 8; ++m) {
        TraceInst ld;
        ld.op = OpClass::Load;
        ld.dst = 63;
        ld.addr = 0x40000 + static_cast<Addr>(m) * 0x1000;
        ld.pc = 0x1000;
        insts.push_back(ld);
        for (int i = 0; i < 60; ++i)
            insts.push_back(alu(static_cast<RegId>(1 + (i % 50))));
    }

    auto small = testConfig();
    small.robSize = 16;
    small.iqSize = 16;
    OooCore small_core(small, makeTrace(insts));
    Cycles small_cycles = runToCompletion(small_core);
    EXPECT_GT(small_core.stats().robFullStalls, 0u);

    auto big = testConfig();
    big.robSize = 512;
    big.iqSize = 32;
    OooCore big_core(big, makeTrace(insts));
    Cycles big_cycles = runToCompletion(big_core);
    // Serialized misses cost ~8x110 cycles; overlapped ones ~110.
    EXPECT_LT(big_cycles * 2, small_cycles);
}

TEST(Core, LsqBoundsOutstandingMemoryOps)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 64; ++i) {
        TraceInst ld;
        ld.op = OpClass::Load;
        ld.dst = static_cast<RegId>(1 + (i % 60));
        ld.addr = 0x50000 + static_cast<Addr>(i) * 64;
        ld.pc = 0x1000;
        insts.push_back(ld);
    }
    auto cfg = testConfig();
    cfg.lsqSize = 4;
    OooCore core(cfg, makeTrace(insts));
    runToCompletion(core);
    EXPECT_GT(core.stats().lsqFullStalls, 0u);
    EXPECT_EQ(core.retired(), 64u);
}

TEST(Core, StoresCommitAndWriteCaches)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 20; ++i) {
        TraceInst st;
        st.op = OpClass::Store;
        st.addr = 0x6000 + static_cast<Addr>(i) * 8;
        st.pc = 0x1000;
        insts.push_back(st);
    }
    OooCore core(testConfig(), makeTrace(insts));
    runToCompletion(core);
    EXPECT_EQ(core.retired(), 20u);
    EXPECT_GT(core.memory().l1().accesses(), 0u);
}

TEST(Core, TickAfterDoneIsANoOp)
{
    std::vector<TraceInst> insts{alu(1)};
    OooCore core(testConfig(), makeTrace(insts));
    runToCompletion(core);
    Cycles cycles = core.cycle();
    core.tick(TimePs{1'000'000});
    EXPECT_EQ(core.cycle(), cycles);
}

TEST(Core, PaletteConfigsAllRunAShortTrace)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 2000; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + (i % 60)),
                            i % 3 == 0 ? static_cast<RegId>(
                                1 + ((i + 57) % 60))
                                       : invalidReg));
    auto trace = makeTrace(insts);
    for (const auto &cfg : appendixAPalette()) {
        OooCore core(cfg, trace);
        runToCompletion(core);
        EXPECT_EQ(core.retired(), trace->size()) << cfg.name;
        EXPECT_GT(core.stats().ipc(), 0.1) << cfg.name;
    }
}


TEST(Core, WakeupMasksSpanMultipleWords)
{
    // More than 64 producers in flight at once: the ready/issued/
    // completed ring masks (one bit per ring position, ringCap =
    // nextPow2(robSize + slack) = 256 here) must operate across
    // word boundaries. 120 independent cold misses all fit in the
    // ROB/LSQ/MSHRs and the L1 ports drain them into the memory
    // system well before the first reply, so all 120 loads are
    // outstanding simultaneously.
    auto cfg = testConfig();
    cfg.memAccessCycles = Cycles{400};
    // One-cycle fill gap so the bus does not stagger the replies.
    cfg.memBandwidthBytesPerNs = 256.0;
    cfg.width = 8;
    cfg.robSize = 200;
    cfg.iqSize = 64;
    cfg.lsqSize = 160;
    cfg.mshrs = 128;
    std::vector<TraceInst> insts;
    for (int i = 0; i < 120; ++i) {
        TraceInst ld;
        ld.op = OpClass::Load;
        ld.dst = static_cast<RegId>(1 + (i % 60));
        ld.addr = 0x80000 + static_cast<Addr>(i) * 0x1000;
        ld.pc = 0x1000;
        insts.push_back(ld);
    }
    // Waiters pending on the multi-word producer set: one consumer
    // per architectural register, woken by the last load writing it.
    for (int i = 0; i < 60; ++i)
        insts.push_back(alu(63, static_cast<RegId>(1 + i)));
    OooCore core(cfg, makeTrace(insts));
    InstSeq expected{};
    core.setRetireCallback([&](InstSeq seq, TimePs) {
        EXPECT_EQ(seq, expected);
        ++expected;
    });
    Cycles cycles = runToCompletion(core);
    EXPECT_EQ(core.retired(), insts.size());
    // One overlapped memory round trip (~410 cycles) plus issue and
    // drain. Two serialized waves (only <=64 overlapped misses)
    // would exceed 850 cycles.
    EXPECT_GE(cycles, 410u);
    EXPECT_LE(cycles, 700u);
    EXPECT_EQ(core.memory().l1().misses(), 120u);
}

TEST(Core, RingIndicesWrapWithEntriesInFlight)
{
    // A small ROB (ringCap = nextPow2(24 + 2*2 + 2) = 32) over a
    // long trace wraps the position ring dozens of times, and the
    // periodic independent cold misses keep the ROB full so the
    // in-flight window straddles the wrap boundary on most laps.
    // Retirement must stay in program order throughout.
    auto cfg = testConfig();
    cfg.width = 2;
    cfg.robSize = 24;
    cfg.iqSize = 12;
    cfg.lsqSize = 8;
    std::vector<TraceInst> insts;
    insts.push_back(alu(1));
    for (int i = 1; i < 2000; ++i) {
        if (i % 30 == 15) {
            TraceInst ld;
            ld.op = OpClass::Load;
            ld.dst = 62;
            ld.addr = 0x90000 + static_cast<Addr>(i) * 0x1000;
            ld.pc = 0x1000;
            insts.push_back(ld);
        }
        insts.push_back(alu(static_cast<RegId>(1 + (i % 60)),
                            static_cast<RegId>(1 + ((i - 1) % 60))));
    }
    OooCore core(cfg, makeTrace(insts));
    InstSeq expected{};
    core.setRetireCallback([&](InstSeq seq, TimePs) {
        EXPECT_EQ(seq, expected);
        ++expected;
    });
    Cycles cycles = runToCompletion(core);
    EXPECT_EQ(core.retired(), insts.size());
    EXPECT_EQ(expected, insts.size());
    // The serial ALU chain alone costs 2 cycles per instruction.
    EXPECT_GE(cycles, 3900u);
    // The misses behind the chain fill the ROB across wrap points.
    EXPECT_GT(core.stats().robFullStalls, 0u);
}

TEST(Core, ICacheOffByDefaultAndPerfect)
{
    std::vector<TraceInst> insts;
    for (int i = 0; i < 200; ++i)
        insts.push_back(alu(static_cast<RegId>(1 + (i % 60))));
    OooCore core(testConfig(), makeTrace(insts));
    EXPECT_EQ(core.instructionCache(), nullptr);
    runToCompletion(core);
    EXPECT_EQ(core.stats().icacheMisses, 0u);
}

TEST(Core, ICacheMissesStallFetch)
{
    // Code spread over many blocks: a tiny I-cache thrashes.
    std::vector<TraceInst> insts;
    for (int i = 0; i < 2000; ++i) {
        TraceInst a = alu(static_cast<RegId>(1 + (i % 60)));
        a.pc = 0x400000 + static_cast<Addr>(i % 512) * 256;
        insts.push_back(a);
    }
    auto trace = makeTrace(insts);

    auto with_ic = testConfig();
    with_ic.modelICache = true;
    with_ic.l1i = CacheConfig{8, 1, 64, Cycles{1}, false, true}; // 512B
    OooCore small_ic(with_ic, trace);
    Cycles small_cycles = runToCompletion(small_ic);
    EXPECT_GT(small_ic.stats().icacheMisses, 100u);

    OooCore perfect(testConfig(), trace);
    Cycles perfect_cycles = runToCompletion(perfect);
    EXPECT_GT(small_cycles, perfect_cycles * 2);
}

TEST(Core, LargeICacheApproachesPerfect)
{
    // Long enough that the code footprint's cold misses amortize.
    auto trace = makeBenchmarkTrace("gcc", 3, 100000);
    auto with_ic = testConfig();
    with_ic.modelICache = true;
    // Big enough for the whole synthetic code footprint.
    // High associativity absorbs the staggered phase code regions.
    with_ic.l1i = CacheConfig{512, 8, 64, Cycles{1}, false, true}; // 256KB
    OooCore warm(with_ic, trace);
    Cycles warm_cycles = runToCompletion(warm);
    // The resident code working set keeps the miss rate low.
    EXPECT_LT(warm.instructionCache()->missRate(), 0.05);
    OooCore perfect(testConfig(), trace);
    Cycles perfect_cycles = runToCompletion(perfect);
    EXPECT_LT(warm_cycles, perfect_cycles * 2);
}

} // namespace
} // namespace contest
