/**
 * @file
 * The WindowStats counter block (DESIGN.md §14) must be a faithful,
 * deterministic description of the windowed schedule: internally
 * consistent totals, counters that fire on the configs built to
 * trigger them (degenerate fallbacks and hysteresis bursts on a
 * FIFO-saturated pair), identical counters across worker counts
 * (the schedule is a function of the simulated timeline only), and
 * — the zero-alloc acceptance criterion — no heap allocation per
 * steady-state window, measured through a global operator-new
 * override feeding ContestSystem's allocation probe.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

/** Every heap allocation in the process bumps this (relaxed): the
 *  steady-state window probe reads it around each window. */
static std::atomic<std::uint64_t> g_heapAllocs{0};

// Count-and-forward overrides for EVERY operator-new the simulator
// can reach. The aligned forms matter: the window logs live in
// SoaVec, whose CachelineAllocator allocates via
// ::operator new(size, std::align_val_t{64}).

void *
operator new(std::size_t n)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t align =
        std::max(static_cast<std::size_t>(al), sizeof(void *));
    void *p = nullptr;
    if (posix_memalign(&p, align, n ? n : align) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace contest
{
namespace
{

/** Run @p fn with CONTEST_CONTEST_JOBS set to @p jobs. */
template <typename Fn>
auto
withContestJobs(unsigned jobs, Fn fn) -> decltype(fn())
{
    setenv("CONTEST_CONTEST_JOBS", std::to_string(jobs).c_str(), 1);
    auto r = fn();
    unsetenv("CONTEST_CONTEST_JOBS");
    return r;
}

/** The schedule counters (everything except the wall-clock split
 *  and the probe fields, which legitimately vary). */
void
expectSameSchedule(const WindowStats &a, const WindowStats &b,
                   const char *what)
{
    EXPECT_EQ(a.windows, b.windows) << what;
    EXPECT_EQ(a.windowTicks, b.windowTicks) << what;
    EXPECT_EQ(a.laneRuns, b.laneRuns) << what;
    EXPECT_EQ(a.seqSteps, b.seqSteps) << what;
    EXPECT_EQ(a.burstSteps, b.burstSteps) << what;
    EXPECT_EQ(a.degenerateFallbacks, b.degenerateFallbacks) << what;
    EXPECT_EQ(a.seqRequiredFallbacks, b.seqRequiredFallbacks)
        << what;
    EXPECT_EQ(a.capGrowths, b.capGrowths) << what;
    EXPECT_EQ(a.finalCapTicks, b.finalCapTicks) << what;
    EXPECT_EQ(a.horizonRecomputes, b.horizonRecomputes) << what;
    EXPECT_EQ(a.horizonReuses, b.horizonReuses) << what;
    for (unsigned h = 0; h < WindowStats::kHistBuckets; ++h)
        EXPECT_EQ(a.ticksHist[h], b.ticksHist[h])
            << what << " hist bucket " << h;
}

TEST(WindowStats, TotalsAreConsistent)
{
    auto trace = makeBenchmarkTrace("gcc", 2009, 20000);
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace);
    withContestJobs(2, [&] { return sys.run(2); });
    const WindowStats &w = sys.windowStats();

    ASSERT_TRUE(w.active());
    EXPECT_GT(w.windows, 0u);
    EXPECT_GE(w.windowTicks, w.windows); // >= 1 tick per window
    // Mean × count reproduces the total by construction; assert it
    // anyway so a future refactor can't desynchronize the fields.
    EXPECT_NEAR(w.meanWindowTicks() * static_cast<double>(w.windows),
                static_cast<double>(w.windowTicks), 0.5);
    // Every committed window lands in exactly one histogram bucket.
    std::uint64_t hist_total = 0;
    for (unsigned h = 0; h < WindowStats::kHistBuckets; ++h)
        hist_total += w.ticksHist[h];
    EXPECT_EQ(hist_total, w.windows);
    // Two live cores: between 1 and 2 lanes per window.
    EXPECT_GE(w.laneRuns, w.windows);
    EXPECT_LE(w.laneRuns, 2 * w.windows);
    // The adaptive cap only grows, from the initial toward the max.
    ContestConfig defaults;
    EXPECT_GE(w.finalCapTicks,
              std::min(defaults.initialWindowTicks,
                       defaults.maxWindowTicks));
    EXPECT_LE(w.finalCapTicks, defaults.maxWindowTicks);
    // The horizon cache was consulted for every window attempt.
    EXPECT_GT(w.horizonRecomputes + w.horizonReuses, 0u);
}

TEST(WindowStats, DegenerateAndBurstCountersFire)
{
    // A tiny FIFO saturates the lagger: as the slack collapses the
    // horizon degenerates, which must (a) count degenerate
    // fallbacks and (b) trigger hysteresis bursts of sequential
    // steps instead of a horizon computation per step.
    auto trace = makeBenchmarkTrace("crafty", 2009, 30000);
    ContestConfig cfg;
    cfg.fifoCapacity = 64;
    cfg.parkSaturatedLaggers = true;
    ContestSystem sys({coreConfigByName("vortex"),
                       coreConfigByName("mcf")},
                      trace, cfg);
    auto r = withContestJobs(2, [&] { return sys.run(2); });
    ASSERT_TRUE(r.unitStats[1].saturated);

    const WindowStats &w = sys.windowStats();
    EXPECT_GT(w.degenerateFallbacks, 0u);
    EXPECT_GT(w.burstSteps, 0u);
    EXPECT_GT(w.seqSteps, 0u);
    EXPECT_GE(w.seqSteps, w.burstSteps);
}

TEST(WindowStats, ScheduleIsIdenticalAcrossWorkerCounts)
{
    // The window schedule is a deterministic function of the
    // simulated timeline: worker count changes only who executes a
    // lane, never which windows open. jobs == 1 never enters the
    // windowed path at all.
    auto trace = makeBenchmarkTrace("gcc", 7, 20000);
    auto statsFor = [&](unsigned jobs) {
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip")},
                          trace);
        withContestJobs(jobs, [&] { return sys.run(jobs); });
        return sys.windowStats();
    };
    const WindowStats w1 = statsFor(1);
    const WindowStats w2 = statsFor(2);
    const WindowStats w4 = statsFor(4);

    EXPECT_FALSE(w1.active());
    EXPECT_EQ(w1.windows, 0u);
    ASSERT_TRUE(w2.active());
    ASSERT_TRUE(w4.active());
    expectSameSchedule(w2, w4, "jobs 2 vs 4");
}

TEST(WindowStats, SteadyStateWindowsAreAllocationFree)
{
    // The acceptance criterion for the zero-alloc window loop. With
    // maxWindowTicks pinned small, reserveWindowLogs hard-bounds
    // every per-lane buffer before the lanes run, so after a warmup
    // (first windows grow scratch to their high-water marks) each
    // window must perform zero heap allocations end to end —
    // horizon, lane execution, and commit included.
    auto trace = makeBenchmarkTrace("gzip", 11, 40000);
    ContestConfig cfg;
    cfg.maxWindowTicks = 64;
    cfg.initialWindowTicks = 64;
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace, cfg);
    // Warm-up is self-classifying: a window that sets a new log
    // high-water mark is excluded from the steady count by the
    // engine itself, so the fixed warmup only needs to cover the
    // one-time scratch growth (merge cursors, lane vectors, ring
    // pools) of the first few windows.
    sys.setAllocProbe(&g_heapAllocs, 64);
    withContestJobs(2, [&] { return sys.run(2); });

    const WindowStats &w = sys.windowStats();
    ASSERT_GT(w.windows, 64u)
        << "config no longer produces enough windows to probe";
    EXPECT_GT(w.steadyWindows, 0u);
#ifndef CONTEST_CHECK_WINDOWS
    // The shadow access log (check-windows builds) legitimately
    // allocates per window; the claim holds for release topology.
    EXPECT_EQ(w.steadyAllocs, 0u)
        << "steady-state windows allocated "
        << w.steadyAllocs << " time(s) over " << w.steadyWindows
        << " probed window(s)";
#endif
}

} // namespace
} // namespace contest
