/**
 * @file
 * Unit tests for the JSON document model behind the artifact
 * pipeline: construction, serialization, escaping, number
 * round-tripping, and the strict parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"

namespace contest
{
namespace
{

TEST(Json, ScalarKindsAndAccessors)
{
    EXPECT_TRUE(JsonValue{}.isNull());
    EXPECT_TRUE(JsonValue::boolean(true).asBool());
    EXPECT_FALSE(JsonValue::boolean(false).asBool());
    EXPECT_DOUBLE_EQ(JsonValue::number(2.5).asNumber(), 2.5);
    EXPECT_EQ(JsonValue::str("hi").asString(), "hi");
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites)
{
    JsonValue o = JsonValue::object();
    o.set("z", JsonValue::number(1));
    o.set("a", JsonValue::number(2));
    o.set("z", JsonValue::number(3)); // overwrite keeps position
    ASSERT_EQ(o.size(), 2u);
    EXPECT_EQ(o.members()[0].first, "z");
    EXPECT_EQ(o.members()[1].first, "a");
    EXPECT_DOUBLE_EQ(o.at("z").asNumber(), 3.0);
    EXPECT_EQ(o.find("missing"), nullptr);
}

TEST(Json, CompactDump)
{
    JsonValue o = JsonValue::object();
    o.set("name", JsonValue::str("fig06"));
    JsonValue a = JsonValue::array();
    a.push(JsonValue::number(1));
    a.push(JsonValue::boolean(false));
    a.push(JsonValue{});
    o.set("xs", std::move(a));
    EXPECT_EQ(o.dump(0),
              "{\"name\": \"fig06\", \"xs\": [1, false, null]}");
}

TEST(Json, EscapingRoundTrips)
{
    const std::string nasty =
        "quote\" backslash\\ newline\n tab\t bell\x07 end";
    JsonValue v = JsonValue::str(nasty);
    std::string text = v.dump(0);
    // Control characters must be escaped in the wire form.
    EXPECT_EQ(text.find('\n'), std::string::npos);
    EXPECT_NE(text.find("\\u0007"), std::string::npos);

    std::string err;
    JsonValue back = JsonValue::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.asString(), nasty);
}

TEST(Json, NumbersRoundTripBitIdentical)
{
    for (double v :
         {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 3.141592653589793,
          2.718281828459045e-10, 1.7976931348623157e308,
          5e-324, 400000.0, -2009.0}) {
        std::string text = jsonNumber(v);
        std::string err;
        JsonValue back = JsonValue::parse(text, &err);
        EXPECT_TRUE(err.empty()) << text << ": " << err;
        // Bit-identical round trip, not merely approximate.
        EXPECT_EQ(back.asNumber(), v) << text;
    }
}

TEST(Json, IntegersPrintWithoutFraction)
{
    EXPECT_EQ(jsonNumber(400000.0), "400000");
    EXPECT_EQ(jsonNumber(-3.0), "-3");
    EXPECT_EQ(jsonNumber(0.0), "0");
}

TEST(Json, DocumentRoundTrip)
{
    JsonValue o = JsonValue::object();
    o.set("schema", JsonValue::number(1));
    o.set("title", JsonValue::str("Figure 6: contesting"));
    JsonValue rows = JsonValue::array();
    for (int i = 0; i < 3; ++i) {
        JsonValue row = JsonValue::array();
        row.push(JsonValue::str("bench" + std::to_string(i)));
        row.push(JsonValue::number(1.5 + i));
        rows.push(std::move(row));
    }
    o.set("rows", std::move(rows));

    for (int indent : {0, 2, 4}) {
        std::string err;
        JsonValue back = JsonValue::parse(o.dump(indent), &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(back.dump(0), o.dump(0));
    }
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "{\"a\":}", "[1 2]", "tru",
          "\"unterminated", "{\"a\":1} trailing", "1e999",
          "{'single': 1}"}) {
        std::string err;
        JsonValue v = JsonValue::parse(bad, &err);
        EXPECT_FALSE(err.empty()) << "accepted: " << bad;
        EXPECT_TRUE(v.isNull());
    }
}

TEST(Json, ParserBoundsNestingDepth)
{
    // One level under the limit parses; one level over fails with an
    // error instead of exhausting the stack (the daemon feeds the
    // parser untrusted network bytes).
    auto nested = [](int levels) {
        std::string doc(static_cast<std::size_t>(levels), '[');
        doc += "1";
        doc.append(static_cast<std::size_t>(levels), ']');
        return doc;
    };
    std::string err;
    JsonValue ok = JsonValue::parse(
        nested(JsonValue::maxParseDepth), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_TRUE(ok.isArray());

    JsonValue over = JsonValue::parse(
        nested(JsonValue::maxParseDepth + 1), &err);
    EXPECT_FALSE(err.empty());
    EXPECT_NE(err.find("nesting"), std::string::npos) << err;
    EXPECT_TRUE(over.isNull());

    // A megabyte of '[' — the classic parser-killer — must also
    // fail cleanly, and fast.
    JsonValue bomb = JsonValue::parse(
        std::string(1u << 20, '['), &err);
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(bomb.isNull());

    // Deep objects hit the same bound as deep arrays.
    std::string obj_doc;
    for (int i = 0; i < JsonValue::maxParseDepth + 1; ++i)
        obj_doc += "{\"k\":";
    JsonValue deep_obj = JsonValue::parse(obj_doc, &err);
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(deep_obj.isNull());
}

TEST(Json, ParserRejectsTruncatedNetworkFrames)
{
    // Prefixes of a valid document — what a connection drop
    // mid-frame would hand the daemon — must all error cleanly.
    const std::string doc =
        "{\"kind\": \"contest\", \"cores\": [\"gcc\", \"twolf\"]}";
    for (std::size_t cut = 1; cut < doc.size(); ++cut) {
        std::string err;
        JsonValue v = JsonValue::parse(doc.substr(0, cut), &err);
        EXPECT_FALSE(err.empty())
            << "accepted prefix: " << doc.substr(0, cut);
        EXPECT_TRUE(v.isNull());
    }
}

TEST(Json, ParserHandlesUnicodeEscapes)
{
    std::string err;
    JsonValue v = JsonValue::parse("\"a\\u00e9b\\u20acc\"", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.asString(), "a\xC3\xA9"
                            "b\xE2\x82\xAC"
                            "c");
}

TEST(Json, ParseAcceptsWhitespaceEverywhere)
{
    std::string err;
    JsonValue v = JsonValue::parse(
        " \n { \"a\" : [ 1 , 2 ] , \"b\" : null } \t", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.at("a").size(), 2u);
    EXPECT_TRUE(v.at("b").isNull());
}

} // namespace
} // namespace contest
