/**
 * @file
 * Windowed parallel contesting must be invisible: every run with
 * CONTEST_CONTEST_JOBS > 1 has to produce results bit-identical to
 * the sequential event loop (the validation oracle) — timings, every
 * pipeline counter, pairing/discard/broadcast counts, energy
 * numbers, lead fractions. A seed sweep over 2-way and 3-way
 * contests (including a parking pair, an interrupt-driven refork
 * config, and both skip modes) pins that equivalence down.
 *
 * The windowed scheduler activates whenever contest jobs > 1 even if
 * no worker threads are granted (lanes then run inline), so this
 * test exercises the full window/commit algorithm on any machine;
 * the CI thread-sanitizer job additionally runs it with real worker
 * threads.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

/** Run @p fn with CONTEST_CONTEST_JOBS set to @p jobs. */
template <typename Fn>
auto
withContestJobs(unsigned jobs, Fn fn) -> decltype(fn())
{
    setenv("CONTEST_CONTEST_JOBS", std::to_string(jobs).c_str(), 1);
    auto r = fn();
    unsetenv("CONTEST_CONTEST_JOBS");
    return r;
}

void
expectSameStats(const CoreStats &a, const CoreStats &b,
                const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.retired, b.retired) << what;
    EXPECT_EQ(a.injected, b.injected) << what;
    EXPECT_EQ(a.condBranches, b.condBranches) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
    EXPECT_EQ(a.earlyResolves, b.earlyResolves) << what;
    EXPECT_EQ(a.btbMissRedirects, b.btbMissRedirects) << what;
    EXPECT_EQ(a.syscalls, b.syscalls) << what;
    EXPECT_EQ(a.icacheMisses, b.icacheMisses) << what;
    EXPECT_EQ(a.fetchStallBranch, b.fetchStallBranch) << what;
    EXPECT_EQ(a.robFullStalls, b.robFullStalls) << what;
    EXPECT_EQ(a.iqFullStalls, b.iqFullStalls) << what;
    EXPECT_EQ(a.lsqFullStalls, b.lsqFullStalls) << what;
    EXPECT_EQ(a.storeQueueStalls, b.storeQueueStalls) << what;
    EXPECT_EQ(a.syscallStalls, b.syscallStalls) << what;
}

void
expectSameContest(const ContestResult &a, const ContestResult &b,
                  const char *what)
{
    EXPECT_EQ(a.timePs, b.timePs) << what;
    EXPECT_EQ(a.ipt, b.ipt) << what;
    EXPECT_EQ(a.leadChanges, b.leadChanges) << what;
    EXPECT_EQ(a.mergedStores, b.mergedStores) << what;
    EXPECT_EQ(a.exceptionsHandled, b.exceptionsHandled) << what;
    EXPECT_EQ(a.interruptsHandled, b.interruptsHandled) << what;
    ASSERT_EQ(a.coreStats.size(), b.coreStats.size()) << what;
    for (std::size_t c = 0; c < a.coreStats.size(); ++c) {
        expectSameStats(a.coreStats[c], b.coreStats[c], what);
        EXPECT_EQ(a.leadFraction[c], b.leadFraction[c]) << what;
        EXPECT_EQ(a.unitStats[c].paired, b.unitStats[c].paired)
            << what;
        EXPECT_EQ(a.unitStats[c].discarded, b.unitStats[c].discarded)
            << what;
        EXPECT_EQ(a.unitStats[c].broadcasts,
                  b.unitStats[c].broadcasts)
            << what;
        EXPECT_EQ(a.unitStats[c].saturated, b.unitStats[c].saturated)
            << what;
        EXPECT_EQ(a.unitStats[c].parkedAt, b.unitStats[c].parkedAt)
            << what;
        // Bit-identical, not merely close: the energy model consumes
        // only counters, and every counter must match exactly.
        EXPECT_EQ(a.energy[c].staticNj, b.energy[c].staticNj) << what;
        EXPECT_EQ(a.energy[c].pipelineNj, b.energy[c].pipelineNj)
            << what;
        EXPECT_EQ(a.energy[c].cacheNj, b.energy[c].cacheNj) << what;
        EXPECT_EQ(a.energy[c].bpredNj, b.energy[c].bpredNj) << what;
        EXPECT_EQ(a.energy[c].squashNj, b.energy[c].squashNj) << what;
        EXPECT_EQ(a.energy[c].contestNj, b.energy[c].contestNj)
            << what;
    }
}

TEST(ParallelEquivalence, ContestSeedSweep)
{
    for (std::uint64_t seed : {2009ull, 7ull, 4242ull}) {
        for (const char *bench : {"gcc", "twolf", "mcf"}) {
            auto trace = makeBenchmarkTrace(bench, seed, 15000);
            auto run = [&] {
                ContestSystem sys({coreConfigByName("twolf"),
                                   coreConfigByName("gzip")},
                                  trace);
                return sys.run();
            };
            auto seq = withContestJobs(1, run);
            auto par = withContestJobs(4, run);
            std::string what =
                std::string(bench) + " seed " + std::to_string(seed);
            expectSameContest(seq, par, what.c_str());
        }
    }
}

TEST(ParallelEquivalence, ExplicitJobsArgumentWins)
{
    // run(jobs) must override the environment — the Runner snapshots
    // the knob once and passes it down explicitly.
    auto trace = makeBenchmarkTrace("gcc", 2009, 15000);
    auto run = [&](unsigned jobs) {
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip")},
                          trace);
        return sys.run(jobs);
    };
    setenv("CONTEST_CONTEST_JOBS", "1", 1);
    auto par = run(3);
    unsetenv("CONTEST_CONTEST_JOBS");
    auto seq = run(1);
    expectSameContest(seq, par, "explicit jobs argument");
}

TEST(ParallelEquivalence, ParkingPair)
{
    // vortex+mcf on a tiny FIFO parks the lagger mid-run. Parking
    // can only happen on the sequential fallback path (the window
    // bound forbids in-window overflow); the fallback must land on
    // the identical park point and rewind the same skip windows.
    auto trace = makeBenchmarkTrace("crafty", 2009, 30000);
    auto run = [&] {
        ContestConfig cfg;
        cfg.fifoCapacity = 64;
        cfg.parkSaturatedLaggers = true;
        ContestSystem sys({coreConfigByName("vortex"),
                           coreConfigByName("mcf")},
                          trace, cfg);
        return sys.run();
    };
    auto seq = withContestJobs(1, run);
    auto par = withContestJobs(4, run);
    EXPECT_TRUE(par.unitStats[1].saturated);
    expectSameContest(seq, par, "parking pair");
}

TEST(ParallelEquivalence, DropOldestPair)
{
    // With parking disabled, overflow drops the oldest buffered
    // result inside receiveResult — also sequential-path-only.
    auto trace = makeBenchmarkTrace("crafty", 7, 20000);
    auto run = [&] {
        ContestConfig cfg;
        cfg.fifoCapacity = 64;
        cfg.parkSaturatedLaggers = false;
        ContestSystem sys({coreConfigByName("vortex"),
                           coreConfigByName("mcf")},
                          trace, cfg);
        return sys.run();
    };
    auto seq = withContestJobs(1, run);
    auto par = withContestJobs(4, run);
    expectSameContest(seq, par, "drop-oldest pair");
}

TEST(ParallelEquivalence, InterruptRefork)
{
    // Windows must stop short of every interrupt edge so the
    // terminate-and-refork service happens on the sequential path at
    // the identical refork position.
    auto trace = makeBenchmarkTrace("gcc", 2009, 20000);
    auto run = [&] {
        ContestConfig cfg;
        cfg.interruptPeriodPs = TimePs{3'000'000};
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip")},
                          trace, cfg);
        return sys.run();
    };
    auto seq = withContestJobs(1, run);
    auto par = withContestJobs(4, run);
    EXPECT_GT(par.interruptsHandled, 0u);
    expectSameContest(seq, par, "interrupt refork");
}

TEST(ParallelEquivalence, ThreeWayContest)
{
    auto trace = makeBenchmarkTrace("parser", 7, 15000);
    auto run = [&] {
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip"),
                           coreConfigByName("vpr")},
                          trace);
        return sys.run();
    };
    auto seq = withContestJobs(1, run);
    auto par = withContestJobs(3, run);
    expectSameContest(seq, par, "three-way");
}

TEST(ParallelEquivalence, NoSkipInteraction)
{
    // Windowed execution composes with per-cycle reference stepping
    // (CONTEST_NO_SKIP=1): lanes then tick every cycle and the
    // committed schedule must still match the sequential one.
    auto trace = makeBenchmarkTrace("twolf", 2009, 15000);
    auto run = [&] {
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip")},
                          trace);
        return sys.run();
    };
    setenv("CONTEST_NO_SKIP", "1", 1);
    auto seq = withContestJobs(1, run);
    auto par = withContestJobs(4, run);
    unsetenv("CONTEST_NO_SKIP");
    expectSameContest(seq, par, "no-skip interaction");
}

TEST(ParallelEquivalence, AdaptiveCapSweep)
{
    // The adaptive quantum is schedule-only: whatever maxWindowTicks
    // the scheduler is allowed to grow toward — from degenerate-small
    // windows to one effectively unbounded — the committed results
    // must stay bit-identical to the sequential oracle.
    auto trace = makeBenchmarkTrace("gcc", 2009, 15000);
    for (std::uint64_t cap :
         {std::uint64_t{64}, std::uint64_t{4096},
          std::uint64_t{1} << 20}) {
        auto run = [&] {
            ContestConfig cfg;
            cfg.maxWindowTicks = cap;
            ContestSystem sys({coreConfigByName("twolf"),
                               coreConfigByName("gzip")},
                              trace, cfg);
            return sys.run();
        };
        auto seq = withContestJobs(1, run);
        auto par = withContestJobs(4, run);
        std::string what =
            "maxWindowTicks " + std::to_string(cap);
        expectSameContest(seq, par, what.c_str());
    }
}

TEST(ParallelEquivalence, WindowsActuallyUsed)
{
    // Cover both window regimes explicitly: a homogeneous pair whose
    // cores stay neck-and-neck (the receiver "reach" bound governs)
    // and a heterogeneous pair whose laggard trails far behind (the
    // sender "late" bound and its deferred-discard replay govern).
    for (const char *pair : {"twolf", "gzip"}) {
        auto trace = makeBenchmarkTrace("gzip", 11, 15000);
        auto run = [&] {
            ContestSystem sys({coreConfigByName("twolf"),
                               coreConfigByName(pair)},
                              trace);
            return sys.run();
        };
        auto seq = withContestJobs(1, run);
        auto par = withContestJobs(2, run);
        expectSameContest(seq, par, pair);
    }
}

} // namespace
} // namespace contest
