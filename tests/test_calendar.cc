/**
 * @file
 * TickCalendar unit tests: the event calendar that replaced the
 * O(n) next_tick min-scan in ContestSystem::run must order edges by
 * (time, core id) — equal-time ties deterministically go to the
 * lower core id, the order the old linear scan produced — and must
 * support keyed update and removal without disturbing that order.
 */

#include <gtest/gtest.h>

#include "contest/calendar.hh"
#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

TEST(TickCalendar, EqualTimesPopInCoreIdOrder)
{
    TickCalendar cal(4);
    // Insert in scrambled order, all at the same time.
    for (CoreId c : {2u, 0u, 3u, 1u})
        cal.set(c, TimePs{100});
    for (CoreId expect : {0u, 1u, 2u, 3u}) {
        EXPECT_EQ(cal.minCore(), expect);
        EXPECT_EQ(cal.minTime(), TimePs{100});
        cal.remove(cal.minCore());
    }
    EXPECT_TRUE(cal.empty());
}

TEST(TickCalendar, UpdateMovesAnEdgeBothWays)
{
    TickCalendar cal(3);
    cal.set(0, TimePs{300});
    cal.set(1, TimePs{200});
    cal.set(2, TimePs{100});
    EXPECT_EQ(cal.minCore(), 2u);

    cal.set(2, TimePs{400}); // later: core 1 surfaces
    EXPECT_EQ(cal.minCore(), 1u);
    EXPECT_EQ(cal.minTime(), TimePs{200});

    cal.set(0, TimePs{50}); // earlier: core 0 surfaces
    EXPECT_EQ(cal.minCore(), 0u);
    EXPECT_EQ(cal.minTime(), TimePs{50});

    // An update to an equal time still favors the lower id.
    cal.set(1, TimePs{50});
    EXPECT_EQ(cal.minCore(), 0u);
}

TEST(TickCalendar, RemoveKeepsTheRestConsistent)
{
    TickCalendar cal(5);
    for (CoreId c = 0; c < 5; ++c)
        cal.set(c, TimePs{10 * (5 - c)}); // 50,40,30,20,10
    EXPECT_EQ(cal.minCore(), 4u);

    cal.remove(4);
    EXPECT_FALSE(cal.contains(4));
    EXPECT_EQ(cal.minCore(), 3u);

    cal.remove(1); // interior removal
    EXPECT_EQ(cal.size(), 3u);
    cal.remove(1); // double removal is a no-op
    EXPECT_EQ(cal.size(), 3u);

    // Remaining cores drain in time order.
    for (CoreId expect : {3u, 2u, 0u}) {
        EXPECT_EQ(cal.minCore(), expect);
        cal.remove(cal.minCore());
    }
    EXPECT_TRUE(cal.empty());
}

TEST(TickCalendar, ReinsertAfterRemove)
{
    TickCalendar cal(2);
    cal.set(0, TimePs{100});
    cal.set(1, TimePs{200});
    cal.remove(0);
    cal.set(0, TimePs{300});
    EXPECT_EQ(cal.minCore(), 1u);
    EXPECT_TRUE(cal.contains(0));
}

TEST(TickCalendar, IdenticalCoresContestDeterministically)
{
    // Two identical cores tie on every clock edge; the calendar's
    // id tie-break makes the whole contest deterministic (the old
    // min-scan's behavior). Same-config runs must agree exactly,
    // and core 0 — ticked first on every edge — leads.
    auto trace = makeBenchmarkTrace("twolf", 2009, 15000);
    auto run = [&] {
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("twolf")},
                          trace);
        return sys.run();
    };
    auto r1 = run();
    auto r2 = run();
    EXPECT_EQ(r1.timePs, r2.timePs);
    EXPECT_EQ(r1.leadChanges, r2.leadChanges);
    EXPECT_EQ(r1.leadFraction[0], r2.leadFraction[0]);
    EXPECT_EQ(r1.mergedStores, r2.mergedStores);
    // The tie-break hands every edge to core 0 first, so it leads
    // the overwhelming majority of the trace.
    EXPECT_GT(r1.leadFraction[0], r1.leadFraction[1]);
}

} // namespace
} // namespace contest
