/**
 * @file
 * Unit tests for the contested-run side of the on-disk result cache:
 * key canonicalization over (benchmark, ordered cores, contest
 * config, seed, trace length), store/load round-trips, corruption
 * and version handling, kind separation from single-run entries, and
 * the Runner integration that makes a second process rerun a
 * contested suite without simulating.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/palette.hh"
#include "harness/result_cache.hh"
#include "harness/runner.hh"

namespace contest
{
namespace
{

namespace fs = std::filesystem;

class ContestCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path()
               / "contest_contest_cache_test")
                  .string();
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    static std::vector<CoreConfig>
    gccTwolf()
    {
        return {coreConfigByName("gcc"), coreConfigByName("twolf")};
    }

    static ContestResult
    sampleResult()
    {
        ContestResult r;
        r.timePs = TimePs{987654321};
        r.ipt = 2.125;
        r.coreStats.resize(2);
        r.coreStats[0].cycles = Cycles{4000};
        r.coreStats[0].retired = 16000;
        r.coreStats[1].cycles = Cycles{5000};
        r.coreStats[1].mispredicts = 41;
        r.unitStats.resize(2);
        r.unitStats[0].paired = 1200;
        r.unitStats[0].broadcasts = 900;
        r.unitStats[1].discarded = 7;
        r.unitStats[1].saturated = true;
        r.unitStats[1].parkedAt = TimePs{5555};
        r.leadFraction = {0.75, 0.25};
        r.leadChanges = 13;
        r.mergedStores = StoreSeq{4321};
        r.exceptionsHandled = 3;
        r.interruptsHandled = 2;
        r.energy.resize(2);
        r.energy[0].pipelineNj = 2.5;
        r.energy[1].contestNj = 0.75;
        return r;
    }

    std::string dir;
};

TEST_F(ContestCacheTest, KeyIsCanonicalAndConfigSensitive)
{
    auto cores = gccTwolf();
    ContestConfig cfg;
    std::string k1 =
        ResultCache::contestKey("gcc", cores, cfg, 2009, 400000);
    EXPECT_EQ(k1,
              ResultCache::contestKey("gcc", cores, cfg, 2009,
                                      400000));
    EXPECT_NE(k1, ResultCache::contestKey("vpr", cores, cfg, 2009,
                                          400000));
    EXPECT_NE(k1, ResultCache::contestKey("gcc", cores, cfg, 2010,
                                          400000));
    EXPECT_NE(k1,
              ResultCache::contestKey("gcc", cores, cfg, 2009, 8000));

    // The cores are ordered: swapping them is a different system.
    std::vector<CoreConfig> swapped{cores[1], cores[0]};
    EXPECT_NE(k1, ResultCache::contestKey("gcc", swapped, cfg, 2009,
                                          400000));

    // Every core-config field participates.
    auto tweaked_cores = cores;
    tweaked_cores[1].robSize += 1;
    EXPECT_NE(k1, ResultCache::contestKey("gcc", tweaked_cores, cfg,
                                          2009, 400000));

    // So does every contesting knob.
    ContestConfig grb = cfg;
    grb.grbLatencyPs = TimePs{grb.grbLatencyPs.count() + 100};
    EXPECT_NE(k1, ResultCache::contestKey("gcc", cores, grb, 2009,
                                          400000));
    ContestConfig fifo = cfg;
    fifo.fifoCapacity /= 2;
    EXPECT_NE(k1, ResultCache::contestKey("gcc", cores, fifo, 2009,
                                          400000));
    ContestConfig park = cfg;
    park.parkSaturatedLaggers = !park.parkSaturatedLaggers;
    EXPECT_NE(k1, ResultCache::contestKey("gcc", cores, park, 2009,
                                          400000));

    // The single-run key of the same benchmark must never alias a
    // contest key.
    EXPECT_NE(k1, ResultCache::singleRunKey(cores[0], "gcc", 2009,
                                            400000));
}

TEST_F(ContestCacheTest, StoreThenLoadRoundTrips)
{
    ResultCache cache(dir);
    ContestResult stored = sampleResult();
    cache.storeContest("contest-key", stored);
    EXPECT_EQ(cache.stores(), 1u);

    ContestResult loaded;
    ASSERT_TRUE(cache.loadContest("contest-key", loaded));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(loaded.timePs, stored.timePs);
    EXPECT_EQ(loaded.ipt, stored.ipt);
    ASSERT_EQ(loaded.coreStats.size(), 2u);
    EXPECT_EQ(loaded.coreStats[0].cycles, stored.coreStats[0].cycles);
    EXPECT_EQ(loaded.coreStats[0].retired,
              stored.coreStats[0].retired);
    EXPECT_EQ(loaded.coreStats[1].mispredicts,
              stored.coreStats[1].mispredicts);
    ASSERT_EQ(loaded.unitStats.size(), 2u);
    EXPECT_EQ(loaded.unitStats[0].paired, stored.unitStats[0].paired);
    EXPECT_EQ(loaded.unitStats[0].broadcasts,
              stored.unitStats[0].broadcasts);
    EXPECT_EQ(loaded.unitStats[1].discarded,
              stored.unitStats[1].discarded);
    EXPECT_EQ(loaded.unitStats[1].saturated,
              stored.unitStats[1].saturated);
    EXPECT_EQ(loaded.unitStats[1].parkedAt,
              stored.unitStats[1].parkedAt);
    EXPECT_EQ(loaded.leadFraction, stored.leadFraction);
    EXPECT_EQ(loaded.leadChanges, stored.leadChanges);
    EXPECT_EQ(loaded.mergedStores, stored.mergedStores);
    EXPECT_EQ(loaded.exceptionsHandled, stored.exceptionsHandled);
    EXPECT_EQ(loaded.interruptsHandled, stored.interruptsHandled);
    ASSERT_EQ(loaded.energy.size(), 2u);
    EXPECT_EQ(loaded.energy[0].pipelineNj, stored.energy[0].pipelineNj);
    EXPECT_EQ(loaded.energy[1].contestNj, stored.energy[1].contestNj);
}

TEST_F(ContestCacheTest, MissesOnAbsentKey)
{
    ResultCache cache(dir);
    ContestResult r;
    EXPECT_FALSE(cache.loadContest("never-stored", r));
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(ContestCacheTest, VersionBumpInvalidates)
{
    ResultCache v1(dir, 1);
    v1.storeContest("key", sampleResult());

    ResultCache v2(dir, 2);
    ContestResult r;
    // The version participates in the entry digest, so v2 looks at a
    // different path entirely and must miss.
    EXPECT_NE(v1.entryPath("key"), v2.entryPath("key"));
    EXPECT_FALSE(v2.loadContest("key", r));
    // v1 still hits its own entry.
    EXPECT_TRUE(v1.loadContest("key", r));
}

TEST_F(ContestCacheTest, RejectsTruncatedOrCorruptEntries)
{
    ResultCache cache(dir);
    cache.storeContest("key", sampleResult());

    // Truncate the entry to half its size.
    std::string path = cache.entryPath("key");
    auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);

    ContestResult r;
    EXPECT_FALSE(cache.loadContest("key", r));

    // Garbage of the right rough size is rejected by the magic check.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        std::string junk(static_cast<std::size_t>(size), 'x');
        f.write(junk.data(),
                static_cast<std::streamsize>(junk.size()));
    }
    EXPECT_FALSE(cache.loadContest("key", r));
}

TEST_F(ContestCacheTest, OneByteTruncationDegradesToMiss)
{
    // The nastiest torn write loses only the final byte — the magic,
    // version, and almost the whole payload still read back clean,
    // so only end-to-end length/checksum validation catches it.
    ResultCache cache(dir);
    cache.storeContest("key", sampleResult());

    std::string path = cache.entryPath("key");
    auto size = fs::file_size(path);
    ASSERT_GT(size, 1u);
    fs::resize_file(path, size - 1);

    ContestResult r;
    EXPECT_FALSE(cache.loadContest("key", r));

    // A rewrite repairs the entry in place.
    cache.storeContest("key", sampleResult());
    EXPECT_TRUE(cache.loadContest("key", r));
}

TEST_F(ContestCacheTest, StoresLeaveNoTempFilesBehind)
{
    // Entries are written to a side file and renamed into place so a
    // concurrent reader never sees a half-written entry; a completed
    // store must leave only final entries in the directory.
    ResultCache cache(dir);
    cache.store("single-key", SingleRunResult{}, {});
    cache.storeContest("contest-key", sampleResult());

    for (const auto &ent : fs::directory_iterator(dir)) {
        const std::string name = ent.path().filename().string();
        EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    }
}

TEST_F(ContestCacheTest, SingleAndContestEntriesCannotCrossLoad)
{
    // The two entry kinds carry distinct magics: even if a single-run
    // entry ends up at the path a contest load probes (here forced by
    // using the same key string), it degrades to a miss instead of
    // deserializing garbage — and vice versa.
    ResultCache cache(dir);
    cache.store("shared-key", SingleRunResult{}, {});
    ContestResult contested;
    EXPECT_FALSE(cache.loadContest("shared-key", contested));

    fs::remove(cache.entryPath("shared-key"));
    cache.storeContest("shared-key", sampleResult());
    SingleRunResult single;
    std::vector<TimePs> series;
    EXPECT_FALSE(cache.load("shared-key", single, series));
}

TEST_F(ContestCacheTest, DigestCollisionDegradesToMiss)
{
    ResultCache cache(dir);
    cache.storeContest("key-a", sampleResult());

    // Simulate a filename collision: key-b hashing onto key-a's
    // entry. The stored full key disagrees, so it must miss rather
    // than serve key-a's payload.
    fs::copy_file(cache.entryPath("key-a"), cache.entryPath("key-b"),
                  fs::copy_options::overwrite_existing);
    ContestResult r;
    EXPECT_FALSE(cache.loadContest("key-b", r));
    EXPECT_TRUE(cache.loadContest("key-a", r));
}

TEST_F(ContestCacheTest, RunnerWarmRerunSkipsContestSimulation)
{
    ResultCache cold_cache(dir);
    Runner cold(4000, 11);
    cold.setResultCache(&cold_cache);
    const ContestResult &first =
        cold.contestedPair("gcc", "gcc", "twolf");
    EXPECT_EQ(cold.contestsPerformed(), 1u);
    EXPECT_EQ(cold.contestDiskHits(), 0u);
    EXPECT_EQ(cold_cache.stores(), 1u);

    // The in-memory memo serves a repeat without touching the disk.
    cold.contestedPair("gcc", "gcc", "twolf");
    EXPECT_EQ(cold.contestsPerformed(), 1u);
    EXPECT_EQ(cold_cache.hits(), 0u);

    // A fresh Runner (a new process, as far as the cache knows) with
    // the same parameters starts warm: zero contested simulations,
    // and the restored result is bit-identical.
    ResultCache warm_cache(dir);
    Runner warm(4000, 11);
    warm.setResultCache(&warm_cache);
    const ContestResult &restored =
        warm.contestedPair("gcc", "gcc", "twolf");
    EXPECT_EQ(warm.contestsPerformed(), 0u);
    EXPECT_EQ(warm.contestDiskHits(), 1u);
    EXPECT_EQ(restored.timePs, first.timePs);
    EXPECT_EQ(restored.ipt, first.ipt);
    ASSERT_EQ(restored.coreStats.size(), first.coreStats.size());
    for (std::size_t c = 0; c < first.coreStats.size(); ++c) {
        EXPECT_EQ(restored.coreStats[c].cycles,
                  first.coreStats[c].cycles);
        EXPECT_EQ(restored.coreStats[c].retired,
                  first.coreStats[c].retired);
    }
    EXPECT_EQ(restored.leadFraction, first.leadFraction);
    EXPECT_EQ(restored.mergedStores, first.mergedStores);

    // Different seed, different entries: back to simulating.
    ResultCache other_cache(dir);
    Runner other(4000, 12);
    other.setResultCache(&other_cache);
    other.contestedPair("gcc", "gcc", "twolf");
    EXPECT_EQ(other.contestsPerformed(), 1u);
    EXPECT_EQ(other.contestDiskHits(), 0u);

    // A trace-length override is part of the key too.
    ResultCache short_cache(dir);
    Runner short_runner(4000, 11);
    short_runner.setResultCache(&short_cache);
    short_runner.contested("gcc", gccTwolf(), ContestConfig{}, 2000);
    EXPECT_EQ(short_runner.contestsPerformed(), 1u);
    EXPECT_EQ(short_runner.contestDiskHits(), 0u);
}

} // namespace
} // namespace contest
