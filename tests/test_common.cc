/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, tables,
 * environment knobs, and the IPT conversion.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <type_traits>
#include <unordered_set>
#include <utility>

#include "common/env.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace contest
{
namespace
{

/** @name Unit-mixing compile-fail probes
 *
 * Detection idiom: each probe is valid exactly when the cross-unit
 * expression compiles, so the static_asserts below pin the compile
 * errors the Strong<> wrapper exists to produce. If someone loosens
 * the operators, this test file stops building.
 */
/** @{ */
template <typename A, typename B, typename = void>
struct CanAdd : std::false_type
{};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>()
                                   + std::declval<B>())>>
    : std::true_type
{};

template <typename A, typename B, typename = void>
struct CanCompare : std::false_type
{};
template <typename A, typename B>
struct CanCompare<A, B,
                  std::void_t<decltype(std::declval<A>()
                                       == std::declval<B>())>>
    : std::true_type
{};

template <typename A, typename B, typename = void>
struct CanAssignFrom : std::false_type
{};
template <typename A, typename B>
struct CanAssignFrom<A, B,
                     std::void_t<decltype(std::declval<A &>() =
                                              std::declval<B>())>>
    : std::true_type
{};

// Same-unit and scalar forms stay valid...
static_assert(CanAdd<TimePs, TimePs>::value);
static_assert(CanAdd<TimePs, int>::value);
static_assert(CanCompare<TimePs, TimePs>::value);
static_assert(CanCompare<TimePs, int>::value);
// ...but the unit-mixing forms must not compile.
static_assert(!CanAdd<TimePs, Cycles>::value);
static_assert(!CanAdd<Cycles, TimePs>::value);
static_assert(!CanAdd<InstSeq, StoreSeq>::value);
static_assert(!CanCompare<TimePs, Cycles>::value);
static_assert(!CanCompare<InstSeq, StoreSeq>::value);
// Raw integers do not implicitly become quantities either.
static_assert(!CanAssignFrom<TimePs, std::uint64_t>::value);
// contest-lint: allow(bare-u64-quantity)
static_assert(!std::is_convertible_v<std::uint64_t, TimePs>);
static_assert(!std::is_convertible_v<TimePs, std::uint64_t>);
/** @} */

TEST(Strong, ArithmeticAndComparison)
{
    TimePs a{100};
    TimePs b{40};
    EXPECT_EQ((a + b).count(), 140u);
    EXPECT_EQ((a - b).count(), 60u);
    EXPECT_EQ(a / b, 2u);
    EXPECT_EQ((a * 3).count(), 300u);
    EXPECT_EQ((3 * a).count(), 300u);
    EXPECT_EQ((a / 4).count(), 25u);
    EXPECT_EQ((a + 1).count(), 101u);
    EXPECT_EQ((a - 1).count(), 99u);
    EXPECT_TRUE(a > b);
    EXPECT_TRUE(b < 100);
    EXPECT_TRUE(a == 100u);
    a += b;
    EXPECT_EQ(a.count(), 140u);
    a -= 40;
    EXPECT_EQ(a.count(), 100u);
    EXPECT_EQ((a++).count(), 100u);
    EXPECT_EQ((++a).count(), 102u);
    EXPECT_EQ(TimePs::max().count(),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Strong, CyclesToPsIsTheOnlyCrossing)
{
    // 5 cycles at a 250 ps clock period.
    EXPECT_EQ(cyclesToPs(Cycles{5}, TimePs{250}).count(), 1250u);
    EXPECT_EQ(cyclesToPs(Cycles{}, TimePs{250}), TimePs{});
}

TEST(Strong, HashesLikeRawRepresentation)
{
    std::unordered_set<InstSeq> seen;
    seen.insert(InstSeq{3});
    seen.insert(InstSeq{3});
    seen.insert(InstSeq{4});
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(std::hash<InstSeq>{}(InstSeq{42}),
              std::hash<std::uint64_t>{}(42));
}

TEST(StrongDeathTest, DebugSubtractionPanicsOnWrap)
{
#if CONTEST_CHECKED_UNITS
    // The checked operator- turns the silent wrap behind the original
    // SyncStoreQueue::canAccept bug into an immediate panic.
    EXPECT_DEATH((void)(TimePs{1} - TimePs{2}),
                 "strong-type underflow");
    StoreSeq merged{10};
    StoreSeq performed{4};
    EXPECT_DEATH((void)(performed - merged),
                 "strong-type underflow");
#else
    GTEST_SKIP() << "checked units compile out under NDEBUG "
                    "(covered by the Debug sanitize CI jobs)";
#endif
}

TEST(Types, InstPerNsConvertsPicoseconds)
{
    // 1000 instructions in 500 ns -> 2 inst/ns.
    EXPECT_DOUBLE_EQ(instPerNs(InstSeq{1000}, TimePs{500 * psPerNs}), 2.0);
    EXPECT_DOUBLE_EQ(instPerNs(InstSeq{}, TimePs{1000}), 0.0);
    EXPECT_DOUBLE_EQ(instPerNs(InstSeq{1000}, TimePs{}), 0.0);
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
    EXPECT_FALSE(Rng(1).chance(0.0));
    EXPECT_TRUE(Rng(1).chance(1.0));
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(17);
    std::vector<double> weights{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.weighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RunningStat, TracksMoments)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.sample(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStat, ResetForgetsEverything)
{
    RunningStat s;
    s.sample(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 3); // buckets [0,10) [10,20) [20,30) + overflow
    h.sample(5.0);
    h.sample(15.0);
    h.sample(25.0);
    h.sample(35.0);
    h.sample(-1.0); // clamps to first bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.numBuckets(), 3u);
}

TEST(Means, ArithmeticHarmonicGeometric)
{
    std::vector<double> xs{1.0, 2.0, 4.0};
    EXPECT_NEAR(arithmeticMean(xs), 7.0 / 3.0, 1e-12);
    EXPECT_NEAR(harmonicMean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
    EXPECT_NEAR(geometricMean(xs), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(ArgmaxFirst, PicksTheFirstOfTiedMaxima)
{
    // Tie-breaking must be first-wins so best-row selection is
    // deterministic regardless of how a sweep is ordered or split
    // across workers.
    std::vector<double> tied{1.0, 5.0, 3.0, 5.0, 5.0};
    EXPECT_EQ(argmaxFirst(tied), 1u);
    std::vector<double> single{2.0};
    EXPECT_EQ(argmaxFirst(single), 0u);
    std::vector<double> rising{-3.0, -2.0, -1.0};
    EXPECT_EQ(argmaxFirst(rising), 2u);
}

TEST(ArgmaxFirst, RejectsEmptyInput)
{
    EXPECT_EXIT(argmaxFirst({}), ::testing::ExitedWithCode(1),
                "argmaxFirst");
}

TEST(Means, WeightedHarmonic)
{
    // Equal weights reduce to the plain harmonic mean.
    std::vector<double> xs{2.0, 4.0};
    std::vector<double> w{1.0, 1.0};
    EXPECT_NEAR(weightedHarmonicMean(xs, w), harmonicMean(xs), 1e-12);
    // All weight on one element returns (nearly) that element.
    std::vector<double> w2{1e9, 1.0};
    EXPECT_NEAR(weightedHarmonicMean(xs, w2), 2.0, 1e-6);
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable t("Demo");
    t.header({"name", "ipt"});
    t.row({"gcc", TextTable::num(2.27)});
    t.row({"mcf", TextTable::num(0.93)});
    std::string out = t.render();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("gcc"), std::string::npos);
    EXPECT_NE(out.find("2.27"), std::string::npos);
    EXPECT_NE(out.find("0.93"), std::string::npos);
}

TEST(TextTable, FormattersRound)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::pct(0.153, 1), "+15.3%");
    EXPECT_EQ(TextTable::pct(-0.05, 1), "-5.0%");
}

TEST(Env, ReadsAndDefaults)
{
    ::setenv("CONTEST_TEST_ENV_U64", "1234", 1);
    EXPECT_EQ(envU64("CONTEST_TEST_ENV_U64", 7), 1234u);
    EXPECT_EQ(envU64("CONTEST_TEST_ENV_MISSING", 7), 7u);
    ::setenv("CONTEST_TEST_ENV_FLAG", "1", 1);
    EXPECT_TRUE(envFlag("CONTEST_TEST_ENV_FLAG"));
    ::setenv("CONTEST_TEST_ENV_FLAG", "0", 1);
    EXPECT_FALSE(envFlag("CONTEST_TEST_ENV_FLAG"));
    ::unsetenv("CONTEST_TEST_ENV_U64");
    ::unsetenv("CONTEST_TEST_ENV_FLAG");
}

TEST(Env, MalformedValuesWarnAndFallBack)
{
    // Every malformed shape strtoull would mis-handle silently must
    // instead keep the caller's default: trailing garbage, negative
    // values (which strtoull wraps to 2^64-1), non-numbers, values
    // past 2^64-1 (which strtoull saturates), and pure whitespace.
    const char *name = "CONTEST_TEST_ENV_BAD";
    for (const char *bad :
         {"4abc", "12 8", "-1", "-0", "abc", "0x10", "3.5",
          "99999999999999999999", "  ", "+"}) {
        ::setenv(name, bad, 1);
        EXPECT_EQ(envU64(name, 7), 7u) << "value '" << bad << "'";
    }

    // Leading whitespace around a clean number is still accepted.
    ::setenv(name, "  42", 1);
    EXPECT_EQ(envU64(name, 7), 42u);

    // The extremes of the valid range parse exactly.
    ::setenv(name, "18446744073709551615", 1);
    EXPECT_EQ(envU64(name, 7), 18446744073709551615ull);
    ::setenv(name, "0", 1);
    EXPECT_EQ(envU64(name, 7), 0u);

    // envFlag shares the parser: garbage is "unset", not "truthy".
    ::setenv(name, "yes", 1);
    EXPECT_FALSE(envFlag(name));
    ::unsetenv(name);
}

} // namespace
} // namespace contest
