/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, tables,
 * environment knobs, and the IPT conversion.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "common/env.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace contest
{
namespace
{

TEST(Types, InstPerNsConvertsPicoseconds)
{
    // 1000 instructions in 500 ns -> 2 inst/ns.
    EXPECT_DOUBLE_EQ(instPerNs(1000, 500 * psPerNs), 2.0);
    EXPECT_DOUBLE_EQ(instPerNs(0, 1000), 0.0);
    EXPECT_DOUBLE_EQ(instPerNs(1000, 0), 0.0);
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
    EXPECT_FALSE(Rng(1).chance(0.0));
    EXPECT_TRUE(Rng(1).chance(1.0));
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(17);
    std::vector<double> weights{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.weighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RunningStat, TracksMoments)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.sample(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStat, ResetForgetsEverything)
{
    RunningStat s;
    s.sample(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 3); // buckets [0,10) [10,20) [20,30) + overflow
    h.sample(5.0);
    h.sample(15.0);
    h.sample(25.0);
    h.sample(35.0);
    h.sample(-1.0); // clamps to first bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.numBuckets(), 3u);
}

TEST(Means, ArithmeticHarmonicGeometric)
{
    std::vector<double> xs{1.0, 2.0, 4.0};
    EXPECT_NEAR(arithmeticMean(xs), 7.0 / 3.0, 1e-12);
    EXPECT_NEAR(harmonicMean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
    EXPECT_NEAR(geometricMean(xs), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(Means, WeightedHarmonic)
{
    // Equal weights reduce to the plain harmonic mean.
    std::vector<double> xs{2.0, 4.0};
    std::vector<double> w{1.0, 1.0};
    EXPECT_NEAR(weightedHarmonicMean(xs, w), harmonicMean(xs), 1e-12);
    // All weight on one element returns (nearly) that element.
    std::vector<double> w2{1e9, 1.0};
    EXPECT_NEAR(weightedHarmonicMean(xs, w2), 2.0, 1e-6);
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable t("Demo");
    t.header({"name", "ipt"});
    t.row({"gcc", TextTable::num(2.27)});
    t.row({"mcf", TextTable::num(0.93)});
    std::string out = t.render();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("gcc"), std::string::npos);
    EXPECT_NE(out.find("2.27"), std::string::npos);
    EXPECT_NE(out.find("0.93"), std::string::npos);
}

TEST(TextTable, FormattersRound)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::pct(0.153, 1), "+15.3%");
    EXPECT_EQ(TextTable::pct(-0.05, 1), "-5.0%");
}

TEST(Env, ReadsAndDefaults)
{
    ::setenv("CONTEST_TEST_ENV_U64", "1234", 1);
    EXPECT_EQ(envU64("CONTEST_TEST_ENV_U64", 7), 1234u);
    EXPECT_EQ(envU64("CONTEST_TEST_ENV_MISSING", 7), 7u);
    ::setenv("CONTEST_TEST_ENV_FLAG", "1", 1);
    EXPECT_TRUE(envFlag("CONTEST_TEST_ENV_FLAG"));
    ::setenv("CONTEST_TEST_ENV_FLAG", "0", 1);
    EXPECT_FALSE(envFlag("CONTEST_TEST_ENV_FLAG"));
    ::unsetenv("CONTEST_TEST_ENV_U64");
    ::unsetenv("CONTEST_TEST_ENV_FLAG");
}

} // namespace
} // namespace contest
