/**
 * @file
 * Unit tests for the synthetic workload substrate: determinism,
 * composition, dependence structure, memory footprints, and the
 * SPEC2000-like profile registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "trace/generator.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"

namespace contest
{
namespace
{

TEST(Profiles, RegistryHasElevenBenchmarksInPaperOrder)
{
    auto names = profileNames();
    std::vector<std::string> expected{
        "bzip", "crafty", "gap", "gcc", "gzip", "mcf",
        "parser", "perl", "twolf", "vortex", "vpr"};
    EXPECT_EQ(names, expected);
}

TEST(Profiles, LookupByNameAndUnknownIsFatal)
{
    EXPECT_EQ(profileByName("gcc").name, "gcc");
    EXPECT_EXIT(profileByName("eon"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Profiles, WeightsArePositiveAndPhasesNonEmpty)
{
    for (const auto &p : spec2000IntProfiles()) {
        EXPECT_FALSE(p.phases.empty()) << p.name;
        for (const auto &spec : p.phases) {
            EXPECT_GT(spec.weight, 0.0) << p.name;
            EXPECT_GT(spec.params.meanLen, 0u) << p.name;
            EXPECT_GT(spec.params.footprintBytes, 0u) << p.name;
        }
    }
}

TEST(Generator, DeterministicForEqualSeeds)
{
    auto a = makeBenchmarkTrace("gcc", 99, 20000);
    auto b = makeBenchmarkTrace("gcc", 99, 20000);
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
        ASSERT_EQ((*a)[i].pc, (*b)[i].pc);
        ASSERT_EQ((*a)[i].op, (*b)[i].op);
        ASSERT_EQ((*a)[i].addr, (*b)[i].addr);
        ASSERT_EQ((*a)[i].taken, (*b)[i].taken);
        ASSERT_EQ((*a)[i].src1, (*b)[i].src1);
        ASSERT_EQ((*a)[i].src2, (*b)[i].src2);
        ASSERT_EQ((*a)[i].dst, (*b)[i].dst);
    }
}

TEST(Generator, DifferentSeedsProduceDifferentTraces)
{
    auto a = makeBenchmarkTrace("gcc", 1, 5000);
    auto b = makeBenchmarkTrace("gcc", 2, 5000);
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < a->size(); ++i)
        if ((*a)[i].op != (*b)[i].op || (*a)[i].addr != (*b)[i].addr)
            ++diffs;
    EXPECT_GT(diffs, a->size() / 10);
}

TEST(Generator, ExactRequestedLength)
{
    for (std::uint64_t n : {100ull, 1234ull, 50000ull})
        EXPECT_EQ(makeBenchmarkTrace("vpr", 5, n)->size(), n);
}

TEST(Generator, MixRoughlyMatchesPhaseFractions)
{
    // A single-phase profile should reproduce its op fractions.
    BenchmarkProfile p;
    p.name = "mixcheck";
    p.syscallGap = 0;
    auto spec = PhaseSpec{PhaseParams::canonical(PhaseKind::Branchy),
                          1.0};
    p.phases = {spec};
    TraceGenerator gen(p, 3);
    auto t = gen.generate(60000);
    auto mix = t->mix();
    double n = static_cast<double>(t->size());
    EXPECT_NEAR(mix.loads / n, spec.params.fracLoad, 0.02);
    EXPECT_NEAR(mix.stores / n, spec.params.fracStore, 0.02);
    EXPECT_NEAR(mix.condBranches / n, spec.params.fracCondBranch,
                0.02);
}

TEST(Generator, PhasesChangeAtFineGranularity)
{
    auto t = makeBenchmarkTrace("twolf", 7, 100000);
    // twolf's mean phase lengths are ~100-120 instructions, so a
    // 100k trace must contain hundreds of phase changes.
    EXPECT_GT(t->phaseChanges(), 300u);
    // Mean phase length below a thousand instructions — the paper's
    // Section 2 premise.
    double mean_len = static_cast<double>(t->size())
        / static_cast<double>(t->phaseChanges() + 1);
    EXPECT_LT(mean_len, 1000.0);
}

TEST(Generator, MemoryAccessesStayInsideFootprints)
{
    const auto &prof = profileByName("parser");
    Addr max_fp = 0;
    for (const auto &spec : prof.phases)
        max_fp = std::max(max_fp, spec.params.footprintBytes);

    auto t = makeBenchmarkTrace("parser", 11, 50000);
    for (std::size_t i = 0; i < t->size(); ++i) {
        const auto &inst = (*t)[i];
        if (!inst.isMem())
            continue;
        // parser shares one data region, so every access must land
        // within [base, base + largest footprint).
        ASSERT_GE(inst.addr, 0x1000'0000ULL);
        ASSERT_LT(inst.addr, 0x1000'0000ULL + max_fp);
    }
}

TEST(Generator, SourcesReferToRecentProducers)
{
    auto t = makeBenchmarkTrace("gcc", 13, 20000);
    // Track last-writer position per register; any src must have
    // been produced within the generator's ring (64 producers).
    std::map<RegId, std::size_t> last_writer;
    std::size_t producers_seen = 0;
    for (std::size_t i = 0; i < t->size(); ++i) {
        const auto &inst = (*t)[i];
        for (RegId src : {inst.src1, inst.src2}) {
            if (src == invalidReg)
                continue;
            auto it = last_writer.find(src);
            ASSERT_NE(it, last_writer.end())
                << "src register never written, inst " << i;
        }
        if (inst.producesValue()) {
            last_writer[inst.dst] = i;
            ++producers_seen;
        }
    }
    EXPECT_GT(producers_seen, t->size() / 3);
}

TEST(Generator, BranchesHaveStablePcs)
{
    auto t = makeBenchmarkTrace("perl", 17, 40000);
    // Each conditional-branch pc must always carry the same target
    // (static branch sites).
    std::map<Addr, Addr> target_of;
    for (std::size_t i = 0; i < t->size(); ++i) {
        const auto &inst = (*t)[i];
        if (inst.op != OpClass::BranchCond)
            continue;
        auto [it, inserted] = target_of.emplace(inst.pc, inst.target);
        if (!inserted)
            ASSERT_EQ(it->second, inst.target)
                << "branch site changed target";
    }
    EXPECT_GT(target_of.size(), 10u);
}

TEST(Generator, SyscallsAppearAtConfiguredRate)
{
    auto t = makeBenchmarkTrace("gcc", 19, 400000);
    auto mix = t->mix();
    // gcc's profile uses the default 200k gap: expect ~2 +/- slack.
    EXPECT_GE(mix.syscalls, 1u);
    EXPECT_LE(mix.syscalls, 5u);
}

TEST(Generator, SyscallGapZeroMeansNone)
{
    BenchmarkProfile p;
    p.name = "nosyscall";
    p.syscallGap = 0;
    p.phases = {
        PhaseSpec{PhaseParams::canonical(PhaseKind::HotLoop), 1.0}};
    TraceGenerator gen(p, 23);
    EXPECT_EQ(gen.generate(50000)->mix().syscalls, 0u);
}

TEST(Generator, ChaseLoadsFormDependentChains)
{
    BenchmarkProfile p;
    p.name = "chasecheck";
    p.syscallGap = 0;
    auto params = PhaseParams::canonical(PhaseKind::PointerChase);
    params.chaseChains = 2;
    p.phases = {PhaseSpec{params, 1.0}};
    TraceGenerator gen(p, 29);
    auto t = gen.generate(20000);

    // After warmup, every chase load's src1 must be the dst of an
    // earlier chase load (its chain predecessor).
    std::set<RegId> load_dsts;
    std::size_t chained = 0;
    std::size_t loads = 0;
    for (std::size_t i = 0; i < t->size(); ++i) {
        const auto &inst = (*t)[i];
        if (inst.op != OpClass::Load)
            continue;
        ++loads;
        if (loads > 10 && load_dsts.count(inst.src1))
            ++chained;
        load_dsts.insert(inst.dst);
    }
    EXPECT_GT(chained, loads * 8 / 10);
}

TEST(Generator, StreamAddressesAdvanceByStride)
{
    BenchmarkProfile p;
    p.name = "streamcheck";
    p.syscallGap = 0;
    auto params = PhaseParams::canonical(PhaseKind::Streaming);
    params.strideBytes = 32;
    p.phases = {PhaseSpec{params, 1.0}};
    TraceGenerator gen(p, 31);
    auto t = gen.generate(10000);

    Addr prev = 0;
    std::size_t strided = 0;
    std::size_t mem_ops = 0;
    for (std::size_t i = 0; i < t->size(); ++i) {
        const auto &inst = (*t)[i];
        if (!inst.isMem())
            continue;
        ++mem_ops;
        if (prev != 0 && inst.addr == prev + 32)
            ++strided;
        prev = inst.addr;
    }
    EXPECT_GT(strided, mem_ops * 9 / 10);
}

TEST(TraceContainer, MixCountsEveryClass)
{
    Trace t("tiny");
    TraceInst alu;
    alu.op = OpClass::IntAlu;
    TraceInst ld;
    ld.op = OpClass::Load;
    TraceInst br;
    br.op = OpClass::BranchCond;
    t.push(alu, 0);
    t.push(ld, 0);
    t.push(br, 1);
    auto mix = t.mix();
    EXPECT_EQ(mix.alu, 1u);
    EXPECT_EQ(mix.loads, 1u);
    EXPECT_EQ(mix.condBranches, 1u);
    EXPECT_EQ(mix.total(), 3u);
    EXPECT_EQ(t.phaseChanges(), 1u);
}

TEST(TraceInst, HelperPredicates)
{
    TraceInst inst;
    inst.op = OpClass::Load;
    inst.dst = 3;
    EXPECT_TRUE(inst.isMem());
    EXPECT_FALSE(inst.isBranch());
    EXPECT_TRUE(inst.producesValue());
    inst.op = OpClass::BranchCond;
    inst.dst = invalidReg;
    EXPECT_TRUE(inst.isBranch());
    EXPECT_FALSE(inst.producesValue());
    EXPECT_EQ(inst.execLatency(), 1u);
    inst.op = OpClass::IntMul;
    EXPECT_EQ(inst.execLatency(), 3u);
    inst.op = OpClass::IntDiv;
    EXPECT_EQ(inst.execLatency(), 12u);
}

} // namespace
} // namespace contest

// Appended: trace serialization round-trip tests.
#include "trace/trace_io.hh"

#include <cstdio>

namespace contest
{
namespace
{

TEST(TraceIo, RoundTripPreservesEverything)
{
    auto original = makeBenchmarkTrace("gcc", 55, 5000);
    std::string path = ::testing::TempDir() + "roundtrip.ctrc";
    writeTrace(path, *original);
    auto loaded = readTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded->size(), original->size());
    EXPECT_EQ(loaded->name(), original->name());
    for (std::size_t i = 0; i < original->size(); ++i) {
        ASSERT_EQ((*loaded)[i].pc, (*original)[i].pc);
        ASSERT_EQ((*loaded)[i].addr, (*original)[i].addr);
        ASSERT_EQ((*loaded)[i].target, (*original)[i].target);
        ASSERT_EQ((*loaded)[i].src1, (*original)[i].src1);
        ASSERT_EQ((*loaded)[i].src2, (*original)[i].src2);
        ASSERT_EQ((*loaded)[i].dst, (*original)[i].dst);
        ASSERT_EQ((*loaded)[i].op, (*original)[i].op);
        ASSERT_EQ((*loaded)[i].taken, (*original)[i].taken);
        ASSERT_EQ(loaded->phaseOf(i), original->phaseOf(i));
    }
}

TEST(TraceIo, RejectsGarbageFiles)
{
    std::string path = ::testing::TempDir() + "garbage.ctrc";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "not a contest trace");
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(readTrace("/nonexistent/trace.ctrc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    Trace empty("void");
    std::string path = ::testing::TempDir() + "empty.ctrc";
    writeTrace(path, empty);
    auto loaded = readTrace(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded->size(), 0u);
    EXPECT_EQ(loaded->name(), "void");
}

} // namespace
} // namespace contest
