/**
 * @file
 * Tests for the contest_lint rule engine (tools/lint_core.hh): each
 * rule must fire on the canonical bad shape, stay quiet on the
 * idiomatic fix, and honor the allow-comment escape hatch. The
 * seeded fixture in tests/lint_fixtures/ is linted too, so the
 * binary's non-zero-on-fixture acceptance check can never rot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "../tools/lint_core.hh"

namespace contest::lint
{
namespace
{

std::vector<std::string>
rulesIn(const std::vector<Violation> &vs)
{
    std::vector<std::string> rules;
    for (const auto &v : vs)
        rules.push_back(v.rule);
    return rules;
}

bool
fired(const std::vector<Violation> &vs, const std::string &rule)
{
    auto rules = rulesIn(vs);
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(LintBareU64, FlagsQuantityNamesOutsideTypesHeader)
{
    auto v = lintFile("src/core/x.cc",
                      "std::uint64_t arriveTimePs = 0;\n"
                      "std::uint64_t stallCycles = 0;\n"
                      "std::uint64_t fetchSeq = 0;\n"
                      "std::uint64_t grbLatency = 0;\n");
    EXPECT_EQ(v.size(), 4u);
    for (const auto &f : v)
        EXPECT_EQ(f.rule, "bare-u64-quantity");
}

TEST(LintBareU64, IgnoresNonQuantityNamesAndTypesHeader)
{
    EXPECT_TRUE(lintFile("src/core/x.cc",
                         "std::uint64_t steps = 0;\n"
                         "std::uint64_t hash = 0;\n"
                         "std::uint64_t footprintBytes = 0;\n")
                    .empty());
    // The Strong<> aliases themselves live on raw uint64_t.
    EXPECT_TRUE(lintFile("src/common/types.hh",
                         "#ifndef CONTEST_COMMON_TYPES_HH\n"
                         "#define CONTEST_COMMON_TYPES_HH\n"
                         "using TimePs = Strong<struct TimePsTag, "
                         "std::uint64_t>;\n"
                         "#endif\n")
                    .empty());
}

TEST(LintBareU64, AllowCommentSuppresses)
{
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "std::uint64_t rawPs = 0; "
                 "// contest-lint: allow(bare-u64-quantity)\n")
            .empty());
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "// contest-lint: allow(bare-u64-quantity)\n"
                 "std::uint64_t rawPs = 0;\n")
            .empty());
}

TEST(LintUnsignedSub, FlagsTheCanAcceptBugShape)
{
    // The exact PR 1 bug: performed - numMerged wraps when the
    // queue state goes stale, and the comparison happily accepts.
    auto v = lintFile("src/mem/q.cc",
                      "return performed[core] - numMerged < cap;\n");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "unsigned-sub");
    EXPECT_EQ(v[0].line, 1u);
}

TEST(LintUnsignedSub, ParenthesizedOrStrongIsQuiet)
{
    EXPECT_TRUE(
        lintFile("src/mem/q.cc",
                 "return (performed[core] - numMerged).count() < "
                 "cap;\n")
            .empty());
    EXPECT_TRUE(
        lintFile("src/mem/q.cc",
                 "return (performed[core] - numMerged) < cap;\n")
            .empty());
    // Arrow members and templates are not subtractions.
    EXPECT_TRUE(lintFile("src/mem/q.cc",
                         "if (it->seq < rob.front().seq) {}\n"
                         "while (trace->size() < num_insts) {}\n"
                         "std::vector<TimePs> v;\n")
                    .empty());
    // Numeric literal operands are not counter subtraction.
    EXPECT_TRUE(
        lintFile("src/mem/q.cc", "if (i < n - 1) {}\n").empty());
}

TEST(LintUnsignedSub, FlagsBothComparisonDirections)
{
    EXPECT_TRUE(fired(
        lintFile("src/mem/q.cc", "if (head - tail > cap) {}\n"),
        "unsigned-sub"));
    EXPECT_TRUE(fired(
        lintFile("src/mem/q.cc", "if (head - tail >= cap) {}\n"),
        "unsigned-sub"));
}

TEST(LintIncludeGuard, EnforcesPathDerivedName)
{
    EXPECT_TRUE(lintFile("src/mem/cache.hh",
                         "#ifndef CONTEST_MEM_CACHE_HH\n"
                         "#define CONTEST_MEM_CACHE_HH\n"
                         "#endif\n")
                    .empty());
    auto v = lintFile("src/mem/cache.hh",
                      "#ifndef CACHE_H\n#define CACHE_H\n#endif\n");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "include-guard");
    EXPECT_NE(v[0].message.find("CONTEST_MEM_CACHE_HH"),
              std::string::npos);
    // Missing guard entirely.
    EXPECT_TRUE(fired(lintFile("src/mem/cache.hh", "int x;\n"),
                      "include-guard"));
}

TEST(LintIncludeGuard, CollapsedDuplicateTokensAccepted)
{
    // bench/bench_common.hh guards as CONTEST_BENCH_COMMON_HH.
    EXPECT_TRUE(lintFile("bench/bench_common.hh",
                         "#ifndef CONTEST_BENCH_COMMON_HH\n"
                         "#define CONTEST_BENCH_COMMON_HH\n"
                         "#endif\n")
                    .empty());
}

TEST(LintNakedNew, FlagsRawNewButNotIdentifiers)
{
    EXPECT_TRUE(fired(
        lintFile("src/core/x.cc", "auto *p = new Widget();\n"),
        "naked-new"));
    EXPECT_TRUE(lintFile("src/core/x.cc",
                         "auto p = std::make_unique<Widget>();\n"
                         "int renewed = renew();\n"
                         "// a new comment mentioning new\n")
                    .empty());
}

TEST(LintCoreContainer, FlagsDequeAndPriorityQueueInCoreOnly)
{
    const char *decl = "std::deque<FetchEntry> fetchQueue;\n"
                       "std::priority_queue<Ev> completions;\n";
    const auto rules = rulesIn(lintFile("src/core/ooo_core.cc", decl));
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         std::string("core-container")),
              2);
    // Outside src/core/ the containers are fine (result_fifo.hh
    // legitimately deques GRB arrival timestamps).
    EXPECT_FALSE(
        fired(lintFile("src/contest/result_fifo.cc", decl),
              "core-container"));
    // The replacements do not trip the rule.
    EXPECT_TRUE(lintFile("src/core/ooo_core.cc",
                         "RingBuffer<RobEntry> rob;\n"
                         "MinHeap<TimedReady> timedReady;\n")
                    .empty());
}

TEST(LintCoreContainer, AllowCommentSuppresses)
{
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "// contest-lint: allow(core-container)\n"
                 "std::deque<Snapshot> checkpoints;\n")
            .empty());
}

TEST(LintCoreContainer, FixtureContentTripsUnderCorePath)
{
    std::ifstream in(std::string(CONTEST_LINT_FIXTURE_DIR)
                     + "/bad_example.hh");
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(fired(lintFile("src/core/bad_example.hh", ss.str()),
                      "core-container"));
    // Under its own path the fixture must stay core-container-free
    // (the CI fixture acceptance check counts on the other rules).
    EXPECT_FALSE(
        fired(lintFile("tests/lint_fixtures/bad_example.hh",
                       ss.str()),
              "core-container"));
}

TEST(LintCrossCoreMutation, FlagsQualifiedCallsOutsideSystemCc)
{
    const char *calls =
        "units[d]->receiveResult(src, seq, arrival);\n"
        "storeQ->performStore(c, addr);\n"
        "sys->noteRetire(self, seq);\n"
        "units[d]->commitDeferredResult(c, seq, at, pushed);\n";
    const auto rules =
        rulesIn(lintFile("src/contest/unit.cc", calls));
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         std::string("cross-core-mutation")),
              4);
    EXPECT_TRUE(fired(lintFile("src/core/ooo_core.cc",
                               "q.performStore(c, addr);\n"),
                      "cross-core-mutation"));
}

TEST(LintCrossCoreMutation, SystemCcAndOtherLayersAreExempt)
{
    const char *call = "units[d]->receiveResult(src, seq, at);\n";
    // system.cc owns the deterministic apply order.
    EXPECT_TRUE(lintFile("src/contest/system.cc", call).empty());
    // Outside the contest/core layers the rule does not apply
    // (tests and the store queue's own implementation, e.g.).
    EXPECT_TRUE(
        lintFile("tests/test_contest.cc", call).empty());
    EXPECT_TRUE(lintFile("src/mem/sync_store_queue.cc",
                         "SyncStoreQueue::performStore(CoreId core, "
                         "Addr addr)\n")
                    .empty());
}

TEST(LintCrossCoreMutation, DeclarationsAndDefinitionsAreQuiet)
{
    // Bare and class-qualified spellings are declarations or
    // definitions, not member calls.
    EXPECT_TRUE(lintFile("src/contest/unit.cc",
                         "void\n"
                         "CoreContestUnit::receiveResult(CoreId src, "
                         "InstSeq seq, TimePs arrival)\n"
                         "{\n}\n")
                    .empty());
    EXPECT_TRUE(
        lintFile("src/contest/unit.cc",
                 "    void noteRetire(CoreId core, InstSeq seq);\n")
            .empty());
}

TEST(LintCrossCoreMutation, AllowCommentSuppresses)
{
    EXPECT_TRUE(
        lintFile("src/contest/unit.cc",
                 "// contest-lint: allow(cross-core-mutation)\n"
                 "sys->noteRetire(self, seq);\n")
            .empty());
}

TEST(LintPanicMessage, RequiresInvariantNamingMessage)
{
    EXPECT_TRUE(fired(
        lintFile("src/core/x.cc", "panic(\"bad state\");\n"),
        "panic-message"));
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "panic_if(core >= performed.size(),\n"
                 "         \"SyncStoreQueue: core %u out of "
                 "range\", core);\n")
            .empty());
}

TEST(LintFixture, SeededFixtureTripsEveryRule)
{
    std::ifstream in(std::string(CONTEST_LINT_FIXTURE_DIR)
                     + "/bad_example.hh");
    ASSERT_TRUE(in.good())
        << "fixture missing: tests/lint_fixtures/bad_example.hh";
    std::ostringstream ss;
    ss << in.rdbuf();
    auto v = lintFile("tests/lint_fixtures/bad_example.hh", ss.str());
    EXPECT_TRUE(fired(v, "bare-u64-quantity"));
    EXPECT_TRUE(fired(v, "unsigned-sub"));
    EXPECT_TRUE(fired(v, "include-guard"));
    EXPECT_TRUE(fired(v, "naked-new"));
    EXPECT_TRUE(fired(v, "panic-message"));
    // The two allow-commented declarations must not be reported:
    // exactly two bare-u64 findings remain (startTimePs,
    // stallCycles).
    const auto rules = rulesIn(v);
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         std::string("bare-u64-quantity")),
              2);
}

} // namespace
} // namespace contest::lint
