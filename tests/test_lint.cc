/**
 * @file
 * Tests for the contest_lint engines: the line rules
 * (tools/lint_core.hh) and the window-phase call-graph analyzer
 * (tools/lint_callgraph.hh). Each rule must fire on the canonical
 * bad shape, stay quiet on the idiomatic fix, and honor the
 * allow-comment escape hatches (line, file, and CONTEST_WINDOW_SAFE
 * for the call-graph engine). The seeded fixtures in
 * tests/lint_fixtures/ are linted too, so the binary's
 * non-zero-on-fixture acceptance check can never rot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "../tools/lint_callgraph.hh"
#include "../tools/lint_core.hh"

namespace contest::lint
{
namespace
{

std::vector<std::string>
rulesIn(const std::vector<Violation> &vs)
{
    std::vector<std::string> rules;
    for (const auto &v : vs)
        rules.push_back(v.rule);
    return rules;
}

bool
fired(const std::vector<Violation> &vs, const std::string &rule)
{
    auto rules = rulesIn(vs);
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(LintBareU64, FlagsQuantityNamesOutsideTypesHeader)
{
    auto v = lintFile("src/core/x.cc",
                      "std::uint64_t arriveTimePs = 0;\n"
                      "std::uint64_t stallCycles = 0;\n"
                      "std::uint64_t fetchSeq = 0;\n"
                      "std::uint64_t grbLatency = 0;\n");
    EXPECT_EQ(v.size(), 4u);
    for (const auto &f : v)
        EXPECT_EQ(f.rule, "bare-u64-quantity");
}

TEST(LintBareU64, IgnoresNonQuantityNamesAndTypesHeader)
{
    EXPECT_TRUE(lintFile("src/core/x.cc",
                         "std::uint64_t steps = 0;\n"
                         "std::uint64_t hash = 0;\n"
                         "std::uint64_t footprintBytes = 0;\n")
                    .empty());
    // The Strong<> aliases themselves live on raw uint64_t.
    EXPECT_TRUE(lintFile("src/common/types.hh",
                         "#ifndef CONTEST_COMMON_TYPES_HH\n"
                         "#define CONTEST_COMMON_TYPES_HH\n"
                         "using TimePs = Strong<struct TimePsTag, "
                         "std::uint64_t>;\n"
                         "#endif\n")
                    .empty());
}

TEST(LintBareU64, AllowCommentSuppresses)
{
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "std::uint64_t rawPs = 0; "
                 "// contest-lint: allow(bare-u64-quantity)\n")
            .empty());
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "// contest-lint: allow(bare-u64-quantity)\n"
                 "std::uint64_t rawPs = 0;\n")
            .empty());
}

TEST(LintUnsignedSub, FlagsTheCanAcceptBugShape)
{
    // The exact PR 1 bug: performed - numMerged wraps when the
    // queue state goes stale, and the comparison happily accepts.
    auto v = lintFile("src/mem/q.cc",
                      "return performed[core] - numMerged < cap;\n");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "unsigned-sub");
    EXPECT_EQ(v[0].line, 1u);
}

TEST(LintUnsignedSub, ParenthesizedOrStrongIsQuiet)
{
    EXPECT_TRUE(
        lintFile("src/mem/q.cc",
                 "return (performed[core] - numMerged).count() < "
                 "cap;\n")
            .empty());
    EXPECT_TRUE(
        lintFile("src/mem/q.cc",
                 "return (performed[core] - numMerged) < cap;\n")
            .empty());
    // Arrow members and templates are not subtractions.
    EXPECT_TRUE(lintFile("src/mem/q.cc",
                         "if (it->seq < rob.front().seq) {}\n"
                         "while (trace->size() < num_insts) {}\n"
                         "std::vector<TimePs> v;\n")
                    .empty());
    // Numeric literal operands are not counter subtraction.
    EXPECT_TRUE(
        lintFile("src/mem/q.cc", "if (i < n - 1) {}\n").empty());
}

TEST(LintUnsignedSub, FlagsBothComparisonDirections)
{
    EXPECT_TRUE(fired(
        lintFile("src/mem/q.cc", "if (head - tail > cap) {}\n"),
        "unsigned-sub"));
    EXPECT_TRUE(fired(
        lintFile("src/mem/q.cc", "if (head - tail >= cap) {}\n"),
        "unsigned-sub"));
}

TEST(LintIncludeGuard, EnforcesPathDerivedName)
{
    EXPECT_TRUE(lintFile("src/mem/cache.hh",
                         "#ifndef CONTEST_MEM_CACHE_HH\n"
                         "#define CONTEST_MEM_CACHE_HH\n"
                         "#endif\n")
                    .empty());
    auto v = lintFile("src/mem/cache.hh",
                      "#ifndef CACHE_H\n#define CACHE_H\n#endif\n");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "include-guard");
    EXPECT_NE(v[0].message.find("CONTEST_MEM_CACHE_HH"),
              std::string::npos);
    // Missing guard entirely.
    EXPECT_TRUE(fired(lintFile("src/mem/cache.hh", "int x;\n"),
                      "include-guard"));
}

TEST(LintIncludeGuard, CollapsedDuplicateTokensAccepted)
{
    // bench/bench_common.hh guards as CONTEST_BENCH_COMMON_HH.
    EXPECT_TRUE(lintFile("bench/bench_common.hh",
                         "#ifndef CONTEST_BENCH_COMMON_HH\n"
                         "#define CONTEST_BENCH_COMMON_HH\n"
                         "#endif\n")
                    .empty());
}

TEST(LintNakedNew, FlagsRawNewButNotIdentifiers)
{
    EXPECT_TRUE(fired(
        lintFile("src/core/x.cc", "auto *p = new Widget();\n"),
        "naked-new"));
    EXPECT_TRUE(lintFile("src/core/x.cc",
                         "auto p = std::make_unique<Widget>();\n"
                         "int renewed = renew();\n"
                         "// a new comment mentioning new\n")
                    .empty());
}

TEST(LintNakedNew, OperatorNewAndIncludesAreNotExpressions)
{
    // <new> in an include directive and operator-new overloads /
    // allocator-internal calls are not owning new-expressions.
    EXPECT_TRUE(lintFile("src/core/x.cc",
                         "#include <new>\n"
                         "void *operator new(std::size_t n);\n"
                         "void *p = ::operator new(n, alignment);\n")
                    .empty());
    // A real new-expression next to them still fires.
    EXPECT_TRUE(fired(lintFile("src/core/x.cc",
                               "#include <new>\n"
                               "auto *p = new Widget();\n"),
                      "naked-new"));
}

TEST(LintStrip, DigitSeparatorIsNotACharLiteral)
{
    // 20'000 must not open a character literal: before the fix the
    // stripper swallowed everything to the next quote, hiding the
    // following lines from every rule and shifting reported line
    // numbers (which made allow-comments miss their findings).
    auto v = lintFile("src/core/x.cc",
                      "TimePs handlerPs{20'000};\n"
                      "int filler = 0;\n"
                      "std::uint64_t fetchSeq = 0;\n");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "bare-u64-quantity");
    EXPECT_EQ(v[0].line, 3u);
    // A genuine char literal still strips: the quoted 'new' must
    // not fire, and the one after the literal must.
    EXPECT_TRUE(lintFile("src/core/x.cc",
                         "char c = 'x'; // 'new' in a char context\n")
                    .empty());
}

TEST(LintCoreContainer, FlagsDequeAndPriorityQueueInCoreOnly)
{
    const char *decl = "std::deque<FetchEntry> fetchQueue;\n"
                       "std::priority_queue<Ev> completions;\n";
    const auto rules = rulesIn(lintFile("src/core/ooo_core.cc", decl));
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         std::string("core-container")),
              2);
    // Outside src/core/ the containers are fine (result_fifo.hh
    // legitimately deques GRB arrival timestamps).
    EXPECT_FALSE(
        fired(lintFile("src/contest/result_fifo.cc", decl),
              "core-container"));
    // The replacements do not trip the rule.
    EXPECT_TRUE(lintFile("src/core/ooo_core.cc",
                         "RingBuffer<RobEntry> rob;\n"
                         "MinHeap<TimedReady> timedReady;\n")
                    .empty());
}

TEST(LintCoreContainer, AllowCommentSuppresses)
{
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "// contest-lint: allow(core-container)\n"
                 "std::deque<Snapshot> checkpoints;\n")
            .empty());
}

TEST(LintCoreSoa, FlagsVectorBoolInCoreOnly)
{
    const char *decl = "std::vector<bool> robCompleted;\n";
    EXPECT_TRUE(fired(lintFile("src/core/ooo_core.hh", decl),
                      "core-soa"));
    // Outside src/core/ the proxy container is tolerated.
    EXPECT_FALSE(fired(lintFile("src/contest/unit.hh", decl),
                       "core-soa"));
}

TEST(LintCoreSoa, FlagsContainersOfLocalPerEntryStructs)
{
    const char *decl = "struct RobEntry {\n"
                       "    int dest;\n"
                       "    int flags;\n"
                       "};\n"
                       "std::vector<RobEntry> rob;\n"
                       "SoaVec<RobEntry> robShadow;\n";
    const auto rules = rulesIn(lintFile("src/core/ooo_core.hh", decl));
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         std::string("core-soa")),
              2);
    // Containers of foreign scalar-like types (Strong<> quantities,
    // config records defined elsewhere) are the intended layout.
    EXPECT_TRUE(lintFile("src/core/ooo_core.cc",
                         "SoaVec<InstSeq> iqSeq;\n"
                         "std::vector<InstSeq> staleSeqs;\n")
                    .empty());
    // A forward declaration is not a per-entry record definition.
    EXPECT_FALSE(fired(lintFile("src/core/ooo_core.hh",
                                "struct RobEntry;\n"
                                "std::vector<RobEntry> rob;\n"),
                       "core-soa"));
}

TEST(LintCoreSoa, AllowCommentSuppresses)
{
    EXPECT_TRUE(
        lintFile("src/core/ooo_core.cc",
                 "// contest-lint: allow(core-soa)\n"
                 "std::vector<bool> coldReplayMask;\n")
            .empty());
}

TEST(LintCoreContainer, FixtureContentTripsUnderCorePath)
{
    std::ifstream in(std::string(CONTEST_LINT_FIXTURE_DIR)
                     + "/bad_example.hh");
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(fired(lintFile("src/core/bad_example.hh", ss.str()),
                      "core-container"));
    EXPECT_TRUE(fired(lintFile("src/core/bad_example.hh", ss.str()),
                      "core-soa"));
    // Under its own path the fixture must stay free of the
    // core-scoped rules (the CI fixture acceptance check counts on
    // the other rules).
    EXPECT_FALSE(
        fired(lintFile("tests/lint_fixtures/bad_example.hh",
                       ss.str()),
              "core-container"));
    EXPECT_FALSE(
        fired(lintFile("tests/lint_fixtures/bad_example.hh",
                       ss.str()),
              "core-soa"));
}

// ---- window-phase call-graph engine ----------------------------
// (tools/lint_callgraph.hh; the transitive successor of the old
// one-hop cross-core-mutation rule)

std::string
readFixture(const std::string &name)
{
    std::ifstream in(std::string(CONTEST_LINT_FIXTURE_DIR)
                     + "/callgraph/" + name);
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_FALSE(ss.str().empty())
        << "missing callgraph fixture " << name;
    return ss.str();
}

std::vector<Violation>
analyzeFixtures(const std::vector<std::string> &names,
                const std::vector<std::string> &seeds)
{
    cg::CallGraphAnalyzer an;
    for (const auto &n : names)
        an.addFile("tests/lint_fixtures/callgraph/" + n,
                   readFixture(n));
    cg::AnalyzeOptions opts;
    opts.seeds = seeds;
    return an.analyze(opts);
}

TEST(LintCallGraph, FlagsDirectMutatorCall)
{
    auto v = analyzeFixtures({"direct.cc"}, {"MiniCore::laneTick"});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "window-phase");
    EXPECT_NE(v[0].message.find("performStore"), std::string::npos);
}

TEST(LintCallGraph, FlagsTransitiveMutatorWithFullPath)
{
    // The mutator sits three frames below the entry point — the
    // shape the old one-hop regex could not see. The finding must
    // print the full caller chain.
    auto v =
        analyzeFixtures({"transitive.cc"}, {"DeepCore::laneTick"});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "window-phase");
    EXPECT_NE(v[0].message.find(
                  "DeepCore::laneTick -> DeepCore::stepIssue -> "
                  "DeepCore::stepCommit -> DeepCore::stepRetire "
                  "-> noteRetire"),
              std::string::npos)
        << v[0].message;
}

TEST(LintCallGraph, UnresolvableVirtualCallIsReportedNotIgnored)
{
    auto v =
        analyzeFixtures({"virtual_call.cc"}, {"VirtCore::laneTick"});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "unknown-call");
    EXPECT_NE(v[0].message.find("deliver"), std::string::npos);
}

TEST(LintCallGraph, WindowSafeLeafIsNotEntered)
{
    // scratch() allocates and is flagged; the identically-shaped
    // audited() carries CONTEST_WINDOW_SAFE and must not be.
    auto v =
        analyzeFixtures({"safe_leaf.cc"}, {"LeafCore::laneTick"});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "window-phase");
    EXPECT_NE(v[0].message.find("LeafCore::scratch"),
              std::string::npos);
    EXPECT_EQ(v[0].message.find("audited"), std::string::npos);
}

TEST(LintCallGraph, AllowFileWaiverDoesNotLeakAcrossFiles)
{
    // Both files hold the same violation; only the unwaived one may
    // be reported.
    auto v = analyzeFixtures(
        {"allow_file.cc", "allow_file_leak.cc"},
        {"WaivedCore::laneTick", "LeakCore::laneTick"});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].file,
              "tests/lint_fixtures/callgraph/allow_file_leak.cc");
    EXPECT_EQ(v[0].rule, "window-phase");
}

TEST(LintCallGraph, LineAllowPrunesTraversalEntirely)
{
    // An allowed call site is an audited boundary: the callee's own
    // violations must not surface through it.
    cg::CallGraphAnalyzer an;
    an.addFile("src/contest/a.cc",
               "struct Q { void performStore(unsigned, unsigned); };\n"
               "struct C {\n"
               "    Q *q;\n"
               "    void laneTick() {\n"
               "        // contest-lint: allow(window-phase)\n"
               "        helper();\n"
               "    }\n"
               "    void helper() { q->performStore(0, 1); }\n"
               "};\n");
    cg::AnalyzeOptions opts;
    opts.seeds = {"C::laneTick"};
    EXPECT_TRUE(an.analyze(opts).empty());
}

TEST(LintCallGraph, UnmatchedSeedIsItselfAFinding)
{
    // Renaming an entry point must not silently disable the
    // analysis.
    cg::CallGraphAnalyzer an;
    an.addFile("src/contest/a.cc", "void tick() {}\n");
    cg::AnalyzeOptions opts;
    opts.seeds = {"Gone::laneTick"};
    auto v = an.analyze(opts);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "unknown-call");
    EXPECT_NE(v[0].message.find("Gone::laneTick"),
              std::string::npos);
}

TEST(LintCallGraph, RngAndGlobalWritesAreFlagged)
{
    cg::CallGraphAnalyzer an;
    an.addFile("src/contest/a.cc",
               "int sharedCounter;\n"
               "struct C {\n"
               "    void laneTick() {\n"
               "        int r = rand();\n"
               "        sharedCounter += r;\n"
               "    }\n"
               "};\n");
    cg::AnalyzeOptions opts;
    opts.seeds = {"C::laneTick"};
    auto v = an.analyze(opts);
    EXPECT_TRUE(fired(v, "window-phase"));
    ASSERT_EQ(v.size(), 2u);
    EXPECT_NE(v[0].message.find("rand"), std::string::npos);
    EXPECT_NE(v[1].message.find("sharedCounter"),
              std::string::npos);
}

TEST(LintCallGraph, RealSeedsResolveInTheRepoSources)
{
    // The default seed list must keep matching the real tree: parse
    // the two seed-bearing sources and analyze with defaults. Any
    // unmatched seed would surface as an (callgraph) finding.
    cg::CallGraphAnalyzer an;
    for (const char *rel :
         {"/../src/core/ooo_core.cc", "/../src/contest/unit.cc"}) {
        std::ifstream in(std::string(CONTEST_LINT_FIXTURE_DIR)
                         + "/.." + rel);
        std::ostringstream ss;
        ss << in.rdbuf();
        ASSERT_FALSE(ss.str().empty()) << rel;
        an.addFile(rel, ss.str());
    }
    for (const auto &v : an.analyze())
        EXPECT_NE(v.file, "(callgraph)") << v.message;
}

TEST(LintPanicMessage, RequiresInvariantNamingMessage)
{
    EXPECT_TRUE(fired(
        lintFile("src/core/x.cc", "panic(\"bad state\");\n"),
        "panic-message"));
    EXPECT_TRUE(
        lintFile("src/core/x.cc",
                 "panic_if(core >= performed.size(),\n"
                 "         \"SyncStoreQueue: core %u out of "
                 "range\", core);\n")
            .empty());
}

TEST(LintFixture, SeededFixtureTripsEveryRule)
{
    std::ifstream in(std::string(CONTEST_LINT_FIXTURE_DIR)
                     + "/bad_example.hh");
    ASSERT_TRUE(in.good())
        << "fixture missing: tests/lint_fixtures/bad_example.hh";
    std::ostringstream ss;
    ss << in.rdbuf();
    auto v = lintFile("tests/lint_fixtures/bad_example.hh", ss.str());
    EXPECT_TRUE(fired(v, "bare-u64-quantity"));
    EXPECT_TRUE(fired(v, "unsigned-sub"));
    EXPECT_TRUE(fired(v, "include-guard"));
    EXPECT_TRUE(fired(v, "naked-new"));
    EXPECT_TRUE(fired(v, "panic-message"));
    // The two allow-commented declarations must not be reported:
    // exactly two bare-u64 findings remain (startTimePs,
    // stallCycles).
    const auto rules = rulesIn(v);
    EXPECT_EQ(std::count(rules.begin(), rules.end(),
                         std::string("bare-u64-quantity")),
              2);
}

} // namespace
} // namespace contest::lint
