/**
 * @file
 * Tests for the work-stealing-free thread pool backing the parallel
 * experiment harness.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/env.hh"
#include "common/thread_pool.hh"

namespace contest
{
namespace
{

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    std::vector<std::atomic<unsigned>> hits(1000);
    pool.parallelFor(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, SingleJobRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    // With one job the caller runs everything itself, in index
    // order — parallelFor degenerates to a plain loop.
    std::vector<std::size_t> order;
    pool.parallelFor(8, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, EmptyBatchReturnsImmediately)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Workers that enter a nested parallelFor drain their own batch
    // instead of blocking on pool availability; with fewer workers
    // than concurrent nested batches this would otherwise hang.
    ThreadPool pool(2);
    std::atomic<unsigned> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) {
            total.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (unsigned round = 0; round < 20; ++round) {
        std::atomic<unsigned> n{0};
        pool.parallelFor(round, [&](std::size_t) { n.fetch_add(1); });
        EXPECT_EQ(n.load(), round);
    }
}

TEST(Env, DefaultJobsHonorsEnvironment)
{
    setenv("CONTEST_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    setenv("CONTEST_JOBS", "0", 1);
    EXPECT_EQ(defaultJobs(), 1u); // clamped to at least one
    unsetenv("CONTEST_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Env, ApplyJobsFlagStripsArgv)
{
    const char *raw[] = {"prog", "--benchmark_filter=x", "--jobs",
                         "5",    "--jobs=7",             nullptr};
    char *argv[6];
    for (int i = 0; i < 5; ++i)
        argv[i] = const_cast<char *>(raw[i]);
    argv[5] = nullptr;
    int argc = 5;
    applyJobsFlag(&argc, argv);
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "--benchmark_filter=x");
    EXPECT_EQ(argv[2], nullptr);
    // Last flag wins.
    EXPECT_STREQ(getenv("CONTEST_JOBS"), "7");
    unsetenv("CONTEST_JOBS");
}

} // namespace
} // namespace contest
