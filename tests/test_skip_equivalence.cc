/**
 * @file
 * Idle-cycle skipping must be invisible: every run with
 * fast-forwarding enabled has to produce results bit-identical to
 * the per-cycle reference mode (CONTEST_NO_SKIP=1) — timings, every
 * pipeline counter, energy numbers, lead fractions. A seed sweep
 * over single-core runs and contests (including a parking pair and
 * an interrupt-driven refork config) pins that equivalence down.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

/** Run @p fn with CONTEST_NO_SKIP set or cleared. */
template <typename Fn>
auto
withSkipMode(bool no_skip, Fn fn) -> decltype(fn())
{
    if (no_skip)
        setenv("CONTEST_NO_SKIP", "1", 1);
    else
        unsetenv("CONTEST_NO_SKIP");
    auto r = fn();
    unsetenv("CONTEST_NO_SKIP");
    return r;
}

void
expectSameStats(const CoreStats &a, const CoreStats &b,
                const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.retired, b.retired) << what;
    EXPECT_EQ(a.injected, b.injected) << what;
    EXPECT_EQ(a.condBranches, b.condBranches) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
    EXPECT_EQ(a.earlyResolves, b.earlyResolves) << what;
    EXPECT_EQ(a.btbMissRedirects, b.btbMissRedirects) << what;
    EXPECT_EQ(a.syscalls, b.syscalls) << what;
    EXPECT_EQ(a.icacheMisses, b.icacheMisses) << what;
    EXPECT_EQ(a.fetchStallBranch, b.fetchStallBranch) << what;
    EXPECT_EQ(a.robFullStalls, b.robFullStalls) << what;
    EXPECT_EQ(a.iqFullStalls, b.iqFullStalls) << what;
    EXPECT_EQ(a.lsqFullStalls, b.lsqFullStalls) << what;
    EXPECT_EQ(a.storeQueueStalls, b.storeQueueStalls) << what;
    EXPECT_EQ(a.syscallStalls, b.syscallStalls) << what;
}

void
expectSameEnergy(const EnergyBreakdown &a, const EnergyBreakdown &b,
                 const char *what)
{
    // Bit-identical, not merely close: the energy model consumes
    // only counters, and every counter must match exactly.
    EXPECT_EQ(a.staticNj, b.staticNj) << what;
    EXPECT_EQ(a.pipelineNj, b.pipelineNj) << what;
    EXPECT_EQ(a.cacheNj, b.cacheNj) << what;
    EXPECT_EQ(a.bpredNj, b.bpredNj) << what;
    EXPECT_EQ(a.squashNj, b.squashNj) << what;
    EXPECT_EQ(a.contestNj, b.contestNj) << what;
}

void
expectSameContest(const ContestResult &a, const ContestResult &b,
                  const char *what)
{
    EXPECT_EQ(a.timePs, b.timePs) << what;
    EXPECT_EQ(a.ipt, b.ipt) << what;
    EXPECT_EQ(a.leadChanges, b.leadChanges) << what;
    EXPECT_EQ(a.mergedStores, b.mergedStores) << what;
    EXPECT_EQ(a.exceptionsHandled, b.exceptionsHandled) << what;
    EXPECT_EQ(a.interruptsHandled, b.interruptsHandled) << what;
    ASSERT_EQ(a.coreStats.size(), b.coreStats.size()) << what;
    for (std::size_t c = 0; c < a.coreStats.size(); ++c) {
        expectSameStats(a.coreStats[c], b.coreStats[c], what);
        EXPECT_EQ(a.leadFraction[c], b.leadFraction[c]) << what;
        EXPECT_EQ(a.unitStats[c].paired, b.unitStats[c].paired)
            << what;
        EXPECT_EQ(a.unitStats[c].discarded, b.unitStats[c].discarded)
            << what;
        EXPECT_EQ(a.unitStats[c].broadcasts,
                  b.unitStats[c].broadcasts)
            << what;
        EXPECT_EQ(a.unitStats[c].saturated, b.unitStats[c].saturated)
            << what;
        EXPECT_EQ(a.unitStats[c].parkedAt, b.unitStats[c].parkedAt)
            << what;
        expectSameEnergy(a.energy[c], b.energy[c], what);
    }
}

TEST(SkipEquivalence, SingleCoreSeedSweep)
{
    for (std::uint64_t seed : {2009ull, 7ull, 4242ull}) {
        for (const char *bench : {"gcc", "mcf", "crafty"}) {
            for (const char *core : {"twolf", "mcf", "vortex"}) {
                auto trace = makeBenchmarkTrace(bench, seed, 15000);
                const auto &cfg = coreConfigByName(core);
                auto fast = withSkipMode(false, [&] {
                    return runSingle(cfg, trace);
                });
                auto ref = withSkipMode(true, [&] {
                    return runSingle(cfg, trace);
                });
                std::string what = std::string(bench) + " on " + core
                    + " seed " + std::to_string(seed);
                EXPECT_EQ(fast.timePs, ref.timePs) << what;
                EXPECT_EQ(fast.ipt, ref.ipt) << what;
                expectSameStats(fast.stats, ref.stats, what.c_str());
                expectSameEnergy(fast.energy, ref.energy,
                                 what.c_str());
            }
        }
    }
}

TEST(SkipEquivalence, SingleCoreActuallySkips)
{
    // The equivalence sweep would pass vacuously if skipIdleCycles
    // never elided anything; prove the fast path engages on a
    // memory-bound core.
    auto trace = makeBenchmarkTrace("mcf", 2009, 15000);
    const auto &cfg = coreConfigByName("mcf");
    unsetenv("CONTEST_NO_SKIP");
    OooCore core(cfg, trace);
    const std::uint64_t step = core.periodPs().count();
    TimePs now{};
    while (!core.done()) {
        core.tick(now);
        std::uint64_t ticks = 1;
        if (!core.done())
            ticks += core.skipIdleCycles(Cycles::max()).count();
        now += TimePs{step * ticks};
    }
    EXPECT_GT(core.idleSkipped(), Cycles{});
    // Elided ticks still count as simulated cycles.
    EXPECT_LT(core.idleSkipped(), core.stats().cycles);
}

TEST(SkipEquivalence, MaskEdgeConfigs)
{
    // Ring-mask edge cases under skipping: a >64-entry window whose
    // ready/completed masks span multiple words ("wide"), and a tiny
    // window whose ring positions wrap dozens of times per run
    // ("wrap"). Skipping must stay invisible for both.
    CoreConfig wide = coreConfigByName("gcc"); // robSize 256
    wide.name = "wide";
    CoreConfig wrap = coreConfigByName("gzip");
    wrap.name = "wrap";
    wrap.robSize = 24;
    wrap.iqSize = 12;
    wrap.lsqSize = 8;
    wrap.validate();
    for (std::uint64_t seed : {2009ull, 7ull}) {
        for (const char *bench : {"mcf", "crafty"}) {
            auto trace = makeBenchmarkTrace(bench, seed, 15000);
            for (const CoreConfig *cfg : {&wide, &wrap}) {
                auto fast = withSkipMode(false, [&] {
                    return runSingle(*cfg, trace);
                });
                auto ref = withSkipMode(true, [&] {
                    return runSingle(*cfg, trace);
                });
                std::string what = std::string(bench) + " on "
                    + cfg->name + " seed " + std::to_string(seed);
                EXPECT_EQ(fast.timePs, ref.timePs) << what;
                expectSameStats(fast.stats, ref.stats, what.c_str());
                expectSameEnergy(fast.energy, ref.energy,
                                 what.c_str());
            }
        }
    }
}

TEST(SkipEquivalence, ContestSeedSweep)
{
    for (std::uint64_t seed : {2009ull, 7ull}) {
        for (const char *bench : {"gcc", "twolf"}) {
            auto trace = makeBenchmarkTrace(bench, seed, 15000);
            auto run = [&] {
                ContestSystem sys({coreConfigByName("twolf"),
                                   coreConfigByName("gzip")},
                                  trace);
                return sys.run();
            };
            auto fast = withSkipMode(false, run);
            auto ref = withSkipMode(true, run);
            std::string what =
                std::string(bench) + " seed " + std::to_string(seed);
            expectSameContest(fast, ref, what.c_str());
        }
    }
}

TEST(SkipEquivalence, ParkingPair)
{
    // vortex+mcf on a tiny FIFO parks the lagger mid-run; the
    // park-time rewind of eagerly-applied skip windows must keep the
    // parked core's counters identical to per-cycle stepping.
    auto trace = makeBenchmarkTrace("crafty", 2009, 30000);
    auto run = [&] {
        ContestConfig cfg;
        cfg.fifoCapacity = 64;
        cfg.parkSaturatedLaggers = true;
        ContestSystem sys({coreConfigByName("vortex"),
                           coreConfigByName("mcf")},
                          trace, cfg);
        return sys.run();
    };
    auto fast = withSkipMode(false, run);
    auto ref = withSkipMode(true, run);
    EXPECT_TRUE(fast.unitStats[1].saturated);
    expectSameContest(fast, ref, "parking pair");
}

TEST(SkipEquivalence, InterruptRefork)
{
    // Interrupts bound every skip window (the service edge must be
    // picked live); the terminate-and-refork path must land on the
    // same refork positions in both modes.
    auto trace = makeBenchmarkTrace("gcc", 2009, 20000);
    auto run = [&] {
        ContestConfig cfg;
        cfg.interruptPeriodPs = TimePs{3'000'000};
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip")},
                          trace, cfg);
        return sys.run();
    };
    auto fast = withSkipMode(false, run);
    auto ref = withSkipMode(true, run);
    EXPECT_GT(fast.interruptsHandled, 0u);
    expectSameContest(fast, ref, "interrupt refork");
}

TEST(SkipEquivalence, ThreeWayContest)
{
    auto trace = makeBenchmarkTrace("parser", 7, 15000);
    auto run = [&] {
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip"),
                           coreConfigByName("vpr")},
                          trace);
        return sys.run();
    };
    auto fast = withSkipMode(false, run);
    auto ref = withSkipMode(true, run);
    expectSameContest(fast, ref, "three-way");
}

} // namespace
} // namespace contest
