/**
 * @file
 * Parameterized property sweeps across the archetype and core
 * spaces: determinism, composition sanity, timing-model
 * monotonicities, and contesting invariants that must hold for
 * every combination.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "contest/system.hh"
#include "core/palette.hh"
#include "harness/region_log.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

/** All six archetypes, used by several sweeps below. */
const PhaseKind allKinds[] = {
    PhaseKind::IlpCompute,  PhaseKind::SerialChain,
    PhaseKind::PointerChase, PhaseKind::Streaming,
    PhaseKind::Branchy,     PhaseKind::HotLoop,
};

TracePtr
archetypeTrace(PhaseKind kind, std::uint64_t n,
               std::uint64_t seed = 5)
{
    BenchmarkProfile p;
    p.name = phaseKindName(kind);
    p.syscallGap = 0;
    p.phases = {PhaseSpec{PhaseParams::canonical(kind), 1.0}};
    TraceGenerator gen(p, seed);
    return gen.generate(n);
}

/** Every archetype on every palette core must complete and retire
 *  in order with a sane IPC. */
class ArchetypeOnCore
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(ArchetypeOnCore, RunsToCompletionInOrder)
{
    auto [kind_idx, core_idx] = GetParam();
    auto trace = archetypeTrace(allKinds[kind_idx], 8000);
    const auto &cfg = appendixAPalette()[core_idx];

    OooCore core(cfg, trace);
    InstSeq expected{};
    core.setRetireCallback([&](InstSeq seq, TimePs) {
        ASSERT_EQ(seq, expected);
        ++expected;
    });
    TimePs now{};
    while (!core.done()) {
        core.tick(now);
        now += core.periodPs();
    }
    EXPECT_EQ(core.retired(), trace->size());
    EXPECT_GT(core.stats().ipc(), 0.01) << cfg.name;
    EXPECT_LE(core.stats().ipc(),
              static_cast<double>(cfg.width))
        << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArchetypeOnCore,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(0, 1, 5, 6, 10)),
    [](const auto &info) {
        return std::string(
                   phaseKindName(
                       allKinds[std::get<0>(info.param)]))
            + "_on_"
            + appendixAPalette()[std::get<1>(info.param)].name;
    });

/** Determinism: every benchmark trace replays to identical cycle
 *  counts on a given core. */
class BenchmarkDeterminism
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(BenchmarkDeterminism, SameSeedSameCycles)
{
    auto trace = makeBenchmarkTrace(GetParam(), 77, 10000);
    auto run = [&]() {
        OooCore core(coreConfigByName("gcc"), trace);
        TimePs now{};
        while (!core.done()) {
            core.tick(now);
            now += core.periodPs();
        }
        return core.cycle();
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkDeterminism,
    ::testing::Values("bzip", "crafty", "gap", "gcc", "gzip", "mcf",
                      "parser", "perl", "twolf", "vortex", "vpr"));

/** Timing-model monotonicity: widening one resource while holding
 *  the rest may not slow a core down (beyond tie noise). */
TEST(TimingMonotonicity, WiderMachineIsNotSlower)
{
    auto trace = archetypeTrace(PhaseKind::IlpCompute, 20000);
    CoreConfig narrow;
    narrow.width = 2;
    narrow.l1dPorts = 2;
    CoreConfig wide = narrow;
    wide.width = 6;
    wide.l1dPorts = 3;
    EXPECT_GE(runSingle(wide, trace).ipt,
              runSingle(narrow, trace).ipt * 0.999);
}

TEST(TimingMonotonicity, FasterClockIsFasterOnComputeCode)
{
    auto trace = archetypeTrace(PhaseKind::HotLoop, 20000);
    CoreConfig slow;
    slow.clockPeriodPs = TimePs{500};
    CoreConfig fast = slow;
    fast.clockPeriodPs = TimePs{250};
    // Cache/memory latencies are in cycles here, so halving the
    // period at fixed cycle counts must speed compute-bound code.
    EXPECT_GT(runSingle(fast, trace).ipt,
              runSingle(slow, trace).ipt * 1.5);
}

TEST(TimingMonotonicity, LowerWakeupHelpsSerialChains)
{
    auto trace = archetypeTrace(PhaseKind::SerialChain, 20000);
    CoreConfig lazy;
    lazy.wakeupLatency = Cycles{3};
    CoreConfig eager = lazy;
    eager.wakeupLatency = Cycles{};
    EXPECT_GT(runSingle(eager, trace).ipt,
              runSingle(lazy, trace).ipt * 1.3);
}

TEST(TimingMonotonicity, DeeperFrontEndHurtsMispredictHeavyCode)
{
    auto params = PhaseParams::canonical(PhaseKind::Branchy);
    params.randomSiteFrac = 0.5; // hard to predict
    BenchmarkProfile p;
    p.name = "hard-branches";
    p.syscallGap = 0;
    p.phases = {PhaseSpec{params, 1.0}};
    TraceGenerator gen(p, 3);
    auto trace = gen.generate(20000);

    CoreConfig shallow;
    shallow.frontEndDepth = 4;
    CoreConfig deep = shallow;
    deep.frontEndDepth = 12;
    EXPECT_GT(runSingle(shallow, trace).ipt,
              runSingle(deep, trace).ipt * 1.02);
}

TEST(TimingMonotonicity, BiggerL1CapturesBiggerFootprints)
{
    auto params = PhaseParams::canonical(PhaseKind::PointerChase);
    params.footprintBytes = 48 * 1024;
    params.chaseHotFrac = 0.0; // uniform over the footprint
    BenchmarkProfile p;
    p.name = "chase48k";
    p.syscallGap = 0;
    p.phases = {PhaseSpec{params, 1.0}};
    TraceGenerator gen(p, 9);
    auto trace = gen.generate(30000);

    CoreConfig small;
    small.l1d = CacheConfig{64, 2, 64, Cycles{2}, false, true}; // 8KB
    CoreConfig big = small;
    big.l1d = CacheConfig{1024, 2, 64, Cycles{2}, false, true}; // 128KB
    EXPECT_GT(runSingle(big, trace).ipt,
              runSingle(small, trace).ipt * 1.1);
}

/** Contesting with region logging composes: the region totals of
 *  the winner bound the contested finish time. */
TEST(ContestProperty, WinnerRegionsBoundFinishTime)
{
    auto trace = makeBenchmarkTrace("gcc", 21, 15000);
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace);
    auto r = sys.run();
    double single_best =
        std::max(runSingle(coreConfigByName("twolf"), trace).ipt,
                 runSingle(coreConfigByName("gzip"), trace).ipt);
    // Contesting can't lose to the best single core beyond the
    // synchronization noise on a short trace.
    EXPECT_GE(r.ipt, single_best * 0.95);
}

/** Injection conservation: paired results + broadcasts are
 *  consistent with the retired stream. */
class InjectionConservation
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(InjectionConservation, PairedNeverExceedsBroadcast)
{
    auto trace = makeBenchmarkTrace(GetParam(), 31, 12000);
    ContestSystem sys({coreConfigByName("parser"),
                       coreConfigByName("bzip")},
                      trace);
    auto r = sys.run();
    for (std::size_t c = 0; c < 2; ++c) {
        // A core can only pair what the other core broadcast.
        EXPECT_LE(r.unitStats[c].paired,
                  r.unitStats[1 - c].broadcasts);
        // Every injected completion traces back to a paired result
        // (fetch pairing or an early-resolved branch's pop).
        EXPECT_LE(r.coreStats[c].injected,
                  r.unitStats[c].paired
                      + r.coreStats[c].earlyResolves);
    }
}

INSTANTIATE_TEST_SUITE_P(SomeBenchmarks, InjectionConservation,
                         ::testing::Values("gcc", "twolf", "gzip",
                                           "mcf"));

} // namespace
} // namespace contest
