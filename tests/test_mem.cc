/**
 * @file
 * Unit tests for the memory substrate: cache tags/LRU/policies, the
 * two-level hierarchy with its bandwidth model, and the
 * synchronizing store queue.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/sync_store_queue.hh"

namespace contest
{
namespace
{

CacheConfig
tinyCache(unsigned sets, unsigned assoc, unsigned block,
          unsigned latency)
{
    CacheConfig c;
    c.sets = sets;
    c.assoc = assoc;
    c.blockBytes = block;
    c.latency = Cycles{latency};
    return c;
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache(tinyCache(3, 1, 64, 1)),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(Cache(tinyCache(4, 0, 64, 1)),
                ::testing::ExitedWithCode(1), "associativity");
    EXPECT_EXIT(Cache(tinyCache(4, 1, 48, 1)),
                ::testing::ExitedWithCode(1), "block size");
}

TEST(Cache, CapacityBytes)
{
    EXPECT_EQ(tinyCache(1024, 2, 32, 2).capacityBytes(), 64u * 1024u);
}

TEST(Cache, MissThenHitOnSameBlock)
{
    Cache c(tinyCache(4, 1, 64, 1));
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13F, false).hit); // same 64B block
    EXPECT_FALSE(c.access(0x140, false).hit); // next block
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, DirectMappedConflict)
{
    // 4 sets x 64B: addresses 0x000 and 0x100 share set 0.
    Cache c(tinyCache(4, 1, 64, 1));
    c.access(0x000, false);
    c.access(0x100, false); // evicts 0x000
    EXPECT_FALSE(c.access(0x000, false).hit);
}

TEST(Cache, LruKeepsMostRecentlyUsed)
{
    // 1 set x 2 ways: A, B, touch A, insert C -> B evicted.
    Cache c(tinyCache(1, 2, 64, 1));
    c.access(0x000, false); // A
    c.access(0x040, false); // B
    c.access(0x000, false); // touch A
    c.access(0x080, false); // C evicts B
    EXPECT_TRUE(c.access(0x000, false).hit);
    EXPECT_FALSE(c.access(0x040, false).hit);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(tinyCache(4, 1, 64, 1));
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_EQ(c.accesses(), 0u);
    c.access(0x200, false);
    EXPECT_TRUE(c.probe(0x200));
}

TEST(Cache, WriteBackMarksDirtyAndReportsEviction)
{
    Cache c(tinyCache(1, 1, 64, 1));
    c.access(0x000, true); // write-allocate, dirty
    auto r = c.access(0x040, false); // evicts dirty line
    EXPECT_TRUE(r.dirtyEviction);
}

TEST(Cache, WriteThroughNeverDirty)
{
    auto cfg = tinyCache(1, 1, 64, 1);
    cfg.writeThrough = true;
    Cache c(cfg);
    c.access(0x000, true);
    auto r = c.access(0x040, false);
    EXPECT_FALSE(r.dirtyEviction);
}

TEST(Cache, NoWriteAllocateSkipsFill)
{
    auto cfg = tinyCache(4, 1, 64, 1);
    cfg.writeAllocate = false;
    Cache c(cfg);
    c.access(0x000, true); // miss, not allocated
    EXPECT_FALSE(c.access(0x000, false).hit);
}

TEST(Cache, SetWriteThroughClearsDirtyBits)
{
    Cache c(tinyCache(1, 1, 64, 1));
    c.access(0x000, true);
    c.setWriteThrough(true);
    auto r = c.access(0x040, false);
    EXPECT_FALSE(r.dirtyEviction); // dirty bit was flushed
}

TEST(Cache, InvalidateAllDropsLines)
{
    Cache c(tinyCache(4, 2, 64, 1));
    c.access(0x000, false);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x000));
}

TEST(Hierarchy, LatencyAccumulatesAcrossLevels)
{
    DataHierarchy h(tinyCache(4, 1, 64, 2), tinyCache(16, 2, 64, 10),
                    Cycles{100});
    // Cold: L1 miss + L2 miss -> 2 + 10 + 100.
    auto r1 = h.access(0x1000, false, Cycles{0});
    EXPECT_EQ(r1.level, MemLevel::Memory);
    EXPECT_EQ(r1.latency, 112u);
    // Warm L1.
    auto r2 = h.access(0x1000, false, Cycles{0});
    EXPECT_EQ(r2.level, MemLevel::L1);
    EXPECT_EQ(r2.latency, 2u);
    // Conflict out of L1 but still in L2: L1 + L2 latency.
    h.access(0x1100, false, Cycles{0}); // evicts 0x1000 from 4-set L1
    auto r3 = h.access(0x1000, false, Cycles{0});
    EXPECT_EQ(r3.level, MemLevel::L2);
    EXPECT_EQ(r3.latency, 12u);
}

TEST(Hierarchy, BandwidthQueuesConsecutiveFills)
{
    // load gap of 50 cycles between shared-level fills.
    DataHierarchy h(tinyCache(4, 1, 64, 2), tinyCache(16, 2, 64, 10),
                    Cycles{100}, Cycles{50}, Cycles{5});
    auto r1 = h.access(0x10000, false, Cycles{0});
    EXPECT_EQ(r1.latency, 112u); // no queue yet
    auto r2 = h.access(0x20000, false, Cycles{0});
    // Second fill waits for the 50-cycle bus slot.
    EXPECT_EQ(r2.latency, 112u + 50u);
    auto r3 = h.access(0x30000, false, Cycles{200});
    // At cycle 200 the bus (free at 100) is idle again.
    EXPECT_EQ(r3.latency, 112u);
}

TEST(Hierarchy, WriteThroughStorePropagatesToL2)
{
    DataHierarchy h(tinyCache(4, 1, 64, 2), tinyCache(16, 2, 64, 10),
                    Cycles{100});
    h.setWriteThrough(true);
    h.access(0x1000, false, Cycles{0}); // fill both levels
    // Conflict 0x1000 out of L1 only.
    h.access(0x1100, false, Cycles{0});
    // Store hits L1? No - 0x1000 now misses L1, hits L2.
    auto r = h.access(0x1000, true, Cycles{0});
    EXPECT_EQ(r.level, MemLevel::L2);
    // A store that hits L1 updates L2 tags too (stays inclusive).
    h.access(0x2000, false, Cycles{0});
    auto r2 = h.access(0x2000, true, Cycles{0});
    EXPECT_EQ(r2.level, MemLevel::L1);
}

TEST(SyncStoreQueue, MergesAtTheSlowestCore)
{
    SyncStoreQueue q(2, 8);
    q.setRecordMerged(true);
    q.performStore(0, 0xA0);
    q.performStore(0, 0xB0);
    EXPECT_EQ(q.mergedCount(), 0u); // core 1 has not performed any
    q.performStore(1, 0xA0);
    EXPECT_EQ(q.mergedCount(), 1u);
    q.performStore(1, 0xB0);
    EXPECT_EQ(q.mergedCount(), 2u);

    auto merged = q.drainMerged();
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].addr, 0xA0u);
    EXPECT_EQ(merged[0].index, 0u);
    EXPECT_EQ(merged[1].addr, 0xB0u);
    EXPECT_EQ(q.drainMerged().size(), 0u);
}

TEST(SyncStoreQueue, BackpressuresTheLeader)
{
    SyncStoreQueue q(2, 2);
    q.performStore(0, 0x10);
    q.performStore(0, 0x20);
    EXPECT_FALSE(q.canAccept(0)); // 2 un-merged stores buffered
    EXPECT_TRUE(q.canAccept(1));
    q.performStore(1, 0x10); // merges store 0
    EXPECT_TRUE(q.canAccept(0));
}

TEST(SyncStoreQueue, DivergentStreamsPanic)
{
    SyncStoreQueue q(2, 8);
    q.performStore(0, 0x10);
    EXPECT_DEATH(q.performStore(1, 0x999), "diverge");
}

TEST(SyncStoreQueue, DropCoreUnblocksMerging)
{
    SyncStoreQueue q(2, 8);
    q.performStore(0, 0x10);
    q.performStore(0, 0x20);
    EXPECT_EQ(q.mergedCount(), 0u);
    q.dropCore(1); // saturated lagger leaves
    EXPECT_EQ(q.mergedCount(), 2u);
    EXPECT_EQ(q.performedBy(0), 2u);
}

TEST(SyncStoreQueue, InactiveCoreCanAcceptPanics)
{
    SyncStoreQueue q(2, 2);
    q.performStore(0, 0x10);
    q.performStore(0, 0x20);
    q.dropCore(1);
    // The merge frontier advanced past the dropped core's performed
    // count; an unsigned performed[1] - numMerged would wrap and
    // report the queue full of room. Inactive cores must not be
    // queried at all.
    EXPECT_EQ(q.mergedCount(), 2u);
    EXPECT_DEATH(q.canAccept(1), "inactive core");
    EXPECT_TRUE(q.canAccept(0));
}

TEST(SyncStoreQueue, RejectsBadConstruction)
{
    EXPECT_EXIT(SyncStoreQueue(0, 4), ::testing::ExitedWithCode(1),
                "at least one core");
    EXPECT_EXIT(SyncStoreQueue(2, 0), ::testing::ExitedWithCode(1),
                "capacity");
}

} // namespace
} // namespace contest
