// Call-graph fixture: CONTEST_WINDOW_SAFE marks an audited leaf the
// analyzer must not enter, while an identical unmarked function is
// still flagged. Seed: LeafCore::laneTick.

#define CONTEST_WINDOW_SAFE

struct LeafCore
{
    int *slot = nullptr;

    void
    laneTick()
    {
        scratch();
        audited();
    }

    void
    scratch()
    {
        slot = new int(7);
    }

    CONTEST_WINDOW_SAFE
    void
    audited()
    {
        slot = new int(9);
    }
};
