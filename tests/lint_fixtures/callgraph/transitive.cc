// Call-graph fixture: the mutator hides three frames below the
// window entry point — exactly what the old one-hop regex missed.
// Seed: DeepCore::laneTick.

struct MiniSystem
{
    void noteRetire(unsigned core, unsigned long seq);
};

struct DeepCore
{
    MiniSystem *sys = nullptr;

    void
    laneTick()
    {
        stepIssue();
    }

    void
    stepIssue()
    {
        stepCommit();
    }

    void
    stepCommit()
    {
        stepRetire();
    }

    void
    stepRetire()
    {
        sys->noteRetire(1, 7);
    }
};
