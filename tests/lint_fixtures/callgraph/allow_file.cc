// Call-graph fixture: file-level waiver.
// contest-lint: allow-file(window-phase)

struct WaivedSystem
{
    void noteRetire(unsigned core, unsigned long seq);
};

struct WaivedCore
{
    WaivedSystem *sys = nullptr;

    void
    laneTick()
    {
        sys->noteRetire(2, 11);
    }
};
