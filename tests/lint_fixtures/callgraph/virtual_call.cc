// Call-graph fixture: a virtual call through an interface with no
// in-tree implementation. Name-based resolution finds no definition,
// so the analyzer must say so (unknown-call) instead of silently
// blessing the path. Seed: VirtCore::laneTick.

struct ResultSink
{
    virtual ~ResultSink() = default;
    virtual void deliver(unsigned long seq) = 0;
};

struct VirtCore
{
    ResultSink *sink = nullptr;

    void
    laneTick()
    {
        sink->deliver(9);
    }
};
