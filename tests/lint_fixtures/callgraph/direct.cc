// Call-graph fixture: a window entry point calling a cross-core
// mutator directly (one hop). Seed: MiniCore::laneTick.

struct StoreQueue
{
    void performStore(unsigned core, unsigned long addr);
};

struct MiniCore
{
    StoreQueue *q = nullptr;

    void
    laneTick()
    {
        q->performStore(0, 0x40);
    }
};
