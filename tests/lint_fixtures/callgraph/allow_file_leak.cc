// Call-graph fixture: same shape as allow_file.cc but WITHOUT the
// waiver — proves a file-level allow does not leak across files.

struct LeakSystem
{
    void noteRetire(unsigned core, unsigned long seq);
};

struct LeakCore
{
    LeakSystem *sys = nullptr;

    void
    laneTick()
    {
        sys->noteRetire(3, 13);
    }
};
