/**
 * @file
 * Intentionally broken input for contest_lint's own tests. Every
 * rule must fire at least once on this file; CI runs the linter over
 * src/ bench/ tests/ where this directory is skipped.
 */

#ifndef WRONG_GUARD_NAME_HH
#define WRONG_GUARD_NAME_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

namespace contest
{

struct BadCounters
{
    // core-container: node-based containers on the core hot path
    // (fires when this content is linted under a src/core/ path;
    // under this fixture's own path the rule stays quiet).
    std::deque<std::uint64_t> pendingOps;
    std::priority_queue<int> readyHeap;
    // bare-u64-quantity: a picosecond timestamp as a raw integer.
    std::uint64_t startTimePs = 0;
    // bare-u64-quantity: a cycle count as a raw integer.
    std::uint64_t stallCycles = 0;
    std::uint64_t performed = 0;
    std::uint64_t merged = 0;
    std::size_t cap = 8;

    bool
    canAccept() const
    {
        // unsigned-sub: the exact shape of the original
        // SyncStoreQueue::canAccept wrap bug.
        return performed - merged < cap;
    }

    int *
    leak() const
    {
        // naked-new: ownership invisible to the caller.
        return new int(42);
    }

    void
    check() const
    {
        if (performed < merged)
            panic("bad state");
    }
};

struct HotEntry
{
    std::uint32_t dest = 0;
    std::uint32_t flags = 0;
};

struct BadLayout
{
    // core-soa: array-of-structs of a locally-defined per-entry
    // record, and the std::vector<bool> bit proxy (both fire only
    // when linted under a src/core/ path).
    std::vector<HotEntry> entries;
    std::vector<bool> readyFlags;
};

// Suppressed findings: the allow comment must silence the rule on
// the same line or the line after it.
// contest-lint: allow(bare-u64-quantity)
inline std::uint64_t allowedSeq = 0;
inline std::uint64_t rawDeadlinePs = 0; // contest-lint: allow(bare-u64-quantity)

} // namespace contest

#endif // WRONG_GUARD_NAME_HH
