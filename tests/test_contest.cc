/**
 * @file
 * System-level tests of architectural contesting: correctness of
 * redundant execution, injection, early branch resolution, store
 * merging, exception rendezvous, saturated-lagger parking, and
 * N-way operation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

TracePtr
shortTrace(const char *bench, std::uint64_t n = 30000,
           std::uint64_t seed = 2009)
{
    return makeBenchmarkTrace(bench, seed, n);
}

TEST(ContestSystem, BothCoresRetireTheWholeTrace)
{
    auto trace = shortTrace("gcc");
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace);
    auto r = sys.run();
    // The winner finished the trace; both cores made real progress
    // and every instruction was led by someone.
    EXPECT_EQ(std::max(r.coreStats[0].retired,
                       r.coreStats[1].retired),
              trace->size());
    EXPECT_NEAR(r.leadFraction[0] + r.leadFraction[1], 1.0, 1e-9);
    EXPECT_GT(r.ipt, 0.0);
}

TEST(ContestSystem, LeadChangesAtFineGrain)
{
    auto trace = shortTrace("twolf");
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("vpr")},
                      trace);
    auto r = sys.run();
    // The whole point of contesting: effective execution transfers
    // between the cores many times within one run.
    EXPECT_GT(r.leadChanges, 20u);
    EXPECT_GT(r.leadFraction[0], 0.02);
    EXPECT_GT(r.leadFraction[1], 0.02);
}

TEST(ContestSystem, NotSlowerThanBestSingleCore)
{
    for (const char *bench : {"gcc", "twolf", "parser"}) {
        auto trace = shortTrace(bench);
        auto a = coreConfigByName("twolf");
        auto b = coreConfigByName("gzip");
        double best = std::max(runSingle(a, trace).ipt,
                               runSingle(b, trace).ipt);
        ContestSystem sys({a, b}, trace);
        auto r = sys.run();
        // Contesting may only help (small tolerance for the store
        // queue and exception synchronization overheads).
        EXPECT_GT(r.ipt, best * 0.97) << bench;
    }
}

TEST(ContestSystem, InjectionFeedsTheLagger)
{
    auto trace = shortTrace("gcc");
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("mcf")},
                      trace);
    auto r = sys.run();
    // The slower core must have completed a large share of its
    // instructions from popped results.
    std::uint64_t injected = std::max(r.coreStats[0].injected,
                                      r.coreStats[1].injected);
    EXPECT_GT(injected, trace->size() / 10);
    EXPECT_GT(r.unitStats[0].broadcasts + r.unitStats[1].broadcasts,
              trace->size());
}

TEST(ContestSystem, EarlyBranchResolutionHappens)
{
    auto trace = shortTrace("parser");
    ContestConfig cfg;
    cfg.earlyBranchResolve = true;
    ContestSystem sys({coreConfigByName("parser"),
                       coreConfigByName("gzip")},
                      trace, cfg);
    auto r = sys.run();
    EXPECT_GT(r.coreStats[0].earlyResolves
                  + r.coreStats[1].earlyResolves,
              0u);
}

TEST(ContestSystem, EarlyResolveCanBeDisabled)
{
    auto trace = shortTrace("parser");
    ContestConfig cfg;
    cfg.earlyBranchResolve = false;
    ContestSystem sys({coreConfigByName("parser"),
                       coreConfigByName("gzip")},
                      trace, cfg);
    auto r = sys.run();
    EXPECT_EQ(r.coreStats[0].earlyResolves
                  + r.coreStats[1].earlyResolves,
              0u);
}

TEST(ContestSystem, DeadlockWatchdogIsConfigurable)
{
    // A zero stuck budget trips the watchdog on the first tick
    // without a retirement (the pipeline-fill tick), proving the
    // ContestConfig field reaches the engine. The default budget of
    // 40M ticks is what every other test runs under.
    auto trace = shortTrace("gcc", 5000);
    ContestConfig cfg;
    cfg.deadlockStuckTicks = 0;
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace, cfg);
    EXPECT_DEATH(sys.run(), "contest deadlock: no retirement");
    EXPECT_EQ(ContestConfig{}.deadlockStuckTicks, 40'000'000u);
}

TEST(ContestSystem, WatchdogCountsFastForwardedTicks)
{
    // The budget is in simulated ticks *including* fast-forwarded
    // ones. A memory-bound pair fast-forwards long idle stretches;
    // a budget far below the pipeline-fill distance must still trip
    // even though skipping collapses those stretches into a handful
    // of live tick() calls.
    auto trace = shortTrace("mcf", 5000);
    unsetenv("CONTEST_NO_SKIP"); // skipping on: the default mode
    ContestConfig cfg;
    cfg.deadlockStuckTicks = 5;
    ContestSystem sys({coreConfigByName("mcf"),
                       coreConfigByName("mcf")},
                      trace, cfg);
    EXPECT_DEATH(sys.run(), "contest deadlock: no retirement");

    // A healthy run under the default budget completes: elided
    // ticks between retirements never accumulate past it.
    ContestSystem ok({coreConfigByName("mcf"),
                      coreConfigByName("mcf")},
                     trace);
    EXPECT_GT(ok.run().ipt, 0.0);
}

TEST(ContestSystem, StoresMergeExactlyOnceInOrder)
{
    auto trace = shortTrace("gzip", 20000);
    auto stores = trace->mix().stores;
    ContestSystem sys({coreConfigByName("gzip"),
                       coreConfigByName("twolf")},
                      trace);
    auto r = sys.run();
    // The winner performed every store; merging can only lag by the
    // loser's distance, and never exceeds the program's store count.
    EXPECT_LE(r.mergedStores, stores);
    EXPECT_GT(r.mergedStores, stores / 2);
}

TEST(ContestSystem, ExceptionsRendezvousOnAllCores)
{
    // 30k instructions with a ~10k syscall gap: a few exceptions.
    BenchmarkProfile p = profileByName("gcc");
    p.syscallGap = 10000;
    TraceGenerator gen(p, 7);
    auto trace = gen.generate(30000);
    ASSERT_GT(trace->mix().syscalls, 0u);

    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("vpr")},
                      trace);
    auto r = sys.run();
    EXPECT_EQ(r.exceptionsHandled, trace->mix().syscalls);
}

TEST(ContestSystem, SaturatedLaggerParks)
{
    // A tiny FIFO guarantees the slow core overflows quickly when
    // paired with a much faster one.
    auto trace = shortTrace("crafty");
    ContestConfig cfg;
    cfg.fifoCapacity = 64;
    cfg.parkSaturatedLaggers = true;
    ContestSystem sys({coreConfigByName("vortex"),
                       coreConfigByName("mcf")},
                      trace, cfg);
    auto r = sys.run();
    EXPECT_TRUE(r.unitStats[1].saturated);
    EXPECT_FALSE(r.unitStats[0].saturated);
    // The run still completes at roughly the leader's speed.
    EXPECT_GT(r.ipt, 0.0);
}

TEST(ContestSystem, ParkingCanBeDisabled)
{
    auto trace = shortTrace("crafty");
    ContestConfig cfg;
    cfg.fifoCapacity = 64;
    cfg.parkSaturatedLaggers = false;
    ContestSystem sys({coreConfigByName("vortex"),
                       coreConfigByName("mcf")},
                      trace, cfg);
    auto r = sys.run();
    EXPECT_FALSE(r.unitStats[0].saturated);
    EXPECT_FALSE(r.unitStats[1].saturated);
}

TEST(ContestSystem, ThreeWayContestCompletes)
{
    auto trace = shortTrace("gcc");
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip"),
                       coreConfigByName("vpr")},
                      trace);
    auto r = sys.run();
    ASSERT_EQ(r.coreStats.size(), 3u);
    double lead_sum = r.leadFraction[0] + r.leadFraction[1]
        + r.leadFraction[2];
    EXPECT_NEAR(lead_sum, 1.0, 1e-9);
    EXPECT_GT(r.ipt, 0.0);
}

TEST(ContestSystem, SingleCoreDegenerateCaseMatchesRunSingle)
{
    auto trace = shortTrace("vpr", 10000);
    auto cfg = coreConfigByName("vpr");
    double alone = runSingle(cfg, trace).ipt;
    ContestSystem sys({cfg}, trace);
    auto r = sys.run();
    // A one-core "contest" is plain execution (write-through caches
    // may cost a whisker).
    EXPECT_NEAR(r.ipt, alone, alone * 0.05);
}

TEST(ContestSystem, DeterministicAcrossRuns)
{
    auto trace = shortTrace("twolf", 15000);
    auto run_once = [&]() {
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("bzip")},
                          trace);
        return sys.run();
    };
    auto r1 = run_once();
    auto r2 = run_once();
    EXPECT_EQ(r1.timePs, r2.timePs);
    EXPECT_EQ(r1.leadChanges, r2.leadChanges);
    EXPECT_EQ(r1.mergedStores, r2.mergedStores);
}

TEST(ContestSystem, InjectionStylesBothComplete)
{
    auto trace = shortTrace("gcc", 20000);
    for (auto style :
         {InjectionStyle::PortSteal, InjectionStyle::MarkReady}) {
        ContestConfig cfg;
        cfg.injectionStyle = style;
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("gzip")},
                          trace, cfg);
        auto r = sys.run();
        EXPECT_GT(r.ipt, 0.0);
        EXPECT_EQ(std::max(r.coreStats[0].retired,
                           r.coreStats[1].retired),
                  trace->size());
    }
}

TEST(ContestSystem, GrbLatencyHurtsMonotonically)
{
    auto trace = shortTrace("twolf");
    auto run_at = [&](TimePs latency) {
        ContestConfig cfg;
        cfg.grbLatencyPs = latency;
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("vpr")},
                          trace, cfg);
        return sys.run().ipt;
    };
    double at_1ns = run_at(TimePs{1'000});
    double at_100ns = run_at(TimePs{100'000});
    // Figure 8: speedup degrades as the bus slows. Allow noise but
    // require the 100ns case to not beat the 1ns case meaningfully.
    EXPECT_LE(at_100ns, at_1ns * 1.01);
}

/**
 * Property test over random core-type pairs: contested execution is
 * correct (every instruction retires, exactly once per core, in
 * order) and performs at least as well as the better single core.
 */
class ContestPairProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(ContestPairProperty, CorrectAndNoSlowdown)
{
    auto [a_idx, b_idx, bench_idx] = GetParam();
    const auto &palette = appendixAPalette();
    const auto &a = palette[a_idx % palette.size()];
    const auto &b = palette[b_idx % palette.size()];
    auto names = profileNames();
    const auto &bench = names[bench_idx % names.size()];

    auto trace = makeBenchmarkTrace(bench, 4242, 12000);
    double best = std::max(runSingle(a, trace).ipt,
                           runSingle(b, trace).ipt);

    ContestSystem sys({a, b}, trace);
    auto r = sys.run();
    EXPECT_EQ(std::max(r.coreStats[0].retired,
                       r.coreStats[1].retired),
              trace->size());
    EXPECT_NEAR(r.leadFraction[0] + r.leadFraction[1], 1.0, 1e-9);
    bool someone_parked =
        r.unitStats[0].saturated || r.unitStats[1].saturated;
    // Short traces pay warmup/sync overhead; bound the loss.
    double slack = someone_parked ? 0.90 : 0.95;
    EXPECT_GT(r.ipt, best * slack)
        << bench << " on " << a.name << "+" << b.name;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPairs, ContestPairProperty,
    ::testing::Values(std::make_tuple(0, 8, 3),
                      std::make_tuple(1, 7, 0),
                      std::make_tuple(2, 10, 8),
                      std::make_tuple(3, 5, 5),
                      std::make_tuple(4, 6, 1),
                      std::make_tuple(5, 9, 10),
                      std::make_tuple(6, 0, 6),
                      std::make_tuple(9, 10, 2),
                      std::make_tuple(7, 2, 4),
                      std::make_tuple(8, 3, 9)));

} // namespace
} // namespace contest
