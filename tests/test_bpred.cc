/**
 * @file
 * Unit tests for the branch prediction substrate.
 */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"

namespace contest
{
namespace
{

TEST(SatCounter, SaturatesBothWays)
{
    SatCounter2 c(0);
    EXPECT_FALSE(c.taken());
    c.dec();
    EXPECT_EQ(c.raw(), 0);
    c.inc();
    c.inc();
    EXPECT_TRUE(c.taken());
    c.inc();
    c.inc();
    EXPECT_EQ(c.raw(), 3);
    c.train(false);
    EXPECT_EQ(c.raw(), 2);
    EXPECT_TRUE(c.taken());
}

BPredConfig
makeConfig(BPredConfig::Kind kind)
{
    BPredConfig cfg;
    cfg.kind = kind;
    return cfg;
}

TEST(Bimodal, LearnsStrongBias)
{
    BranchPredictor bp(makeConfig(BPredConfig::Kind::Bimodal));
    for (int i = 0; i < 1000; ++i)
        bp.predictAndTrain(0x400000, true);
    // After warmup, an always-taken branch is always predicted.
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; ++i)
        bp.predictAndTrain(0x400000, true);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(Bimodal, CannotLearnAlternation)
{
    BranchPredictor bp(makeConfig(BPredConfig::Kind::Bimodal));
    for (int i = 0; i < 2000; ++i)
        bp.predictAndTrain(0x400000, i % 2 == 0);
    // T,N,T,N drives a 2-bit counter to ~50% mispredictions.
    EXPECT_GT(bp.mispredictRate(), 0.4);
}

TEST(GShare, LearnsAlternationThroughHistory)
{
    BranchPredictor bp(makeConfig(BPredConfig::Kind::GShare));
    for (int i = 0; i < 4000; ++i)
        bp.predictAndTrain(0x400000, i % 2 == 0);
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 200; ++i)
        bp.predictAndTrain(0x400000, i % 2 == 0);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(Local, LearnsLoopPeriodsDespiteGlobalNoise)
{
    BranchPredictor bp(makeConfig(BPredConfig::Kind::Local));
    // A loop branch with period 5 (T,T,T,T,N) interleaved with a
    // 50/50 noise branch that would wreck any global history.
    std::uint64_t noise_state = 12345;
    for (int i = 0; i < 6000; ++i) {
        bp.predictAndTrain(0x400000, (i % 5) != 4);
        noise_state = noise_state * 6364136223846793005ULL + 1;
        bp.predictAndTrain(0x500000, (noise_state >> 62) & 1);
    }
    // Count only the loop branch's behaviour from here.
    std::uint64_t miss_before = bp.mispredicts();
    LookupCount look_before = bp.lookups();
    for (int i = 0; i < 500; ++i)
        bp.predictAndTrain(0x400000, (i % 5) != 4);
    double rate =
        static_cast<double>(bp.mispredicts() - miss_before)
        / static_cast<double>((bp.lookups() - look_before).count());
    EXPECT_LT(rate, 0.02);
}

TEST(Tournament, AtLeastAsGoodAsComponentsOnMixedStream)
{
    auto run = [](BPredConfig::Kind kind) {
        BranchPredictor bp(makeConfig(kind));
        std::uint64_t state = 777;
        for (int i = 0; i < 20000; ++i) {
            bp.predictAndTrain(0x10, (i % 3) != 2);   // loop period 3
            bp.predictAndTrain(0x20, true);           // biased
            state = state * 6364136223846793005ULL + 1;
            bp.predictAndTrain(0x30, (state >> 62) & 1); // random
        }
        return bp.mispredictRate();
    };
    double tournament = run(BPredConfig::Kind::Tournament);
    double bimodal = run(BPredConfig::Kind::Bimodal);
    EXPECT_LT(tournament, bimodal + 0.01);
    // Random branch caps us near 1/3 * 1/2; the other two should be
    // nearly free.
    EXPECT_LT(tournament, 0.22);
}

TEST(Predictor, CountsLookups)
{
    BranchPredictor bp(makeConfig(BPredConfig::Kind::Tournament));
    for (int i = 0; i < 50; ++i)
        bp.predictAndTrain(0x40, true);
    EXPECT_EQ(bp.lookups(), 50u);
    EXPECT_LE(bp.mispredicts(), 50u);
}

TEST(Btb, LearnsTargetsAndReportsHits)
{
    Btb btb(BtbConfig{16, 2});
    EXPECT_FALSE(btb.lookupAndTrain(0x1000, 0x2000)); // cold miss
    EXPECT_TRUE(btb.lookupAndTrain(0x1000, 0x2000));  // now hits
    // Target change is a miss once, then learned.
    EXPECT_FALSE(btb.lookupAndTrain(0x1000, 0x3000));
    EXPECT_TRUE(btb.lookupAndTrain(0x1000, 0x3000));
    EXPECT_EQ(btb.lookups(), 4u);
    EXPECT_EQ(btb.hits(), 2u);
}

TEST(Btb, LruEvictionWithinSet)
{
    // Direct-mapped 1-set x 2-way BTB: three branches mapping to the
    // same set evict the least recently used.
    Btb btb(BtbConfig{1, 2});
    btb.lookupAndTrain(0x10, 0xA); // fills way 0
    btb.lookupAndTrain(0x20, 0xB); // fills way 1
    btb.lookupAndTrain(0x30, 0xC); // evicts 0x10
    EXPECT_TRUE(btb.lookupAndTrain(0x20, 0xB));
    EXPECT_TRUE(btb.lookupAndTrain(0x30, 0xC));
    EXPECT_FALSE(btb.lookupAndTrain(0x10, 0xA)); // was evicted
}

TEST(Btb, RejectsBadGeometry)
{
    EXPECT_EXIT(Btb(BtbConfig{3, 2}), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(Btb(BtbConfig{4, 0}), ::testing::ExitedWithCode(1),
                "associativity");
}

} // namespace
} // namespace contest
