/**
 * @file
 * Unit tests for the contesting building blocks: result FIFOs with
 * pop-counter semantics, the per-core contesting unit's early
 * branch resolution, and the exception rendezvous coordinator.
 */

#include <gtest/gtest.h>

#include "contest/exception.hh"
#include "contest/result_fifo.hh"
#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

TEST(ResultFifo, PopCounterTracksHead)
{
    ResultFifo f(8);
    EXPECT_EQ(f.headSeq(), 0u);
    EXPECT_TRUE(f.empty());
    EXPECT_TRUE(f.push(InstSeq{0}, TimePs{100}));
    EXPECT_TRUE(f.push(InstSeq{1}, TimePs{110}));
    EXPECT_EQ(f.headSeq(), 0u);
    EXPECT_EQ(f.size(), 2u);
    f.pop();
    EXPECT_EQ(f.headSeq(), 1u);
    f.pop();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.headSeq(), 2u);
}

TEST(ResultFifo, ArrivalTimeGatesHead)
{
    ResultFifo f(8);
    f.push(InstSeq{0}, TimePs{500});
    EXPECT_FALSE(f.headArrived(TimePs{499})); // still in flight on the GRB
    EXPECT_TRUE(f.headArrived(TimePs{500}));
    ASSERT_TRUE(f.headArrival().has_value());
    EXPECT_EQ(*f.headArrival(), 500u);
}

TEST(ResultFifo, DiscardBelowDropsOnlyOlderEntries)
{
    ResultFifo f(8);
    for (InstSeq s{}; s < 5; ++s)
        f.push(s, TimePs{100} + s.count());
    EXPECT_EQ(f.discardBelow(InstSeq{3}), 3u);
    EXPECT_EQ(f.headSeq(), 3u);
    EXPECT_EQ(f.size(), 2u);
    // Discarding below an older position is a no-op.
    EXPECT_EQ(f.discardBelow(InstSeq{1}), 0u);
    EXPECT_EQ(f.headSeq(), 3u);
}

TEST(ResultFifo, OutOfOrderPushPanics)
{
    ResultFifo f(8);
    f.push(InstSeq{0}, TimePs{1});
    EXPECT_DEATH(f.push(InstSeq{2}, TimePs{2}), "out-of-order");
}

TEST(ResultFifo, OverflowReportsFailure)
{
    ResultFifo f(2);
    EXPECT_TRUE(f.push(InstSeq{0}, TimePs{1}));
    EXPECT_TRUE(f.push(InstSeq{1}, TimePs{2}));
    EXPECT_FALSE(f.push(InstSeq{2}, TimePs{3})); // saturated lagger signal
    EXPECT_EQ(f.size(), 2u);
    f.pop();
    EXPECT_TRUE(f.push(InstSeq{2}, TimePs{3})); // retry after drain succeeds
}

TEST(ResultFifo, ClearAdvancesPopCounterPastBufferedEntries)
{
    ResultFifo f(4);
    f.push(InstSeq{0}, TimePs{1});
    f.push(InstSeq{1}, TimePs{2});
    f.pop();
    f.clear();
    EXPECT_TRUE(f.empty());
    // The source has already retired through seq 1, so the next
    // in-order push carries seq 2; clear() must leave the pop
    // counter there, not at the stale head.
    EXPECT_EQ(f.headSeq(), 2u);
    EXPECT_TRUE(f.push(InstSeq{2}, TimePs{3}));
    EXPECT_EQ(f.headSeq(), 2u);
    EXPECT_EQ(f.size(), 1u);
}

/** Three-core system whose units can be driven by hand. */
ContestSystem
makeThreeCoreSystem(const ContestConfig &cfg)
{
    const auto &palette = appendixAPalette();
    std::vector<CoreConfig> cores(palette.begin(),
                                  palette.begin() + 3);
    return ContestSystem(cores, makeBenchmarkTrace("gcc", 1, 64),
                         cfg);
}

TEST(CoreContestUnit, ConfirmEarlyResolvePopsTheWinningSource)
{
    ContestConfig cfg;
    cfg.earlyBranchResolve = true;
    auto sys = makeThreeCoreSystem(cfg);
    CoreContestUnit &u = sys.unit(2);

    // Both sources retired branch seq 0, but over GRBs of very
    // different latency: source 0's result is still on the bus at
    // the resolve time, source 1's has arrived.
    u.receiveResult(0, InstSeq{0}, TimePs{1000});
    u.receiveResult(1, InstSeq{0}, TimePs{10});

    auto arrival = u.externalBranchResolve(InstSeq{0}, TimePs{50});
    ASSERT_TRUE(arrival.has_value());
    EXPECT_EQ(*arrival, 10u);

    // Confirming must pop source 1's FIFO — the one whose arrival
    // won — not whichever FIFO happens to hold the seq first.
    u.confirmEarlyResolve(InstSeq{0}, TimePs{50});
    EXPECT_EQ(u.popCounter(1), 1u);
    EXPECT_EQ(u.popCounter(0), 0u);
    EXPECT_EQ(u.stats().paired, 1u);
}

TEST(CoreContestUnit, ConfirmWithoutResolvePanics)
{
    ContestConfig cfg;
    cfg.earlyBranchResolve = true;
    auto sys = makeThreeCoreSystem(cfg);
    CoreContestUnit &u = sys.unit(2);
    u.receiveResult(0, InstSeq{0}, TimePs{10});
    EXPECT_DEATH(u.confirmEarlyResolve(InstSeq{0}, TimePs{50}), "no armed");
}

TEST(Exception, RendezvousWaitsForAllCores)
{
    ExceptionCoordinator coord(3, TimePs{1000});
    EXPECT_FALSE(coord.arrive(0, InstSeq{500}, TimePs{10}).has_value());
    EXPECT_FALSE(coord.arrive(1, InstSeq{500}, TimePs{20}).has_value());
    auto r = coord.arrive(2, InstSeq{500}, TimePs{30});
    ASSERT_TRUE(r.has_value());
    // Handler runs for 1000 ps after the last arrival.
    EXPECT_EQ(*r, 1030u);
    // Earlier arrivals re-query and see the same resume time.
    EXPECT_EQ(*coord.arrive(0, InstSeq{500}, TimePs{40}), 1030u);
    EXPECT_EQ(coord.handled(), 1u);
}

TEST(Exception, ArrivalsAreIdempotent)
{
    ExceptionCoordinator coord(2, TimePs{100});
    EXPECT_FALSE(coord.arrive(0, InstSeq{7}, TimePs{1}).has_value());
    EXPECT_FALSE(coord.arrive(0, InstSeq{7}, TimePs{2}).has_value()); // same core again
    EXPECT_TRUE(coord.arrive(1, InstSeq{7}, TimePs{3}).has_value());
}

TEST(Exception, IndependentRendezvousPerPosition)
{
    ExceptionCoordinator coord(2, TimePs{100});
    EXPECT_FALSE(coord.arrive(0, InstSeq{10}, TimePs{1}).has_value());
    EXPECT_FALSE(coord.arrive(1, InstSeq{20}, TimePs{2}).has_value());
    EXPECT_TRUE(coord.arrive(1, InstSeq{10}, TimePs{3}).has_value());
    EXPECT_TRUE(coord.arrive(0, InstSeq{20}, TimePs{4}).has_value());
    EXPECT_EQ(coord.handled(), 2u);
}

TEST(Exception, DropCoreReleasesWaiters)
{
    ExceptionCoordinator coord(2, TimePs{100});
    EXPECT_FALSE(coord.arrive(0, InstSeq{5}, TimePs{50}).has_value());
    coord.dropCore(1, TimePs{60}); // lagger parked; waiter must not hang
    auto r = coord.arrive(0, InstSeq{5}, TimePs{70});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 160u);
}

TEST(Exception, DroppedCoreDoesNotBlockNewRendezvous)
{
    ExceptionCoordinator coord(3, TimePs{100});
    coord.dropCore(2, TimePs{0});
    EXPECT_FALSE(coord.arrive(0, InstSeq{9}, TimePs{10}).has_value());
    EXPECT_TRUE(coord.arrive(1, InstSeq{9}, TimePs{20}).has_value());
}

} // namespace
} // namespace contest
