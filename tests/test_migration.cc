/**
 * @file
 * Unit tests for the migrational-baseline evaluator and the
 * asynchronous-interrupt (terminate-and-refork) machinery.
 */

#include <gtest/gtest.h>

#include "contest/system.hh"
#include "core/palette.hh"
#include "harness/migration.hh"
#include "harness/runner.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

TEST(Migration, OracleSwitchesWhenProfitable)
{
    // A alternates fast/slow blocks against B (times per region).
    std::vector<TimePs> a{TimePs{10}, TimePs{10}, TimePs{100}, TimePs{100}, TimePs{10}, TimePs{10}, TimePs{100}, TimePs{100}};
    std::vector<TimePs> b{TimePs{100}, TimePs{100}, TimePs{10}, TimePs{10}, TimePs{100}, TimePs{100}, TimePs{10}, TimePs{10}};
    MigrationConfig cfg;
    cfg.regionsPerBlock = 2;
    cfg.migrationPenaltyPs = TimePs{};
    cfg.policy = MigrationPolicy::Oracle;
    auto r = simulateMigration(a, b, cfg);
    EXPECT_EQ(r.totalPs, 80u); // 4 blocks x 20 ps each
    EXPECT_EQ(r.migrations, 3u);
    EXPECT_DOUBLE_EQ(r.shareA, 0.5);
}

TEST(Migration, PenaltyMakesSwitchingUnprofitable)
{
    std::vector<TimePs> a{TimePs{10}, TimePs{100}, TimePs{10}, TimePs{100}};
    std::vector<TimePs> b{TimePs{100}, TimePs{10}, TimePs{100}, TimePs{10}};
    MigrationConfig cfg;
    cfg.regionsPerBlock = 1;
    cfg.policy = MigrationPolicy::Oracle;

    cfg.migrationPenaltyPs = TimePs{};
    auto free_switch = simulateMigration(a, b, cfg);
    EXPECT_EQ(free_switch.totalPs, 40u);

    cfg.migrationPenaltyPs = TimePs{1000};
    auto costly = simulateMigration(a, b, cfg);
    // The oracle here is per-block greedy; penalties add up.
    EXPECT_EQ(costly.totalPs, 40u + 3u * 1000u);
    EXPECT_GT(costly.totalPs, 220u); // worse than staying on A
}

TEST(Migration, HistoryLagsOneBlock)
{
    // Behaviour flips every block, so yesterday's winner is always
    // today's loser: history picks wrong every time after block 0.
    std::vector<TimePs> a{TimePs{10}, TimePs{100}, TimePs{10}, TimePs{100}};
    std::vector<TimePs> b{TimePs{100}, TimePs{10}, TimePs{100}, TimePs{10}};
    MigrationConfig cfg;
    cfg.regionsPerBlock = 1;
    cfg.migrationPenaltyPs = TimePs{};
    cfg.policy = MigrationPolicy::History;
    auto r = simulateMigration(a, b, cfg);
    // Block 0 on A (10), then always the previous winner: block 1
    // on A (100), block 2 on B (100), block 3 on A (100).
    EXPECT_EQ(r.totalPs, 310u);
}

TEST(Migration, CoarserBlocksReduceOpportunity)
{
    Runner runner(40000, 11);
    const auto &ra = runner.single("twolf", "twolf");
    const auto &rb = runner.single("twolf", "vpr");
    MigrationConfig fine;
    fine.regionsPerBlock = 1;
    fine.migrationPenaltyPs = TimePs{};
    MigrationConfig coarse = fine;
    coarse.regionsPerBlock = 512;
    auto f = simulateMigration(ra.regions->series(),
                               rb.regions->series(), fine);
    auto c = simulateMigration(ra.regions->series(),
                               rb.regions->series(), coarse);
    EXPECT_LE(f.totalPs, c.totalPs);
}

TEST(Interrupts, ReforkCompletesCorrectly)
{
    auto trace = makeBenchmarkTrace("gcc", 3, 30000);
    ContestConfig cfg;
    cfg.interruptPeriodPs = TimePs{3'000'000};  // 3 us
    cfg.interruptHandlerPs = TimePs{200'000};   // 200 ns
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace, cfg);
    auto r = sys.run();
    EXPECT_GT(r.interruptsHandled, 0u);
    EXPECT_EQ(std::max(r.coreStats[0].retired,
                       r.coreStats[1].retired),
              trace->size());
    EXPECT_NEAR(r.leadFraction[0] + r.leadFraction[1], 1.0, 1e-9);
}

TEST(Interrupts, CostPerformance)
{
    auto trace = makeBenchmarkTrace("twolf", 5, 30000);
    auto run_with = [&](TimePs period) {
        ContestConfig cfg;
        cfg.interruptPeriodPs = period;
        cfg.interruptHandlerPs = TimePs{200'000};
        ContestSystem sys({coreConfigByName("twolf"),
                           coreConfigByName("vpr")},
                          trace, cfg);
        return sys.run();
    };
    auto frequent = run_with(TimePs{1'000'000});
    auto none = run_with(TimePs{});
    EXPECT_GT(frequent.interruptsHandled, none.interruptsHandled);
    EXPECT_LT(frequent.ipt, none.ipt);
}

TEST(Interrupts, DeterministicWithRefork)
{
    auto trace = makeBenchmarkTrace("parser", 7, 20000);
    auto run_once = [&]() {
        ContestConfig cfg;
        cfg.interruptPeriodPs = TimePs{2'000'000};
        ContestSystem sys({coreConfigByName("parser"),
                           coreConfigByName("gzip")},
                          trace, cfg);
        return sys.run();
    };
    auto r1 = run_once();
    auto r2 = run_once();
    EXPECT_EQ(r1.timePs, r2.timePs);
    EXPECT_EQ(r1.interruptsHandled, r2.interruptsHandled);
}

TEST(Interrupts, RejectsPeriodShorterThanHandler)
{
    // Re-exec instead of fork: with CONTEST_CONTEST_JOBS > 1 the
    // contests above ran worker threads, and forking a threaded
    // process crashes in the child after the expected fatal fires.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto trace = makeBenchmarkTrace("vpr", 9, 2000);
    ContestConfig cfg;
    cfg.interruptPeriodPs = TimePs{100};
    cfg.interruptHandlerPs = TimePs{200};
    EXPECT_EXIT(ContestSystem({coreConfigByName("vpr")}, trace, cfg),
                ::testing::ExitedWithCode(1), "interrupt period");
}

TEST(Interrupts, CoreReforkResetsPipelineState)
{
    // Direct core-level check: refork mid-run, then finish.
    auto trace = makeBenchmarkTrace("gcc", 13, 5000);
    OooCore core(coreConfigByName("twolf"), trace);
    TimePs now{};
    while (core.retired() < 1000) {
        core.tick(now);
        now += core.periodPs();
    }
    core.reforkTo(InstSeq{500});
    EXPECT_EQ(core.retired(), 500u);
    EXPECT_EQ(core.nextFetchSeq(), 500u);
    while (!core.done()) {
        core.tick(now);
        now += core.periodPs();
    }
    EXPECT_EQ(core.retired(), trace->size());
}

} // namespace
} // namespace contest
