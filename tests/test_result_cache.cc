/**
 * @file
 * Unit tests for the on-disk result cache: key canonicalization,
 * store/load round-trips, corruption and version handling, and the
 * Runner integration that makes a second process start warm.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/palette.hh"
#include "harness/result_cache.hh"
#include "harness/runner.hh"

namespace contest
{
namespace
{

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path() / "contest_result_cache_test")
                  .string();
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    static SingleRunResult
    sampleResult()
    {
        SingleRunResult r;
        r.timePs = TimePs{123456789};
        r.ipt = 1.875;
        r.stats.cycles = Cycles{1000};
        r.stats.retired = 4000;
        r.stats.mispredicts = 37;
        r.stats.storeQueueStalls = Cycles{12};
        r.energy.pipelineNj = 1.5;
        r.energy.contestNj = 0.25;
        return r;
    }

    std::string dir;
};

TEST_F(ResultCacheTest, KeyIsCanonicalAndConfigSensitive)
{
    const CoreConfig &gcc = coreConfigByName("gcc");
    const CoreConfig &vpr = coreConfigByName("vpr");
    std::string k1 = ResultCache::singleRunKey(gcc, "gcc", 2009, 400000);
    EXPECT_EQ(k1, ResultCache::singleRunKey(gcc, "gcc", 2009, 400000));
    EXPECT_NE(k1, ResultCache::singleRunKey(vpr, "gcc", 2009, 400000));
    EXPECT_NE(k1, ResultCache::singleRunKey(gcc, "vpr", 2009, 400000));
    EXPECT_NE(k1, ResultCache::singleRunKey(gcc, "gcc", 2010, 400000));
    EXPECT_NE(k1, ResultCache::singleRunKey(gcc, "gcc", 2009, 8000));

    // Every microarchitectural field participates: a one-off tweak
    // must change the key.
    CoreConfig tweaked = gcc;
    tweaked.robSize += 1;
    EXPECT_NE(k1,
              ResultCache::singleRunKey(tweaked, "gcc", 2009, 400000));
}

TEST_F(ResultCacheTest, StoreThenLoadRoundTrips)
{
    ResultCache cache(dir);
    SingleRunResult stored = sampleResult();
    std::vector<TimePs> series{TimePs{100}, TimePs{200}, TimePs{50}};
    cache.store("some-key", stored, series);
    EXPECT_EQ(cache.stores(), 1u);

    SingleRunResult loaded;
    std::vector<TimePs> loaded_series;
    ASSERT_TRUE(cache.load("some-key", loaded, loaded_series));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(loaded.timePs, stored.timePs);
    EXPECT_EQ(loaded.ipt, stored.ipt);
    EXPECT_EQ(loaded.stats.cycles, stored.stats.cycles);
    EXPECT_EQ(loaded.stats.retired, stored.stats.retired);
    EXPECT_EQ(loaded.stats.mispredicts, stored.stats.mispredicts);
    EXPECT_EQ(loaded.stats.storeQueueStalls,
              stored.stats.storeQueueStalls);
    EXPECT_EQ(loaded.energy.pipelineNj, stored.energy.pipelineNj);
    EXPECT_EQ(loaded.energy.contestNj, stored.energy.contestNj);
    EXPECT_EQ(loaded_series, series);
}

TEST_F(ResultCacheTest, MissesOnAbsentKey)
{
    ResultCache cache(dir);
    SingleRunResult r;
    std::vector<TimePs> series;
    EXPECT_FALSE(cache.load("never-stored", r, series));
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(ResultCacheTest, VersionBumpInvalidates)
{
    ResultCache v1(dir, 1);
    v1.store("key", sampleResult(), {});

    ResultCache v2(dir, 2);
    SingleRunResult r;
    std::vector<TimePs> series;
    // The version participates in the entry digest, so v2 looks at a
    // different path entirely and must miss.
    EXPECT_NE(v1.entryPath("key"), v2.entryPath("key"));
    EXPECT_FALSE(v2.load("key", r, series));
    // v1 still hits its own entry.
    EXPECT_TRUE(v1.load("key", r, series));
}

TEST_F(ResultCacheTest, RejectsTruncatedOrCorruptEntries)
{
    ResultCache cache(dir);
    std::vector<TimePs> series{TimePs{7}};
    cache.store("key", sampleResult(), series);

    // Truncate the entry to half its size.
    std::string path = cache.entryPath("key");
    auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);

    SingleRunResult r;
    std::vector<TimePs> out;
    EXPECT_FALSE(cache.load("key", r, out));

    // Garbage of the right rough size is rejected by the magic check.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        std::string junk(static_cast<std::size_t>(size), 'x');
        f.write(junk.data(),
                static_cast<std::streamsize>(junk.size()));
    }
    EXPECT_FALSE(cache.load("key", r, out));
}

TEST_F(ResultCacheTest, DigestCollisionDegradesToMiss)
{
    ResultCache cache(dir);
    cache.store("key-a", sampleResult(), {});

    // Simulate a filename collision: key-b hashing onto key-a's
    // entry. The stored full key disagrees, so it must miss rather
    // than serve key-a's payload.
    fs::copy_file(cache.entryPath("key-a"), cache.entryPath("key-b"),
                  fs::copy_options::overwrite_existing);
    SingleRunResult r;
    std::vector<TimePs> series;
    EXPECT_FALSE(cache.load("key-b", r, series));
    EXPECT_TRUE(cache.load("key-a", r, series));
}

TEST_F(ResultCacheTest, RunnerWarmStartSkipsSimulation)
{
    ResultCache cold_cache(dir);
    Runner cold(4000, 11);
    cold.setResultCache(&cold_cache);
    const auto &first = cold.single("gcc", "gcc");
    EXPECT_EQ(cold.simulationsPerformed(), 1u);
    EXPECT_EQ(cold.diskHits(), 0u);
    EXPECT_EQ(cold_cache.stores(), 1u);

    // A fresh Runner (a new process, as far as the cache knows) with
    // the same trace parameters starts warm: zero simulations, and
    // the restored result is bit-identical, region series included.
    ResultCache warm_cache(dir);
    Runner warm(4000, 11);
    warm.setResultCache(&warm_cache);
    const auto &restored = warm.single("gcc", "gcc");
    EXPECT_EQ(warm.simulationsPerformed(), 0u);
    EXPECT_EQ(warm.diskHits(), 1u);
    EXPECT_EQ(restored.result.timePs, first.result.timePs);
    EXPECT_EQ(restored.result.ipt, first.result.ipt);
    EXPECT_EQ(restored.result.stats.retired,
              first.result.stats.retired);
    EXPECT_EQ(restored.regions->series(), first.regions->series());

    // Different trace parameters must not hit the same entries.
    ResultCache other_cache(dir);
    Runner other(4000, 12);
    other.setResultCache(&other_cache);
    other.single("gcc", "gcc");
    EXPECT_EQ(other.simulationsPerformed(), 1u);
    EXPECT_EQ(other.diskHits(), 0u);
}

} // namespace
} // namespace contest
