/**
 * @file
 * Unit tests for the multiprogrammed-load scheduler simulation and
 * the energy model.
 */

#include <gtest/gtest.h>

#include "power/energy.hh"
#include "sched/scheduler.hh"

namespace contest
{
namespace
{

/** Two benchmarks, two symmetric core types: b0 prefers c0, b1
 *  prefers c1, both by the same factor. */
IptMatrix
symmetricMatrix()
{
    IptMatrix m;
    m.benchNames = {"b0", "b1"};
    m.coreNames = {"c0", "c1"};
    m.ipt = {
        {4.0, 1.0},
        {1.0, 4.0},
    };
    m.validate();
    return m;
}

/** Both benchmarks prefer c0; c1 is everyone's second choice. */
IptMatrix
skewedMatrix()
{
    IptMatrix m;
    m.benchNames = {"b0", "b1"};
    m.coreNames = {"c0", "c1"};
    m.ipt = {
        {4.0, 3.5},
        {4.0, 3.5},
    };
    m.validate();
    return m;
}

CmpDesign
pairDesign(const IptMatrix &m)
{
    CmpDesign d;
    d.name = "PAIR";
    d.cores = {0, 1};
    d.score = scoreCmp(m, d.cores, Merit::Har);
    return d;
}

TEST(Scheduler, LightLoadHasNoQueueing)
{
    auto m = symmetricMatrix();
    SchedConfig cfg;
    cfg.totalCores = 4;
    cfg.jobInsts = 1e6;            // 250k ns on the preferred core
    cfg.meanInterarrivalNs = 1e7;  // essentially idle system
    cfg.numJobs = 300;
    auto r = simulateLoad(m, pairDesign(m), cfg);
    EXPECT_NEAR(r.meanQueueNs, 0.0, r.meanServiceNs * 0.01);
    EXPECT_NEAR(r.meanServiceNs, 250'000.0, 25'000.0);
}

TEST(Scheduler, HeavyLoadQueues)
{
    auto m = symmetricMatrix();
    SchedConfig cfg;
    cfg.totalCores = 2;
    cfg.jobInsts = 1e6;
    // Each core type receives a job every ~240k ns on average but
    // needs 250k ns to serve one: the queues grow without bound.
    cfg.meanInterarrivalNs = 120'000.0;
    cfg.numJobs = 1000;
    auto r = simulateLoad(m, pairDesign(m), cfg);
    EXPECT_GT(r.meanQueueNs, r.meanServiceNs);
    EXPECT_GT(r.maxUtilization, 0.9);
}

TEST(Scheduler, BalancedPreferencesBeatSkewedUnderLoad)
{
    // The Section 6.1 argument: with queue-at-preferred-type
    // scheduling, a design where every job type prefers the same
    // core turns half the machine into dead weight.
    SchedConfig cfg;
    cfg.totalCores = 2;
    cfg.jobInsts = 1e6;
    cfg.meanInterarrivalNs = 300'000.0;
    cfg.numJobs = 1500;
    cfg.policy = SchedPolicy::PreferredType;

    auto balanced = symmetricMatrix();
    auto skewed = skewedMatrix();
    auto r_bal = simulateLoad(balanced, pairDesign(balanced), cfg);
    auto r_skew = simulateLoad(skewed, pairDesign(skewed), cfg);
    EXPECT_LT(r_bal.meanTurnaroundNs, r_skew.meanTurnaroundNs / 2);
}

TEST(Scheduler, BestAvailableRescuesSkewedDesigns)
{
    auto skewed = skewedMatrix();
    SchedConfig cfg;
    cfg.totalCores = 2;
    cfg.jobInsts = 1e6;
    cfg.meanInterarrivalNs = 300'000.0;
    cfg.numJobs = 1500;

    cfg.policy = SchedPolicy::PreferredType;
    auto queued = simulateLoad(skewed, pairDesign(skewed), cfg);
    cfg.policy = SchedPolicy::BestAvailable;
    auto balanced = simulateLoad(skewed, pairDesign(skewed), cfg);
    EXPECT_LT(balanced.meanTurnaroundNs, queued.meanTurnaroundNs);
}

TEST(Scheduler, JobCountsCoverAllJobs)
{
    auto m = symmetricMatrix();
    SchedConfig cfg;
    cfg.numJobs = 500;
    auto r = simulateLoad(m, pairDesign(m), cfg);
    std::uint64_t total = 0;
    for (auto c : r.jobsPerType)
        total += c;
    EXPECT_EQ(total, cfg.numJobs);
}

TEST(Scheduler, DeterministicForEqualSeeds)
{
    auto m = symmetricMatrix();
    SchedConfig cfg;
    cfg.numJobs = 400;
    cfg.seed = 17;
    auto r1 = simulateLoad(m, pairDesign(m), cfg);
    auto r2 = simulateLoad(m, pairDesign(m), cfg);
    EXPECT_EQ(r1.meanTurnaroundNs, r2.meanTurnaroundNs);
    EXPECT_EQ(r1.p95TurnaroundNs, r2.p95TurnaroundNs);
}

TEST(Energy, StaticScalesWithStructuresAndTime)
{
    CoreConfig small;
    small.robSize = 64;
    small.iqSize = 16;
    small.width = 2;
    CoreConfig big = small;
    big.robSize = 1024;
    big.iqSize = 128;
    big.width = 8;
    EXPECT_GT(staticPowerW(big), staticPowerW(small) * 1.5);

    CoreStats stats;
    ActivityCounts none;
    auto e1 = estimateEnergy(small, stats, none, TimePs{1'000'000});
    auto e2 = estimateEnergy(small, stats, none, TimePs{2'000'000});
    EXPECT_NEAR(e2.staticNj, 2.0 * e1.staticNj, 1e-9);
}

TEST(Energy, DynamicTracksActivity)
{
    CoreConfig cfg;
    CoreStats stats;
    stats.retired = 1000;
    stats.condBranches = 100;
    stats.mispredicts = 10;
    ActivityCounts activity;
    activity.l1Accesses = 300;
    activity.l1Misses = 30;
    activity.l2Accesses = 30;
    activity.l2Misses = 5;
    auto e = estimateEnergy(cfg, stats, activity, TimePs{});
    EXPECT_GT(e.pipelineNj, 0.0);
    EXPECT_GT(e.cacheNj, 0.0);
    EXPECT_GT(e.bpredNj, 0.0);
    EXPECT_GT(e.squashNj, 0.0);
    EXPECT_EQ(e.staticNj, 0.0);
    EXPECT_EQ(e.contestNj, 0.0);
    EXPECT_GT(e.totalNj(), 0.0);
}

TEST(Energy, InjectedWorkIsCheaperThanExecuted)
{
    CoreConfig cfg;
    ActivityCounts activity;
    CoreStats executed_all;
    executed_all.retired = 1000;
    CoreStats injected_all = executed_all;
    injected_all.injected = 1000;
    auto e_exec = estimateEnergy(cfg, executed_all, activity, TimePs{});
    auto e_inj = estimateEnergy(cfg, injected_all, activity, TimePs{});
    EXPECT_LT(e_inj.pipelineNj, e_exec.pipelineNj);
}

TEST(Energy, ContestEnergyCountsBusAndInjections)
{
    CoreConfig cfg;
    CoreStats stats;
    ActivityCounts activity;
    activity.grbBroadcasts = 1000;
    activity.injections = 500;
    auto e = estimateEnergy(cfg, stats, activity, TimePs{});
    EXPECT_GT(e.contestNj, 0.0);
}

} // namespace
} // namespace contest
