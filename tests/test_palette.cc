/**
 * @file
 * Tests that the Appendix A palette is transcribed faithfully and
 * that every configuration is structurally valid.
 */

#include <gtest/gtest.h>

#include "core/palette.hh"

namespace contest
{
namespace
{

TEST(Palette, HasElevenCoreTypesInPaperOrder)
{
    const auto &p = appendixAPalette();
    ASSERT_EQ(p.size(), 11u);
    const char *order[] = {"bzip", "crafty", "gap", "gcc",
                           "gzip", "mcf", "parser", "perl",
                           "twolf", "vortex", "vpr"};
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(p[i].name, order[i]);
}

TEST(Palette, AppendixAValuesSpotChecks)
{
    // bzip column.
    const auto &bzip = coreConfigByName("bzip");
    EXPECT_EQ(bzip.memAccessCycles, 112u);
    EXPECT_EQ(bzip.frontEndDepth, 4u);
    EXPECT_EQ(bzip.width, 5u);
    EXPECT_EQ(bzip.robSize, 512u);
    EXPECT_EQ(bzip.iqSize, 64u);
    EXPECT_EQ(bzip.wakeupLatency, 0u);
    EXPECT_EQ(bzip.schedDepth, 1u);
    EXPECT_EQ(bzip.clockPeriodPs, 490u);
    EXPECT_EQ(bzip.l1d.assoc, 2u);
    EXPECT_EQ(bzip.l1d.blockBytes, 32u);
    EXPECT_EQ(bzip.l1d.sets, 1024u);
    EXPECT_EQ(bzip.l1d.latency, 2u);
    EXPECT_EQ(bzip.l2.sets, 8192u);
    EXPECT_EQ(bzip.l2.latency, 15u);
    EXPECT_EQ(bzip.lsqSize, 128u);

    // mcf column: the big-window slow-clock memory core.
    const auto &mcf = coreConfigByName("mcf");
    EXPECT_EQ(mcf.robSize, 1024u);
    EXPECT_EQ(mcf.width, 3u);
    EXPECT_EQ(mcf.clockPeriodPs, 450u);
    EXPECT_EQ(mcf.l2.capacityBytes(), 4u * 1024u * 1024u);
    EXPECT_EQ(mcf.l2.latency, 27u);
    EXPECT_EQ(mcf.memAccessCycles, 120u);

    // crafty column: the wide deep-pipelined fast-clock core.
    const auto &crafty = coreConfigByName("crafty");
    EXPECT_EQ(crafty.width, 8u);
    EXPECT_EQ(crafty.frontEndDepth, 12u);
    EXPECT_EQ(crafty.clockPeriodPs, 190u);
    EXPECT_EQ(crafty.wakeupLatency, 3u);
    EXPECT_EQ(crafty.l1d.blockBytes, 8u);
    EXPECT_EQ(crafty.l1d.sets, 16384u);

    // parser column: 512B L2 blocks, 32 sets.
    const auto &parser = coreConfigByName("parser");
    EXPECT_EQ(parser.l2.blockBytes, 512u);
    EXPECT_EQ(parser.l2.sets, 32u);
    EXPECT_EQ(parser.lsqSize, 256u);
}

TEST(Palette, AllConfigsValidate)
{
    for (const auto &c : appendixAPalette()) {
        c.validate(); // fatal() on failure
        EXPECT_GT(c.peakIps(), 0.0);
        EXPECT_GT(c.frequencyGHz(), 1.0) << c.name;
        EXPECT_LT(c.frequencyGHz(), 6.0) << c.name;
    }
}

TEST(Palette, PeakIpsOrdersByWidthOverPeriod)
{
    // crafty (8 @ 190ps) has the highest peak rate; mcf (3 @ 450ps)
    // the lowest — the saturated-lagger condition of Section 4.1.4.
    const auto &p = appendixAPalette();
    double max_peak = 0.0;
    double min_peak = 1e9;
    std::string max_name;
    std::string min_name;
    for (const auto &c : p) {
        if (c.peakIps() > max_peak) {
            max_peak = c.peakIps();
            max_name = c.name;
        }
        if (c.peakIps() < min_peak) {
            min_peak = c.peakIps();
            min_name = c.name;
        }
    }
    EXPECT_EQ(max_name, "crafty");
    EXPECT_EQ(min_name, "mcf");
}

TEST(Palette, UnknownCoreTypeIsFatal)
{
    EXPECT_EXIT(coreConfigByName("eon"),
                ::testing::ExitedWithCode(1), "unknown core type");
}

TEST(CoreConfig, ValidationCatchesBadShapes)
{
    CoreConfig c;
    c.width = 0;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), "width");
    c = CoreConfig{};
    c.iqSize = c.robSize + 1;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "issue queue");
    c = CoreConfig{};
    c.clockPeriodPs = TimePs{};
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), "clock");
}

TEST(CoreConfig, BandwidthGapsScaleWithBlockAndClock)
{
    CoreConfig c;
    c.clockPeriodPs = TimePs{250};
    c.memBandwidthBytesPerNs = 16.0;
    c.l2.blockBytes = 64; // 4ns per fill = 16 cycles at 250ps
    EXPECT_EQ(c.loadFillGapCycles(), 16u);
    c.l2.blockBytes = 128;
    EXPECT_EQ(c.loadFillGapCycles(), 32u);
    // A word drain is 0.5ns = 2 cycles.
    EXPECT_EQ(c.storeDrainGapCycles(), 2u);
}

} // namespace
} // namespace contest
