/**
 * @file
 * Unit tests for the exploration substrate: figures of merit, CMP
 * combination search, and the simulated-annealing explorer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "explore/annealer.hh"
#include "explore/cmp_design.hh"
#include "explore/merit.hh"

namespace contest
{
namespace
{

/** A small matrix with a known structure: 3 benchmarks, 3 cores. */
IptMatrix
toyMatrix()
{
    IptMatrix m;
    m.benchNames = {"b0", "b1", "b2"};
    m.coreNames = {"c0", "c1", "c2"};
    m.ipt = {
        {4.0, 1.0, 2.0}, // b0 loves c0
        {1.0, 4.0, 2.0}, // b1 loves c1
        {1.0, 1.0, 2.0}, // b2 loves c2
    };
    m.validate();
    return m;
}

TEST(Merit, BestCoreSelection)
{
    auto m = toyMatrix();
    std::vector<std::size_t> all{0, 1, 2};
    EXPECT_EQ(bestCoreFor(m, 0, all), 0u);
    EXPECT_EQ(bestCoreFor(m, 1, all), 1u);
    EXPECT_EQ(bestCoreFor(m, 2, all), 2u);
    std::vector<std::size_t> pair{1, 2};
    EXPECT_EQ(bestCoreFor(m, 0, pair), 2u);
}

TEST(Merit, AvgAndHarScores)
{
    auto m = toyMatrix();
    std::vector<std::size_t> all{0, 1, 2};
    // Best IPTs are 4, 4, 2.
    EXPECT_NEAR(scoreCmp(m, all, Merit::Avg), 10.0 / 3.0, 1e-12);
    EXPECT_NEAR(scoreCmp(m, all, Merit::Har),
                3.0 / (0.25 + 0.25 + 0.5), 1e-12);
}

TEST(Merit, CwHarPenalizesSharedCores)
{
    auto m = toyMatrix();
    // With only c2 available, all three benchmarks share one core
    // type: each effective IPT is divided by 3.
    std::vector<std::size_t> only_c2{2};
    double base = scoreCmp(m, only_c2, Merit::Har);
    double cw = scoreCmp(m, only_c2, Merit::CwHar);
    EXPECT_NEAR(cw, base / 3.0, 1e-12);
}

TEST(Merit, CwHarPrefersBalancedPreferences)
{
    // Two candidate pairs with the same best-IPTs but different
    // sharing: cw-har must prefer the balanced one.
    IptMatrix m;
    m.benchNames = {"b0", "b1"};
    m.coreNames = {"c0", "c1", "c2"};
    m.ipt = {
        {3.0, 3.1, 3.0},
        {3.0, 3.1, 3.0},
    };
    m.validate();
    // Pair {c1, c2}: both prefer c1 (3.1) -> shared.
    // Pair {c0, c2}: tie broken to earlier index; both prefer c0.
    double shared = scoreCmp(m, {1, 2}, Merit::CwHar);
    double har_shared = scoreCmp(m, {1, 2}, Merit::Har);
    EXPECT_NEAR(shared, har_shared / 2.0, 1e-12);
}

TEST(Merit, MatrixLookupsAndValidation)
{
    auto m = toyMatrix();
    EXPECT_EQ(m.coreIndex("c1"), 1u);
    EXPECT_EQ(m.benchIndex("b2"), 2u);
    EXPECT_EXIT(m.coreIndex("zz"), ::testing::ExitedWithCode(1),
                "unknown core");
    IptMatrix bad = m;
    bad.ipt[0][0] = -1.0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "non-positive");
}

TEST(CmpDesign, FindsTheObviousPair)
{
    auto m = toyMatrix();
    auto d = designCmp(m, 2, Merit::Har, "TEST");
    // The harmonic mean is maximized by covering b0 and b1's strong
    // cores: {c0, c1} gives best IPTs {4, 4, 1}; {c0, c2} gives
    // {4, 2, 2}; {c1, c2} gives {2, 4, 2}.
    // har({4,4,1}) = 2.0; har({4,2,2}) = 2.4; har({2,4,2}) = 2.4.
    EXPECT_EQ(d.cores.size(), 2u);
    EXPECT_NEAR(d.score, 2.4, 1e-9);
}

TEST(CmpDesign, HomPicksBestSingle)
{
    auto m = toyMatrix();
    auto hom = designHom(m, Merit::Avg, "HOM");
    // avg per single core: c0: 2.0, c1: 2.0, c2: 2.0 — tie; any is
    // acceptable, but the score must be 2.0.
    EXPECT_EQ(hom.cores.size(), 1u);
    EXPECT_NEAR(hom.score, 2.0, 1e-12);
}

TEST(CmpDesign, HetAllUsesEveryCore)
{
    auto m = toyMatrix();
    auto all = designHetAll(m, "HET-ALL");
    EXPECT_EQ(all.cores.size(), 3u);
    EXPECT_NEAR(designHarmonicIpt(m, all),
                3.0 / (0.25 + 0.25 + 0.5), 1e-12);
    EXPECT_EQ(designCoreNames(m, all), "c0 & c1 & c2");
}

TEST(CmpDesign, CombinationCountIsExhaustive)
{
    // Verify the search visits all C(5,2)=10 combinations by making
    // the optimum an "unlikely" pair.
    IptMatrix m;
    m.benchNames = {"b0"};
    m.coreNames = {"c0", "c1", "c2", "c3", "c4"};
    m.ipt = {{1.0, 1.0, 1.0, 1.0, 9.0}};
    m.validate();
    auto d = designCmp(m, 2, Merit::Har, "X");
    EXPECT_TRUE(std::find(d.cores.begin(), d.cores.end(), 4u)
                != d.cores.end());
    EXPECT_NEAR(d.score, 9.0, 1e-12);
}

TEST(Annealer, TechnologyModelTradesFrequencyForStructures)
{
    CoreConfig small;
    small.iqSize = 16;
    small.robSize = 64;
    small.width = 2;
    applyTechnologyModel(small);

    CoreConfig big = small;
    big.iqSize = 128;
    big.robSize = 1024;
    big.width = 8;
    applyTechnologyModel(big);

    EXPECT_GT(big.clockPeriodPs, small.clockPeriodPs);

    CoreConfig pipelined = big;
    pipelined.schedDepth = Cycles{4};
    pipelined.wakeupLatency = Cycles{3};
    pipelined.frontEndDepth = 12;
    applyTechnologyModel(pipelined);
    EXPECT_LT(pipelined.clockPeriodPs, big.clockPeriodPs);
}

TEST(Annealer, CacheLatencyFollowsCapacity)
{
    CoreConfig c;
    c.l1d = CacheConfig{128, 1, 32, Cycles{1}, false, true}; // 4KB
    applyTechnologyModel(c);
    Cycles small_lat = c.l1d.latency;
    c.l1d = CacheConfig{16384, 4, 64, Cycles{1}, false, true}; // 4MB
    applyTechnologyModel(c);
    EXPECT_GT(c.l1d.latency, small_lat);
}

TEST(Annealer, ImprovesAnAnalyticObjective)
{
    // Objective: prefer wide, shallow machines with big ROBs but
    // punish slow clocks — the annealer must find a better tradeoff
    // than the narrow start point.
    auto objective = [](const CoreConfig &c) {
        double width_gain = std::sqrt(static_cast<double>(c.width));
        double rob_gain =
            std::log2(static_cast<double>(c.robSize));
        return width_gain * rob_gain * 1000.0
            / static_cast<double>(c.clockPeriodPs);
    };

    CoreConfig start;
    start.width = 2;
    start.robSize = 64;
    start.iqSize = 16;
    applyTechnologyModel(start);
    double start_score = objective(start);

    AnnealConfig ac;
    ac.steps = StepCount{400};
    ac.seed = 5;
    auto result = annealCoreConfig(objective, start, ac);
    EXPECT_GT(result.bestScore, start_score);
    EXPECT_EQ(result.evaluations, 401u);
    EXPECT_GT(result.accepted, 0u);
    result.best.validate();
}

TEST(Annealer, DeterministicForEqualSeeds)
{
    auto objective = [](const CoreConfig &c) {
        return static_cast<double>(c.width) * 100.0
            / static_cast<double>(c.clockPeriodPs);
    };
    CoreConfig start;
    AnnealConfig ac;
    ac.steps = StepCount{100};
    ac.seed = 9;
    auto r1 = annealCoreConfig(objective, start, ac);
    auto r2 = annealCoreConfig(objective, start, ac);
    EXPECT_EQ(r1.bestScore, r2.bestScore);
    EXPECT_EQ(r1.accepted, r2.accepted);
    EXPECT_EQ(r1.best.width, r2.best.width);
}


TEST(Merit, WeightedReducesToUnweightedForUniformWeights)
{
    auto m = toyMatrix();
    std::vector<std::size_t> all{0, 1, 2};
    std::vector<double> uniform{1.0, 1.0, 1.0};
    for (Merit merit : {Merit::Avg, Merit::Har, Merit::CwHar})
        EXPECT_NEAR(scoreCmpWeighted(m, all, merit, uniform),
                    scoreCmp(m, all, merit), 1e-12);
}

TEST(Merit, WeightsShiftTheOptimum)
{
    auto m = toyMatrix();
    // Weight b2 overwhelmingly: the best single core becomes c2
    // (the only one giving b2 its maximum IPT of 2.0).
    std::vector<double> w{1.0, 1.0, 100.0};
    double c2_score = scoreCmpWeighted(m, {2}, Merit::Har, w);
    double c0_score = scoreCmpWeighted(m, {0}, Merit::Har, w);
    EXPECT_GT(c2_score, c0_score);
}

TEST(Merit, WeightedRejectsBadInput)
{
    auto m = toyMatrix();
    EXPECT_EXIT(
        scoreCmpWeighted(m, {0}, Merit::Har, {1.0, 1.0}),
        ::testing::ExitedWithCode(1), "weights");
    EXPECT_EXIT(
        scoreCmpWeighted(m, {0}, Merit::Har, {1.0, -1.0, 1.0}),
        ::testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace contest
