/**
 * @file
 * Dynamic layer of the window-phase discipline (DESIGN.md §12): in a
 * CONTEST_CHECK_WINDOWS build every shared contest-state access is
 * recorded in the ShadowAccessLog and each window commit verifies
 * that no lane wrote state it does not own. Two tests pin the
 * checker down from both sides: a clean contested run must verify
 * every window with zero conflicts, and an injected in-window
 * performStore (the CONTEST_CHECK_WINDOWS_INJECT knob) must die
 * loudly naming the lane, the window and the call site. In ordinary
 * builds the hooks compile to nothing and this binary skips.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"

namespace contest
{
namespace
{

#ifndef CONTEST_CHECK_WINDOWS

TEST(WindowCheck, RequiresCheckWindowsBuild)
{
    GTEST_SKIP() << "configure with -DCONTEST_CHECK_WINDOWS=ON to "
                    "exercise the shadow access log";
}

#else

TEST(WindowCheck, CleanRunVerifiesAllWindows)
{
    unsetenv("CONTEST_CHECK_WINDOWS_INJECT");
    auto trace = makeBenchmarkTrace("gzip", 11, 15000);
    ContestSystem sys({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace);
    ContestResult par = sys.run(4);

    // The run must actually have used windows, and every one of them
    // must have been verified with a non-trivial number of recorded
    // accesses — a checker that silently records nothing would pass
    // any run.
    EXPECT_GT(sys.shadowLog().windowsVerified(), 0u);
    EXPECT_GT(sys.shadowLog().accessesChecked(), 0u);

    // The checker must not perturb the simulation: the contested
    // run stays bit-identical to the sequential oracle.
    ContestSystem ref({coreConfigByName("twolf"),
                       coreConfigByName("gzip")},
                      trace);
    ContestResult seq = ref.run(1);
    EXPECT_EQ(par.timePs, seq.timePs);
    ASSERT_EQ(par.coreStats.size(), seq.coreStats.size());
    for (std::size_t c = 0; c < par.coreStats.size(); ++c) {
        EXPECT_EQ(par.coreStats[c].retired, seq.coreStats[c].retired);
        EXPECT_EQ(par.coreStats[c].cycles, seq.coreStats[c].cycles);
    }
}

TEST(WindowCheckDeathTest, InjectedInWindowStoreDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // The knob is read in the CoreContestUnit constructor, so it only
    // affects systems built inside the death statement's forked
    // child. Keeping worker grants at zero (CONTEST_JOBS=1) makes
    // the lanes run inline on the coordinator thread: the injected
    // store lands in a deterministic window and the panic fires at
    // that window's commit, before any replay could mask it.
    setenv("CONTEST_CHECK_WINDOWS_INJECT", "1", 1);
    setenv("CONTEST_JOBS", "1", 1);
    EXPECT_DEATH(
        {
            auto trace = makeBenchmarkTrace("gzip", 11, 15000);
            ContestSystem sys({coreConfigByName("twolf"),
                               coreConfigByName("gzip")},
                              trace);
            sys.run(4);
        },
        "window-phase violation: lane [0-9]+ wrote store-queue state "
        "owned by all lanes in window [0-9]+ at "
        "CoreContestUnit::onStoreCommit");
    unsetenv("CONTEST_CHECK_WINDOWS_INJECT");
    unsetenv("CONTEST_JOBS");
}

#endif // CONTEST_CHECK_WINDOWS

} // namespace
} // namespace contest
