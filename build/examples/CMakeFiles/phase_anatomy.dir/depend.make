# Empty dependencies file for phase_anatomy.
# This may be replaced when dependencies are built.
