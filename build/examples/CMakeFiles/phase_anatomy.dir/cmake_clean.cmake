file(REMOVE_RECURSE
  "CMakeFiles/phase_anatomy.dir/phase_anatomy.cpp.o"
  "CMakeFiles/phase_anatomy.dir/phase_anatomy.cpp.o.d"
  "phase_anatomy"
  "phase_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
