file(REMOVE_RECURSE
  "CMakeFiles/contesting_demo.dir/contesting_demo.cpp.o"
  "CMakeFiles/contesting_demo.dir/contesting_demo.cpp.o.d"
  "contesting_demo"
  "contesting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contesting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
