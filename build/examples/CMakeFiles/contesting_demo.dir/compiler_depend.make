# Empty compiler generated dependencies file for contesting_demo.
# This may be replaced when dependencies are built.
