# Empty dependencies file for design_cmp.
# This may be replaced when dependencies are built.
