file(REMOVE_RECURSE
  "CMakeFiles/design_cmp.dir/design_cmp.cpp.o"
  "CMakeFiles/design_cmp.dir/design_cmp.cpp.o.d"
  "design_cmp"
  "design_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
