file(REMOVE_RECURSE
  "CMakeFiles/explore_core.dir/explore_core.cpp.o"
  "CMakeFiles/explore_core.dir/explore_core.cpp.o.d"
  "explore_core"
  "explore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
