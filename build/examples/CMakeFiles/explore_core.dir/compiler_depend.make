# Empty compiler generated dependencies file for explore_core.
# This may be replaced when dependencies are built.
