file(REMOVE_RECURSE
  "libcontest_mem.a"
)
