# Empty dependencies file for contest_mem.
# This may be replaced when dependencies are built.
