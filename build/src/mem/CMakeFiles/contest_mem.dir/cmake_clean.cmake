file(REMOVE_RECURSE
  "CMakeFiles/contest_mem.dir/cache.cc.o"
  "CMakeFiles/contest_mem.dir/cache.cc.o.d"
  "CMakeFiles/contest_mem.dir/hierarchy.cc.o"
  "CMakeFiles/contest_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/contest_mem.dir/sync_store_queue.cc.o"
  "CMakeFiles/contest_mem.dir/sync_store_queue.cc.o.d"
  "libcontest_mem.a"
  "libcontest_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
