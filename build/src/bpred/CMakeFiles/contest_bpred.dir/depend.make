# Empty dependencies file for contest_bpred.
# This may be replaced when dependencies are built.
