file(REMOVE_RECURSE
  "libcontest_bpred.a"
)
