file(REMOVE_RECURSE
  "CMakeFiles/contest_bpred.dir/bpred.cc.o"
  "CMakeFiles/contest_bpred.dir/bpred.cc.o.d"
  "libcontest_bpred.a"
  "libcontest_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
