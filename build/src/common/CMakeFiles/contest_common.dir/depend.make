# Empty dependencies file for contest_common.
# This may be replaced when dependencies are built.
