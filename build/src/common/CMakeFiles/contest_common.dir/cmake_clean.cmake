file(REMOVE_RECURSE
  "CMakeFiles/contest_common.dir/env.cc.o"
  "CMakeFiles/contest_common.dir/env.cc.o.d"
  "CMakeFiles/contest_common.dir/log.cc.o"
  "CMakeFiles/contest_common.dir/log.cc.o.d"
  "CMakeFiles/contest_common.dir/stats.cc.o"
  "CMakeFiles/contest_common.dir/stats.cc.o.d"
  "CMakeFiles/contest_common.dir/table.cc.o"
  "CMakeFiles/contest_common.dir/table.cc.o.d"
  "libcontest_common.a"
  "libcontest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
