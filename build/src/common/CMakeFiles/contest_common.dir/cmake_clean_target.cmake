file(REMOVE_RECURSE
  "libcontest_common.a"
)
