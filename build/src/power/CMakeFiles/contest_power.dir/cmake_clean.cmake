file(REMOVE_RECURSE
  "CMakeFiles/contest_power.dir/energy.cc.o"
  "CMakeFiles/contest_power.dir/energy.cc.o.d"
  "libcontest_power.a"
  "libcontest_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
