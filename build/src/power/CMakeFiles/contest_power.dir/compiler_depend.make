# Empty compiler generated dependencies file for contest_power.
# This may be replaced when dependencies are built.
