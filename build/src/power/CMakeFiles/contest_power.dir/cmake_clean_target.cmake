file(REMOVE_RECURSE
  "libcontest_power.a"
)
