file(REMOVE_RECURSE
  "CMakeFiles/contest_contest.dir/exception.cc.o"
  "CMakeFiles/contest_contest.dir/exception.cc.o.d"
  "CMakeFiles/contest_contest.dir/system.cc.o"
  "CMakeFiles/contest_contest.dir/system.cc.o.d"
  "CMakeFiles/contest_contest.dir/unit.cc.o"
  "CMakeFiles/contest_contest.dir/unit.cc.o.d"
  "libcontest_contest.a"
  "libcontest_contest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_contest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
