# Empty compiler generated dependencies file for contest_contest.
# This may be replaced when dependencies are built.
