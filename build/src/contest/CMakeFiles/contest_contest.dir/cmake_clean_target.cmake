file(REMOVE_RECURSE
  "libcontest_contest.a"
)
