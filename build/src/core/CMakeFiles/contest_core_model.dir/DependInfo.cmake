
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/contest_core_model.dir/config.cc.o" "gcc" "src/core/CMakeFiles/contest_core_model.dir/config.cc.o.d"
  "/root/repo/src/core/ooo_core.cc" "src/core/CMakeFiles/contest_core_model.dir/ooo_core.cc.o" "gcc" "src/core/CMakeFiles/contest_core_model.dir/ooo_core.cc.o.d"
  "/root/repo/src/core/palette.cc" "src/core/CMakeFiles/contest_core_model.dir/palette.cc.o" "gcc" "src/core/CMakeFiles/contest_core_model.dir/palette.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/contest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/contest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/contest_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/contest_bpred.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
