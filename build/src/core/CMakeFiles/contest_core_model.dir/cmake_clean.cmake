file(REMOVE_RECURSE
  "CMakeFiles/contest_core_model.dir/config.cc.o"
  "CMakeFiles/contest_core_model.dir/config.cc.o.d"
  "CMakeFiles/contest_core_model.dir/ooo_core.cc.o"
  "CMakeFiles/contest_core_model.dir/ooo_core.cc.o.d"
  "CMakeFiles/contest_core_model.dir/palette.cc.o"
  "CMakeFiles/contest_core_model.dir/palette.cc.o.d"
  "libcontest_core_model.a"
  "libcontest_core_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_core_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
