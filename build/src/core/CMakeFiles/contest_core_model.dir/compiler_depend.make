# Empty compiler generated dependencies file for contest_core_model.
# This may be replaced when dependencies are built.
