file(REMOVE_RECURSE
  "libcontest_core_model.a"
)
