file(REMOVE_RECURSE
  "CMakeFiles/contest_harness.dir/experiment.cc.o"
  "CMakeFiles/contest_harness.dir/experiment.cc.o.d"
  "CMakeFiles/contest_harness.dir/migration.cc.o"
  "CMakeFiles/contest_harness.dir/migration.cc.o.d"
  "CMakeFiles/contest_harness.dir/region_log.cc.o"
  "CMakeFiles/contest_harness.dir/region_log.cc.o.d"
  "CMakeFiles/contest_harness.dir/runner.cc.o"
  "CMakeFiles/contest_harness.dir/runner.cc.o.d"
  "libcontest_harness.a"
  "libcontest_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
