file(REMOVE_RECURSE
  "libcontest_harness.a"
)
