# Empty compiler generated dependencies file for contest_harness.
# This may be replaced when dependencies are built.
