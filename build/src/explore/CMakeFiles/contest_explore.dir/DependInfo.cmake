
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/annealer.cc" "src/explore/CMakeFiles/contest_explore.dir/annealer.cc.o" "gcc" "src/explore/CMakeFiles/contest_explore.dir/annealer.cc.o.d"
  "/root/repo/src/explore/cmp_design.cc" "src/explore/CMakeFiles/contest_explore.dir/cmp_design.cc.o" "gcc" "src/explore/CMakeFiles/contest_explore.dir/cmp_design.cc.o.d"
  "/root/repo/src/explore/merit.cc" "src/explore/CMakeFiles/contest_explore.dir/merit.cc.o" "gcc" "src/explore/CMakeFiles/contest_explore.dir/merit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/contest_core_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/contest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/contest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/contest_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/contest_bpred.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
