# Empty dependencies file for contest_explore.
# This may be replaced when dependencies are built.
