file(REMOVE_RECURSE
  "CMakeFiles/contest_explore.dir/annealer.cc.o"
  "CMakeFiles/contest_explore.dir/annealer.cc.o.d"
  "CMakeFiles/contest_explore.dir/cmp_design.cc.o"
  "CMakeFiles/contest_explore.dir/cmp_design.cc.o.d"
  "CMakeFiles/contest_explore.dir/merit.cc.o"
  "CMakeFiles/contest_explore.dir/merit.cc.o.d"
  "libcontest_explore.a"
  "libcontest_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
