file(REMOVE_RECURSE
  "libcontest_explore.a"
)
