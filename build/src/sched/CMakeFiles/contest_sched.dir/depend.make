# Empty dependencies file for contest_sched.
# This may be replaced when dependencies are built.
