file(REMOVE_RECURSE
  "CMakeFiles/contest_sched.dir/scheduler.cc.o"
  "CMakeFiles/contest_sched.dir/scheduler.cc.o.d"
  "libcontest_sched.a"
  "libcontest_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
