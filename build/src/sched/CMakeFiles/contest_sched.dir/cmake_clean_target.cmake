file(REMOVE_RECURSE
  "libcontest_sched.a"
)
