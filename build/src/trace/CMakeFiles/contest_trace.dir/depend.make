# Empty dependencies file for contest_trace.
# This may be replaced when dependencies are built.
