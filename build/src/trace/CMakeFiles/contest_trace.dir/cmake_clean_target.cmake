file(REMOVE_RECURSE
  "libcontest_trace.a"
)
