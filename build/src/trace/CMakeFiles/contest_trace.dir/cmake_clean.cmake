file(REMOVE_RECURSE
  "CMakeFiles/contest_trace.dir/generator.cc.o"
  "CMakeFiles/contest_trace.dir/generator.cc.o.d"
  "CMakeFiles/contest_trace.dir/phase.cc.o"
  "CMakeFiles/contest_trace.dir/phase.cc.o.d"
  "CMakeFiles/contest_trace.dir/profile.cc.o"
  "CMakeFiles/contest_trace.dir/profile.cc.o.d"
  "CMakeFiles/contest_trace.dir/trace.cc.o"
  "CMakeFiles/contest_trace.dir/trace.cc.o.d"
  "CMakeFiles/contest_trace.dir/trace_io.cc.o"
  "CMakeFiles/contest_trace.dir/trace_io.cc.o.d"
  "libcontest_trace.a"
  "libcontest_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
