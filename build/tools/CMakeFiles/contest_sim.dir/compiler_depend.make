# Empty compiler generated dependencies file for contest_sim.
# This may be replaced when dependencies are built.
