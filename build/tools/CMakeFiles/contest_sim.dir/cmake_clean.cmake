file(REMOVE_RECURSE
  "CMakeFiles/contest_sim.dir/contest_sim.cc.o"
  "CMakeFiles/contest_sim.dir/contest_sim.cc.o.d"
  "contest_sim"
  "contest_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
