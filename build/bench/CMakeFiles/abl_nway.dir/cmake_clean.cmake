file(REMOVE_RECURSE
  "CMakeFiles/abl_nway.dir/abl_nway.cc.o"
  "CMakeFiles/abl_nway.dir/abl_nway.cc.o.d"
  "abl_nway"
  "abl_nway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
