# Empty compiler generated dependencies file for abl_nway.
# This may be replaced when dependencies are built.
