# Empty compiler generated dependencies file for fig10_het_a.
# This may be replaced when dependencies are built.
