file(REMOVE_RECURSE
  "CMakeFiles/fig10_het_a.dir/fig10_het_a.cc.o"
  "CMakeFiles/fig10_het_a.dir/fig10_het_a.cc.o.d"
  "fig10_het_a"
  "fig10_het_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_het_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
