# Empty dependencies file for sched_contention.
# This may be replaced when dependencies are built.
