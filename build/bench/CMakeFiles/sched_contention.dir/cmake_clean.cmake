file(REMOVE_RECURSE
  "CMakeFiles/sched_contention.dir/sched_contention.cc.o"
  "CMakeFiles/sched_contention.dir/sched_contention.cc.o.d"
  "sched_contention"
  "sched_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
