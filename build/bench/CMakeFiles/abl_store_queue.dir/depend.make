# Empty dependencies file for abl_store_queue.
# This may be replaced when dependencies are built.
