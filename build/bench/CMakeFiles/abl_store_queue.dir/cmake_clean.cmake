file(REMOVE_RECURSE
  "CMakeFiles/abl_store_queue.dir/abl_store_queue.cc.o"
  "CMakeFiles/abl_store_queue.dir/abl_store_queue.cc.o.d"
  "abl_store_queue"
  "abl_store_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_store_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
