# Empty compiler generated dependencies file for abl_injection_style.
# This may be replaced when dependencies are built.
