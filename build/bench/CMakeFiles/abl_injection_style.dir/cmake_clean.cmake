file(REMOVE_RECURSE
  "CMakeFiles/abl_injection_style.dir/abl_injection_style.cc.o"
  "CMakeFiles/abl_injection_style.dir/abl_injection_style.cc.o.d"
  "abl_injection_style"
  "abl_injection_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_injection_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
