file(REMOVE_RECURSE
  "CMakeFiles/table1_cmp_designs.dir/table1_cmp_designs.cc.o"
  "CMakeFiles/table1_cmp_designs.dir/table1_cmp_designs.cc.o.d"
  "table1_cmp_designs"
  "table1_cmp_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cmp_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
