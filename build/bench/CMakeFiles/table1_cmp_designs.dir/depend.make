# Empty dependencies file for table1_cmp_designs.
# This may be replaced when dependencies are built.
