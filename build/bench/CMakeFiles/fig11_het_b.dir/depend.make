# Empty dependencies file for fig11_het_b.
# This may be replaced when dependencies are built.
