file(REMOVE_RECURSE
  "CMakeFiles/fig11_het_b.dir/fig11_het_b.cc.o"
  "CMakeFiles/fig11_het_b.dir/fig11_het_b.cc.o.d"
  "fig11_het_b"
  "fig11_het_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_het_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
