# Empty dependencies file for fig09_cmp_ipt.
# This may be replaced when dependencies are built.
