
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_cmp_ipt.cc" "bench/CMakeFiles/fig09_cmp_ipt.dir/fig09_cmp_ipt.cc.o" "gcc" "bench/CMakeFiles/fig09_cmp_ipt.dir/fig09_cmp_ipt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/contest_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/contest_power.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/contest_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/contest/CMakeFiles/contest_contest.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/contest_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/contest_core_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/contest_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/contest_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/contest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/contest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
