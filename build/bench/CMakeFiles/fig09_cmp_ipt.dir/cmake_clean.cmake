file(REMOVE_RECURSE
  "CMakeFiles/fig09_cmp_ipt.dir/fig09_cmp_ipt.cc.o"
  "CMakeFiles/fig09_cmp_ipt.dir/fig09_cmp_ipt.cc.o.d"
  "fig09_cmp_ipt"
  "fig09_cmp_ipt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cmp_ipt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
