# Empty dependencies file for cmp_migration.
# This may be replaced when dependencies are built.
