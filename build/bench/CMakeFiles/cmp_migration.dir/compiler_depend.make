# Empty compiler generated dependencies file for cmp_migration.
# This may be replaced when dependencies are built.
