file(REMOVE_RECURSE
  "CMakeFiles/cmp_migration.dir/cmp_migration.cc.o"
  "CMakeFiles/cmp_migration.dir/cmp_migration.cc.o.d"
  "cmp_migration"
  "cmp_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
