file(REMOVE_RECURSE
  "CMakeFiles/abl_saturated_lagger.dir/abl_saturated_lagger.cc.o"
  "CMakeFiles/abl_saturated_lagger.dir/abl_saturated_lagger.cc.o.d"
  "abl_saturated_lagger"
  "abl_saturated_lagger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_saturated_lagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
