# Empty dependencies file for abl_saturated_lagger.
# This may be replaced when dependencies are built.
