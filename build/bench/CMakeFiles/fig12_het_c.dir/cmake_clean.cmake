file(REMOVE_RECURSE
  "CMakeFiles/fig12_het_c.dir/fig12_het_c.cc.o"
  "CMakeFiles/fig12_het_c.dir/fig12_het_c.cc.o.d"
  "fig12_het_c"
  "fig12_het_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_het_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
