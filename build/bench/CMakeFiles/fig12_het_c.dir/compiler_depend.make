# Empty compiler generated dependencies file for fig12_het_c.
# This may be replaced when dependencies are built.
