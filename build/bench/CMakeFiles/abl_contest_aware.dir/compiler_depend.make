# Empty compiler generated dependencies file for abl_contest_aware.
# This may be replaced when dependencies are built.
