file(REMOVE_RECURSE
  "CMakeFiles/abl_contest_aware.dir/abl_contest_aware.cc.o"
  "CMakeFiles/abl_contest_aware.dir/abl_contest_aware.cc.o.d"
  "abl_contest_aware"
  "abl_contest_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_contest_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
