# Empty compiler generated dependencies file for abl_early_branch.
# This may be replaced when dependencies are built.
