file(REMOVE_RECURSE
  "CMakeFiles/abl_early_branch.dir/abl_early_branch.cc.o"
  "CMakeFiles/abl_early_branch.dir/abl_early_branch.cc.o.d"
  "abl_early_branch"
  "abl_early_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_early_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
