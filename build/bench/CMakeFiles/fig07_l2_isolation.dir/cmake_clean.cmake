file(REMOVE_RECURSE
  "CMakeFiles/fig07_l2_isolation.dir/fig07_l2_isolation.cc.o"
  "CMakeFiles/fig07_l2_isolation.dir/fig07_l2_isolation.cc.o.d"
  "fig07_l2_isolation"
  "fig07_l2_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_l2_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
