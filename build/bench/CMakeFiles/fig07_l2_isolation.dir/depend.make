# Empty dependencies file for fig07_l2_isolation.
# This may be replaced when dependencies are built.
