# Empty compiler generated dependencies file for fig01_granularity.
# This may be replaced when dependencies are built.
