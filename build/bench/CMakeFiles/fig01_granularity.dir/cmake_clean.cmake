file(REMOVE_RECURSE
  "CMakeFiles/fig01_granularity.dir/fig01_granularity.cc.o"
  "CMakeFiles/fig01_granularity.dir/fig01_granularity.cc.o.d"
  "fig01_granularity"
  "fig01_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
