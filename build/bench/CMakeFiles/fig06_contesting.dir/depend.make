# Empty dependencies file for fig06_contesting.
# This may be replaced when dependencies are built.
