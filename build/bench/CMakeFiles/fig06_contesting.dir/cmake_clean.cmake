file(REMOVE_RECURSE
  "CMakeFiles/fig06_contesting.dir/fig06_contesting.cc.o"
  "CMakeFiles/fig06_contesting.dir/fig06_contesting.cc.o.d"
  "fig06_contesting"
  "fig06_contesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_contesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
