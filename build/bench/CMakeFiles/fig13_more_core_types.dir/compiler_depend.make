# Empty compiler generated dependencies file for fig13_more_core_types.
# This may be replaced when dependencies are built.
