file(REMOVE_RECURSE
  "CMakeFiles/fig13_more_core_types.dir/fig13_more_core_types.cc.o"
  "CMakeFiles/fig13_more_core_types.dir/fig13_more_core_types.cc.o.d"
  "fig13_more_core_types"
  "fig13_more_core_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_more_core_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
