file(REMOVE_RECURSE
  "CMakeFiles/abl_icache.dir/abl_icache.cc.o"
  "CMakeFiles/abl_icache.dir/abl_icache.cc.o.d"
  "abl_icache"
  "abl_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
