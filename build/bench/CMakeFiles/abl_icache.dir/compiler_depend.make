# Empty compiler generated dependencies file for abl_icache.
# This may be replaced when dependencies are built.
