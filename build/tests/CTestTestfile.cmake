# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;22;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;23;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bpred "/root/repo/build/tests/test_bpred")
set_tests_properties(test_bpred PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;24;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;25;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;26;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_contest_unit "/root/repo/build/tests/test_contest_unit")
set_tests_properties(test_contest_unit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;27;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_contest "/root/repo/build/tests/test_contest")
set_tests_properties(test_contest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;28;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_explore "/root/repo/build/tests/test_explore")
set_tests_properties(test_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;29;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_harness "/root/repo/build/tests/test_harness")
set_tests_properties(test_harness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;30;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_palette "/root/repo/build/tests/test_palette")
set_tests_properties(test_palette PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;31;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_migration "/root/repo/build/tests/test_migration")
set_tests_properties(test_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;32;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;33;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sched "/root/repo/build/tests/test_sched")
set_tests_properties(test_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;34;contest_add_test;/root/repo/tests/CMakeLists.txt;0;")
