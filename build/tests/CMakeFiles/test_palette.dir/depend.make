# Empty dependencies file for test_palette.
# This may be replaced when dependencies are built.
