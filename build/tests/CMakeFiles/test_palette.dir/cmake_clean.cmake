file(REMOVE_RECURSE
  "CMakeFiles/test_palette.dir/test_palette.cc.o"
  "CMakeFiles/test_palette.dir/test_palette.cc.o.d"
  "test_palette"
  "test_palette.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_palette.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
