# Empty dependencies file for test_contest_unit.
# This may be replaced when dependencies are built.
