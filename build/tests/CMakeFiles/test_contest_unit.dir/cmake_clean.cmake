file(REMOVE_RECURSE
  "CMakeFiles/test_contest_unit.dir/test_contest_unit.cc.o"
  "CMakeFiles/test_contest_unit.dir/test_contest_unit.cc.o.d"
  "test_contest_unit"
  "test_contest_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contest_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
