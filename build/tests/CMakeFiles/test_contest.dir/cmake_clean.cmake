file(REMOVE_RECURSE
  "CMakeFiles/test_contest.dir/test_contest.cc.o"
  "CMakeFiles/test_contest.dir/test_contest.cc.o.d"
  "test_contest"
  "test_contest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
