/**
 * @file
 * Call-graph layer for contest_lint: the window-phase discipline
 * analyzer.
 *
 * PR 6 made single contested runs parallel by alternating sequential
 * steps with provably-inert windows in which every core ticks
 * concurrently against frozen shared state. The correctness claim —
 * bit-identity with the sequential oracle — holds only if nothing on
 * the in-window tick path mutates another core's contest state,
 * allocates, draws randomness, or writes a namespace-scope variable.
 * The old `cross-core-mutation` rule checked exactly one hop of that
 * property; this engine checks all of them *transitively*:
 *
 *   1. a lightweight tokenizer (built on the same comment/string
 *      stripper the line rules use) turns each file into tokens,
 *      skipping preprocessor lines;
 *   2. a scope-tracking extractor records every function definition
 *      with its call sites, `new`/`delete` expressions, and writes,
 *      plus namespace-scope variables and type names repo-wide;
 *   3. a BFS from the window-phase entry points (`OooCore::tick`,
 *      `skipIdleCycles`, the `CoreContestUnit` window hooks) walks
 *      the call graph and reports, with the full caller path, any
 *      reachable cross-core mutator, allocation, RNG use, or global
 *      write — and an `unknown-call` diagnostic for any call it
 *      cannot resolve, so soundness gaps are visible, never silent.
 *
 * Resolution is name-based (no type analysis): a member or bare call
 * resolves to *all* in-graph definitions of that name, which is
 * deliberately conservative for virtual calls and overloads. The
 * audited escape hatches are:
 *
 *   - `// contest-lint: allow(window-phase)` on (or above) a call
 *     site: the site is an audited boundary — neither classified nor
 *     traversed;
 *   - `// contest-lint: allow-file(window-phase)` at file scope: the
 *     whole file is an audited boundary (the shadow access checker,
 *     DESIGN.md §12, re-verifies such files at runtime);
 *   - `CONTEST_WINDOW_SAFE` (or `// contest-lint: window-safe`) on a
 *     function definition: an audited safe leaf, never analyzed;
 *   - `// contest-lint: allow(unknown-call)` suppresses only the
 *     unresolved-call diagnostic at that site.
 */

#ifndef CONTEST_TOOLS_LINT_CALLGRAPH_HH
#define CONTEST_TOOLS_LINT_CALLGRAPH_HH

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_core.hh"

namespace contest::lint
{
namespace cg
{

// ---------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------

struct Token
{
    std::string text;
    std::size_t line = 0; //!< 1-based
};

/**
 * Tokenize @p code (already comment/string-stripped). Preprocessor
 * lines — including backslash continuations — are dropped entirely:
 * the analyzer reads unpreprocessed source, so macro definitions
 * must not contribute call sites.
 */
inline std::vector<Token>
tokenize(const std::string &code)
{
    static const char *kTwoCharOps[] = {
        "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||",
        "<<", ">>",
    };
    std::vector<Token> toks;
    std::size_t line = 1;
    bool bol = true; // only whitespace seen on this line so far
    const std::size_t n = code.size();
    std::size_t i = 0;
    while (i < n) {
        char c = code[i];
        if (c == '\n') {
            ++line;
            bol = true;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (bol && c == '#') {
            // Consume the logical directive line (honor \-newline).
            while (i < n && code[i] != '\n') {
                if (code[i] == '\\' && i + 1 < n
                    && code[i + 1] == '\n') {
                    ++line;
                    i += 2;
                } else {
                    ++i;
                }
            }
            continue;
        }
        bol = false;
        if (detail::isIdentChar(c)) {
            std::size_t b = i;
            while (i < n && detail::isIdentChar(code[i]))
                ++i;
            toks.push_back(Token{code.substr(b, i - b), line});
            continue;
        }
        if (i + 1 < n) {
            const char pair[3] = {c, code[i + 1], '\0'};
            bool isTwo = false;
            for (const char *op : kTwoCharOps)
                if (pair[0] == op[0] && pair[1] == op[1])
                    isTwo = true;
            if (isTwo) {
                toks.push_back(Token{std::string(pair), line});
                i += 2;
                continue;
            }
        }
        toks.push_back(Token{std::string(1, c), line});
        ++i;
    }
    return toks;
}

// ---------------------------------------------------------------
// Extracted program model
// ---------------------------------------------------------------

struct CallSite
{
    std::string name;
    std::string qualifier; //!< "X" when spelled X::name(...)
    std::size_t line = 0;
    bool member = false; //!< obj.name(...) / ptr->name(...)
};

struct AllocSite
{
    std::string what; //!< "new" or "delete"
    std::size_t line = 0;
};

struct WriteSite
{
    std::string name;
    std::size_t line = 0;
};

struct FunctionDef
{
    std::string qualified; //!< Class::name, or bare for free fns
    std::string bare;
    std::string file;
    std::size_t line = 0;
    bool windowSafe = false;
    std::vector<CallSite> calls;
    std::vector<AllocSite> allocs;
    std::vector<WriteSite> writes;
    std::set<std::string> localLambdas;
};

// ---------------------------------------------------------------
// Per-file extractor
// ---------------------------------------------------------------

namespace parse_detail
{

inline bool
isKeyword(const std::string &t)
{
    static const std::set<std::string> kw = {
        "if", "while", "for", "switch", "return", "sizeof",
        "alignof", "catch", "throw", "static_assert", "do",
        "else", "goto", "case", "default", "break", "continue",
        "decltype", "alignas", "noexcept",
    };
    return kw.count(t) != 0;
}

/** Identifiers that may legally precede a call expression without
 *  making the call look like a variable declaration. */
inline bool
callPrecedingKeyword(const std::string &t)
{
    static const std::set<std::string> kw = {
        "return", "else", "do", "goto", "throw", "case",
        "new", "delete", "co_return", "co_await", "co_yield",
    };
    return kw.count(t) != 0;
}

} // namespace parse_detail

/**
 * Single-pass extractor for one translation unit. Tracks a scope
 * stack (namespace / class / function / block) and records function
 * definitions, namespace-scope variables, and type names. It is a
 * heuristic parser: good enough for this repo's house style, and the
 * analyzer's `unknown-call` diagnostic surfaces whatever it misses.
 */
class FileParser
{
  public:
    FileParser(std::string file, const std::string &content)
        : file_(std::move(file)),
          raw_(detail::splitLines(content)),
          toks_(tokenize(detail::stripCommentsAndStrings(content)))
    {
    }

    void
    run(std::deque<FunctionDef> &defs, std::set<std::string> &globals,
        std::set<std::string> &typeNames)
    {
        defs_ = &defs;
        globals_ = &globals;
        typeNames_ = &typeNames;
        const std::size_t n = toks_.size();
        while (i_ < n) {
            if (inFunction()) {
                bodyToken();
                continue;
            }
            const std::string &t = toks_[i_].text;
            if (t == "template") {
                ++i_;
                if (i_ < n && toks_[i_].text == "<")
                    skipAngles();
                continue;
            }
            if (t == "using" || t == "typedef") {
                handleUsing();
                continue;
            }
            if (t == "namespace") {
                handleNamespace();
                continue;
            }
            if (t == "enum") {
                handleEnum();
                continue;
            }
            if (t == "class" || t == "struct" || t == "union") {
                handleClass();
                continue;
            }
            if (t == "CONTEST_WINDOW_SAFE") {
                pendingWindowSafe_ = true;
                ++i_;
                continue;
            }
            if (t == "{") {
                scopes_.push_back(Scope{Kind::Block, ""});
                ++i_;
                continue;
            }
            if (t == "}") {
                popScope();
                ++i_;
                continue;
            }
            if (t == ";") {
                evalGlobalStmt();
                stmt_.clear();
                pendingWindowSafe_ = false;
                ++i_;
                continue;
            }
            if (t == "(" && i_ > 0
                && detail::identifierLike(toks_[i_ - 1].text)
                && !parse_detail::isKeyword(toks_[i_ - 1].text)) {
                if (tryFunctionDef())
                    continue;
                // Fall through: a declaration / initializer — the
                // "(" poisons any global-variable candidate.
            }
            stmt_.push_back(toks_[i_]);
            ++i_;
        }
    }

  private:
    enum class Kind { Namespace, Class, Function, Block };
    struct Scope
    {
        Kind kind;
        std::string name;
    };

    bool
    inFunction() const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
            if (it->kind != Kind::Block)
                return it->kind == Kind::Function;
        return false;
    }

    /** Innermost non-block scope (Namespace when at file scope). */
    const Scope *
    context() const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
            if (it->kind != Kind::Block)
                return &*it;
        return nullptr;
    }

    void
    popScope()
    {
        if (scopes_.empty())
            return; // unbalanced input; keep going
        if (scopes_.back().kind == Kind::Function && curActive_) {
            defs_->push_back(cur_);
            curActive_ = false;
        }
        scopes_.pop_back();
    }

    /** toks_[at] == "(" — index of the matching ")". npos if none. */
    std::size_t
    matchParen(std::size_t at) const
    {
        int depth = 0;
        for (std::size_t j = at; j < toks_.size(); ++j) {
            if (toks_[j].text == "(")
                ++depth;
            else if (toks_[j].text == ")" && --depth == 0)
                return j;
        }
        return std::string::npos;
    }

    /** toks_[i_] == "<": advance past the balanced angle list. */
    void
    skipAngles()
    {
        int depth = 0;
        while (i_ < toks_.size()) {
            const std::string &t = toks_[i_].text;
            if (t == "<")
                ++depth;
            else if (t == ">")
                --depth;
            else if (t == ">>")
                depth -= 2;
            ++i_;
            if (depth <= 0)
                return;
        }
    }

    void
    skipBraces()
    {
        int depth = 0;
        while (i_ < toks_.size()) {
            const std::string &t = toks_[i_].text;
            if (t == "{")
                ++depth;
            else if (t == "}")
                --depth;
            ++i_;
            if (depth == 0)
                return;
        }
    }

    void
    skipToSemicolon()
    {
        while (i_ < toks_.size() && toks_[i_].text != ";")
            ++i_;
        if (i_ < toks_.size())
            ++i_;
    }

    void
    handleUsing()
    {
        ++i_; // past using/typedef
        if (i_ < toks_.size() && toks_[i_].text == "namespace") {
            skipToSemicolon();
            return;
        }
        if (i_ + 1 < toks_.size()
            && detail::identifierLike(toks_[i_].text)
            && toks_[i_ + 1].text == "=")
            typeNames_->insert(toks_[i_].text);
        skipToSemicolon();
    }

    void
    handleNamespace()
    {
        ++i_;
        std::string name;
        while (i_ < toks_.size()
               && (detail::identifierLike(toks_[i_].text)
                   || toks_[i_].text == "::")) {
            name += toks_[i_].text;
            ++i_;
        }
        if (i_ < toks_.size() && toks_[i_].text == "=") {
            skipToSemicolon(); // namespace alias
            return;
        }
        if (i_ < toks_.size() && toks_[i_].text == "{") {
            scopes_.push_back(Scope{Kind::Namespace, name});
            ++i_;
        }
    }

    void
    handleEnum()
    {
        ++i_;
        if (i_ < toks_.size()
            && (toks_[i_].text == "class"
                || toks_[i_].text == "struct"))
            ++i_;
        if (i_ < toks_.size()
            && detail::identifierLike(toks_[i_].text)) {
            typeNames_->insert(toks_[i_].text);
            ++i_;
        }
        // Skip optional ": underlying-type", then the enumerator
        // list (enumerators are not program entities we model).
        while (i_ < toks_.size() && toks_[i_].text != "{"
               && toks_[i_].text != ";")
            ++i_;
        if (i_ < toks_.size() && toks_[i_].text == "{")
            skipBraces();
    }

    void
    handleClass()
    {
        ++i_;
        std::string name;
        if (i_ < toks_.size()
            && detail::identifierLike(toks_[i_].text)
            && !parse_detail::isKeyword(toks_[i_].text)) {
            name = toks_[i_].text;
            typeNames_->insert(name);
            ++i_;
        }
        if (i_ < toks_.size() && toks_[i_].text == "final")
            ++i_;
        if (i_ < toks_.size() && toks_[i_].text == "<")
            skipAngles(); // explicit specialization
        // Scan the (possible) base-clause for the body/fwd-decl.
        while (i_ < toks_.size()) {
            const std::string &t = toks_[i_].text;
            if (t == "{") {
                scopes_.push_back(Scope{Kind::Class, name});
                ++i_;
                return;
            }
            if (t == ";" || t == "(" || t == "=")
                return; // fwd decl / elaborated type in a decl
            if (t == "<") {
                skipAngles();
                continue;
            }
            ++i_;
        }
    }

    bool
    rawWindowSafeComment(std::size_t line) const
    {
        // A definition's name line, or up to three lines above it
        // (the comment typically sits above the return type).
        for (std::size_t l : {line, line - 1, line - 2, line - 3}) {
            if (l >= 1 && l <= raw_.size()
                && raw_[l - 1].find("contest-lint: window-safe")
                       != std::string::npos)
                return true;
        }
        return false;
    }

    /**
     * toks_[i_] == "(" with an identifier before it, at class or
     * namespace scope. Decide declaration vs definition; on a
     * definition, open the function scope. Returns true if i_ was
     * advanced past a definition header or a declaration.
     */
    bool
    tryFunctionDef()
    {
        const std::size_t nameIdx = i_ - 1;
        // Collect a trailing A::B::name qualifier chain.
        std::vector<std::string> chain = {toks_[nameIdx].text};
        std::size_t j = nameIdx;
        while (j >= 2 && toks_[j - 1].text == "::") {
            std::size_t q = j - 2;
            if (toks_[q].text == ">") {
                // Templated qualifier: RingBuffer<T>::push_back.
                int depth = 0;
                while (q > 0) {
                    const std::string &t = toks_[q].text;
                    if (t == ">")
                        ++depth;
                    else if (t == ">>")
                        depth += 2;
                    else if (t == "<" && --depth == 0) {
                        --q;
                        break;
                    }
                    --q;
                }
            }
            if (!detail::identifierLike(toks_[q].text))
                break;
            chain.insert(chain.begin(), toks_[q].text);
            if (q == 0)
                break;
            j = q;
        }

        const std::size_t close = matchParen(i_);
        if (close == std::string::npos)
            return false;

        std::size_t m = close + 1;
        bool isDef = false;
        std::size_t bodyIdx = 0;
        while (m < toks_.size()) {
            const std::string &t = toks_[m].text;
            if (t == "const" || t == "override" || t == "final"
                || t == "mutable" || t == "&" || t == "&&") {
                ++m;
            } else if (t == "noexcept") {
                ++m;
                if (m < toks_.size() && toks_[m].text == "(") {
                    std::size_t e = matchParen(m);
                    if (e == std::string::npos)
                        break;
                    m = e + 1;
                }
            } else if (t == "->") {
                // Trailing return type: scan to the body or ";".
                ++m;
                while (m < toks_.size() && toks_[m].text != "{"
                       && toks_[m].text != ";") {
                    if (toks_[m].text == "(") {
                        std::size_t e = matchParen(m);
                        if (e == std::string::npos)
                            return false;
                        m = e;
                    }
                    ++m;
                }
            } else if (t == ":") {
                // Ctor init list: skip member(...)/member{...} up
                // to the body brace.
                ++m;
                while (m < toks_.size()) {
                    const std::string &u = toks_[m].text;
                    if (u == "(") {
                        std::size_t e = matchParen(m);
                        if (e == std::string::npos)
                            return false;
                        m = e + 1;
                    } else if (u == "{") {
                        const std::string &p = toks_[m - 1].text;
                        if (detail::identifierLike(p)
                            || p == ">") {
                            // member{...} brace-init
                            std::size_t save = i_;
                            i_ = m;
                            skipBraces();
                            m = i_;
                            i_ = save;
                        } else {
                            isDef = true;
                            bodyIdx = m;
                            break;
                        }
                    } else if (u == ";") {
                        return false;
                    } else {
                        ++m;
                    }
                }
                break;
            } else if (t == "{") {
                isDef = true;
                bodyIdx = m;
                break;
            } else {
                break; // ";", "=", "," ... — a declaration
            }
        }

        if (!isDef) {
            // Poison any pending global-variable candidate and step
            // past the parameter list so its contents are not
            // re-scanned as statements.
            stmt_.push_back(Token{"(", toks_[i_].line});
            pendingWindowSafe_ = false;
            i_ = close + 1;
            return true;
        }

        cur_ = FunctionDef{};
        cur_.bare = chain.back();
        if (chain.size() >= 2) {
            cur_.qualified =
                chain[chain.size() - 2] + "::" + cur_.bare;
        } else if (const Scope *ctx = context();
                   ctx && ctx->kind == Kind::Class) {
            cur_.qualified = ctx->name + "::" + cur_.bare;
        } else {
            cur_.qualified = cur_.bare;
        }
        cur_.file = file_;
        cur_.line = toks_[nameIdx].line;
        cur_.windowSafe = pendingWindowSafe_
            || rawWindowSafeComment(cur_.line);
        pendingWindowSafe_ = false;
        curActive_ = true;
        stmt_.clear();
        scopes_.push_back(Scope{Kind::Function, cur_.qualified});
        i_ = bodyIdx + 1;
        return true;
    }

    /** Process one token inside a function body. */
    void
    bodyToken()
    {
        const Token &tok = toks_[i_];
        const std::string &t = tok.text;
        if (t == "{") {
            scopes_.push_back(Scope{Kind::Block, ""});
            ++i_;
            return;
        }
        if (t == "}") {
            popScope();
            ++i_;
            return;
        }
        if (t == "new" || t == "delete") {
            cur_.allocs.push_back(AllocSite{t, tok.line});
            ++i_;
            return;
        }
        if (t == "auto" && i_ + 3 < toks_.size()
            && detail::identifierLike(toks_[i_ + 1].text)
            && toks_[i_ + 2].text == "="
            && toks_[i_ + 3].text == "[") {
            cur_.localLambdas.insert(toks_[i_ + 1].text);
            i_ += 4;
            return;
        }
        if (t == "static") {
            collectFunctionStatic();
            ++i_;
            return;
        }
        if ((t == "++" || t == "--") && i_ + 1 < toks_.size()
            && detail::identifierLike(toks_[i_ + 1].text)) {
            cur_.writes.push_back(
                WriteSite{toks_[i_ + 1].text, tok.line});
            i_ += 2;
            return;
        }
        if (detail::identifierLike(t)
            && !std::isdigit(static_cast<unsigned char>(t[0]))) {
            const std::string next =
                i_ + 1 < toks_.size() ? toks_[i_ + 1].text : "";
            const std::string prev =
                i_ > 0 ? toks_[i_ - 1].text : "";
            if (next == "(") {
                maybeCallSite(tok, prev);
                ++i_;
                return;
            }
            static const std::set<std::string> assignOps = {
                "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                "^=", "++", "--",
            };
            if (assignOps.count(next) && prev != "."
                && prev != "->")
                cur_.writes.push_back(WriteSite{t, tok.line});
        }
        ++i_;
    }

    /** toks_[i_] names a call candidate; toks_[i_ + 1] == "(". */
    void
    maybeCallSite(const Token &tok, const std::string &prev)
    {
        if (parse_detail::isKeyword(tok.text))
            return;
        CallSite cs;
        cs.name = tok.text;
        cs.line = tok.line;
        cs.member = prev == "." || prev == "->";
        if (prev == "::" && i_ >= 2
            && detail::identifierLike(toks_[i_ - 2].text))
            cs.qualifier = toks_[i_ - 2].text;
        if (!cs.member && cs.qualifier.empty()) {
            // `Foo bar(args)` declares a variable: skip when the
            // name is preceded by a type-ish token.
            if ((detail::identifierLike(prev)
                 && !parse_detail::callPrecedingKeyword(prev)
                 && !parse_detail::isKeyword(prev))
                || prev == ">" || prev == "*" || prev == "&")
                return;
        }
        cur_.calls.push_back(cs);
    }

    /**
     * `static` seen inside a function body. A mutable function-
     * local static is shared across lanes exactly like a namespace-
     * scope variable, so collect its name; skip const/constexpr and
     * anything with a ctor call (which the repo's only instances —
     * e.g. the global thread pool — are, and which the window path
     * must not reach anyway via its own call site).
     */
    void
    collectFunctionStatic()
    {
        std::string lastIdent;
        for (std::size_t j = i_ + 1;
             j < toks_.size() && j < i_ + 13; ++j) {
            const std::string &t = toks_[j].text;
            if (t == "(" || t == "const" || t == "constexpr"
                || t == "constinit" || t == "thread_local")
                return;
            if (t == "=" || t == ";" || t == "{") {
                if (!lastIdent.empty())
                    globals_->insert(lastIdent);
                return;
            }
            if (detail::identifierLike(t))
                lastIdent = t;
        }
    }

    /** A namespace-scope statement ended at ";": if it declares a
     *  mutable variable, record it as a global. */
    void
    evalGlobalStmt()
    {
        const Scope *ctx = context();
        if (ctx && ctx->kind != Kind::Namespace)
            return;
        static const std::set<std::string> skip = {
            "using", "typedef", "namespace", "class", "struct",
            "union", "enum", "template", "friend", "operator",
            "extern", "const", "constexpr", "consteval",
            "constinit", "thread_local", "(", "[", "return",
        };
        std::vector<const Token *> prefix;
        for (const Token &t : stmt_) {
            if (t.text == "=")
                break;
            if (skip.count(t.text))
                return;
            prefix.push_back(&t);
        }
        if (prefix.size() < 2)
            return;
        std::string name;
        for (const Token *t : prefix)
            if (detail::identifierLike(t->text)
                && !std::isdigit(
                    static_cast<unsigned char>(t->text[0])))
                name = t->text;
        if (!name.empty())
            globals_->insert(name);
    }

    std::string file_;
    std::vector<std::string> raw_;
    std::vector<Token> toks_;
    std::size_t i_ = 0;
    std::vector<Scope> scopes_;
    std::vector<Token> stmt_;
    FunctionDef cur_;
    bool curActive_ = false;
    bool pendingWindowSafe_ = false;
    std::deque<FunctionDef> *defs_ = nullptr;
    std::set<std::string> *globals_ = nullptr;
    std::set<std::string> *typeNames_ = nullptr;
};

// ---------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------

struct AnalyzeOptions
{
    /** Window-phase entry points: qualified (Class::name) or bare
     *  function names. Every seed must resolve — an unmatched seed
     *  is itself reported, so renames cannot silently disable the
     *  analysis. */
    std::vector<std::string> seeds;
};

/** The in-window entry points of the real simulator: the lane loop
 *  in ContestSystem::executeWindow calls exactly these (tick /
 *  skipIdleCycles / recordTick per lane, begin/endWindow around the
 *  window). executeWindow itself and commitWindow stay OUTSIDE the
 *  seeded region: the commit phase is where cross-core mutation is
 *  legal. DESIGN.md §12 documents this boundary. */
inline std::vector<std::string>
defaultSeeds()
{
    return {
        "OooCore::tick",
        "OooCore::skipIdleCycles",
        "CoreContestUnit::beginWindow",
        "CoreContestUnit::recordTick",
        "CoreContestUnit::endWindow",
    };
}

namespace analyze_detail
{

inline bool
crossCoreMutator(const std::string &n)
{
    return n == "receiveResult" || n == "performStore"
        || n == "noteRetire" || n == "commitDeferredResult";
}

/** Container-growth / allocation names flagged syntactically at the
 *  call site, independent of resolution: name collisions between
 *  std containers and repo containers make resolution unreliable
 *  exactly here, so the rule errs toward flagging (a fixed-capacity
 *  use carries a one-line allow with its justification). */
inline bool
allocName(const std::string &n)
{
    static const std::set<std::string> names = {
        "make_unique", "make_shared", "push_back", "emplace_back",
        "emplace", "push_front", "insert", "resize", "reserve",
        "assign", "append", "try_emplace",
    };
    return names.count(n) != 0;
}

inline bool
rngName(const std::string &n)
{
    static const std::set<std::string> names = {
        "rand", "srand", "random", "drand48", "rand_r",
        "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine", "random_device",
        "uniform_int_distribution", "uniform_real_distribution",
    };
    if (names.count(n))
        return true;
    static const std::string suffix = "_engine";
    return n.size() > suffix.size()
        && n.compare(n.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Known-inert names with no in-graph definition: std members that
 *  neither allocate nor mutate foreign state, plus the logging
 *  macros (panic and friends are #defines, so their bodies never
 *  enter the graph). */
inline bool
whitelisted(const std::string &n)
{
    static const std::set<std::string> names = {
        "min",   "max",    "size",     "empty",    "count",
        "clear", "front",  "back",     "top",      "begin",
        "end",   "rbegin", "rend",     "find",     "pop",
        "pop_front", "pop_back", "erase", "reset", "has_value",
        "value", "value_or", "swap",   "move",     "get",
        "data",  "c_str",  "abs",      "at",       "contains",
        "first", "second", "tie",      "forward",  "exchange",
        "panic", "panic_if", "fatal",  "fatal_if", "warn",
        "inform", "assert", "to_string", "memcpy", "memcmp",
        "upper_bound", "lower_bound", "distance", "clamp",
        "load", "store", "fetch_add", "fetch_sub", "compare",
        "substr", "length", "test", "set", "any", "none",
        "items", "less", "greater", "infinity", "lowest",
        "quiet_NaN", "epsilon",
    };
    return names.count(n) != 0;
}

inline bool
builtinType(const std::string &n)
{
    static const std::set<std::string> names = {
        "bool",     "char",     "short",    "int",      "long",
        "float",    "double",   "unsigned", "signed",   "void",
        "auto",     "size_t",   "ptrdiff_t", "uintptr_t",
        "intptr_t", "uint8_t",  "uint16_t", "uint32_t",
        "uint64_t", "int8_t",   "int16_t",  "int32_t",
        "int64_t",  "wchar_t",  "char8_t",  "char16_t",
        "char32_t",
    };
    return names.count(n) != 0;
}

inline bool
allCapsMacro(const std::string &n)
{
    bool hasUpper = false;
    for (char c : n) {
        if (std::isupper(static_cast<unsigned char>(c)))
            hasUpper = true;
        else if (c != '_'
                 && !std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return hasUpper;
}

} // namespace analyze_detail

class CallGraphAnalyzer
{
  public:
    /** Parse @p content (as repo-relative @p path) into the graph. */
    void
    addFile(const std::string &path, const std::string &content)
    {
        rawByFile_[path] = detail::splitLines(content);
        FileParser(path, content).run(defs_, globals_, typeNames_);
    }

    std::size_t functionCount() const { return defs_.size(); }

    /** Run the window-phase reachability analysis. */
    std::vector<Violation>
    analyze(const AnalyzeOptions &opts = {}) const
    {
        using namespace analyze_detail;

        std::map<std::string, std::vector<const FunctionDef *>>
            byBare, byQualified;
        for (const FunctionDef &d : defs_) {
            byBare[d.bare].push_back(&d);
            byQualified[d.qualified].push_back(&d);
        }

        std::vector<Violation> out;
        std::set<std::string> dedup;
        auto report = [&](const std::string &file, std::size_t line,
                          const char *rule, const std::string &key,
                          std::string msg) {
            std::string k = file + ":" + std::to_string(line) + ":"
                + rule + ":" + key;
            if (dedup.insert(k).second)
                out.push_back(
                    Violation{file, line, rule, std::move(msg)});
        };

        std::vector<std::string> seeds =
            opts.seeds.empty() ? defaultSeeds() : opts.seeds;

        std::map<const FunctionDef *,
                 std::pair<const FunctionDef *, std::string>>
            parent;
        std::deque<const FunctionDef *> queue;
        auto enqueue = [&](const FunctionDef *d,
                           const FunctionDef *from,
                           const std::string &via) {
            if (parent.count(d))
                return;
            parent[d] = {from, via};
            queue.push_back(d);
        };

        for (const std::string &s : seeds) {
            const auto &idx =
                s.find("::") != std::string::npos ? byQualified
                                                  : byBare;
            auto it = idx.find(s);
            if (it == idx.end() || it->second.empty()) {
                report("(callgraph)", 1, "unknown-call", s,
                       "window-phase seed '" + s
                           + "' matches no function definition; "
                             "update the seed list (tools/"
                             "contest_lint.cc --seed) after renames "
                             "so the analysis cannot rot silently");
                continue;
            }
            for (const FunctionDef *d : it->second)
                enqueue(d, nullptr, s);
        }

        auto pathTo = [&](const FunctionDef *d) {
            std::vector<std::string> names;
            for (const FunctionDef *p = d; p;) {
                names.push_back(p->qualified);
                p = parent.at(p).first;
            }
            std::string s;
            for (auto it = names.rbegin(); it != names.rend(); ++it)
                s += (s.empty() ? "" : " -> ") + *it;
            return s;
        };

        auto allowedAt = [&](const std::string &file,
                             std::size_t line, const char *rule) {
            auto it = rawByFile_.find(file);
            return it != rawByFile_.end()
                && detail::allowed(it->second, line, rule);
        };

        while (!queue.empty()) {
            const FunctionDef *d = queue.front();
            queue.pop_front();
            const std::string path = pathTo(d);

            for (const AllocSite &a : d->allocs) {
                if (allowedAt(d->file, a.line, "window-phase"))
                    continue;
                report(d->file, a.line, "window-phase", a.what,
                       "'" + a.what
                           + "' expression reachable in the window "
                             "phase (call path: "
                           + path
                           + "); lanes must not allocate while "
                             "windows run concurrently");
            }
            for (const WriteSite &w : d->writes) {
                if (!globals_.count(w.name))
                    continue;
                if (allowedAt(d->file, w.line, "window-phase"))
                    continue;
                report(d->file, w.line, "window-phase", w.name,
                       "write to static/namespace-scope '" + w.name
                           + "' reachable in the window phase (call "
                             "path: "
                           + path
                           + "); shared mutable state breaks lane "
                             "isolation");
            }

            for (const CallSite &c : d->calls) {
                if (d->localLambdas.count(c.name))
                    continue;
                if (allowedAt(d->file, c.line, "window-phase"))
                    continue; // audited boundary: not traversed
                if (crossCoreMutator(c.name)) {
                    report(d->file, c.line, "window-phase", c.name,
                           c.name
                               + "(...) mutates another core's "
                                 "contest state but is reachable "
                                 "from the window tick path (call "
                                 "path: "
                               + path + " -> " + c.name
                               + "); route it through "
                                 "ContestSystem's ordered commit");
                    continue;
                }
                if (allocName(c.name)) {
                    report(d->file, c.line, "window-phase", c.name,
                           c.name
                               + "(...) may grow a container / "
                                 "allocate in the window phase "
                                 "(call path: "
                               + path + " -> " + c.name
                               + "); use a fixed-capacity container "
                                 "or justify with an allow comment");
                    continue;
                }
                if (rngName(c.name)) {
                    report(d->file, c.line, "window-phase", c.name,
                           c.name
                               + " draws randomness in the window "
                                 "phase (call path: "
                               + path + " -> " + c.name
                               + "); nondeterminism breaks "
                                 "bit-identity with the sequential "
                                 "oracle");
                    continue;
                }
                if (c.qualifier == "std")
                    continue;

                std::vector<const FunctionDef *> cands;
                if (!c.qualifier.empty()) {
                    auto it = byQualified.find(c.qualifier
                                              + "::" + c.name);
                    if (it != byQualified.end())
                        cands = it->second;
                }
                if (cands.empty()) {
                    auto it = byBare.find(c.name);
                    if (it != byBare.end())
                        cands = it->second;
                }
                if (!cands.empty()) {
                    for (const FunctionDef *cand : cands)
                        if (!cand->windowSafe)
                            enqueue(cand, d, c.name);
                    continue;
                }
                if (typeNames_.count(c.name)
                    || builtinType(c.name))
                    continue; // constructor / function-style cast
                if (whitelisted(c.name) || allCapsMacro(c.name))
                    continue;
                if (allowedAt(d->file, c.line, "unknown-call"))
                    continue;
                report(d->file, c.line, "unknown-call", c.name,
                       "cannot resolve call to '" + c.name
                           + "(...)' reachable from the window tick "
                             "path (call path: "
                           + path + " -> " + c.name
                           + "); define it in-tree, add it to the "
                             "analyzer's known-inert list, or "
                             "annotate the call site");
            }
        }

        std::sort(out.begin(), out.end(),
                  [](const Violation &a, const Violation &b) {
                      if (a.file != b.file)
                          return a.file < b.file;
                      if (a.line != b.line)
                          return a.line < b.line;
                      return a.message < b.message;
                  });
        return out;
    }

  private:
    std::deque<FunctionDef> defs_;
    std::map<std::string, std::vector<std::string>> rawByFile_;
    std::set<std::string> globals_;
    std::set<std::string> typeNames_;
};

} // namespace cg
} // namespace contest::lint

#endif // CONTEST_TOOLS_LINT_CALLGRAPH_HH
