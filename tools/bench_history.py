#!/usr/bin/env python3
"""Append a BENCH_throughput run to the committed perf trajectory.

BENCH_history.json (repo root) is the checked-in, append-only record
of the suite's throughput scalars — one entry per PR — so the perf
trajectory lives in the repo instead of only in CI logs. The CI
perf-smoke job runs this script after BENCH_throughput and uploads
the appended file as an artifact; the PR author checks the new entry
in (the alternative, a CI-side commit, would race concurrent PRs).

Usage:
    tools/bench_history.py <BENCH_throughput.json> [--label TEXT]
        [--history PATH] [--check]

The entry records the benchmark's meta block (trace length, seed,
jobs, git revision) plus every scalar, and is skipped when the
history's newest entry already names the same git revision (re-runs
on one commit should not duplicate entries). Dirty-tree revisions
("<rev>-dirty") are normalized: the clean rev is recorded with a
separate `"dirty": true` flag, so a rerun on the clean tree is still
recognized as the same commit.

--check compares the new entry against the previous one and prints
GitHub `::warning::` annotations for contest_speedup_* values below
1.0 and for a mean_mticks_per_s drop of more than 10%. Checks never
fail the run (exit 0): perf-smoke is a shared-runner measurement, so
the annotation makes a slowdown visible without gating on noise.
"""

import argparse
import json
import sys
from pathlib import Path


def split_git_rev(rev):
    """Return (clean_rev, dirty) for a git describe-style revision."""
    if rev.endswith("-dirty"):
        return rev[: -len("-dirty")], True
    return rev, False


def check_entry(entry, previous):
    """Yield warning strings comparing entry against previous."""
    scalars = entry.get("scalars", {})
    for key, value in sorted(scalars.items()):
        if key.startswith("contest_speedup_") and value < 1.0:
            yield (f"{key} = {value:.3f} < 1.0: the windowed "
                   "contest path is a net slowdown at this lane "
                   "count")
    if previous is not None:
        prev_mean = previous.get("scalars", {}).get("mean_mticks_per_s")
        mean = scalars.get("mean_mticks_per_s")
        if prev_mean and mean is not None and mean < 0.9 * prev_mean:
            yield (f"mean_mticks_per_s regressed >10%: "
                   f"{prev_mean:.2f} -> {mean:.2f}")


def main() -> int:
    ap = argparse.ArgumentParser(
        description="append BENCH_throughput scalars to "
                    "BENCH_history.json")
    ap.add_argument("result", type=Path,
                    help="BENCH_throughput.json produced by "
                         "contest_bench")
    ap.add_argument("--label", default="",
                    help="free-form tag for the entry (e.g. the PR "
                         "title)")
    ap.add_argument("--history",
                    type=Path,
                    default=Path(__file__).resolve().parent.parent
                    / "BENCH_history.json",
                    help="history file to append to (default: repo "
                         "root BENCH_history.json)")
    ap.add_argument("--check", action="store_true",
                    help="emit ::warning:: annotations for speedups "
                         "< 1.0 and >10%% mean-rate regressions "
                         "(never fails the run)")
    args = ap.parse_args()

    result = json.loads(args.result.read_text())
    if result.get("name") != "BENCH_throughput":
        print(f"error: {args.result} is not a BENCH_throughput "
              "artifact", file=sys.stderr)
        return 1

    history = []
    if args.history.exists():
        history = json.loads(args.history.read_text())
        if not isinstance(history, list):
            print(f"error: {args.history} is not a JSON array",
                  file=sys.stderr)
            return 1

    entry = {
        "label": args.label,
        "meta": dict(result.get("meta", {})),
        "scalars": result.get("scalars", {}),
    }

    git, dirty = split_git_rev(entry["meta"].get("git", ""))
    entry["meta"]["git"] = git
    if dirty:
        entry["meta"]["dirty"] = True

    previous = history[-1] if history else None
    if previous is not None and git:
        # Compare clean revs on both sides: old entries may predate
        # the dirty-flag split and still carry "<rev>-dirty".
        prev_git, _ = split_git_rev(
            previous.get("meta", {}).get("git", ""))
        if prev_git == git:
            print(f"history already ends at {git}; not appending")
            if args.check:
                for warning in check_entry(entry,
                                           history[-2] if
                                           len(history) > 1 else None):
                    print(f"::warning::BENCH_history: {warning}")
            return 0

    history.append(entry)
    args.history.write_text(json.dumps(history, indent=2) + "\n")
    mean = entry["scalars"].get("mean_mticks_per_s")
    print(f"appended entry #{len(history)} ({git or 'no git rev'}"
          f"{', ' + args.label if args.label else ''}): "
          f"mean {mean:.2f} Mticks/s" if mean is not None else
          f"appended entry #{len(history)}")

    if args.check:
        for warning in check_entry(entry, previous):
            print(f"::warning::BENCH_history: {warning}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
