#!/usr/bin/env python3
"""Append a BENCH_throughput run to the committed perf trajectory.

BENCH_history.json (repo root) is the checked-in, append-only record
of the suite's throughput scalars — one entry per PR — so the perf
trajectory lives in the repo instead of only in CI logs. The CI
perf-smoke job runs this script after BENCH_throughput and uploads
the appended file as an artifact; the PR author checks the new entry
in (the alternative, a CI-side commit, would race concurrent PRs).

Usage:
    tools/bench_history.py <BENCH_throughput.json> [--label TEXT]
        [--history PATH]

The entry records the benchmark's meta block (trace length, seed,
jobs, git revision) plus every scalar, and is skipped when the
history's newest entry already names the same git revision (re-runs
on one commit should not duplicate entries).
"""

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    ap = argparse.ArgumentParser(
        description="append BENCH_throughput scalars to "
                    "BENCH_history.json")
    ap.add_argument("result", type=Path,
                    help="BENCH_throughput.json produced by "
                         "contest_bench")
    ap.add_argument("--label", default="",
                    help="free-form tag for the entry (e.g. the PR "
                         "title)")
    ap.add_argument("--history",
                    type=Path,
                    default=Path(__file__).resolve().parent.parent
                    / "BENCH_history.json",
                    help="history file to append to (default: repo "
                         "root BENCH_history.json)")
    args = ap.parse_args()

    result = json.loads(args.result.read_text())
    if result.get("name") != "BENCH_throughput":
        print(f"error: {args.result} is not a BENCH_throughput "
              "artifact", file=sys.stderr)
        return 1

    history = []
    if args.history.exists():
        history = json.loads(args.history.read_text())
        if not isinstance(history, list):
            print(f"error: {args.history} is not a JSON array",
                  file=sys.stderr)
            return 1

    entry = {
        "label": args.label,
        "meta": result.get("meta", {}),
        "scalars": result.get("scalars", {}),
    }

    git = entry["meta"].get("git", "")
    if history and git and history[-1].get("meta", {}).get("git") == git:
        print(f"history already ends at {git}; not appending")
        return 0

    history.append(entry)
    args.history.write_text(json.dumps(history, indent=2) + "\n")
    mean = entry["scalars"].get("mean_mticks_per_s")
    print(f"appended entry #{len(history)} ({git or 'no git rev'}"
          f"{', ' + args.label if args.label else ''}): "
          f"mean {mean:.2f} Mticks/s" if mean is not None else
          f"appended entry #{len(history)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
