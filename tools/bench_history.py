#!/usr/bin/env python3
"""Append a benchmark run to the committed perf trajectory.

BENCH_history.json (repo root) is the checked-in, append-only record
of the suite's wall-clock benchmark scalars — one entry per PR and
benchmark — so the perf trajectory lives in the repo instead of only
in CI logs. Two artifacts are accepted: BENCH_throughput (the
simulator-rate benchmark, CI perf-smoke) and BENCH_serving (the
contest-service benchmark, CI serve-smoke). The CI jobs run this
script after their benchmark and upload the appended file as an
artifact; the PR author checks the new entry in (the alternative, a
CI-side commit, would race concurrent PRs).

Usage:
    tools/bench_history.py <BENCH_*.json> [--label TEXT]
        [--history PATH] [--check]

The entry records the benchmark's name and meta block (trace length,
seed, jobs, git revision) plus every scalar, and is skipped when the
history already holds an entry for the same (git revision, benchmark
name) pair — re-runs on one commit should not duplicate entries.
Dirty-tree revisions ("<rev>-dirty") are normalized: the clean rev is
recorded with a separate `"dirty": true` flag, so a rerun on the
clean tree is still recognized as the same commit.

--check compares the new entry against the previous same-name entry
and prints GitHub `::warning::` annotations for regressions:
contest_speedup_* below 1.0 (downgraded to `::notice::` when the run
had only one CPU — a single-core runner cannot show a parallel
speedup, so the miss is expected, not a regression), a
mean_mticks_per_s drop of more than 10%, serving_warm_speedup_*
below 5.0, and serving_warm_sims_* above 0 (a warm request that
simulates means the memoization broke). Checks never fail the run
(exit 0): both benchmarks are shared-runner measurements, so the
annotation makes a slowdown visible without gating on noise.
"""

import argparse
import json
import sys
from pathlib import Path

ACCEPTED_NAMES = ("BENCH_throughput", "BENCH_serving")


def split_git_rev(rev):
    """Return (clean_rev, dirty) for a git describe-style revision."""
    if rev.endswith("-dirty"):
        return rev[: -len("-dirty")], True
    return rev, False


def check_entry(entry, previous):
    """Yield (level, message) pairs comparing entry against previous."""
    scalars = entry.get("scalars", {})
    single_cpu = entry.get("meta", {}).get("cpus") == 1
    for key, value in sorted(scalars.items()):
        if key.startswith("contest_speedup_") and value < 1.0:
            if single_cpu:
                yield ("notice",
                       f"{key} = {value:.3f} < 1.0 on a 1-CPU "
                       "runner: expected, the windowed lanes have "
                       "no core to run on")
            else:
                yield ("warning",
                       f"{key} = {value:.3f} < 1.0: the windowed "
                       "contest path is a net slowdown at this lane "
                       "count")
        if key.startswith("serving_warm_speedup_") and value < 5.0:
            yield ("warning",
                   f"{key} = {value:.2f} < 5.0: warm requests "
                   "should be far cheaper than cold ones")
        if key.startswith("serving_warm_sims_") and value > 0:
            yield ("warning",
                   f"{key} = {value:.0f} > 0: a warm request "
                   "re-simulated; the Runner memoization is not "
                   "deduplicating identical requests")
    if previous is not None:
        prev_mean = previous.get("scalars", {}).get("mean_mticks_per_s")
        mean = scalars.get("mean_mticks_per_s")
        if prev_mean and mean is not None and mean < 0.9 * prev_mean:
            yield ("warning",
                   f"mean_mticks_per_s regressed >10%: "
                   f"{prev_mean:.2f} -> {mean:.2f}")


def print_checks(entry, previous):
    for level, message in check_entry(entry, previous):
        print(f"::{level}::BENCH_history: {message}")


def last_with_name(history, name):
    """The newest history entry for a benchmark name, or None.

    Entries written before the name field existed are
    BENCH_throughput runs.
    """
    for entry in reversed(history):
        if entry.get("name", "BENCH_throughput") == name:
            return entry
    return None


def main() -> int:
    ap = argparse.ArgumentParser(
        description="append BENCH_throughput / BENCH_serving scalars "
                    "to BENCH_history.json")
    ap.add_argument("result", type=Path,
                    help="BENCH_*.json produced by contest_bench")
    ap.add_argument("--label", default="",
                    help="free-form tag for the entry (e.g. the PR "
                         "title)")
    ap.add_argument("--history",
                    type=Path,
                    default=Path(__file__).resolve().parent.parent
                    / "BENCH_history.json",
                    help="history file to append to (default: repo "
                         "root BENCH_history.json)")
    ap.add_argument("--check", action="store_true",
                    help="emit ::warning:: / ::notice:: annotations "
                         "for regressions (never fails the run)")
    args = ap.parse_args()

    result = json.loads(args.result.read_text())
    name = result.get("name")
    if name not in ACCEPTED_NAMES:
        print(f"error: {args.result} is not one of "
              f"{', '.join(ACCEPTED_NAMES)}", file=sys.stderr)
        return 1

    history = []
    if args.history.exists():
        history = json.loads(args.history.read_text())
        if not isinstance(history, list):
            print(f"error: {args.history} is not a JSON array",
                  file=sys.stderr)
            return 1

    entry = {
        "label": args.label,
        "name": name,
        "meta": dict(result.get("meta", {})),
        "scalars": result.get("scalars", {}),
    }

    git, dirty = split_git_rev(entry["meta"].get("git", ""))
    entry["meta"]["git"] = git
    if dirty:
        entry["meta"]["dirty"] = True

    previous = last_with_name(history, name)
    if previous is not None and git:
        # Compare clean revs on both sides: old entries may predate
        # the dirty-flag split and still carry "<rev>-dirty".
        prev_git, _ = split_git_rev(
            previous.get("meta", {}).get("git", ""))
        if prev_git == git:
            print(f"history already has a {name} entry at {git}; "
                  "not appending")
            if args.check:
                older = last_with_name(
                    history[: history.index(previous)], name)
                print_checks(entry, older)
            return 0

    history.append(entry)
    args.history.write_text(json.dumps(history, indent=2) + "\n")
    mean = entry["scalars"].get("mean_mticks_per_s")
    if mean is not None:
        detail = f"mean {mean:.2f} Mticks/s"
    else:
        warm = entry["scalars"].get("serving_warm_rps_j4")
        detail = (f"warm {warm:.1f} req/s at 4 jobs"
                  if warm is not None else "no headline scalar")
    print(f"appended {name} entry #{len(history)} "
          f"({git or 'no git rev'}"
          f"{', ' + args.label if args.label else ''}): {detail}")

    if args.check:
        print_checks(entry, previous)
    return 0


if __name__ == "__main__":
    sys.exit(main())
