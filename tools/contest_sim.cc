/**
 * @file
 * contest_sim — command-line driver for the library.
 *
 * Usage:
 *   contest_sim single  <benchmark> <core> [options]
 *   contest_sim contest <benchmark> <coreA> <coreB> [coreC ...]
 *                       [options]
 *   contest_sim matrix  [options]
 *   contest_sim save    <benchmark> <file> [options]
 *   contest_sim cores
 *
 * Options:
 *   --insts N       trace length (default 200000)
 *   --seed N        workload seed (default 2009)
 *   --latency NS    GRB latency in nanoseconds (default 1)
 *   --trace FILE    replay a saved trace instead of generating
 *   --style S       injection style: portsteal | markready
 *   --jobs N        matrix-sweep concurrency (default CONTEST_JOBS
 *                   or the hardware concurrency); results are
 *                   identical for every N
 *   --quiet         suppress info logging
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/thread_pool.hh"
#include "contest/system.hh"
#include "core/palette.hh"
#include "trace/generator.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace contest;

struct Options
{
    std::uint64_t insts = 200'000;
    std::uint64_t seed = 2009;
    TimePs latencyPs{1'000};
    std::string traceFile;
    InjectionStyle style = InjectionStyle::PortSteal;
    unsigned jobs = defaultJobs();
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: contest_sim single <benchmark> <core> [options]\n"
        "       contest_sim contest <benchmark> <coreA> <coreB> "
        "[more cores] [options]\n"
        "       contest_sim matrix [options]\n"
        "       contest_sim save <benchmark> <file> [options]\n"
        "       contest_sim cores\n"
        "options: --insts N --seed N --latency NS --trace FILE\n"
        "         --style portsteal|markready --jobs N --quiet\n");
    std::exit(2);
}

Options
parseOptions(std::vector<std::string> &args)
{
    Options opt;
    std::vector<std::string> rest;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                usage();
            return args[++i];
        };
        if (a == "--insts") {
            opt.insts = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--latency") {
            opt.latencyPs = static_cast<TimePs>(
                std::strtod(next().c_str(), nullptr) * 1000.0);
        } else if (a == "--trace") {
            opt.traceFile = next();
        } else if (a == "--style") {
            std::string s = next();
            if (s == "portsteal")
                opt.style = InjectionStyle::PortSteal;
            else if (s == "markready")
                opt.style = InjectionStyle::MarkReady;
            else
                usage();
        } else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
            if (opt.jobs == 0)
                opt.jobs = 1;
        } else if (a == "--quiet") {
            setLogLevel(LogLevel::Silent);
        } else {
            rest.push_back(a);
        }
    }
    args = rest;
    return opt;
}

TracePtr
loadWorkload(const std::string &bench, const Options &opt)
{
    if (!opt.traceFile.empty())
        return readTrace(opt.traceFile);
    return makeBenchmarkTrace(bench, opt.seed, opt.insts);
}

int
cmdSingle(std::vector<std::string> args)
{
    Options opt = parseOptions(args);
    if (args.size() != 2)
        usage();
    auto trace = loadWorkload(args[0], opt);
    const auto &core = coreConfigByName(args[1]);
    auto r = runSingle(core, trace);
    std::printf("%s on the %s core: %.3f inst/ns (IPC %.3f, "
                "%.1f us, %.1f uJ)\n",
                args[0].c_str(), core.name.c_str(), r.ipt,
                r.stats.ipc(),
                static_cast<double>(r.timePs) / 1e6,
                r.energy.totalNj() / 1000.0);
    std::printf("  mispredict rate %.2f%%, fetch stalled %llu of "
                "%llu cycles\n",
                r.stats.mispredictRate() * 100.0,
                static_cast<unsigned long long>(
                    r.stats.fetchStallBranch),
                static_cast<unsigned long long>(r.stats.cycles));
    return 0;
}

int
cmdContest(std::vector<std::string> args)
{
    Options opt = parseOptions(args);
    if (args.size() < 3)
        usage();
    auto trace = loadWorkload(args[0], opt);

    std::vector<CoreConfig> cores;
    for (std::size_t i = 1; i < args.size(); ++i)
        cores.push_back(coreConfigByName(args[i]));

    ContestConfig cfg;
    cfg.grbLatencyPs = opt.latencyPs;
    cfg.injectionStyle = opt.style;
    ContestSystem system(cores, trace, cfg);
    auto r = system.run();

    std::printf("%zu-way contest on %s: %.3f inst/ns, %llu lead "
                "changes, %.1f uJ total\n",
                cores.size(), args[0].c_str(), r.ipt,
                static_cast<unsigned long long>(r.leadChanges),
                r.totalEnergyNj() / 1000.0);
    for (std::size_t c = 0; c < cores.size(); ++c)
        std::printf("  %-7s led %5.1f%%, injected %llu%s\n",
                    cores[c].name.c_str(),
                    r.leadFraction[c] * 100.0,
                    static_cast<unsigned long long>(
                        r.coreStats[c].injected),
                    r.unitStats[c].saturated ? " (parked)" : "");
    return 0;
}

int
cmdMatrix(std::vector<std::string> args)
{
    Options opt = parseOptions(args);
    if (!args.empty())
        usage();

    // Sweep rows concurrently (each row shares one trace across its
    // simulations), buffering results so the printed matrix is
    // identical for every job count.
    const auto benches = profileNames();
    const auto &palette = appendixAPalette();
    std::vector<std::vector<double>> ipt(
        benches.size(), std::vector<double>(palette.size(), 0.0));
    ThreadPool pool(opt.jobs);
    pool.parallelFor(benches.size(), [&](std::size_t b) {
        auto trace =
            makeBenchmarkTrace(benches[b], opt.seed, opt.insts);
        for (std::size_t c = 0; c < palette.size(); ++c)
            ipt[b][c] = runSingle(palette[c], trace).ipt;
    });

    std::printf("%-8s", "");
    for (const auto &core : palette)
        std::printf("%8s", core.name.c_str());
    std::printf("\n");
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::printf("%-8s", benches[b].c_str());
        for (std::size_t c = 0; c < palette.size(); ++c)
            std::printf("%8.2f", ipt[b][c]);
        std::printf("\n");
    }
    std::fflush(stdout);
    return 0;
}

int
cmdSave(std::vector<std::string> args)
{
    Options opt = parseOptions(args);
    if (args.size() != 2)
        usage();
    auto trace = makeBenchmarkTrace(args[0], opt.seed, opt.insts);
    writeTrace(args[1], *trace);
    std::printf("wrote %zu instructions of '%s' to %s\n",
                trace->size(), args[0].c_str(), args[1].c_str());
    return 0;
}

int
cmdCores()
{
    std::printf("%-8s %5s %6s %6s %5s %9s %9s %7s\n", "core",
                "width", "ROB", "IQ", "GHz", "L1D", "L2", "peak");
    for (const auto &c : appendixAPalette())
        std::printf("%-8s %5u %6u %6u %5.2f %7lluKB %7lluKB "
                    "%5.1f/ns\n",
                    c.name.c_str(), c.width, c.robSize, c.iqSize,
                    c.frequencyGHz(),
                    static_cast<unsigned long long>(
                        c.l1d.capacityBytes() / 1024),
                    static_cast<unsigned long long>(
                        c.l2.capacityBytes() / 1024),
                    c.peakIps());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "single")
        return cmdSingle(std::move(args));
    if (cmd == "contest")
        return cmdContest(std::move(args));
    if (cmd == "matrix")
        return cmdMatrix(std::move(args));
    if (cmd == "save")
        return cmdSave(std::move(args));
    if (cmd == "cores")
        return cmdCores();
    usage();
}
