/**
 * @file
 * contest_lint — the repo's static-analysis gate.
 *
 * Usage:
 *     contest_lint [--root <repo-root>] [paths...]
 *
 * Walks the given paths (default: src bench tests) relative to the
 * repo root, lints every .hh/.cc/.cpp file with the rules in
 * lint_core.hh, prints findings as file:line: rule: message, and
 * exits non-zero if anything fired. tests/lint_fixtures/ is skipped:
 * it holds intentionally-broken inputs for the linter's own tests.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hh"

namespace fs = std::filesystem;

namespace
{

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".cc" || ext == ".cpp";
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: contest_lint [--root <dir>] "
                        "[paths...]\n");
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests"};

    std::size_t files = 0;
    std::vector<contest::lint::Violation> all;
    for (const auto &p : paths) {
        fs::path base = root / p;
        if (!fs::exists(base)) {
            std::fprintf(stderr, "contest_lint: no such path: %s\n",
                         base.string().c_str());
            return 2;
        }
        std::vector<fs::path> targets;
        if (fs::is_regular_file(base)) {
            targets.push_back(base);
        } else {
            // Skip the linter's own intentionally-broken fixtures
            // unless they were requested explicitly.
            const bool fixtures_requested =
                base.string().find("lint_fixtures")
                != std::string::npos;
            for (const auto &e :
                 fs::recursive_directory_iterator(base)) {
                if (!e.is_regular_file() || !lintableFile(e.path()))
                    continue;
                if (!fixtures_requested
                    && e.path().string().find("lint_fixtures")
                           != std::string::npos)
                    continue;
                targets.push_back(e.path());
            }
        }
        for (const auto &t : targets) {
            ++files;
            std::string rel =
                fs::relative(t, root).generic_string();
            auto v = contest::lint::lintFile(rel, readFile(t));
            all.insert(all.end(), v.begin(), v.end());
        }
    }

    for (const auto &v : all)
        std::printf("%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    std::printf("contest_lint: %zu file(s), %zu finding(s)\n", files,
                all.size());
    return all.empty() ? 0 : 1;
}
