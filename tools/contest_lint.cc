/**
 * @file
 * contest_lint — the repo's static-analysis gate.
 *
 * Usage:
 *     contest_lint [--root <repo-root>] [--format=human|json]
 *                  [--budget-ms <n>] [--seed <fn>]... [--no-callgraph]
 *                  [paths...]
 *
 * Two engines run:
 *
 *  1. the line rules in lint_core.hh over the given paths
 *     (default: src bench tests);
 *  2. the window-phase call-graph analysis in lint_callgraph.hh over
 *     <root>/src, seeded with the in-window entry points (override
 *     with repeated --seed; disable with --no-callgraph).
 *
 * Findings print as `file:line: rule: message` (or a JSON array with
 * --format=json, matched by .github/contest-lint-matcher.json in
 * CI), followed by a summary with the wall-clock spent. Exit codes:
 * 0 clean, 1 findings, 2 bad invocation, 3 --budget-ms exceeded.
 * tests/lint_fixtures/ is skipped unless requested explicitly: it
 * holds intentionally-broken inputs for the linter's own tests.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_callgraph.hh"
#include "lint_core.hh"

namespace fs = std::filesystem;

namespace
{

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".cc" || ext == ".cpp";
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();

    fs::path root = ".";
    std::vector<std::string> paths;
    std::vector<std::string> seeds;
    std::string format = "human";
    long budgetMs = -1;
    bool callgraph = true;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "human" && format != "json") {
                std::fprintf(stderr,
                             "contest_lint: unknown format '%s'\n",
                             format.c_str());
                return 2;
            }
        } else if (arg == "--budget-ms" && i + 1 < argc) {
            budgetMs = std::atol(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seeds.push_back(argv[++i]);
        } else if (arg == "--no-callgraph") {
            callgraph = false;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: contest_lint [--root <dir>] "
                "[--format=human|json] [--budget-ms <n>]\n"
                "                    [--seed <fn>]... "
                "[--no-callgraph] [paths...]\n");
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    const bool explicitPaths = !paths.empty();
    if (paths.empty())
        paths = {"src", "bench", "tests"};

    std::size_t files = 0;
    std::vector<contest::lint::Violation> all;
    for (const auto &p : paths) {
        fs::path base = root / p;
        if (!fs::exists(base)) {
            std::fprintf(stderr, "contest_lint: no such path: %s\n",
                         base.string().c_str());
            return 2;
        }
        std::vector<fs::path> targets;
        if (fs::is_regular_file(base)) {
            targets.push_back(base);
        } else {
            // Skip the linter's own intentionally-broken fixtures
            // unless they were requested explicitly.
            const bool fixtures_requested =
                base.string().find("lint_fixtures")
                != std::string::npos;
            for (const auto &e :
                 fs::recursive_directory_iterator(base)) {
                if (!e.is_regular_file() || !lintableFile(e.path()))
                    continue;
                if (!fixtures_requested
                    && e.path().string().find("lint_fixtures")
                           != std::string::npos)
                    continue;
                targets.push_back(e.path());
            }
        }
        for (const auto &t : targets) {
            ++files;
            std::string rel =
                fs::relative(t, root).generic_string();
            auto v = contest::lint::lintFile(rel, readFile(t));
            all.insert(all.end(), v.begin(), v.end());
        }
    }

    // ---- window-phase call-graph analysis over src/ -------------
    // The graph always spans all of src/ (so callees in mem/, bpred/
    // and common/ resolve) regardless of which paths the line rules
    // covered; with explicit paths pointing at fixtures, analyze
    // those instead so the engine's own tests can drive it.
    if (callgraph) {
        contest::lint::cg::CallGraphAnalyzer an;
        fs::path cgBase = root / "src";
        const bool fixtureRun = explicitPaths
            && paths.size() == 1
            && paths[0].find("lint_fixtures") != std::string::npos;
        if (fixtureRun)
            cgBase = root / paths[0];
        if (fs::exists(cgBase)) {
            for (const auto &e :
                 fs::recursive_directory_iterator(cgBase)) {
                if (!e.is_regular_file() || !lintableFile(e.path()))
                    continue;
                if (!fixtureRun
                    && e.path().string().find("lint_fixtures")
                           != std::string::npos)
                    continue;
                an.addFile(
                    fs::relative(e.path(), root).generic_string(),
                    readFile(e.path()));
            }
            contest::lint::cg::AnalyzeOptions opts;
            opts.seeds = seeds;
            auto v = an.analyze(opts);
            all.insert(all.end(), v.begin(), v.end());
        }
    }

    const auto t1 = std::chrono::steady_clock::now();
    const long ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(t1
                                                              - t0)
            .count();

    if (format == "json") {
        std::printf("[");
        for (std::size_t i = 0; i < all.size(); ++i) {
            const auto &v = all[i];
            std::printf(
                "%s\n  {\"file\": \"%s\", \"line\": %zu, "
                "\"rule\": \"%s\", \"message\": \"%s\"}",
                i ? "," : "", jsonEscape(v.file).c_str(), v.line,
                jsonEscape(v.rule).c_str(),
                jsonEscape(v.message).c_str());
        }
        std::printf("%s]\n", all.empty() ? "" : "\n");
    } else {
        for (const auto &v : all)
            std::printf("%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                        v.rule.c_str(), v.message.c_str());
        std::printf("contest_lint: %zu file(s), %zu finding(s), "
                    "%ld ms\n",
                    files, all.size(), ms);
    }

    if (budgetMs >= 0 && ms > budgetMs) {
        std::fprintf(stderr,
                     "contest_lint: runtime %ld ms exceeded the "
                     "--budget-ms %ld budget\n",
                     ms, budgetMs);
        return 3;
    }
    return all.empty() ? 0 : 1;
}
