/**
 * @file
 * Load generator for the contest service. Connects to a running
 * contest_serve, issues a deterministic single/contest request mix
 * from N concurrent client connections, and reports throughput,
 * latency percentiles, warm-hit counts, and how many simulations the
 * server actually executed during each phase.
 *
 * Phases repeat the *identical* request mix (same --mix-seed), so
 * with --phases 2 the first phase measures the cold server and the
 * second measures pure cache service: the second phase's
 * "sims during" should be zero and its throughput far higher.
 *
 * Usage:
 *   contest_load --socket /tmp/contest.sock [--phases 2]
 *       [--clients 4] [--requests 16] [--contest-fraction 0.25]
 *       [--mix-seed 1] [--rps R] [--benches gcc,twolf,...]
 *       [--cores gcc,twolf,...] [--json]
 *
 * Exit status: 0 when every phase completed with zero failed
 * requests, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hh"
#include "serve/loadgen.hh"

namespace
{

using namespace contest;

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: contest_load (--socket PATH | --port N) [options]\n"
        "\n"
        "  --phases N            identical phases to run (default 2:\n"
        "                        cold then warm)\n"
        "  --clients N           concurrent connections (default 4)\n"
        "  --requests N          requests per client (default 16)\n"
        "  --contest-fraction F  fraction of 2-way contests\n"
        "                        (default 0.25)\n"
        "  --mix-seed N          request mix seed (default 1)\n"
        "  --rps R               open-loop rate per client\n"
        "                        (default 0: closed loop)\n"
        "  --benches a,b,...     benchmarks to draw from\n"
        "  --cores a,b,...       core types to draw from\n"
        "  --json                emit a JSON summary instead of text\n");
}

bool
valueFlag(int argc, char **argv, int &i, const char *flag,
          std::string &value)
{
    const std::size_t n = std::strlen(flag);
    if (std::strcmp(argv[i], flag) == 0) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", flag);
            std::exit(2);
        }
        value = argv[++i];
        return true;
    }
    if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=') {
        value = argv[i] + n + 1;
        return true;
    }
    return false;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > pos)
            out.push_back(csv.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

JsonValue
phaseJson(const LoadPhase &phase)
{
    JsonValue p = JsonValue::object();
    p.set("sent", JsonValue::number(static_cast<double>(phase.sent)));
    p.set("ok", JsonValue::number(static_cast<double>(phase.ok)));
    p.set("errors",
          JsonValue::number(static_cast<double>(phase.errors)));
    p.set("warm_responses",
          JsonValue::number(
              static_cast<double>(phase.warmResponses)));
    p.set("wall_sec", JsonValue::number(phase.wallSec));
    p.set("rps", JsonValue::number(phase.rps()));
    p.set("p50_ms", JsonValue::number(phase.percentileMs(50)));
    p.set("p90_ms", JsonValue::number(phase.percentileMs(90)));
    p.set("p99_ms", JsonValue::number(phase.percentileMs(99)));
    p.set("sims_during",
          JsonValue::number(static_cast<double>(phase.simsDuring)));
    p.set("contests_during",
          JsonValue::number(
              static_cast<double>(phase.contestsDuring)));
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    LoadSpec spec;
    spec.benches = {"gcc", "twolf", "crafty", "vortex"};
    spec.cores = {"gcc", "twolf", "crafty", "vortex"};
    unsigned phases = 2;
    bool json = false;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        if (valueFlag(argc, argv, i, "--socket", value)) {
            spec.target.unixPath = value;
        } else if (valueFlag(argc, argv, i, "--port", value)) {
            spec.target.port = std::atoi(value.c_str());
        } else if (valueFlag(argc, argv, i, "--phases", value)) {
            phases = static_cast<unsigned>(std::atoi(value.c_str()));
        } else if (valueFlag(argc, argv, i, "--clients", value)) {
            spec.clients =
                static_cast<unsigned>(std::atoi(value.c_str()));
        } else if (valueFlag(argc, argv, i, "--requests", value)) {
            spec.requestsPerClient =
                static_cast<unsigned>(std::atoi(value.c_str()));
        } else if (valueFlag(argc, argv, i, "--contest-fraction",
                             value)) {
            spec.contestFraction = std::atof(value.c_str());
        } else if (valueFlag(argc, argv, i, "--mix-seed", value)) {
            spec.mixSeed = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (valueFlag(argc, argv, i, "--rps", value)) {
            spec.openLoopRps = std::atof(value.c_str());
        } else if (valueFlag(argc, argv, i, "--benches", value)) {
            spec.benches = splitList(value);
        } else if (valueFlag(argc, argv, i, "--cores", value)) {
            spec.cores = splitList(value);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--help") == 0
                   || std::strcmp(argv[i], "-h") == 0) {
            printUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            printUsage(stderr);
            return 2;
        }
    }
    if (!spec.target.valid() || phases == 0 || spec.clients == 0) {
        printUsage(stderr);
        return 2;
    }

    JsonValue summary = JsonValue::object();
    JsonValue phaseArray = JsonValue::array();
    bool clean = true;
    for (unsigned p = 0; p < phases; ++p) {
        LoadPhase phase;
        std::string error;
        if (!runLoadPhase(spec, phase, &error)) {
            std::fprintf(stderr, "contest_load: phase %u: %s\n", p,
                         error.c_str());
            return 1;
        }
        clean = clean && phase.errors == 0;
        const char *label =
            phases == 2 ? (p == 0 ? "cold" : "warm") : "phase";
        if (json) {
            JsonValue pj = phaseJson(phase);
            pj.set("label", JsonValue::str(
                                phases == 2
                                    ? label
                                    : "phase" + std::to_string(p)));
            phaseArray.push(std::move(pj));
        } else {
            std::printf(
                "%s[%u]: %llu ok / %llu sent (%llu errors), "
                "%.1f req/s, p50 %.2f ms, p90 %.2f ms, p99 %.2f "
                "ms, %llu warm, %llu single + %llu contest sims "
                "executed\n",
                label, p,
                static_cast<unsigned long long>(phase.ok),
                static_cast<unsigned long long>(phase.sent),
                static_cast<unsigned long long>(phase.errors),
                phase.rps(), phase.percentileMs(50),
                phase.percentileMs(90), phase.percentileMs(99),
                static_cast<unsigned long long>(
                    phase.warmResponses),
                static_cast<unsigned long long>(phase.simsDuring),
                static_cast<unsigned long long>(
                    phase.contestsDuring));
        }
    }
    if (json) {
        summary.set("phases", std::move(phaseArray));
        std::printf("%s\n", summary.dump(2).c_str());
    }
    std::fflush(stdout);
    return clean ? 0 : 1;
}
