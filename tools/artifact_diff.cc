/**
 * @file
 * Golden-artifact comparison gate. Compares candidate experiment
 * artifacts (JSON files emitted by contest_bench --out-dir) against
 * committed goldens, field-by-field under a numeric tolerance.
 *
 * Usage:
 *   artifact_diff [--rtol X] [--atol Y] GOLDEN CANDIDATE
 *
 * GOLDEN and CANDIDATE are either two JSON files or two directories;
 * for directories every *.json in GOLDEN must exist in CANDIDATE and
 * match. Exit status: 0 all match, 1 differences found, 2 usage or
 * I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/artifact.hh"

namespace fs = std::filesystem;

namespace
{

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: artifact_diff [--rtol X] [--atol Y] GOLDEN CANDIDATE\n"
        "\n"
        "Compare experiment artifacts field-by-field. GOLDEN and\n"
        "CANDIDATE are two artifact JSON files, or two directories\n"
        "(every *.json in GOLDEN must exist and match in CANDIDATE).\n"
        "Numeric fields compare under |g - c| <= atol + rtol * |g|\n"
        "(default rtol 1e-6, atol 1e-9); labels compare exactly.\n"
        "Exit: 0 match, 1 differences, 2 usage/IO error.\n");
}

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Load one artifact JSON file; returns false (with a message on
 *  stderr) on I/O, parse, or schema failure. */
bool
loadArtifact(const fs::path &path, contest::FigureArtifact &art)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "artifact_diff: cannot read %s\n",
                     path.string().c_str());
        return false;
    }
    std::string error;
    contest::JsonValue v = contest::JsonValue::parse(text, &error);
    if (v.isNull() && !error.empty()) {
        std::fprintf(stderr, "artifact_diff: %s: %s\n",
                     path.string().c_str(), error.c_str());
        return false;
    }
    art = contest::FigureArtifact::fromJson(v, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "artifact_diff: %s: %s\n",
                     path.string().c_str(), error.c_str());
        return false;
    }
    return true;
}

/** Compare one golden/candidate file pair; prints each difference.
 *  @return number of differences, or -1 on load failure */
int
diffFiles(const fs::path &golden_path, const fs::path &cand_path,
          const contest::ArtifactTolerance &tol)
{
    contest::FigureArtifact golden;
    contest::FigureArtifact cand;
    if (!loadArtifact(golden_path, golden)
        || !loadArtifact(cand_path, cand))
        return -1;

    auto diffs = contest::diffArtifacts(golden, cand, tol);
    for (const auto &d : diffs)
        std::printf("%s: %s\n", golden_path.filename().string().c_str(),
                    d.c_str());
    return static_cast<int>(diffs.size());
}

} // namespace

int
main(int argc, char **argv)
{
    contest::ArtifactTolerance tol;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (arg == "--rtol" && i + 1 < argc) {
            tol.rtol = std::strtod(argv[++i], nullptr);
        } else if (arg == "--atol" && i + 1 < argc) {
            tol.atol = std::strtod(argv[++i], nullptr);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "artifact_diff: unknown option %s\n",
                         arg.c_str());
            printUsage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        printUsage(stderr);
        return 2;
    }

    fs::path golden{paths[0]};
    fs::path cand{paths[1]};
    std::error_code ec;
    bool golden_dir = fs::is_directory(golden, ec);
    bool cand_dir = fs::is_directory(cand, ec);
    if (golden_dir != cand_dir) {
        std::fprintf(stderr,
                     "artifact_diff: %s and %s must both be files or "
                     "both directories\n",
                     golden.string().c_str(), cand.string().c_str());
        return 2;
    }

    int total = 0;
    std::size_t compared = 0;
    if (!golden_dir) {
        int n = diffFiles(golden, cand, tol);
        if (n < 0)
            return 2;
        total = n;
        compared = 1;
    } else {
        std::vector<fs::path> goldens;
        for (const auto &entry : fs::directory_iterator(golden, ec)) {
            // SimTimeline.json is the suite's wall-clock timeline
            // export, not a FigureArtifact; skip it when an --out-dir
            // is compared directly against another run's.
            if (entry.path().extension() == ".json"
                && entry.path().filename() != "SimTimeline.json")
                goldens.push_back(entry.path());
        }
        if (ec) {
            std::fprintf(stderr, "artifact_diff: cannot list %s\n",
                         golden.string().c_str());
            return 2;
        }
        std::sort(goldens.begin(), goldens.end());
        if (goldens.empty()) {
            std::fprintf(stderr,
                         "artifact_diff: no *.json goldens in %s\n",
                         golden.string().c_str());
            return 2;
        }
        for (const auto &g : goldens) {
            fs::path c = cand / g.filename();
            if (!fs::exists(c, ec)) {
                std::printf("%s: missing from candidate dir %s\n",
                            g.filename().string().c_str(),
                            cand.string().c_str());
                ++total;
                continue;
            }
            int n = diffFiles(g, c, tol);
            if (n < 0)
                return 2;
            total += n;
            ++compared;
        }
    }

    if (total == 0) {
        std::printf("artifact_diff: %zu artifact(s) match "
                    "(rtol=%g atol=%g)\n",
                    compared, tol.rtol, tol.atol);
        return 0;
    }
    std::printf("artifact_diff: %d difference(s) across %zu "
                "artifact(s)\n",
                total, compared);
    return 1;
}
