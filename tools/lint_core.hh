/**
 * @file
 * Rule engine for contest_lint, the repo's own static-analysis pass.
 *
 * Header-only so the contest_lint binary and tests/test_lint.cc share
 * one implementation. The rules encode lessons this codebase already
 * paid for — most directly the unsigned-wrap subtraction behind the
 * original SyncStoreQueue::canAccept bug — as mechanical checks:
 *
 *  - bare-u64-quantity     time/cycle/sequence quantities must use
 *                          the Strong<> aliases from common/types.hh,
 *                          not bare uint64_t/int64_t
 *  - unsigned-sub          subtraction of two counters inside a
 *                          comparison must be parenthesized (i.e.
 *                          routed through Strong's checked operator-)
 *  - include-guard         headers guard with CONTEST_<PATH>_HH
 *  - naked-new             no raw `new`; owning code uses
 *                          make_unique/make_shared
 *  - panic-message         panic()/fatal() messages must name the
 *                          violated invariant, not just say "bad"
 *  - core-container        no std::deque / std::priority_queue in
 *                          src/core/: the per-tick hot path uses the
 *                          fixed-capacity RingBuffer and MinHeap
 *                          from common/
 *  - core-soa              no std::vector<bool> and no containers of
 *                          locally-defined per-entry structs (AoS) in
 *                          src/core/: hot state is parallel SoaVec
 *                          field arrays plus uint64 mask words
 *                          (DESIGN.md §13)
 *
 * The window-phase discipline rules (window-phase, unknown-call) —
 * the transitive successor of the old one-hop cross-core-mutation
 * regex — live in lint_callgraph.hh; the contest_lint binary runs
 * both engines.
 *
 * Any line (or its predecessor) may carry
 *     // contest-lint: allow(<rule>)
 * to suppress a single finding where the pattern is intentional, and
 * a file may opt out of one rule wholesale with
 *     // contest-lint: allow-file(<rule>)
 * anywhere in the file (by convention: in the header comment, with
 * the justification alongside). File-level waivers never leak into
 * other files.
 */

#ifndef CONTEST_TOOLS_LINT_CORE_HH
#define CONTEST_TOOLS_LINT_CORE_HH

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace contest::lint
{

/** One rule violation at a specific source line. */
struct Violation
{
    std::string file;
    std::size_t line = 0; //!< 1-based
    std::string rule;
    std::string message;
};

namespace detail
{

inline bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Blank out comments and string/char literals (preserving line
 * structure and length) so the rules below scan only real code.
 * Escape sequences inside literals are honored.
 */
inline std::string
stripCommentsAndStrings(const std::string &src)
{
    std::string out(src);
    enum class St { Code, Line, Block, Str, Chr } st = St::Code;
    for (std::size_t i = 0; i < src.size(); ++i) {
        char c = src[i];
        char n = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out[i] = ' ';
            } else if (c == '"') {
                st = St::Str;
            } else if (c == '\'') {
                // A quote between two alphanumerics is a digit
                // separator (1'000'000, 0xFF'FF), not a character
                // literal: treating it as one would swallow every
                // line up to the next quote and silently hide code
                // from all rules.
                const bool separator =
                    i > 0
                    && std::isalnum(
                        static_cast<unsigned char>(src[i - 1]))
                    && std::isalnum(static_cast<unsigned char>(n));
                if (!separator)
                    st = St::Chr;
            }
            break;
          case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                st = St::Code;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Str:
          case St::Chr:
            if (c == '\\' && n != '\0') {
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if ((st == St::Str && c == '"')
                       || (st == St::Chr && c == '\'')) {
                st = St::Code;
            } else {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

inline std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : s) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    lines.push_back(cur);
    return lines;
}

/** Is the finding on (1-based) @p line suppressed by an allow
 *  comment on the same or the preceding raw source line, or by a
 *  file-level allow-file waiver anywhere in the file? */
inline bool
allowed(const std::vector<std::string> &raw_lines, std::size_t line,
        const std::string &rule)
{
    const std::string needle = "contest-lint: allow(" + rule + ")";
    for (std::size_t l : {line, line - 1}) {
        if (l >= 1 && l <= raw_lines.size()
            && raw_lines[l - 1].find(needle) != std::string::npos)
            return true;
    }
    const std::string file_needle =
        "contest-lint: allow-file(" + rule + ")";
    for (const std::string &l : raw_lines)
        if (l.find(file_needle) != std::string::npos)
            return true;
    return false;
}

/** Does this identifier name a time/cycle/sequence quantity? */
inline bool
quantityName(const std::string &name)
{
    std::string low;
    for (char c : name)
        low += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    // "...Ps"/"..._ps" suffix means picoseconds; substrings cover
    // cycle/seq/period/latency spellings. Plain "steps"/"laps" etc.
    // end in "ps" only via an unrelated word, so require the
    // character before the suffix to be a separator or lower/upper
    // camel boundary ("Ps") in the original spelling.
    if (name.size() >= 2) {
        const std::string tail = name.substr(name.size() - 2);
        if (tail == "Ps" || name == "ps"
            || (name.size() >= 3 && tail == "ps"
                && name[name.size() - 3] == '_'))
            return true;
    }
    for (const char *part :
         {"cycle", "seq", "period", "latency", "timeps"})
        if (low.find(part) != std::string::npos)
            return true;
    return false;
}

/** First identifier after position @p pos in @p s. */
inline std::string
nextIdentifier(const std::string &s, std::size_t pos)
{
    while (pos < s.size() && !isIdentChar(s[pos]))
        ++pos;
    std::size_t b = pos;
    while (pos < s.size() && isIdentChar(s[pos]))
        ++pos;
    return s.substr(b, pos - b);
}

/** Token ending at (exclusive) @p end, walking identifier chars,
 *  []. and -> backwards; used to classify subtraction operands. */
inline std::string
operandEndingAt(const std::string &s, std::size_t end)
{
    std::size_t b = end;
    while (b > 0) {
        char c = s[b - 1];
        if (isIdentChar(c) || c == ']' || c == '[' || c == '.') {
            --b;
        } else if (b >= 2 && c == '>' && s[b - 2] == '-') {
            b -= 2;
        } else {
            break;
        }
    }
    return s.substr(b, end - b);
}

inline bool
identifierLike(const std::string &tok)
{
    if (tok.empty())
        return false;
    char c0 = tok[0];
    return isIdentChar(c0)
        && !std::isdigit(static_cast<unsigned char>(c0));
}

} // namespace detail

/**
 * Lint one file.
 *
 * @param path repo-relative path (used for include-guard naming and
 *        in the reported findings)
 * @param content full file content
 */
inline std::vector<Violation>
lintFile(const std::string &path, const std::string &content)
{
    using namespace detail;

    std::vector<Violation> out;
    const std::vector<std::string> raw = splitLines(content);
    const std::vector<std::string> code =
        splitLines(stripCommentsAndStrings(content));

    auto report = [&](std::size_t line, const char *rule,
                      std::string msg) {
        if (!allowed(raw, line, rule))
            out.push_back(Violation{path, line, rule, std::move(msg)});
    };

    const bool isTypesHeader =
        path == "src/common/types.hh" || path == "common/types.hh";

    // ---- bare-u64-quantity -------------------------------------
    if (!isTypesHeader) {
        for (std::size_t i = 0; i < code.size(); ++i) {
            const std::string &l = code[i];
            for (const char *tok : {"uint64_t", "int64_t"}) {
                std::size_t pos = 0;
                while ((pos = l.find(tok, pos)) != std::string::npos) {
                    // Require a token boundary so "int64_t" does not
                    // also match inside "uint64_t".
                    if (pos > 0 && isIdentChar(l[pos - 1])
                        && l[pos - 1] != ':') {
                        ++pos;
                        continue;
                    }
                    std::size_t after = pos + std::string(tok).size();
                    // Skip casts and template args: only flag
                    // declarations, i.e. the token followed by an
                    // identifier.
                    std::string name = nextIdentifier(l, after);
                    if (quantityName(name))
                        report(i + 1, "bare-u64-quantity",
                               "'" + name + "' looks like a "
                               "time/cycle/sequence quantity; use the "
                               "Strong<> aliases from "
                               "common/types.hh");
                    pos = after;
                }
            }
        }
    }

    // ---- unsigned-sub ------------------------------------------
    // Flag `a - b < c`-style comparisons where the subtraction of
    // two identifier-like operands is not parenthesized: the wrap
    // happens before the comparison ever sees it. Routing the
    // subtraction through a Strong<> quantity (whose checked
    // operator- panics on wrap in debug builds) or parenthesizing
    // to show intent both silence the rule.
    for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string &l = code[i];
        for (std::size_t p = 0; p + 1 < l.size(); ++p) {
            char c = l[p];
            if ((c != '<' && c != '>') || p == 0)
                continue;
            if (l[p - 1] == '<' || l[p - 1] == '>' || l[p - 1] == '-')
                continue; // <<, >>, ->
            if (l[p + 1] == '<' || l[p + 1] == '>')
                continue;
            // Walk left from the comparison collecting the LHS up
            // to an expression boundary at paren depth 0.
            int depth = 0;
            bool sub_at_top = false;
            std::size_t q = p;
            while (q > 0) {
                char b = l[q - 1];
                if (b == '>' && q >= 2 && l[q - 2] == '-') {
                    q -= 2; // member arrow, not a comparison/minus
                    continue;
                }
                if (b == ')') {
                    ++depth;
                } else if (b == '(') {
                    if (depth == 0)
                        break;
                    --depth;
                } else if (depth == 0
                           && (b == ',' || b == ';' || b == '='
                               || b == '&' || b == '|' || b == '?'
                               || b == ':' || b == '{')) {
                    break;
                } else if (depth == 0 && b == '-' && q >= 2
                           && l[q - 2] != '-' && l[q - 2] != '(') {
                    // candidate subtraction; classify operands
                    std::size_t lhs_end = q - 1;
                    while (lhs_end > 0 && l[lhs_end - 1] == ' ')
                        --lhs_end;
                    std::string lhs = operandEndingAt(l, lhs_end);
                    std::string rhs =
                        nextIdentifier(l, q);
                    if (identifierLike(lhs) && identifierLike(rhs)) {
                        sub_at_top = true;
                        break;
                    }
                }
                --q;
            }
            if (sub_at_top)
                report(i + 1, "unsigned-sub",
                       "unparenthesized counter subtraction feeding "
                       "a comparison wraps below zero on unsigned "
                       "types; parenthesize or use a Strong<> "
                       "quantity with checked subtraction");
        }
    }

    // ---- include-guard -----------------------------------------
    if (path.size() > 3
        && path.compare(path.size() - 3, 3, ".hh") == 0) {
        std::string rel = path;
        if (rel.rfind("src/", 0) == 0)
            rel = rel.substr(4);
        std::vector<std::string> tokens;
        std::string cur;
        for (char c : rel) {
            if (c == '/' || c == '.' || c == '_') {
                if (!cur.empty())
                    tokens.push_back(cur);
                cur.clear();
            } else {
                cur += static_cast<char>(
                    std::toupper(static_cast<unsigned char>(c)));
            }
        }
        if (!cur.empty())
            tokens.push_back(cur);
        if (!tokens.empty() && tokens.back() == "HH")
            tokens.pop_back();
        auto join = [](const std::vector<std::string> &ts) {
            std::string g = "CONTEST";
            for (const auto &t : ts)
                g += "_" + t;
            return g + "_HH";
        };
        // Adjacent duplicate path tokens may collapse
        // (bench/bench_common.hh guards as CONTEST_BENCH_COMMON_HH).
        std::vector<std::string> collapsed;
        for (const auto &t : tokens)
            if (collapsed.empty() || collapsed.back() != t)
                collapsed.push_back(t);
        const std::string exact = join(tokens);
        const std::string loose = join(collapsed);

        std::string guard;
        std::size_t guard_line = 0;
        for (std::size_t i = 0; i < code.size(); ++i) {
            std::size_t pos = code[i].find("#ifndef");
            if (pos != std::string::npos) {
                guard = nextIdentifier(code[i], pos + 7);
                guard_line = i + 1;
                break;
            }
        }
        if (guard.empty())
            report(1, "include-guard",
                   "header has no include guard; expected #ifndef "
                       + exact);
        else if (guard != exact && guard != loose)
            report(guard_line, "include-guard",
                   "include guard '" + guard + "' should be '" + exact
                       + "'");
    }

    // ---- naked-new ---------------------------------------------
    for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string &l = code[i];
        // Preprocessor lines cannot hold a new-expression (the
        // header <new> is the classic false positive).
        const std::size_t first = l.find_first_not_of(" \t");
        if (first != std::string::npos && l[first] == '#')
            continue;
        std::size_t pos = 0;
        while ((pos = l.find("new", pos)) != std::string::npos) {
            bool word_start = pos == 0 || !isIdentChar(l[pos - 1]);
            bool word_end =
                pos + 3 >= l.size() || !isIdentChar(l[pos + 3]);
            // `operator new` — an overload definition or a direct
            // allocator-internals call — is not a new-expression;
            // the rule targets owning `new T(...)`.
            std::size_t back = pos;
            while (back > 0 && std::isspace(
                                   static_cast<unsigned char>(
                                       l[back - 1])))
                --back;
            const bool after_operator =
                back >= 8 && l.compare(back - 8, 8, "operator") == 0
                && (back == 8 || !isIdentChar(l[back - 9]));
            if (word_start && word_end && !after_operator)
                report(i + 1, "naked-new",
                       "raw 'new' expression; use std::make_unique / "
                       "std::make_shared so ownership is explicit");
            pos += 3;
        }
    }

    // ---- core-container ----------------------------------------
    // The OooCore hot path was rebuilt on the fixed-capacity
    // RingBuffer and the non-shrinking MinHeap (common/) precisely
    // because node-based std::deque and std::priority_queue's
    // allocation churn dominated the per-tick constants. New uses
    // in src/core/ need an explicit allow-comment with the reason.
    if (path.rfind("src/core/", 0) == 0
        || path.rfind("core/", 0) == 0) {
        for (std::size_t i = 0; i < code.size(); ++i) {
            const std::string &l = code[i];
            for (const char *tok :
                 {"std::deque<", "std::priority_queue<"}) {
                if (l.find(tok) != std::string::npos)
                    report(i + 1, "core-container",
                           std::string(tok)
                               + "...> on the core hot path; use "
                                 "RingBuffer / MinHeap from common/ "
                                 "(fixed capacity, no per-tick "
                                 "allocation)");
            }
        }
    }

    // ---- core-soa ----------------------------------------------
    // The SoA refactor (DESIGN.md §13) replaced the per-entry
    // RobEntry/IqSlot structs with parallel packed field arrays and
    // mask words. Reintroducing an array-of-structs for hot state —
    // a std::vector/SoaVec of a struct defined in the same file — or
    // the bit-proxy std::vector<bool> silently undoes the layout.
    // Intentional cold-path uses carry an allow-comment.
    if (path.rfind("src/core/", 0) == 0
        || path.rfind("core/", 0) == 0) {
        // Struct/class types defined in this file (skipping forward
        // declarations): containers of these are per-entry records.
        std::vector<std::string> localStructs;
        for (const std::string &l : code) {
            for (const char *kw : {"struct", "class"}) {
                std::size_t pos = 0;
                const std::size_t kwLen = std::string(kw).size();
                while ((pos = l.find(kw, pos)) != std::string::npos) {
                    const bool ws = pos == 0 || !isIdentChar(l[pos - 1]);
                    const bool we = pos + kwLen >= l.size()
                        || !isIdentChar(l[pos + kwLen]);
                    if (!ws || !we) {
                        pos += kwLen;
                        continue;
                    }
                    const std::string name =
                        nextIdentifier(l, pos + kwLen);
                    std::size_t after = l.find(name, pos + kwLen);
                    after = after == std::string::npos
                        ? l.size() : after + name.size();
                    while (after < l.size() && l[after] == ' ')
                        ++after;
                    // `struct X;` forward-declares; anything else
                    // (brace, base list, end of line) defines.
                    if (!name.empty()
                        && (after >= l.size() || l[after] != ';'))
                        localStructs.push_back(name);
                    pos += kwLen;
                }
            }
        }
        for (std::size_t i = 0; i < code.size(); ++i) {
            const std::string &l = code[i];
            if (l.find("std::vector<bool>") != std::string::npos)
                report(i + 1, "core-soa",
                       "std::vector<bool> on the core hot path; use "
                       "SoaVec<uint64_t> mask words with "
                       "bitSet/bitTest/scanBits");
            for (const char *tpl : {"std::vector<", "SoaVec<"}) {
                std::size_t pos = 0;
                while ((pos = l.find(tpl, pos)) != std::string::npos) {
                    if (pos > 0 && isIdentChar(l[pos - 1])) {
                        ++pos;
                        continue;
                    }
                    const std::size_t open =
                        pos + std::string(tpl).size();
                    const std::string elem = nextIdentifier(l, open);
                    for (const std::string &s : localStructs)
                        if (elem == s)
                            report(i + 1, "core-soa",
                                   "container of per-entry struct '"
                                       + elem + "' (AoS) on the core "
                                     "hot path; split the struct into "
                                     "parallel SoaVec field arrays "
                                     "(DESIGN.md §13)");
                    pos = open;
                }
            }
        }
    }

    // ---- panic-message -----------------------------------------
    // A panic/fatal message must state the violated invariant. The
    // proxy: the format string carries at least three words and 16
    // characters ("bad" and "oops" do not survive review by tool).
    for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string &l = code[i];
        for (const char *fn :
             {"panic(", "panic_if(", "fatal(", "fatal_if("}) {
            std::size_t pos = 0;
            while ((pos = l.find(fn, pos)) != std::string::npos) {
                if (pos > 0 && isIdentChar(l[pos - 1])) {
                    ++pos;
                    continue;
                }
                // Find the first string literal in the raw source
                // within the next few lines (arguments may wrap).
                std::string msg;
                bool found = false;
                for (std::size_t j = i;
                     j < raw.size() && j < i + 4 && !found; ++j) {
                    const std::string &rl = raw[j];
                    std::size_t b =
                        rl.find('"', j == i ? pos : 0);
                    while (b != std::string::npos) {
                        std::size_t e = b + 1;
                        while (e < rl.size()
                               && (rl[e] != '"'
                                   || rl[e - 1] == '\\'))
                            ++e;
                        if (e < rl.size()) {
                            msg = rl.substr(b + 1, e - b - 1);
                            found = true;
                        }
                        break;
                    }
                }
                if (found) {
                    std::size_t words = 0;
                    bool in_word = false;
                    for (char c : msg) {
                        if (c == ' ') {
                            in_word = false;
                        } else if (!in_word) {
                            in_word = true;
                            ++words;
                        }
                    }
                    if (msg.size() < 16 || words < 3)
                        report(i + 1, "panic-message",
                               "panic/fatal message \"" + msg
                                   + "\" does not name the violated "
                                     "invariant");
                }
                ++pos;
            }
        }
    }

    return out;
}

} // namespace contest::lint

#endif // CONTEST_TOOLS_LINT_CORE_HH
