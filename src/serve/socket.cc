#include "serve/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace contest
{

namespace
{

void
setError(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what + ": " + std::strerror(errno);
}

/** Fill a sockaddr_un; false when the path does not fit. */
bool
unixAddress(const std::string &path, sockaddr_un &addr,
            std::string *error)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
            *error = "unix socket path '" + path + "' exceeds "
                     + std::to_string(sizeof(addr.sun_path) - 1)
                     + " bytes";
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

void
tcpAddress(int port, sockaddr_in &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    // Loopback only: the daemon speaks an unauthenticated protocol,
    // so it must never listen on an external interface.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
}

} // namespace

std::string
ServeTarget::describe() const
{
    if (!unixPath.empty())
        return "unix:" + unixPath;
    return "tcp:127.0.0.1:" + std::to_string(port);
}

int
listenOn(ServeTarget &target, std::string *error)
{
    if (!target.unixPath.empty()) {
        sockaddr_un addr{};
        if (!unixAddress(target.unixPath, addr, error))
            return -1;
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            setError(error, "socket(AF_UNIX)");
            return -1;
        }
        ::unlink(target.unixPath.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            setError(error, "bind('" + target.unixPath + "')");
            closeFd(fd);
            return -1;
        }
        if (::listen(fd, 64) != 0) {
            setError(error, "listen('" + target.unixPath + "')");
            closeFd(fd);
            return -1;
        }
        return fd;
    }

    sockaddr_in addr{};
    tcpAddress(target.port, addr);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, "socket(AF_INET)");
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error,
                 "bind(127.0.0.1:" + std::to_string(target.port)
                     + ")");
        closeFd(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        setError(error, "listen(tcp)");
        closeFd(fd);
        return -1;
    }
    // Resolve an ephemeral bind so callers can report (and clients
    // reach) the actual port.
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len)
        == 0)
        target.port = ntohs(addr.sin_port);
    return fd;
}

int
connectTo(const ServeTarget &target, std::string *error)
{
    if (!target.unixPath.empty()) {
        sockaddr_un addr{};
        if (!unixAddress(target.unixPath, addr, error))
            return -1;
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            setError(error, "socket(AF_UNIX)");
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            setError(error, "connect('" + target.unixPath + "')");
            closeFd(fd);
            return -1;
        }
        return fd;
    }

    sockaddr_in addr{};
    tcpAddress(target.port, addr);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, "socket(AF_INET)");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error,
                 "connect(127.0.0.1:" + std::to_string(target.port)
                     + ")");
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
acceptClient(int listen_fd)
{
    return ::accept(listen_fd, nullptr, nullptr);
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
recvFrame(int fd, FrameDecoder &decoder, std::string &payload,
          std::string *error)
{
    for (;;) {
        switch (decoder.next(payload)) {
          case FrameDecoder::Status::Frame:
            return true;
          case FrameDecoder::Status::Oversized:
            if (error != nullptr)
                *error = "oversized frame (length prefix above "
                         + std::to_string(kMaxFramePayload)
                         + " bytes)";
            return false;
          case FrameDecoder::Status::NeedMore:
            break;
        }
        char buf[65536];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n == 0) {
            if (error != nullptr)
                *error = "connection closed by peer";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "recv");
            return false;
        }
        decoder.feed(buf, static_cast<std::size_t>(n));
    }
}

} // namespace contest
