#include "serve/protocol.hh"

#include <cmath>

#include "core/palette.hh"
#include "trace/profile.hh"

namespace contest
{

namespace
{

/** The string member @p key, or false with @p error filled. */
bool
stringField(const JsonValue &doc, const std::string &key,
            std::string &out, std::string &error)
{
    const JsonValue *v = doc.find(key);
    if (v == nullptr || !v->isString()) {
        error = "request field '" + key + "' must be a string";
        return false;
    }
    out = v->asString();
    return true;
}

/** An optional non-negative integer member @p key (absent leaves
 *  @p out untouched). */
bool
u64Field(const JsonValue &doc, const std::string &key,
         std::uint64_t &out, std::string &error)
{
    const JsonValue *v = doc.find(key);
    if (v == nullptr)
        return true;
    if (!v->isNumber()) {
        error = "request field '" + key + "' must be a number";
        return false;
    }
    const double d = v->asNumber();
    if (!(d >= 0) || d != std::floor(d) || d > 9e15) {
        error = "request field '" + key
                + "' must be a non-negative integer";
        return false;
    }
    out = static_cast<std::uint64_t>(d);
    return true;
}

bool
knownBench(const std::string &name)
{
    for (const std::string &b : profileNames())
        if (b == name)
            return true;
    return false;
}

bool
knownCore(const std::string &name)
{
    for (const CoreConfig &c : appendixAPalette())
        if (c.name == name)
            return true;
    return false;
}

/** Validate a benchmark name against the trace profiles. */
bool
checkBench(const std::string &name, std::string &error)
{
    if (knownBench(name))
        return true;
    error = "unknown benchmark '" + name
            + "' (not a synthetic trace profile)";
    return false;
}

/** Validate a core-type name against the Appendix A palette. */
bool
checkCore(const std::string &name, std::string &error)
{
    if (knownCore(name))
        return true;
    error = "unknown core type '" + name
            + "' (not in the Appendix A palette)";
    return false;
}

} // namespace

bool
parseServeRequest(const JsonValue &doc, ServeRequest &out,
                  std::string &error)
{
    if (!doc.isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    if (const JsonValue *id = doc.find("id"))
        out.id = *id;

    std::string kind;
    if (!stringField(doc, "kind", kind, error))
        return false;

    if (kind == "ping") {
        out.kind = ServeRequest::Kind::Ping;
        return true;
    }
    if (kind == "stats") {
        out.kind = ServeRequest::Kind::Stats;
        return true;
    }
    if (kind == "shutdown") {
        out.kind = ServeRequest::Kind::Shutdown;
        return true;
    }

    if (kind == "single") {
        out.kind = ServeRequest::Kind::Single;
        if (!stringField(doc, "bench", out.bench, error)
            || !checkBench(out.bench, error))
            return false;
        if (!stringField(doc, "core", out.core, error)
            || !checkCore(out.core, error))
            return false;
        return true;
    }

    if (kind == "contest") {
        out.kind = ServeRequest::Kind::Contest;
        if (!stringField(doc, "bench", out.bench, error)
            || !checkBench(out.bench, error))
            return false;
        const JsonValue *cores = doc.find("cores");
        if (cores == nullptr || !cores->isArray()) {
            error = "request field 'cores' must be an array of "
                    "core-type names";
            return false;
        }
        if (cores->size() < 2
            || cores->size() > ServeRequest::maxContestCores) {
            error = "a contest needs between 2 and "
                    + std::to_string(ServeRequest::maxContestCores)
                    + " cores, got " + std::to_string(cores->size());
            return false;
        }
        for (const JsonValue &c : cores->elements()) {
            if (!c.isString()) {
                error = "every entry of 'cores' must be a core-type "
                        "name string";
                return false;
            }
            if (!checkCore(c.asString(), error))
                return false;
            out.cores.push_back(c.asString());
        }
        if (!u64Field(doc, "trace_len", out.traceLenOverride, error))
            return false;
        if (out.traceLenOverride > ServeRequest::maxTraceLenOverride) {
            error = "'trace_len' of "
                    + std::to_string(out.traceLenOverride)
                    + " exceeds the per-request limit of "
                    + std::to_string(ServeRequest::maxTraceLenOverride);
            return false;
        }
        return true;
    }

    if (kind == "experiment") {
        out.kind = ServeRequest::Kind::Experiment;
        if (!stringField(doc, "name", out.experiment, error))
            return false;
        // The registry is checked by the server (it owns the
        // in-suite restriction), not here.
        return true;
    }

    if (kind == "sleep") {
        out.kind = ServeRequest::Kind::Sleep;
        if (!u64Field(doc, "ms", out.sleepMs, error))
            return false;
        if (out.sleepMs > ServeRequest::maxSleepMs) {
            error = "'ms' of " + std::to_string(out.sleepMs)
                    + " exceeds the sleep limit of "
                    + std::to_string(ServeRequest::maxSleepMs);
            return false;
        }
        return true;
    }

    error = "unknown request kind '" + kind + "'";
    return false;
}

const char *
serveKindName(ServeRequest::Kind kind)
{
    switch (kind) {
      case ServeRequest::Kind::Ping:
        return "ping";
      case ServeRequest::Kind::Stats:
        return "stats";
      case ServeRequest::Kind::Shutdown:
        return "shutdown";
      case ServeRequest::Kind::Single:
        return "single";
      case ServeRequest::Kind::Contest:
        return "contest";
      case ServeRequest::Kind::Experiment:
        return "experiment";
      case ServeRequest::Kind::Sleep:
        return "sleep";
    }
    return "unknown";
}

JsonValue
serveOkResponse(const ServeRequest &req)
{
    JsonValue resp = JsonValue::object();
    resp.set("id", req.id);
    resp.set("ok", JsonValue::boolean(true));
    resp.set("kind", JsonValue::str(serveKindName(req.kind)));
    return resp;
}

JsonValue
serveErrorResponse(const JsonValue &id, const std::string &message)
{
    JsonValue resp = JsonValue::object();
    resp.set("id", id);
    resp.set("ok", JsonValue::boolean(false));
    resp.set("error", JsonValue::str(message));
    return resp;
}

} // namespace contest
