#include "serve/client.hh"

namespace contest
{

bool
ServeClient::connect(const ServeTarget &target, std::string *error)
{
    close();
    fd = connectTo(target, error);
    return fd >= 0;
}

bool
ServeClient::send(const JsonValue &request, std::string *error)
{
    if (fd < 0) {
        if (error != nullptr)
            *error = "not connected to a contest service";
        return false;
    }
    if (!sendAll(fd, encodeFrame(request.dump(0)))) {
        if (error != nullptr)
            *error = "send failed (connection lost)";
        close();
        return false;
    }
    return true;
}

bool
ServeClient::recv(JsonValue &response, std::string *error)
{
    if (fd < 0) {
        if (error != nullptr)
            *error = "not connected to a contest service";
        return false;
    }
    std::string payload;
    if (!recvFrame(fd, decoder, payload, error)) {
        close();
        return false;
    }
    std::string parseError;
    response = JsonValue::parse(payload, &parseError);
    if (!parseError.empty()) {
        if (error != nullptr)
            *error = "invalid JSON from server: " + parseError;
        return false;
    }
    return true;
}

bool
ServeClient::call(const JsonValue &request, JsonValue &response,
                  std::string *error)
{
    return send(request, error) && recv(response, error);
}

void
ServeClient::close()
{
    closeFd(fd);
    fd = -1;
    decoder = FrameDecoder();
}

} // namespace contest
