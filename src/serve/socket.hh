/**
 * @file
 * Thin POSIX socket helpers for the contest service: Unix-domain and
 * loopback-TCP listeners, client connects, and frame-aware send and
 * receive loops that tolerate partial reads and writes. Everything
 * reports failures through an error string — never panic/fatal —
 * because every caller is either the long-lived daemon (which must
 * survive any peer behaviour) or a client with a user to talk to.
 */

#ifndef CONTEST_SERVE_SOCKET_HH
#define CONTEST_SERVE_SOCKET_HH

#include <string>

#include "serve/frame.hh"

namespace contest
{

/** Where a server listens or a client connects: a Unix socket path
 *  when unixPath is non-empty, else 127.0.0.1:port. */
struct ServeTarget
{
    std::string unixPath;
    int port = -1;

    bool valid() const { return !unixPath.empty() || port >= 0; }

    /** "unix:<path>" or "tcp:127.0.0.1:<port>" for messages. */
    std::string describe() const;
};

/**
 * Bind and listen on @p target. A pre-existing socket file at a Unix
 * path is unlinked first (a stale file from a killed daemon would
 * otherwise make the address unbindable). TCP port 0 binds an
 * ephemeral port; the bound port is written back to
 * @p target.port.
 *
 * @return the listening fd, or -1 with @p error filled
 */
int listenOn(ServeTarget &target, std::string *error);

/** Connect to @p target. @return fd, or -1 with @p error filled. */
int connectTo(const ServeTarget &target, std::string *error);

/** Accept one client; -1 on failure (including EINTR). */
int acceptClient(int listen_fd);

/** Best-effort close (ignores errors; -1 fds are skipped). */
void closeFd(int fd);

/** Write all of @p data, looping over partial writes and EINTR.
 *  SIGPIPE is suppressed (a vanished peer must not kill the
 *  daemon). @return false on any unrecoverable write error. */
bool sendAll(int fd, const std::string &data);

/**
 * Read until @p decoder yields one complete frame; the payload goes
 * to @p payload. Extra bytes (pipelined frames) stay buffered in the
 * decoder for the next call.
 *
 * @return false on EOF, read error, or an oversized frame, with
 *         @p error describing which
 */
bool recvFrame(int fd, FrameDecoder &decoder, std::string &payload,
               std::string *error);

} // namespace contest

#endif // CONTEST_SERVE_SOCKET_HH
