/**
 * @file
 * Minimal blocking client for the contest service: connect to a
 * ServeTarget, send one JSON request per call, read one JSON
 * response. Shared by the contest_load generator, the serving
 * benchmark, and the protocol tests. All failures come back as
 * error strings — a vanished or misbehaving server must never
 * panic the client.
 */

#ifndef CONTEST_SERVE_CLIENT_HH
#define CONTEST_SERVE_CLIENT_HH

#include <string>

#include "common/json.hh"
#include "serve/frame.hh"
#include "serve/socket.hh"

namespace contest
{

/** One blocking connection to a contest service. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient() { close(); }

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect; @return false with @p error filled. */
    bool connect(const ServeTarget &target, std::string *error);

    /** Whether connect() succeeded and no I/O error occurred. */
    bool connected() const { return fd >= 0; }

    /** Send one request document (framed, compact). */
    bool send(const JsonValue &request, std::string *error);

    /** Receive one response document. */
    bool recv(JsonValue &response, std::string *error);

    /** send() then recv(): one synchronous round-trip. */
    bool call(const JsonValue &request, JsonValue &response,
              std::string *error);

    /** Close the connection (idempotent). */
    void close();

    /** The raw fd (tests poke partial writes through it). */
    int rawFd() const { return fd; }

  private:
    int fd = -1;
    FrameDecoder decoder;
};

} // namespace contest

#endif // CONTEST_SERVE_CLIENT_HH
