/**
 * @file
 * Request/response schema of the contest service protocol.
 *
 * One frame carries one JSON object. Requests:
 *
 *   {"kind": "ping",     "id": <any>}
 *   {"kind": "stats",    "id": <any>}
 *   {"kind": "shutdown", "id": <any>}
 *   {"kind": "single",   "id": <any>, "bench": "gcc", "core": "twolf"}
 *   {"kind": "contest",  "id": <any>, "bench": "gcc",
 *    "cores": ["gcc", "twolf"], "trace_len": 40000}
 *   {"kind": "experiment", "id": <any>, "name": "fig06"}
 *   {"kind": "sleep",    "id": <any>, "ms": 250}
 *
 * "id" is optional and echoed verbatim in the response, so clients
 * may pipeline requests and match replies. Responses carry
 * {"ok": true, "kind": ..., ...} or {"ok": false, "error": "..."}.
 *
 * Parsing is strictly non-fatal: the daemon feeds this code
 * untrusted bytes, so every malformed request — wrong types, unknown
 * kinds, unknown benchmark or core names, out-of-range knobs — comes
 * back as (false, error string), never a panic or abort.
 */

#ifndef CONTEST_SERVE_PROTOCOL_HH
#define CONTEST_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace contest
{

/** One validated request. */
struct ServeRequest
{
    enum class Kind
    {
        Ping,       //!< liveness probe; answered inline
        Stats,      //!< telemetry snapshot; answered inline
        Shutdown,   //!< graceful drain; acked after in-flight work
        Single,     //!< one benchmark on one core type
        Contest,    //!< an N-way contested run
        Experiment, //!< a registered suite experiment by name
        Sleep,      //!< hold a worker for a bounded time (drain tests)
    };

    Kind kind = Kind::Ping;
    /** Echoed verbatim in the response (null when absent). */
    JsonValue id;
    std::string bench;              //!< single, contest
    std::string core;               //!< single
    std::vector<std::string> cores; //!< contest, 2..maxContestCores
    std::uint64_t traceLenOverride = 0; //!< contest; 0 = server's
    std::string experiment;             //!< experiment
    std::uint64_t sleepMs = 0;          //!< sleep

    /** Most cores one contest request may name. */
    static constexpr std::size_t maxContestCores = 8;
    /** Largest per-request trace-length override (bounds the memory
     *  and time one request can demand). */
    static constexpr std::uint64_t maxTraceLenOverride = 4'000'000;
    /** Longest accepted sleep request. */
    static constexpr std::uint64_t maxSleepMs = 10'000;
};

/**
 * Parse and validate one request document. Benchmark and core names
 * are checked against the trace profiles and the Appendix A palette
 * so a typo can never reach the (fatal-on-unknown-name) simulation
 * layers.
 *
 * @return false with @p error filled on any problem
 */
bool parseServeRequest(const JsonValue &doc, ServeRequest &out,
                       std::string &error);

/** The wire name of a request kind (e.g. "contest"). */
const char *serveKindName(ServeRequest::Kind kind);

/** A response skeleton: {"id": ..., "ok": true, "kind": ...}. */
JsonValue serveOkResponse(const ServeRequest &req);

/** An error response: {"id": ..., "ok": false, "error": ...}.
 *  @p id may be null (pass a null JsonValue when the request never
 *  parsed far enough to have one). */
JsonValue serveErrorResponse(const JsonValue &id,
                             const std::string &message);

} // namespace contest

#endif // CONTEST_SERVE_PROTOCOL_HH
