/**
 * @file
 * The contest service: a long-lived server that keeps the core
 * palette, the synthetic traces, the Runner's memo tables, and the
 * on-disk result cache hot in one process and serves simulation,
 * contest, and experiment requests over a Unix or loopback-TCP
 * socket.
 *
 * Threading model, in order of a request's life:
 *
 *  - an accept thread poll()s the listening socket (and a self-pipe
 *    used for shutdown wakeup) and spawns one reader thread per
 *    connection;
 *  - the reader decodes frames, parses and validates the request,
 *    answers ping/stats/shutdown inline, and pushes simulation work
 *    into a bounded admission queue (blocking the connection — not
 *    the server — when the queue is full);
 *  - a dispatcher thread drains the admission queue in batches and
 *    posts each request into the ThreadPool, whose `--jobs` workers
 *    execute simulations through the shared Runner (memoized, disk
 *    cached);
 *  - the worker writes the response back under the connection's
 *    write mutex, so responses from concurrent requests interleave
 *    per frame, never mid-frame.
 *
 * Graceful drain (SIGTERM or a `shutdown` request): stop accepting,
 * refuse new work with a structured error, flush the admission
 * queue, wait for in-flight simulations, ack the shutdown
 * request(s), then close every connection. requestShutdown() is
 * async-signal-safe: it performs one atomic store and one pipe
 * write; all condition-variable traffic happens on ordinary threads.
 */

#ifndef CONTEST_SERVE_SERVER_HH
#define CONTEST_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "harness/result_cache.hh"
#include "harness/runner.hh"
#include "harness/sim_timeline.hh"
#include "serve/protocol.hh"
#include "serve/socket.hh"

namespace contest
{

/** Configuration of one ContestServer. */
struct ServeOptions
{
    /** Where to listen (unix path, or loopback TCP; port 0 binds an
     *  ephemeral port readable from target() after start). */
    ServeTarget target;
    /** Simulation workers (the `--jobs` budget). */
    unsigned jobs = 1;
    /** Instructions per synthetic benchmark trace. */
    std::uint64_t traceLen = 400'000;
    /** Workload generation seed. */
    std::uint64_t seed = 2009;
    /** Persistent result-cache directory; empty disables it. */
    std::string cacheDir;
    /** Admission-queue depth; readers block once it is full. */
    std::size_t admissionDepth = 64;
    /** Suppress the startup/shutdown log lines (tests). */
    bool quiet = false;
};

/** The long-lived contest service. */
class ContestServer
{
  public:
    explicit ContestServer(ServeOptions options);
    ~ContestServer();

    ContestServer(const ContestServer &) = delete;
    ContestServer &operator=(const ContestServer &) = delete;

    /**
     * Bind the listening socket and launch the accept and dispatcher
     * threads. @return false with @p error filled when the socket
     * cannot be bound.
     */
    bool start(std::string *error);

    /** The resolved listen target (ephemeral TCP ports filled in);
     *  valid after start(). */
    const ServeTarget &target() const { return opts.target; }

    /**
     * Begin a graceful drain. Async-signal-safe (one atomic store
     * plus one self-pipe write), so a SIGTERM handler may call it
     * directly. Idempotent.
     */
    void requestShutdown();

    /** Block until the drain completes and every thread has been
     *  joined. Returns immediately if start() was never called. */
    void waitUntilStopped();

    /** The shared runner (exposed so in-process harnesses can check
     *  simulation counters without a stats round-trip). */
    Runner &runner() { return *runner_; }

  private:
    /** One client connection. open flips false on read error, EOF,
     *  or drain; the write mutex keeps frames from interleaving. */
    struct Connection
    {
        int fd = -1;
        std::mutex writeMu;
        std::atomic<bool> open{true};
    };
    using ConnPtr = std::shared_ptr<Connection>;

    /** One admitted unit of simulation work. */
    struct Job
    {
        ConnPtr conn;
        ServeRequest req;
        SimTimeline::Clock::time_point queuedAt;
    };

    void acceptLoop();
    void dispatcherLoop();
    void readerLoop(ConnPtr conn);
    void handleFrame(const ConnPtr &conn, const std::string &payload);
    /** Enqueue a simulation request, or refuse it while draining. */
    void admit(const ConnPtr &conn, ServeRequest req);
    /** Execute one admitted job on a pool worker. */
    void execute(const Job &job);
    void respond(const ConnPtr &conn, const JsonValue &resp);
    JsonValue statsJson(const ServeRequest &req);
    /** True when @p key was dispatched before (and marks it seen). */
    bool warmKey(const std::string &key);
    /** Run the drain protocol; called by the accept thread once
     *  draining is observed. */
    void drainAndStop();

    ServeOptions opts;
    /** opts.jobs + 1 so the dispatcher thread, which posts but never
     *  executes, leaves opts.jobs dedicated simulation workers. */
    ThreadPool pool;
    std::unique_ptr<ResultCache> cache;
    SimTimeline timeline;
    std::unique_ptr<Runner> runner_;

    int listenFd = -1;
    int wakePipe[2] = {-1, -1};
    std::atomic<bool> draining{false};
    bool started = false;

    std::thread acceptThread;
    std::thread dispatcherThread;

    std::mutex connMu;
    std::vector<ConnPtr> connections;
    std::vector<std::thread> readerThreads;

    std::mutex qMu;
    std::condition_variable qCv;      //!< dispatcher waits for work
    std::condition_variable spaceCv;  //!< readers wait for room
    std::deque<Job> queue;

    std::mutex inFlightMu;
    std::condition_variable inFlightCv;
    std::size_t inFlight = 0;

    std::mutex seenMu;
    std::unordered_set<std::string> seenKeys;

    /** Connections owed a shutdown ack (sent after the drain). */
    std::mutex ackMu;
    std::vector<std::pair<ConnPtr, JsonValue>> shutdownAcks;

    /** @name Telemetry (reported by `stats`) */
    /** @{ */
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> requestsTotal{0};
    std::atomic<std::uint64_t> requestsOk{0};
    std::atomic<std::uint64_t> requestsFailed{0};
    std::atomic<std::uint64_t> requestsRefused{0};
    std::atomic<std::uint64_t> warmHits{0};
    std::atomic<std::uint64_t> admissionBatches{0};
    std::atomic<std::uint64_t> maxBatch{0};
    /** @} */
};

} // namespace contest

#endif // CONTEST_SERVE_SERVER_HH
