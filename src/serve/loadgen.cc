#include "serve/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "common/json.hh"
#include "common/rng.hh"
#include "serve/client.hh"

namespace contest
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Read the server's executed-simulation counters via `stats`. */
bool
probeSims(const ServeTarget &target, std::uint64_t &singles,
          std::uint64_t &contests, std::string *error)
{
    ServeClient client;
    if (!client.connect(target, error))
        return false;
    JsonValue req = JsonValue::object();
    req.set("kind", JsonValue::str("stats"));
    JsonValue resp;
    if (!client.call(req, resp, error))
        return false;
    if (!resp.isObject()) {
        if (error != nullptr)
            *error = "stats response is not a JSON object";
        return false;
    }
    const JsonValue *server = resp.find("server");
    const JsonValue *sims =
        server != nullptr && server->isObject()
            ? server->find("sims")
            : nullptr;
    if (sims == nullptr || !sims->isObject()) {
        if (error != nullptr)
            *error = "stats response lacks server.sims counters";
        return false;
    }
    const JsonValue *s = sims->find("singles_executed");
    const JsonValue *c = sims->find("contests_executed");
    if (s == nullptr || !s->isNumber() || c == nullptr
        || !c->isNumber()) {
        if (error != nullptr)
            *error = "stats response lacks executed-sim counts";
        return false;
    }
    singles = static_cast<std::uint64_t>(s->asNumber());
    contests = static_cast<std::uint64_t>(c->asNumber());
    return true;
}

/** Outcome of one client thread. */
struct ClientTally
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t warm = 0;
    std::vector<double> latencyMs;
};

/** Build the @p k-th request of @p client's deterministic stream. */
JsonValue
mixRequest(const LoadSpec &spec, Rng &rng)
{
    JsonValue req = JsonValue::object();
    const std::string &bench =
        spec.benches[rng.below(spec.benches.size())];
    if (spec.cores.size() >= 2 && rng.chance(spec.contestFraction)) {
        req.set("kind", JsonValue::str("contest"));
        req.set("bench", JsonValue::str(bench));
        const std::size_t a = rng.below(spec.cores.size());
        std::size_t b = rng.below(spec.cores.size() - 1);
        if (b >= a)
            ++b;
        JsonValue cores = JsonValue::array();
        cores.push(JsonValue::str(spec.cores[a]));
        cores.push(JsonValue::str(spec.cores[b]));
        req.set("cores", std::move(cores));
    } else {
        req.set("kind", JsonValue::str("single"));
        req.set("bench", JsonValue::str(bench));
        req.set("core", JsonValue::str(
                            spec.cores[rng.below(
                                spec.cores.size())]));
    }
    return req;
}

void
clientLoop(const LoadSpec &spec, unsigned client, ClientTally &tally)
{
    ServeClient conn;
    std::string error;
    if (!conn.connect(spec.target, &error)) {
        tally.errors = spec.requestsPerClient;
        return;
    }
    // One independent, reproducible stream per (mix seed, client).
    Rng rng(spec.mixSeed
            ^ (0x9E3779B97F4A7C15ull * (client + 1)));
    const Clock::time_point phaseStart = Clock::now();
    for (unsigned k = 0; k < spec.requestsPerClient; ++k) {
        if (spec.openLoopRps > 0.0) {
            const auto due =
                phaseStart
                + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(k)
                        / spec.openLoopRps));
            std::this_thread::sleep_until(due);
        }
        const JsonValue req = mixRequest(spec, rng);
        const Clock::time_point sentAt = Clock::now();
        JsonValue resp;
        ++tally.sent;
        if (!conn.call(req, resp, &error)) {
            ++tally.errors;
            if (!conn.connect(spec.target, &error))
                return; // server gone; stop this client
            continue;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now()
                                                      - sentAt)
                .count();
        const JsonValue *ok =
            resp.isObject() ? resp.find("ok") : nullptr;
        if (ok != nullptr && ok->isBool() && ok->asBool()) {
            ++tally.ok;
            tally.latencyMs.push_back(ms);
            const JsonValue *timing = resp.find("timing");
            const JsonValue *warm =
                timing != nullptr && timing->isObject()
                    ? timing->find("warm")
                    : nullptr;
            if (warm != nullptr && warm->isBool()
                && warm->asBool())
                ++tally.warm;
        } else {
            ++tally.errors;
        }
    }
}

} // namespace

double
LoadPhase::percentileMs(double p) const
{
    if (latencyMs.empty())
        return 0.0;
    const double rank =
        std::ceil(std::max(0.0, std::min(100.0, p)) / 100.0
                  * static_cast<double>(latencyMs.size()));
    const std::size_t idx =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return latencyMs[std::min(idx, latencyMs.size() - 1)];
}

bool
runLoadPhase(const LoadSpec &spec, LoadPhase &out, std::string *error)
{
    if (spec.benches.empty() || spec.cores.empty()) {
        if (error != nullptr)
            *error = "load spec needs at least one benchmark and "
                     "one core type";
        return false;
    }
    std::uint64_t singlesBefore = 0;
    std::uint64_t contestsBefore = 0;
    if (!probeSims(spec.target, singlesBefore, contestsBefore,
                   error))
        return false;

    std::vector<ClientTally> tallies(spec.clients);
    const Clock::time_point start = Clock::now();
    {
        std::vector<std::thread> threads;
        threads.reserve(spec.clients);
        for (unsigned c = 0; c < spec.clients; ++c)
            threads.emplace_back([&spec, c, &tallies] {
                clientLoop(spec, c, tallies[c]);
            });
        for (std::thread &t : threads)
            t.join();
    }
    out.wallSec =
        std::chrono::duration<double>(Clock::now() - start).count();

    for (const ClientTally &t : tallies) {
        out.sent += t.sent;
        out.ok += t.ok;
        out.errors += t.errors;
        out.warmResponses += t.warm;
        out.latencyMs.insert(out.latencyMs.end(),
                             t.latencyMs.begin(),
                             t.latencyMs.end());
    }
    std::sort(out.latencyMs.begin(), out.latencyMs.end());

    std::uint64_t singlesAfter = 0;
    std::uint64_t contestsAfter = 0;
    if (!probeSims(spec.target, singlesAfter, contestsAfter, error))
        return false;
    out.simsDuring = singlesAfter - singlesBefore;
    out.contestsDuring = contestsAfter - contestsBefore;
    return true;
}

} // namespace contest
