/**
 * @file
 * Length-prefixed frame codec for the contest service protocol.
 *
 * Every message on the wire is one frame: a 4-byte big-endian
 * payload length followed by that many bytes of UTF-8 JSON. The
 * FrameDecoder is a pure byte-stream machine — it accepts input in
 * arbitrary chunks (a partial read, several pipelined frames in one
 * buffer) and yields complete payloads — so the framing logic is
 * unit-testable without a socket, and both the daemon and the client
 * share one implementation.
 *
 * A length prefix above kMaxFramePayload poisons the stream: the
 * decoder reports Oversized from then on, because once the declared
 * length is untrustworthy there is no way to find the next frame
 * boundary. The daemon answers with a structured error and closes
 * the connection.
 */

#ifndef CONTEST_SERVE_FRAME_HH
#define CONTEST_SERVE_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace contest
{

/** Hard cap on one frame's payload bytes (8 MiB). Large enough for
 *  any artifact response, small enough that a hostile length prefix
 *  cannot make the daemon buffer gigabytes. */
constexpr std::uint32_t kMaxFramePayload = 8u << 20;

/** Wrap @p payload as one wire frame (4-byte big-endian length +
 *  bytes); fatal() when the payload exceeds kMaxFramePayload. */
std::string encodeFrame(const std::string &payload);

/** Incremental decoder of a length-prefixed frame stream. */
class FrameDecoder
{
  public:
    enum class Status
    {
        NeedMore,  //!< no complete frame buffered yet
        Frame,     //!< one payload extracted
        Oversized, //!< length prefix above kMaxFramePayload; sticky
    };

    /** Append @p n raw bytes from the stream. */
    void feed(const char *data, std::size_t n);

    /**
     * Extract the next complete frame's payload into @p payload.
     * Call repeatedly until it stops returning Frame — one feed()
     * may complete several pipelined frames.
     */
    Status next(std::string &payload);

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf.size() - consumed; }

  private:
    std::string buf;
    std::size_t consumed = 0;
    bool poisoned = false;
};

} // namespace contest

#endif // CONTEST_SERVE_FRAME_HH
