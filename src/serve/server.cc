#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/log.hh"
#include "core/palette.hh"
#include "harness/registry.hh"

namespace contest
{

namespace
{

/** Milliseconds between two steady-clock points, as a double. */
double
msBetween(SimTimeline::Clock::time_point from,
          SimTimeline::Clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

} // namespace

ContestServer::ContestServer(ServeOptions options)
    : opts(std::move(options)), pool(opts.jobs + 1)
{
    if (!opts.cacheDir.empty())
        cache = std::make_unique<ResultCache>(opts.cacheDir);
    runner_ =
        std::make_unique<Runner>(opts.traceLen, opts.seed, &pool);
    if (cache)
        runner_->setResultCache(cache.get());
    runner_->setTimeline(&timeline);
}

ContestServer::~ContestServer()
{
    requestShutdown();
    waitUntilStopped();
    closeFd(wakePipe[0]);
    closeFd(wakePipe[1]);
}

bool
ContestServer::start(std::string *error)
{
    if (::pipe(wakePipe) != 0) {
        if (error != nullptr)
            *error = "cannot create shutdown wake pipe";
        return false;
    }
    listenFd = listenOn(opts.target, error);
    if (listenFd < 0)
        return false;
    if (!opts.quiet)
        inform("contest_serve listening on %s (jobs %u, trace_len "
               "%llu, seed %llu, cache %s)",
               opts.target.describe().c_str(), opts.jobs,
               static_cast<unsigned long long>(opts.traceLen),
               static_cast<unsigned long long>(opts.seed),
               cache ? opts.cacheDir.c_str() : "off");
    started = true;
    dispatcherThread = std::thread([this] { dispatcherLoop(); });
    acceptThread = std::thread([this] { acceptLoop(); });
    return true;
}

void
ContestServer::requestShutdown()
{
    // Async-signal-safe: one atomic store and one pipe write. The
    // accept thread owns every condition-variable notification.
    draining.store(true);
    if (wakePipe[1] >= 0) {
        const char byte = 'q';
        [[maybe_unused]] ssize_t rc = ::write(wakePipe[1], &byte, 1);
    }
}

void
ContestServer::waitUntilStopped()
{
    if (!started)
        return;
    if (acceptThread.joinable())
        acceptThread.join();
}

void
ContestServer::acceptLoop()
{
    while (!draining.load()) {
        pollfd fds[2] = {{listenFd, POLLIN, 0},
                         {wakePipe[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0)
            continue; // EINTR
        if (draining.load() || (fds[1].revents & POLLIN) != 0)
            break;
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int client = acceptClient(listenFd);
        if (client < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = client;
        connectionsAccepted.fetch_add(1);
        std::lock_guard<std::mutex> lock(connMu);
        connections.push_back(conn);
        readerThreads.emplace_back(
            [this, conn] { readerLoop(conn); });
    }
    drainAndStop();
}

void
ContestServer::drainAndStop()
{
    // 1. Stop accepting (the accept loop has already exited; close
    //    the listening socket so connect() now fails fast).
    closeFd(listenFd);
    listenFd = -1;

    // 2. Wake everything that may be waiting: the dispatcher drains
    //    the remaining admission queue, readers waiting for queue
    //    space give up and refuse their request.
    {
        std::lock_guard<std::mutex> lock(qMu);
        qCv.notify_all();
        spaceCv.notify_all();
    }
    if (dispatcherThread.joinable())
        dispatcherThread.join();

    // 3. Wait for every dispatched simulation to finish.
    {
        std::unique_lock<std::mutex> lock(inFlightMu);
        inFlightCv.wait(lock, [this] { return inFlight == 0; });
    }

    // 4. Ack the shutdown request(s) now that the drain is complete.
    {
        std::lock_guard<std::mutex> lock(ackMu);
        for (auto &[conn, id] : shutdownAcks) {
            ServeRequest req;
            req.kind = ServeRequest::Kind::Shutdown;
            req.id = id;
            JsonValue resp = serveOkResponse(req);
            resp.set("drained", JsonValue::boolean(true));
            respond(conn, resp);
        }
        shutdownAcks.clear();
    }

    // 5. Unblock every reader (a blocked recv() returns once its
    //    socket is shut down) and join them.
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(connMu);
        for (const ConnPtr &conn : connections) {
            conn->open.store(false);
            ::shutdown(conn->fd, SHUT_RDWR);
        }
        readers.swap(readerThreads);
    }
    for (std::thread &t : readers)
        t.join();
    {
        std::lock_guard<std::mutex> lock(connMu);
        for (const ConnPtr &conn : connections)
            closeFd(conn->fd);
        connections.clear();
    }
    if (!opts.quiet)
        inform("contest_serve drained: %llu requests (%llu ok, %llu "
               "failed, %llu refused), %llu warm hits",
               static_cast<unsigned long long>(requestsTotal.load()),
               static_cast<unsigned long long>(requestsOk.load()),
               static_cast<unsigned long long>(requestsFailed.load()),
               static_cast<unsigned long long>(
                   requestsRefused.load()),
               static_cast<unsigned long long>(warmHits.load()));
}

void
ContestServer::readerLoop(ConnPtr conn)
{
    FrameDecoder decoder;
    std::string payload;
    std::string error;
    while (conn->open.load()) {
        if (!recvFrame(conn->fd, decoder, payload, &error)) {
            // An oversized length prefix gets a structured error
            // before the connection closes; the decoder is sticky,
            // so re-asking it distinguishes poison from EOF.
            std::string dummy;
            if (decoder.next(dummy)
                == FrameDecoder::Status::Oversized) {
                respond(conn,
                        serveErrorResponse(JsonValue(), error));
            }
            break;
        }
        handleFrame(conn, payload);
    }
    conn->open.store(false);
    // The connection is dead (EOF, error, or a poisoned stream);
    // shut it down so the peer sees EOF instead of a silent stall.
    // The fd itself is closed by drainAndStop, which still owns it.
    ::shutdown(conn->fd, SHUT_RDWR);
}

void
ContestServer::handleFrame(const ConnPtr &conn,
                           const std::string &payload)
{
    requestsTotal.fetch_add(1);

    std::string parseError;
    JsonValue doc = JsonValue::parse(payload, &parseError);
    if (!parseError.empty()) {
        requestsFailed.fetch_add(1);
        respond(conn, serveErrorResponse(
                          JsonValue(),
                          "invalid JSON: " + parseError));
        return;
    }

    ServeRequest req;
    std::string error;
    if (!parseServeRequest(doc, req, error)) {
        requestsFailed.fetch_add(1);
        respond(conn, serveErrorResponse(req.id, error));
        return;
    }

    switch (req.kind) {
      case ServeRequest::Kind::Ping: {
        requestsOk.fetch_add(1);
        JsonValue resp = serveOkResponse(req);
        resp.set("draining", JsonValue::boolean(draining.load()));
        respond(conn, resp);
        return;
      }
      case ServeRequest::Kind::Stats:
        requestsOk.fetch_add(1);
        respond(conn, statsJson(req));
        return;
      case ServeRequest::Kind::Shutdown: {
        {
            std::lock_guard<std::mutex> lock(ackMu);
            shutdownAcks.emplace_back(conn, req.id);
        }
        requestsOk.fetch_add(1);
        requestShutdown();
        return;
      }
      default:
        admit(conn, std::move(req));
        return;
    }
}

void
ContestServer::admit(const ConnPtr &conn, ServeRequest req)
{
    Job job;
    job.conn = conn;
    job.queuedAt = SimTimeline::now();
    {
        std::unique_lock<std::mutex> lock(qMu);
        spaceCv.wait(lock, [this] {
            return queue.size() < opts.admissionDepth
                   || draining.load();
        });
        if (draining.load()) {
            requestsRefused.fetch_add(1);
            lock.unlock();
            respond(conn,
                    serveErrorResponse(
                        req.id,
                        "server is draining; request refused"));
            return;
        }
        job.req = std::move(req);
        queue.push_back(std::move(job));
        qCv.notify_one();
    }
}

void
ContestServer::dispatcherLoop()
{
    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(qMu);
            qCv.wait(lock, [this] {
                return !queue.empty() || draining.load();
            });
            if (queue.empty() && draining.load())
                break;
            // Take everything admitted so far as one batch: a burst
            // of requests costs one dispatcher wakeup, not one per
            // request.
            while (!queue.empty()) {
                batch.push_back(std::move(queue.front()));
                queue.pop_front();
            }
            spaceCv.notify_all();
        }
        admissionBatches.fetch_add(1);
        std::uint64_t prev = maxBatch.load();
        while (batch.size() > prev
               && !maxBatch.compare_exchange_weak(prev,
                                                  batch.size())) {
        }
        {
            std::lock_guard<std::mutex> lock(inFlightMu);
            inFlight += batch.size();
        }
        for (Job &job : batch) {
            auto shared = std::make_shared<Job>(std::move(job));
            pool.post([this, shared] {
                execute(*shared);
                std::lock_guard<std::mutex> lock(inFlightMu);
                --inFlight;
                inFlightCv.notify_all();
            });
        }
    }
}

bool
ContestServer::warmKey(const std::string &key)
{
    std::lock_guard<std::mutex> lock(seenMu);
    // insert() reports whether the key was already dispatched; a
    // concurrent identical request therefore counts as warm — it
    // blocks on the Runner's once-latch and reuses the result.
    return !seenKeys.insert(key).second;
}

void
ContestServer::execute(const Job &job)
{
    const ServeRequest &req = job.req;
    const auto startedAt = SimTimeline::now();
    JsonValue resp = serveOkResponse(req);
    bool warm = false;
    bool failed = false;

    switch (req.kind) {
      case ServeRequest::Kind::Sleep: {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(req.sleepMs));
        resp.set("slept_ms",
                 JsonValue::number(
                     static_cast<double>(req.sleepMs)));
        break;
      }
      case ServeRequest::Kind::Single: {
        const CoreConfig &core = coreConfigByName(req.core);
        warm = warmKey(ResultCache::singleRunKey(
            core, req.bench, opts.seed, opts.traceLen));
        const LoggedRun &run = runner_->single(req.bench, req.core);
        resp.set("time_ps",
                 JsonValue::number(static_cast<double>(
                     run.result.timePs.count())));
        resp.set("ipt", JsonValue::number(run.result.ipt));
        resp.set("energy_nj",
                 JsonValue::number(run.result.energy.totalNj()));
        break;
      }
      case ServeRequest::Kind::Contest: {
        std::vector<CoreConfig> cores;
        cores.reserve(req.cores.size());
        for (const std::string &name : req.cores)
            cores.push_back(coreConfigByName(name));
        const ContestConfig config{};
        const std::uint64_t useLen = req.traceLenOverride != 0
                                         ? req.traceLenOverride
                                         : opts.traceLen;
        warm = warmKey(ResultCache::contestKey(
            req.bench, cores, config, opts.seed, useLen));
        const ContestResult &result = runner_->contested(
            req.bench, cores, config, req.traceLenOverride);
        resp.set("time_ps",
                 JsonValue::number(
                     static_cast<double>(result.timePs.count())));
        resp.set("ipt", JsonValue::number(result.ipt));
        resp.set("lead_changes",
                 JsonValue::number(static_cast<double>(
                     result.leadChanges)));
        resp.set("energy_nj",
                 JsonValue::number(result.totalEnergyNj()));
        JsonValue lead = JsonValue::array();
        for (double f : result.leadFraction)
            lead.push(JsonValue::number(f));
        resp.set("lead_fraction", std::move(lead));
        break;
      }
      case ServeRequest::Kind::Experiment: {
        const ExperimentInfo *info =
            ExperimentRegistry::instance().find(req.experiment);
        if (info == nullptr || !info->inSuite) {
            failed = true;
            resp = serveErrorResponse(
                req.id, info == nullptr
                            ? "unknown experiment '"
                                  + req.experiment + "'"
                            : "experiment '" + req.experiment
                                  + "' is standalone-only and "
                                    "cannot be served");
            break;
        }
        ArtifactSink sink("", false);
        ExperimentContext ctx{*runner_, sink, *info};
        info->fn(ctx);
        JsonValue artifacts = JsonValue::array();
        for (const FigureArtifact &a : sink.emitted())
            artifacts.push(a.toJson());
        resp.set("artifacts", std::move(artifacts));
        break;
      }
      default:
        failed = true;
        resp = serveErrorResponse(req.id,
                                  "request kind cannot be executed "
                                  "by a pool worker");
        break;
    }

    const auto endedAt = SimTimeline::now();
    if (!failed) {
        if (warm)
            warmHits.fetch_add(1);
        JsonValue timing = JsonValue::object();
        timing.set("queue_ms", JsonValue::number(msBetween(
                                   job.queuedAt, startedAt)));
        timing.set("run_ms",
                   JsonValue::number(msBetween(startedAt, endedAt)));
        timing.set("warm", JsonValue::boolean(warm));
        resp.set("timing", std::move(timing));
        requestsOk.fetch_add(1);
    } else {
        requestsFailed.fetch_add(1);
    }
    respond(job.conn, resp);
}

JsonValue
ContestServer::statsJson(const ServeRequest &req)
{
    JsonValue resp = serveOkResponse(req);
    JsonValue server = JsonValue::object();
    server.set("jobs", JsonValue::number(opts.jobs));
    server.set("trace_len",
               JsonValue::number(
                   static_cast<double>(opts.traceLen)));
    server.set("seed", JsonValue::number(
                           static_cast<double>(opts.seed)));
    server.set("draining", JsonValue::boolean(draining.load()));
    {
        std::lock_guard<std::mutex> lock(qMu);
        server.set("queue_depth",
                   JsonValue::number(
                       static_cast<double>(queue.size())));
    }
    {
        std::lock_guard<std::mutex> lock(inFlightMu);
        server.set("in_flight",
                   JsonValue::number(
                       static_cast<double>(inFlight)));
    }
    {
        std::lock_guard<std::mutex> lock(connMu);
        server.set("connections",
                   JsonValue::number(static_cast<double>(
                       connections.size())));
    }
    server.set("connections_accepted",
               JsonValue::number(static_cast<double>(
                   connectionsAccepted.load())));

    JsonValue requests = JsonValue::object();
    requests.set("total", JsonValue::number(static_cast<double>(
                              requestsTotal.load())));
    requests.set("ok", JsonValue::number(static_cast<double>(
                           requestsOk.load())));
    requests.set("failed", JsonValue::number(static_cast<double>(
                               requestsFailed.load())));
    requests.set("refused", JsonValue::number(static_cast<double>(
                                requestsRefused.load())));
    requests.set("warm_hits",
                 JsonValue::number(
                     static_cast<double>(warmHits.load())));
    server.set("requests", std::move(requests));

    JsonValue admission = JsonValue::object();
    admission.set("batches",
                  JsonValue::number(static_cast<double>(
                      admissionBatches.load())));
    admission.set("max_batch",
                  JsonValue::number(
                      static_cast<double>(maxBatch.load())));
    server.set("admission", std::move(admission));

    JsonValue sims = JsonValue::object();
    sims.set("singles_executed",
             JsonValue::number(static_cast<double>(
                 runner_->simulationsPerformed())));
    sims.set("contests_executed",
             JsonValue::number(static_cast<double>(
                 runner_->contestsPerformed())));
    sims.set("disk_hits", JsonValue::number(static_cast<double>(
                              runner_->diskHits())));
    sims.set("contest_disk_hits",
             JsonValue::number(static_cast<double>(
                 runner_->contestDiskHits())));
    server.set("sims", std::move(sims));

    if (cache) {
        JsonValue disk = JsonValue::object();
        disk.set("dir", JsonValue::str(cache->directory()));
        disk.set("hits", JsonValue::number(static_cast<double>(
                             cache->hits())));
        disk.set("misses", JsonValue::number(static_cast<double>(
                               cache->misses())));
        disk.set("stores", JsonValue::number(static_cast<double>(
                               cache->stores())));
        server.set("result_cache", std::move(disk));
    }

    const SimTimeline::Summary summary = timeline.summary();
    JsonValue tl = JsonValue::object();
    tl.set("sims", JsonValue::number(
                       static_cast<double>(summary.sims)));
    tl.set("cache_hits", JsonValue::number(static_cast<double>(
                             summary.cacheHits)));
    tl.set("busy_sec", JsonValue::number(summary.busySec));
    tl.set("queue_sec", JsonValue::number(summary.queueSec));
    tl.set("wall_sec", JsonValue::number(summary.wallSec));
    tl.set("concurrency", JsonValue::number(summary.concurrency()));
    server.set("timeline", std::move(tl));

    resp.set("server", std::move(server));
    return resp;
}

void
ContestServer::respond(const ConnPtr &conn, const JsonValue &resp)
{
    const std::string frame = encodeFrame(resp.dump(0));
    std::lock_guard<std::mutex> lock(conn->writeMu);
    if (!conn->open.load())
        return;
    if (!sendAll(conn->fd, frame))
        conn->open.store(false);
}

} // namespace contest
