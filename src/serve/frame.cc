#include "serve/frame.hh"

#include "common/log.hh"

namespace contest
{

std::string
encodeFrame(const std::string &payload)
{
    fatal_if(payload.size() > kMaxFramePayload,
             "frame payload of %zu bytes exceeds the %u-byte protocol "
             "limit",
             payload.size(), kMaxFramePayload);
    const auto n = static_cast<std::uint32_t>(payload.size());
    std::string out;
    out.reserve(4 + payload.size());
    out += static_cast<char>((n >> 24) & 0xFF);
    out += static_cast<char>((n >> 16) & 0xFF);
    out += static_cast<char>((n >> 8) & 0xFF);
    out += static_cast<char>(n & 0xFF);
    out += payload;
    return out;
}

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    buf.append(data, n);
}

FrameDecoder::Status
FrameDecoder::next(std::string &payload)
{
    if (poisoned)
        return Status::Oversized;
    if (buffered() < 4)
        return Status::NeedMore;
    const auto *p =
        reinterpret_cast<const unsigned char *>(buf.data() + consumed);
    const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24)
                            | (static_cast<std::uint32_t>(p[1]) << 16)
                            | (static_cast<std::uint32_t>(p[2]) << 8)
                            | static_cast<std::uint32_t>(p[3]);
    if (n > kMaxFramePayload) {
        // The declared length is garbage, so every later byte
        // position is too: there is no resynchronization point.
        poisoned = true;
        return Status::Oversized;
    }
    if (buffered() < 4 + static_cast<std::size_t>(n))
        return Status::NeedMore;
    payload.assign(buf, consumed + 4, n);
    consumed += 4 + static_cast<std::size_t>(n);
    // Compact once the dead prefix dominates, so a long-lived
    // connection does not grow its buffer without bound.
    if (consumed > 4096 && consumed * 2 > buf.size()) {
        buf.erase(0, consumed);
        consumed = 0;
    }
    return Status::Frame;
}

} // namespace contest
