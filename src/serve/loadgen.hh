/**
 * @file
 * Load generator for the contest service, shared by the contest_load
 * CLI and the BENCH_serving experiment.
 *
 * A LoadSpec describes one phase: how many client connections, how
 * many requests each, the single/contest request mix (drawn from a
 * seeded Rng, so a "cold" and a "warm" phase with the same seed
 * issue the *identical* request sequence — that identity is what
 * makes the warm phase a pure cache measurement), and optionally an
 * open-loop request rate. runLoadPhase() runs the phase with one
 * thread per client, samples the server's simulation counters
 * before and after, and returns client-side latency percentiles
 * plus the server-side work deltas.
 */

#ifndef CONTEST_SERVE_LOADGEN_HH
#define CONTEST_SERVE_LOADGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/socket.hh"

namespace contest
{

/** One load phase's shape. */
struct LoadSpec
{
    ServeTarget target;
    /** Concurrent client connections. */
    unsigned clients = 4;
    /** Requests issued per client. */
    unsigned requestsPerClient = 16;
    /** Fraction of requests that are 2-way contests (the rest are
     *  single-core runs). */
    double contestFraction = 0.25;
    /** Benchmarks to draw from (must be valid trace profiles). */
    std::vector<std::string> benches;
    /** Core types to draw from (must be palette names). */
    std::vector<std::string> cores;
    /** Seed of the request mix; equal seeds give equal mixes. */
    std::uint64_t mixSeed = 1;
    /**
     * Open-loop request rate per client in requests/second; 0 runs
     * closed-loop (each client fires its next request the moment
     * the previous response lands).
     */
    double openLoopRps = 0.0;
};

/** One phase's measured outcome. */
struct LoadPhase
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    /** Responses whose timing.warm flag was set. */
    std::uint64_t warmResponses = 0;
    /** Phase wall-clock in seconds. */
    double wallSec = 0.0;
    /** Per-request round-trip latencies in ms, sorted ascending. */
    std::vector<double> latencyMs;
    /** Single simulations the server executed during the phase. */
    std::uint64_t simsDuring = 0;
    /** Contested simulations the server executed during the phase. */
    std::uint64_t contestsDuring = 0;

    /** Achieved request rate over the phase. */
    double
    rps() const
    {
        return wallSec > 0.0
                   ? static_cast<double>(ok) / wallSec
                   : 0.0;
    }

    /** Latency percentile in ms (p in [0, 100]); 0 when empty. */
    double percentileMs(double p) const;
};

/**
 * Run one load phase against a running server. Each client thread
 * draws its own deterministic request stream from
 * (spec.mixSeed, client index), so phase results are reproducible
 * and identical specs replay identical mixes.
 *
 * @return false with @p error filled when the server is unreachable
 *         or the stats probes fail; individual request failures are
 *         counted in LoadPhase::errors instead
 */
bool runLoadPhase(const LoadSpec &spec, LoadPhase &out,
                  std::string *error);

} // namespace contest

#endif // CONTEST_SERVE_LOADGEN_HH
