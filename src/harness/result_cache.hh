/**
 * @file
 * Opt-in persistent layer under the Runner's in-memory memoization:
 * completed single-core runs (result + region-log series) and
 * contested runs (the full ContestResult) are stored on disk, keyed
 * by a digest of everything that determines the run — the full core
 * configuration(s), the contesting configuration, the benchmark
 * name, the trace seed and length, and a cache format version. A
 * later process with the same knobs loads the run instead of
 * re-simulating it.
 *
 * Entries are self-verifying: each file records the format version
 * and the full canonical key string, so a digest collision or a
 * version bump degrades to a miss, never to wrong data. Writes go
 * through a temporary file renamed into place, so concurrent
 * processes sharing a cache directory see only complete entries.
 */

#ifndef CONTEST_HARNESS_RESULT_CACHE_HH
#define CONTEST_HARNESS_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "contest/system.hh"
#include "core/config.hh"

namespace contest
{

/** On-disk cache of completed single-core runs. */
class ResultCache
{
  public:
    /** Bumped whenever the entry format or simulation semantics
     *  change; old entries then miss instead of deserializing. */
    static constexpr int currentVersion = 1;

    /**
     * @param cache_dir directory for entries (created on first
     *        store)
     * @param version format version stamped on / required of
     *        entries; tests pass a different value to exercise
     *        invalidation
     */
    explicit ResultCache(std::string cache_dir,
                         int version = currentVersion);

    /**
     * Canonical key of a single-core run: every CoreConfig field
     * that shapes the simulation plus the workload identity. Two
     * runs agree on this string iff they are the same deterministic
     * simulation.
     */
    static std::string singleRunKey(const CoreConfig &core,
                                    const std::string &bench,
                                    std::uint64_t seed,
                                    std::uint64_t trace_len);

    /**
     * Canonical key of a contested run: the benchmark/seed/length
     * workload identity, every ContestConfig knob, and the ordered
     * list of contesting core configurations (order matters — core 0
     * is the interrupt-designated core and tie-break winner).
     */
    static std::string contestKey(const std::string &bench,
                                  const std::vector<CoreConfig> &cores,
                                  const ContestConfig &config,
                                  std::uint64_t seed,
                                  std::uint64_t trace_len);

    /**
     * Look up a run. On a hit fills @p result and @p regions and
     * returns true; any mismatch (absent, truncated, version or key
     * mismatch) is a miss.
     */
    bool load(const std::string &key, SingleRunResult &result,
              std::vector<TimePs> &regions) const;

    /** Persist a run under @p key (atomic create-then-rename). */
    void store(const std::string &key, const SingleRunResult &result,
               const std::vector<TimePs> &regions) const;

    /**
     * Look up a contested run. Same degradation policy as load():
     * anything but a verified, complete entry is a miss. Contest
     * entries carry their own magic, so a single-run entry (or any
     * corruption) can never deserialize as a ContestResult.
     */
    bool loadContest(const std::string &key,
                     ContestResult &result) const;

    /** Persist a contested run under @p key. */
    void storeContest(const std::string &key,
                      const ContestResult &result) const;

    /** @name Instrumentation */
    /** @{ */
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    std::uint64_t stores() const { return storeCount.load(); }
    /** @} */

    /** The cache directory. */
    const std::string &directory() const { return dir; }

    /** Entry path for a key (digest-named; exposed for tests). */
    std::string entryPath(const std::string &key) const;

  private:
    std::string dir;
    int formatVersion;
    mutable std::atomic<std::uint64_t> hitCount{0};
    mutable std::atomic<std::uint64_t> missCount{0};
    mutable std::atomic<std::uint64_t> storeCount{0};
};

} // namespace contest

#endif // CONTEST_HARNESS_RESULT_CACHE_HH
