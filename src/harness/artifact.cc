#include "harness/artifact.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"
#include "common/table.hh"

namespace contest
{

ArtifactCell
cellText(std::string text)
{
    ArtifactCell c;
    c.text = std::move(text);
    return c;
}

ArtifactCell
cellNum(double value, int precision)
{
    ArtifactCell c;
    c.text = TextTable::num(value, precision);
    c.numeric = true;
    c.value = value;
    return c;
}

ArtifactCell
cellPct(double fraction, int precision)
{
    ArtifactCell c;
    c.text = TextTable::pct(fraction, precision);
    c.numeric = true;
    c.value = fraction;
    return c;
}

ArtifactCell
cellCount(std::uint64_t count)
{
    ArtifactCell c;
    c.text = std::to_string(count);
    c.numeric = true;
    c.value = static_cast<double>(count);
    return c;
}

ArtifactCell
cellCustom(double value, std::string text)
{
    ArtifactCell c;
    c.text = std::move(text);
    c.numeric = true;
    c.value = value;
    return c;
}

void
ArtifactTable::row(std::vector<ArtifactCell> cells)
{
    fatal_if(columns.empty(),
             "ArtifactTable::row() before the columns were set");
    fatal_if(cells.size() != columns.size(),
             "ArtifactTable row width %zu does not match the %zu "
             "columns of '%s'",
             cells.size(), columns.size(), title.c_str());
    rows.push_back(std::move(cells));
}

std::string
ArtifactTable::renderText() const
{
    TextTable t(title);
    t.header(columns);
    for (const auto &r : rows) {
        std::vector<std::string> texts;
        texts.reserve(r.size());
        for (const auto &c : r)
            texts.push_back(c.text);
        t.row(std::move(texts));
    }
    return t.render();
}

ArtifactMeta
currentArtifactMeta()
{
    static const std::string git_describe = [] {
        std::string out;
        if (FILE *p = ::popen(
                "git describe --always --dirty 2>/dev/null", "r")) {
            char buf[128];
            while (std::fgets(buf, sizeof(buf), p) != nullptr)
                out += buf;
            ::pclose(p);
        }
        while (!out.empty()
               && (out.back() == '\n' || out.back() == '\r'))
            out.pop_back();
        return out.empty() ? std::string("unknown") : out;
    }();

    ArtifactMeta m;
    m.traceLen = benchTraceLen();
    m.seed = benchSeed();
    m.jobs = defaultJobs();
    m.fast = benchFastMode();
    m.cpus = std::thread::hardware_concurrency();
    m.git = git_describe;
    return m;
}

ArtifactTable &
FigureArtifact::table(std::string table_title)
{
    ArtifactTable t;
    t.title = std::move(table_title);
    tables.push_back(std::move(t));
    return tables.back();
}

void
FigureArtifact::scalar(const std::string &scalar_name, double value)
{
    for (const auto &s : scalars)
        fatal_if(s.first == scalar_name,
                 "artifact '%s' already has a scalar named '%s'",
                 name.c_str(), scalar_name.c_str());
    scalars.emplace_back(scalar_name, value);
}

void
FigureArtifact::note(std::string text)
{
    notes.push_back(std::move(text));
}

std::string
FigureArtifact::renderText() const
{
    std::string out = "# " + title + " | trace length "
        + std::to_string(meta.traceLen) + ", seed "
        + std::to_string(meta.seed) + ", jobs "
        + std::to_string(meta.jobs)
        + (meta.fast ? ", fast mode" : "") + "\n";
    for (const auto &t : tables) {
        out += t.renderText();
        out += '\n';
    }
    for (const auto &n : notes) {
        out += n;
        out += "\n\n";
    }
    return out;
}

JsonValue
FigureArtifact::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("name", JsonValue::str(name));
    root.set("title", JsonValue::str(title));

    JsonValue m = JsonValue::object();
    m.set("schema", JsonValue::number(meta.schema));
    m.set("trace_len",
          JsonValue::number(static_cast<double>(meta.traceLen)));
    m.set("seed", JsonValue::number(static_cast<double>(meta.seed)));
    m.set("jobs", JsonValue::number(meta.jobs));
    m.set("fast", JsonValue::boolean(meta.fast));
    m.set("cpus", JsonValue::number(meta.cpus));
    m.set("git", JsonValue::str(meta.git));
    root.set("meta", std::move(m));

    JsonValue sc = JsonValue::object();
    for (const auto &s : scalars)
        sc.set(s.first, JsonValue::number(s.second));
    root.set("scalars", std::move(sc));

    JsonValue ts = JsonValue::array();
    for (const auto &t : tables) {
        JsonValue jt = JsonValue::object();
        jt.set("title", JsonValue::str(t.title));
        JsonValue cols = JsonValue::array();
        for (const auto &c : t.columns)
            cols.push(JsonValue::str(c));
        jt.set("columns", std::move(cols));
        JsonValue rows = JsonValue::array();
        for (const auto &r : t.rows) {
            JsonValue row = JsonValue::array();
            for (const auto &c : r) {
                if (c.numeric) {
                    JsonValue cell = JsonValue::object();
                    cell.set("t", JsonValue::str(c.text));
                    cell.set("v", JsonValue::number(c.value));
                    row.push(std::move(cell));
                } else {
                    row.push(JsonValue::str(c.text));
                }
            }
            rows.push(std::move(row));
        }
        jt.set("rows", std::move(rows));
        ts.push(std::move(jt));
    }
    root.set("tables", std::move(ts));

    JsonValue ns = JsonValue::array();
    for (const auto &n : notes)
        ns.push(JsonValue::str(n));
    root.set("notes", std::move(ns));
    return root;
}

namespace
{

/** find() that records a structural error instead of panicking. */
const JsonValue *
member(const JsonValue &v, const char *key, JsonValue::Kind kind,
       std::string *error)
{
    if (!v.isObject()) {
        if (error->empty())
            *error = std::string("expected an object around '") + key
                + "'";
        return nullptr;
    }
    const JsonValue *m = v.find(key);
    if (m == nullptr || m->kind() != kind) {
        if (error->empty())
            *error = std::string("missing or mistyped member '") + key
                + "'";
        return nullptr;
    }
    return m;
}

} // namespace

FigureArtifact
FigureArtifact::fromJson(const JsonValue &v, std::string *error)
{
    std::string local_err;
    std::string *err = error != nullptr ? error : &local_err;
    err->clear();

    FigureArtifact a;
    using K = JsonValue::Kind;
    const JsonValue *name_v = member(v, "name", K::String, err);
    const JsonValue *title_v = member(v, "title", K::String, err);
    const JsonValue *meta_v = member(v, "meta", K::Object, err);
    const JsonValue *scalars_v = member(v, "scalars", K::Object, err);
    const JsonValue *tables_v = member(v, "tables", K::Array, err);
    const JsonValue *notes_v = member(v, "notes", K::Array, err);
    if (!err->empty())
        return {};

    a.name = name_v->asString();
    a.title = title_v->asString();

    const JsonValue *schema_v = member(*meta_v, "schema", K::Number, err);
    const JsonValue *len_v = member(*meta_v, "trace_len", K::Number, err);
    const JsonValue *seed_v = member(*meta_v, "seed", K::Number, err);
    const JsonValue *jobs_v = member(*meta_v, "jobs", K::Number, err);
    const JsonValue *fast_v = member(*meta_v, "fast", K::Bool, err);
    const JsonValue *git_v = member(*meta_v, "git", K::String, err);
    if (!err->empty())
        return {};
    a.meta.schema = static_cast<int>(schema_v->asNumber());
    a.meta.traceLen =
        static_cast<std::uint64_t>(len_v->asNumber());
    a.meta.seed = static_cast<std::uint64_t>(seed_v->asNumber());
    a.meta.jobs = static_cast<unsigned>(jobs_v->asNumber());
    a.meta.fast = fast_v->asBool();
    // Absent in artifacts written before the field existed; keep
    // them loadable (0 = unknown machine).
    if (const JsonValue *cpus_v = meta_v->find("cpus");
        cpus_v != nullptr && cpus_v->isNumber())
        a.meta.cpus = static_cast<unsigned>(cpus_v->asNumber());
    a.meta.git = git_v->asString();

    for (const auto &s : scalars_v->members()) {
        if (!s.second.isNumber()) {
            *err = "scalar '" + s.first + "' is not a number";
            return {};
        }
        a.scalars.emplace_back(s.first, s.second.asNumber());
    }

    for (const auto &jt : tables_v->elements()) {
        const JsonValue *t_title = member(jt, "title", K::String, err);
        const JsonValue *t_cols = member(jt, "columns", K::Array, err);
        const JsonValue *t_rows = member(jt, "rows", K::Array, err);
        if (!err->empty())
            return {};
        ArtifactTable t;
        t.title = t_title->asString();
        for (const auto &c : t_cols->elements()) {
            if (!c.isString()) {
                *err = "table column name is not a string";
                return {};
            }
            t.columns.push_back(c.asString());
        }
        for (const auto &jr : t_rows->elements()) {
            if (!jr.isArray()
                || jr.size() != t.columns.size()) {
                *err = "table '" + t.title
                    + "' has a malformed row";
                return {};
            }
            std::vector<ArtifactCell> row;
            for (const auto &jc : jr.elements()) {
                if (jc.isString()) {
                    row.push_back(cellText(jc.asString()));
                } else if (jc.isObject() && jc.find("v") != nullptr
                           && jc.at("v").isNumber()
                           && jc.find("t") != nullptr
                           && jc.at("t").isString()) {
                    row.push_back(cellCustom(jc.at("v").asNumber(),
                                             jc.at("t").asString()));
                } else {
                    *err = "table '" + t.title
                        + "' has a malformed cell";
                    return {};
                }
            }
            t.rows.push_back(std::move(row));
        }
        a.tables.push_back(std::move(t));
    }

    for (const auto &n : notes_v->elements()) {
        if (!n.isString()) {
            *err = "note is not a string";
            return {};
        }
        a.notes.push_back(n.asString());
    }
    return a;
}

bool
ArtifactTolerance::close(double golden, double candidate) const
{
    // Non-finite values never pass the gate. NaN compares unordered,
    // so `diff <= bound` is false-shaped by accident — but an
    // *infinite* golden makes rtol * |golden| infinite and the bound
    // swallows every finite candidate, and +Inf == +Inf passes the
    // equality fast path. A non-finite measurement is a regression
    // in itself; fail it hard instead of reasoning about tolerances.
    if (!std::isfinite(golden) || !std::isfinite(candidate))
        return false;
    if (golden == candidate)
        return true;
    double diff = std::fabs(golden - candidate);
    return diff <= atol + rtol * std::fabs(golden);
}

std::vector<std::string>
diffArtifacts(const FigureArtifact &golden,
              const FigureArtifact &candidate,
              const ArtifactTolerance &tol)
{
    std::vector<std::string> out;
    auto mism = [&](const std::string &what) { out.push_back(what); };

    if (golden.name != candidate.name)
        mism("name: '" + golden.name + "' vs '" + candidate.name
             + "'");
    if (golden.title != candidate.title)
        mism("title: '" + golden.title + "' vs '" + candidate.title
             + "'");
    if (golden.meta.schema != candidate.meta.schema)
        mism("meta.schema: " + std::to_string(golden.meta.schema)
             + " vs " + std::to_string(candidate.meta.schema));
    if (golden.meta.traceLen != candidate.meta.traceLen)
        mism("meta.trace_len: "
             + std::to_string(golden.meta.traceLen) + " vs "
             + std::to_string(candidate.meta.traceLen));
    if (golden.meta.seed != candidate.meta.seed)
        mism("meta.seed: " + std::to_string(golden.meta.seed)
             + " vs " + std::to_string(candidate.meta.seed));
    if (golden.meta.fast != candidate.meta.fast)
        mism(std::string("meta.fast: ")
             + (golden.meta.fast ? "true" : "false") + " vs "
             + (candidate.meta.fast ? "true" : "false"));

    // Scalars: same names in the same order, values in tolerance.
    std::size_t ns = std::min(golden.scalars.size(),
                              candidate.scalars.size());
    for (std::size_t i = 0; i < ns; ++i) {
        const auto &g = golden.scalars[i];
        const auto &c = candidate.scalars[i];
        if (g.first != c.first) {
            mism("scalar #" + std::to_string(i) + ": name '"
                 + g.first + "' vs '" + c.first + "'");
        } else if (!tol.close(g.second, c.second)) {
            mism("scalar '" + g.first
                 + "': " + jsonNumber(g.second) + " vs "
                 + jsonNumber(c.second));
        }
    }
    if (golden.scalars.size() != candidate.scalars.size())
        mism("scalar count: " + std::to_string(golden.scalars.size())
             + " vs " + std::to_string(candidate.scalars.size()));

    if (golden.tables.size() != candidate.tables.size())
        mism("table count: " + std::to_string(golden.tables.size())
             + " vs " + std::to_string(candidate.tables.size()));
    std::size_t nt = std::min(golden.tables.size(),
                              candidate.tables.size());
    for (std::size_t t = 0; t < nt; ++t) {
        const auto &gt = golden.tables[t];
        const auto &ct = candidate.tables[t];
        const std::string where = "table '" + gt.title + "'";
        if (gt.title != ct.title) {
            mism("table #" + std::to_string(t) + " title: '"
                 + gt.title + "' vs '" + ct.title + "'");
            continue;
        }
        if (gt.columns != ct.columns) {
            mism(where + ": column names differ");
            continue;
        }
        if (gt.rows.size() != ct.rows.size()) {
            mism(where + ": row count "
                 + std::to_string(gt.rows.size()) + " vs "
                 + std::to_string(ct.rows.size()));
            continue;
        }
        for (std::size_t r = 0; r < gt.rows.size(); ++r) {
            for (std::size_t c = 0; c < gt.columns.size(); ++c) {
                const auto &gc = gt.rows[r][c];
                const auto &cc = ct.rows[r][c];
                const std::string cell_where = where + " row "
                    + std::to_string(r) + " col '" + gt.columns[c]
                    + "'";
                if (gc.numeric != cc.numeric) {
                    mism(cell_where
                         + ": numeric vs label cell kind");
                } else if (gc.numeric) {
                    if (!tol.close(gc.value, cc.value))
                        mism(cell_where + ": " + jsonNumber(gc.value)
                             + " vs " + jsonNumber(cc.value));
                } else if (gc.text != cc.text) {
                    mism(cell_where + ": '" + gc.text + "' vs '"
                         + cc.text + "'");
                }
            }
        }
    }
    return out;
}

ArtifactSink::ArtifactSink(std::string out_dir, bool echo)
    : dir(std::move(out_dir)), echoStdout(echo)
{}

void
ArtifactSink::emit(const FigureArtifact &artifact)
{
    fatal_if(artifact.name.empty(),
             "refusing to emit an artifact with no name");
    if (echoStdout) {
        std::fputs(artifact.renderText().c_str(), stdout);
        std::fflush(stdout);
    }
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        fatal_if(static_cast<bool>(ec),
                 "cannot create artifact directory '%s': %s",
                 dir.c_str(), ec.message().c_str());
        std::string path = dir + "/" + artifact.name + ".json";
        std::ofstream f(path, std::ios::trunc);
        fatal_if(!f.good(), "cannot open artifact file '%s'",
                 path.c_str());
        f << artifact.toJson().dump(2);
        f.close();
        fatal_if(!f.good(), "failed writing artifact file '%s'",
                 path.c_str());
        files.push_back(std::move(path));
    }
    kept.push_back(artifact);
}

} // namespace contest
