/**
 * @file
 * Per-simulation timing instrumentation for the experiment harness.
 *
 * A SimTimeline records one span per simulation executed (or
 * restored from the persistent cache) by a Runner: when the request
 * was first observed (queue), when the simulation actually started,
 * and when it ended, all relative to the timeline's construction.
 * The suite driver reports the timeline with `--timing` and writes
 * it as SimTimeline.json next to the artifacts, so scheduler changes
 * are measured — queue delay, pool utilization, cache hit rate —
 * rather than asserted.
 *
 * Recording is a single mutex-guarded vector append per simulation;
 * simulations are milliseconds-scale, so the instrumentation cost is
 * noise even at --jobs 1.
 */

#ifndef CONTEST_HARNESS_SIM_TIMELINE_HH
#define CONTEST_HARNESS_SIM_TIMELINE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"
#include "contest/window_stats.hh"

namespace contest
{

/** Thread-safe recorder of per-simulation queue/start/end spans. */
class SimTimeline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** What kind of work a span covers. */
    enum class Kind
    {
        Single,  //!< one benchmark on one core, alone
        Contest, //!< an N-way contested run
    };

    /** One simulation's lifecycle, in seconds since the epoch. */
    struct Span
    {
        Kind kind = Kind::Single;
        std::string label; //!< e.g. "gcc@crafty" or "gcc@gcc+twolf"
        bool cached = false; //!< restored from disk, nothing simulated
        double queuedSec = 0.0; //!< request first observed
        double startSec = 0.0;  //!< simulation / cache probe began
        double endSec = 0.0;    //!< result available
    };

    /** Aggregates over all recorded spans. */
    struct Summary
    {
        std::size_t sims = 0;      //!< spans that actually simulated
        std::size_t cacheHits = 0; //!< spans restored from disk
        double busySec = 0.0;  //!< summed start-to-end of real sims
        double wallSec = 0.0;  //!< first queue to last end
        double queueSec = 0.0; //!< summed queue-to-start wait

        /** busy / wall: the mean simulation concurrency achieved. */
        double
        concurrency() const
        {
            return wallSec > 0.0 ? busySec / wallSec : 0.0;
        }
    };

    /** The epoch is construction time. */
    SimTimeline() : epoch(Clock::now()) {}

    /** The clock used for queue/start/end stamps. */
    static Clock::time_point now() { return Clock::now(); }

    /** Record one simulation's span. */
    void record(Kind kind, std::string label,
                Clock::time_point queued, Clock::time_point start,
                Clock::time_point end, bool cached);

    /** One windowed contested run's scheduling counters. */
    struct WindowEntry
    {
        std::string label;
        WindowStats stats;
    };

    /** Record the WindowStats of a windowed contested run (called
     *  once per run that took the windowed path). */
    void recordWindowStats(std::string label,
                           const WindowStats &stats);

    /** Snapshot of all recorded window-stat entries, in label
     *  order (reproducible across schedules). */
    std::vector<WindowEntry> windowEntries() const;

    /** Snapshot of all spans, ordered by queue time (label breaks
     *  ties so the order is reproducible). */
    std::vector<Span> spans() const;

    /** Aggregate statistics over the snapshot. */
    Summary summary() const;

    /** The full timeline as JSON (for SimTimeline.json). */
    JsonValue toJson(unsigned jobs) const;

    /** The `--timing` stdout report: the summary plus the slowest
     *  simulations. */
    std::string renderReport(unsigned jobs) const;

  private:
    double
    sinceEpoch(Clock::time_point t) const
    {
        return std::chrono::duration<double>(t - epoch).count();
    }

    Clock::time_point epoch;
    mutable std::mutex mu;
    std::vector<Span> recorded;
    std::vector<WindowEntry> windows;
};

} // namespace contest

#endif // CONTEST_HARNESS_SIM_TIMELINE_HH
