#include "harness/scheduler.hh"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace contest
{

namespace
{

/** One posted experiment: its private artifact buffer and completion
 *  state (done/sec guarded by the scheduler's mutex). */
struct Slot
{
    const ExperimentInfo *info = nullptr;
    ArtifactSink buffer{"", false};
    double sec = 0.0;
    bool done = false;
};

} // namespace

void
SuiteScheduler::run(const std::vector<const ExperimentInfo *> &to_run,
                    const DrainFn &on_drained)
{
    using Clock = std::chrono::steady_clock;

    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::unique_ptr<Slot>> slots;
    slots.reserve(to_run.size());
    for (const ExperimentInfo *e : to_run) {
        slots.push_back(std::make_unique<Slot>());
        slots.back()->info = e;
    }

    // Submit everything up front; experiment bodies overlap from the
    // start instead of serializing on experiment boundaries.
    for (auto &slot_ptr : slots) {
        Slot *slot = slot_ptr.get();
        pool_.post([this, slot, &mu, &cv] {
            auto body_start = Clock::now();
            ExperimentContext ctx{runner_, slot->buffer, *slot->info};
            slot->info->fn(ctx);
            double sec = std::chrono::duration<double>(Clock::now()
                                                       - body_start)
                             .count();
            std::lock_guard<std::mutex> lock(mu);
            slot->sec = sec;
            slot->done = true;
            // Notify before unlocking: run()'s locals (mu, cv) may
            // be destroyed as soon as the last unlock happens.
            cv.notify_all();
        });
    }

    // Drain strictly in submission order; re-emitting through the
    // real sink reproduces the sequential driver's stdout and JSON
    // output byte for byte.
    std::size_t next_drain = 0;
    while (next_drain < slots.size()) {
        bool head_done;
        double head_sec = 0.0;
        {
            std::lock_guard<std::mutex> lock(mu);
            head_done = slots[next_drain]->done;
            if (head_done)
                head_sec = slots[next_drain]->sec;
        }
        if (head_done) {
            Slot &slot = *slots[next_drain];
            for (const FigureArtifact &a : slot.buffer.emitted())
                sink_.emit(a);
            if (on_drained)
                on_drained(*slot.info, head_sec);
            ++next_drain;
            continue;
        }
        // Head still running: work instead of waiting when the pool
        // has anything queued (experiment bodies or their nested
        // sweep tasks), otherwise sleep until a completion signal.
        if (pool_.tryRunOneTask())
            continue;
        std::unique_lock<std::mutex> lock(mu);
        if (!slots[next_drain]->done)
            cv.wait_for(lock, std::chrono::milliseconds(1));
    }
}

} // namespace contest
