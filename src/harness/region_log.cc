#include "harness/region_log.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

TimePs
RegionLog::total() const
{
    TimePs sum{};
    for (TimePs t : times)
        sum += t;
    return sum;
}

TimePs
fuseRegionTimes(const std::vector<TimePs> &a,
                const std::vector<TimePs> &b,
                std::uint64_t regions_per_block)
{
    fatal_if(regions_per_block == 0,
             "fuseRegionTimes: zero block size");
    std::size_t n = std::min(a.size(), b.size());

    TimePs fused{};
    for (std::size_t start = 0; start < n;
         start += regions_per_block) {
        std::size_t end =
            std::min(n, start + regions_per_block);
        TimePs ta{};
        TimePs tb{};
        for (std::size_t i = start; i < end; ++i) {
            ta += a[i];
            tb += b[i];
        }
        fused += std::min(ta, tb);
    }
    return fused;
}

} // namespace contest
