/**
 * @file
 * Experiment runners shared by the bench binaries: cached
 * single-core runs (with optional region logging), contested runs,
 * the full benchmark-by-core IPT matrix, and best-contesting-pair
 * search.
 */

#ifndef CONTEST_HARNESS_RUNNER_HH
#define CONTEST_HARNESS_RUNNER_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hh"
#include "contest/system.hh"
#include "core/palette.hh"
#include "explore/merit.hh"
#include "harness/region_log.hh"
#include "harness/result_cache.hh"
#include "trace/generator.hh"

namespace contest
{

/** One single-core run's outcome plus its region log. */
struct LoggedRun
{
    SingleRunResult result;
    std::shared_ptr<RegionLog> regions;
};

/**
 * Caching experiment runner. All bench binaries funnel their
 * simulations through a Runner so that a single-core (benchmark,
 * core type) result is simulated exactly once per process.
 *
 * The runner is safe to use from the thread pool: the memoization
 * maps are guarded by a mutex, and each cache entry carries a
 * per-key once-latch so two threads never simulate the same
 * (benchmark, core) pair — the second requester blocks until the
 * first finishes. Because every simulation is self-contained and
 * writes only its own cache slot, results are bit-identical for any
 * job count, including 1.
 */
class Runner
{
  public:
    /**
     * @param trace_len instructions per benchmark trace
     * @param seed workload generation seed
     * @param pool thread pool for parallel sweeps (default: the
     *        process-wide CONTEST_JOBS-sized pool)
     */
    Runner(std::uint64_t trace_len, std::uint64_t seed,
           ThreadPool *pool = nullptr);

    /** The (cached) trace of a benchmark. */
    TracePtr trace(const std::string &bench);

    /** Cached single-core run with region logging. */
    const LoggedRun &single(const std::string &bench,
                            const std::string &core);

    /** Contested run (not cached; configs vary per experiment). */
    ContestResult contested(const std::string &bench,
                            const std::vector<CoreConfig> &cores,
                            const ContestConfig &config);

    /** Contested run between two palette core types. */
    ContestResult contestedPair(const std::string &bench,
                                const std::string &core_a,
                                const std::string &core_b,
                                const ContestConfig &config = {});

    /** The full benchmark x core-type IPT matrix (cached). */
    const IptMatrix &matrix();

    /**
     * The best pair of core types to contest for a benchmark.
     * Candidate pairs are pre-ranked by the Figure 1 oracle fusion
     * of their region logs at fine granularity, then the top
     * @p simulate_top pairs are actually contested and the best
     * contested result wins (this prunes the 55-pair space the way
     * the paper's own exhaustive search would rank it).
     */
    struct PairChoice
    {
        std::string coreA;
        std::string coreB;
        ContestResult result;
    };
    PairChoice bestContestingPair(const std::string &bench,
                                  const ContestConfig &config = {},
                                  unsigned simulate_top = 5);

    /** Trace length in use. */
    std::uint64_t traceLen() const { return len; }

    /** Workload seed in use. */
    std::uint64_t workloadSeed() const { return seed_; }

    /**
     * Attach a persistent result cache (not owned; must outlive the
     * runner). single() consults it inside the once-latch: a disk
     * hit skips the simulation entirely, a miss simulates and then
     * stores. Attach before the first single() call — entries
     * already latched in memory are not revisited.
     */
    void setResultCache(ResultCache *cache) { disk = cache; }

    /** The attached result cache, if any. */
    ResultCache *resultCache() const { return disk; }

    /** Single-core simulations actually executed by this runner
     *  (in-memory and disk hits excluded). */
    std::uint64_t
    simulationsPerformed() const
    {
        return simsDone.load();
    }

    /** single() calls satisfied from the persistent cache. */
    std::uint64_t diskHits() const { return diskHitCount.load(); }

  private:
    /** Memo-map slot: the once-latch serializes the first (and only)
     *  computation of the keyed value; later readers see it filled. */
    struct TraceEntry
    {
        std::once_flag once;
        TracePtr value;
    };
    struct SingleEntry
    {
        std::once_flag once;
        LoggedRun run;
    };

    std::uint64_t len;
    std::uint64_t seed_;
    ThreadPool *pool_;
    ResultCache *disk = nullptr;
    std::atomic<std::uint64_t> simsDone{0};
    std::atomic<std::uint64_t> diskHitCount{0};

    /** Guards the maps' structure only; entries latch themselves. */
    std::mutex cacheMu;
    std::map<std::string, std::unique_ptr<TraceEntry>> traces;
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<SingleEntry>> singles;
    std::once_flag matrixOnce;
    std::unique_ptr<IptMatrix> cachedMatrix;
};

} // namespace contest

#endif // CONTEST_HARNESS_RUNNER_HH
