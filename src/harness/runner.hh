/**
 * @file
 * Experiment runners shared by the bench binaries: cached
 * single-core runs (with optional region logging), cached contested
 * runs, the full benchmark-by-core IPT matrix, and
 * best-contesting-pair search.
 */

#ifndef CONTEST_HARNESS_RUNNER_HH
#define CONTEST_HARNESS_RUNNER_HH

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hh"
#include "common/thread_pool.hh"
#include "contest/system.hh"
#include "core/palette.hh"
#include "explore/merit.hh"
#include "harness/region_log.hh"
#include "harness/result_cache.hh"
#include "harness/sim_timeline.hh"
#include "trace/generator.hh"

namespace contest
{

/** One single-core run's outcome plus its region log. */
struct LoggedRun
{
    SingleRunResult result;
    std::shared_ptr<RegionLog> regions;
};

/**
 * Caching experiment runner. All bench binaries funnel their
 * simulations through a Runner so that a single-core (benchmark,
 * core type) result — and, since the pipelined scheduler, a
 * contested (benchmark, ordered cores, contest config) result — is
 * simulated exactly once per process.
 *
 * The runner is safe to use from many threads at once — the suite
 * scheduler's pool and, since the contest service daemon, an
 * arbitrary number of concurrent independent requests. Each memo map
 * is sharded by key digest: a lookup locks only its shard's mutex,
 * held only for the lookup/insert (never across a simulation), and
 * each entry carries a per-key once-latch so two threads never
 * simulate the same keyed run — the second requester blocks until
 * the first finishes. Because every simulation is self-contained and
 * writes only its own cache slot, results are bit-identical for any
 * job count, including 1.
 *
 * The maps are unordered, keyed by canonical key strings whose
 * 64-bit digest is computed once per lookup (HashedKey); buckets are
 * reserved up front so the suite's steady state never rehashes.
 */
class Runner
{
  public:
    /**
     * @param trace_len instructions per benchmark trace
     * @param seed workload generation seed
     * @param pool thread pool for parallel sweeps (default: the
     *        process-wide CONTEST_JOBS-sized pool)
     */
    Runner(std::uint64_t trace_len, std::uint64_t seed,
           ThreadPool *pool = nullptr);

    /** The (cached) trace of a benchmark. @p trace_len overrides the
     *  runner's configured length; 0 means the configured one. */
    TracePtr trace(const std::string &bench,
                   std::uint64_t trace_len = 0);

    /** Cached single-core run with region logging. */
    const LoggedRun &single(const std::string &bench,
                            const std::string &core);

    /**
     * Contested run, memoized on (benchmark, ordered core configs,
     * contest config) and backed by the persistent result cache when
     * one is attached. Experiments that contest overlapping
     * (benchmark, pair, config) combinations — fig06 vs the Figure
     * 10-13 designs, for instance — simulate each contest once per
     * process, and a warm rerun not at all.
     *
     * @p trace_len overrides the runner's configured trace length
     * (0: use the configured one); the override is part of the cache
     * key, so experiments that deliberately contest shorter traces
     * (contest-aware exploration) still memoize and persist.
     */
    const ContestResult &contested(const std::string &bench,
                                   const std::vector<CoreConfig> &cores,
                                   const ContestConfig &config,
                                   std::uint64_t trace_len = 0);

    /** Contested run between two palette core types. */
    const ContestResult &contestedPair(const std::string &bench,
                                       const std::string &core_a,
                                       const std::string &core_b,
                                       const ContestConfig &config = {});

    /** The full benchmark x core-type IPT matrix (cached). */
    const IptMatrix &matrix();

    /**
     * The best pair of core types to contest for a benchmark.
     * Candidate pairs are pre-ranked by the Figure 1 oracle fusion
     * of their region logs at fine granularity, then the top
     * @p simulate_top pairs are actually contested and the best
     * contested result wins (this prunes the 55-pair space the way
     * the paper's own exhaustive search would rank it).
     */
    struct PairChoice
    {
        std::string coreA;
        std::string coreB;
        ContestResult result;
    };
    PairChoice bestContestingPair(const std::string &bench,
                                  const ContestConfig &config = {},
                                  unsigned simulate_top = 5);

    /** Trace length in use. */
    std::uint64_t traceLen() const { return len; }

    /** Per-contest worker budget (--contest-jobs), snapshotted at
     *  construction so every contested run of a suite uses the same
     *  setting regardless of when it is scheduled. */
    unsigned perContestJobs() const { return contestJobs_; }

    /** Workload seed in use. */
    std::uint64_t workloadSeed() const { return seed_; }

    /**
     * Attach a persistent result cache (not owned; must outlive the
     * runner). single() and contested() consult it inside the
     * once-latch: a disk hit skips the simulation entirely, a miss
     * simulates and then stores. Attach before the first run —
     * entries already latched in memory are not revisited.
     */
    void setResultCache(ResultCache *cache) { disk = cache; }

    /** The attached result cache, if any. */
    ResultCache *resultCache() const { return disk; }

    /**
     * Attach a per-simulation timeline (not owned; must outlive the
     * runner). Every single and contested run records its
     * queue/start/end span, cache hits included.
     */
    void setTimeline(SimTimeline *t) { timeline_ = t; }

    /** The attached timeline, if any. */
    SimTimeline *timeline() const { return timeline_; }

    /** Single-core simulations actually executed by this runner
     *  (in-memory and disk hits excluded). */
    std::uint64_t
    simulationsPerformed() const
    {
        return simsDone.load();
    }

    /** single() calls satisfied from the persistent cache. */
    std::uint64_t diskHits() const { return diskHitCount.load(); }

    /** Contested simulations actually executed by this runner
     *  (in-memory and disk hits excluded). */
    std::uint64_t
    contestsPerformed() const
    {
        return contestsDone.load();
    }

    /** contested() calls satisfied from the persistent cache. */
    std::uint64_t
    contestDiskHits() const
    {
        return contestDiskHitCount.load();
    }

  private:
    /** Memo-map slot: the once-latch serializes the first (and only)
     *  computation of the keyed value; later readers see it filled. */
    struct TraceEntry
    {
        std::once_flag once;
        TracePtr value;
    };
    struct SingleEntry
    {
        std::once_flag once;
        LoggedRun run;
    };
    struct ContestEntry
    {
        std::once_flag once;
        ContestResult result;
    };

    /**
     * A memo map split into shards, each with its own structure
     * mutex, so concurrent requests for different keys contend only
     * when their digests collide modulo the shard count. Entries are
     * heap-allocated and never erased, so a pointer returned by
     * entryFor() stays valid for the runner's lifetime even while
     * other threads grow the shard.
     */
    template <typename Entry>
    class MemoShards
    {
      public:
        /** Find-or-create the entry for @p key, holding only the
         *  owning shard's mutex for the lookup/insert. */
        Entry *
        entryFor(HashedKey key)
        {
            Shard &s = shards[key.hash & (kShards - 1)];
            std::lock_guard<std::mutex> lock(s.mu);
            auto &slot = s.map[std::move(key)];
            if (!slot)
                slot = std::make_unique<Entry>();
            return slot.get();
        }

        /** Reserve buckets for @p total entries across all shards. */
        void
        reserve(std::size_t total)
        {
            for (Shard &s : shards)
                s.map.reserve(total / kShards + 1);
        }

      private:
        static constexpr std::size_t kShards = 16;
        static_assert((kShards & (kShards - 1)) == 0,
                      "shard selection masks the key digest");

        struct Shard
        {
            std::mutex mu;
            std::unordered_map<HashedKey, std::unique_ptr<Entry>,
                               HashedKeyHash> map;
        };
        std::array<Shard, kShards> shards;
    };

    std::uint64_t len;
    std::uint64_t seed_;
    unsigned contestJobs_;
    ThreadPool *pool_;
    ResultCache *disk = nullptr;
    SimTimeline *timeline_ = nullptr;
    std::atomic<std::uint64_t> simsDone{0};
    std::atomic<std::uint64_t> diskHitCount{0};
    std::atomic<std::uint64_t> contestsDone{0};
    std::atomic<std::uint64_t> contestDiskHitCount{0};

    /** Sharded memo maps; entries latch themselves. */
    MemoShards<TraceEntry> traces;
    MemoShards<SingleEntry> singles;
    MemoShards<ContestEntry> contests;
    std::once_flag matrixOnce;
    std::unique_ptr<IptMatrix> cachedMatrix;
};

} // namespace contest

#endif // CONTEST_HARNESS_RUNNER_HH
