/**
 * @file
 * Suite-wide pipelined experiment scheduler.
 *
 * The sequential driver ran each experiment to completion — sweeps,
 * artifact, stdout — before starting the next, so the pool drained
 * to idle at every experiment boundary. The scheduler instead posts
 * every selected experiment to the shared thread pool at once:
 * experiment bodies overlap freely (their simulations are already
 * safe to interleave — the Runner memoizes under per-key
 * once-latches), and the pipeline bubbles between experiments
 * disappear.
 *
 * Output stays bit-identical to the sequential driver because
 * experiments never touch stdout directly: each one emits into a
 * private buffering ArtifactSink, and the scheduler drains completed
 * experiments strictly in submission (registry) order, re-emitting
 * their artifacts through the real sink — which renders stdout and
 * writes the JSON files exactly as the sequential loop would have.
 * While the head experiment is still running, the draining thread
 * donates itself to the pool instead of sleeping.
 */

#ifndef CONTEST_HARNESS_SCHEDULER_HH
#define CONTEST_HARNESS_SCHEDULER_HH

#include <functional>
#include <vector>

#include "common/thread_pool.hh"
#include "harness/registry.hh"

namespace contest
{

/** Runs a selection of experiments concurrently, draining results in
 *  submission order. */
class SuiteScheduler
{
  public:
    /**
     * @param runner shared experiment runner (thread-safe)
     * @param sink the real artifact sink (stdout + JSON files);
     *        touched only by the thread that calls run()
     * @param pool pool the experiments are posted to
     */
    SuiteScheduler(Runner &runner, ArtifactSink &sink,
                   ThreadPool &pool)
        : runner_(runner), sink_(sink), pool_(pool)
    {}

    /** Called as each experiment is drained, in submission order,
     *  with its body's wall-clock seconds. */
    using DrainFn =
        std::function<void(const ExperimentInfo &, double)>;

    /**
     * Run all of @p to_run and return when every experiment has
     * completed and been drained through the sink.
     */
    void run(const std::vector<const ExperimentInfo *> &to_run,
             const DrainFn &on_drained);

  private:
    Runner &runner_;
    ArtifactSink &sink_;
    ThreadPool &pool_;
};

} // namespace contest

#endif // CONTEST_HARNESS_SCHEDULER_HH
