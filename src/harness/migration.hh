/**
 * @file
 * Migrational-baseline evaluator: core switching at coarse
 * granularity with a migration penalty.
 *
 * The paper's Section 2/3 argument is that previously proposed
 * migrational approaches — detect a phase change, decide which core
 * suits it, transfer execution — operate at granularities of
 * thousands of instructions at best, and pay a real transfer cost,
 * so they cannot reach the fine-grain variation that contesting
 * exploits. This evaluator models such schemes analytically on the
 * per-region time logs of two cores:
 *
 *  - Oracle policy: each decision block runs on whichever core is
 *    faster for it (an upper bound for any migrational scheme at
 *    that granularity);
 *  - History policy: each block runs on the core that was faster in
 *    the previous block (a realistic phase predictor).
 *
 * Every switch pays a migration penalty (register state transfer
 * plus cold-cache refill).
 */

#ifndef CONTEST_HARNESS_MIGRATION_HH
#define CONTEST_HARNESS_MIGRATION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace contest
{

/** Decision policy of the migrational baseline. */
enum class MigrationPolicy
{
    Oracle,  //!< per-block best core (upper bound)
    History, //!< previous block's winner
};

/** Configuration of one migration evaluation. */
struct MigrationConfig
{
    /** Decision granularity in 20-instruction regions. */
    std::uint64_t regionsPerBlock = 64; // 1280 instructions
    /** Cost of one migration (state transfer + cache warmup). */
    TimePs migrationPenaltyPs{5'000'000}; // 5 us
    MigrationPolicy policy = MigrationPolicy::Oracle;
};

/** Outcome of one migration evaluation. */
struct MigrationResult
{
    TimePs totalPs{};
    std::uint64_t migrations = 0;
    /** Fraction of blocks executed on the first core. */
    double shareA = 0.0;
};

/**
 * Evaluate migration between two cores given their per-region time
 * logs (as produced by RegionLog on full runs of the same trace).
 */
MigrationResult simulateMigration(const std::vector<TimePs> &a,
                                  const std::vector<TimePs> &b,
                                  const MigrationConfig &config);

} // namespace contest

#endif // CONTEST_HARNESS_MIGRATION_HH
