#include "harness/result_cache.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/hash.hh"
#include "common/log.hh"

namespace contest
{

namespace
{

/**
 * Publish @p payload at @p final_path atomically: write to a
 * uniquely named temp file in the same directory, verify every byte
 * reached the filesystem (the final flush at close() is where a full
 * disk surfaces), then rename into place. The temp name includes a
 * process-wide counter besides the pid so two pool threads storing
 * the same key never interleave writes into one temp file.
 */
bool
writeEntryAtomic(const std::string &final_path,
                 const std::string &payload)
{
    static std::atomic<std::uint64_t> tmpSerial{0};
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(getpid()) + "."
        + std::to_string(tmpSerial.fetch_add(1));
    std::error_code ec;
    {
        std::ofstream out(tmp_path, std::ios::binary);
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        out.flush();
        // close() before checking: the destructor would swallow a
        // failed final flush, renaming a truncated entry into place.
        out.close();
        if (out.fail()) {
            warn("result cache: write to '%s' failed",
                 tmp_path.c_str());
            std::filesystem::remove(tmp_path, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        warn("result cache: rename to '%s' failed: %s",
             final_path.c_str(), ec.message().c_str());
        std::filesystem::remove(tmp_path, ec);
        return false;
    }
    return true;
}

void
appendCacheGeom(std::ostringstream &os, const char *tag,
                const CacheConfig &c)
{
    os << tag << '=' << c.sets << '/' << c.assoc << '/' << c.blockBytes
       << '/' << c.latency.count() << '/' << (c.writeThrough ? 1 : 0)
       << '/' << (c.writeAllocate ? 1 : 0) << ';';
}

/** Little-endian binary writer. */
struct Writer
{
    std::string buf;

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

/** Little-endian binary reader; any overrun poisons ok. */
struct Reader
{
    const std::string &buf;
    std::size_t pos = 0;
    bool ok = true;

    explicit Reader(const std::string &data) : buf(data) {}

    std::uint64_t
    u64()
    {
        if (pos + 8 > buf.size()) {
            ok = false;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[pos + i]))
                 << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    bytes(std::size_t n)
    {
        if (pos + n > buf.size()) {
            ok = false;
            return {};
        }
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }
};

constexpr char cacheMagic[4] = {'C', 'T', 'R', 'C'};
/** Contest entries carry a distinct magic so the two entry kinds can
 *  never deserialize as one another, digest collisions included. */
constexpr char contestMagic[4] = {'C', 'T', 'C', 'T'};

void
writeStats(Writer &w, const CoreStats &s)
{
    w.u64(s.cycles.count());
    w.u64(s.retired);
    w.u64(s.injected);
    w.u64(s.condBranches);
    w.u64(s.mispredicts);
    w.u64(s.earlyResolves);
    w.u64(s.btbMissRedirects);
    w.u64(s.syscalls);
    w.u64(s.icacheMisses);
    w.u64(s.fetchStallBranch.count());
    w.u64(s.robFullStalls.count());
    w.u64(s.iqFullStalls.count());
    w.u64(s.lsqFullStalls.count());
    w.u64(s.storeQueueStalls.count());
    w.u64(s.syscallStalls.count());
}

void
readStats(Reader &r, CoreStats &s)
{
    s.cycles = Cycles{r.u64()};
    s.retired = r.u64();
    s.injected = r.u64();
    s.condBranches = r.u64();
    s.mispredicts = r.u64();
    s.earlyResolves = r.u64();
    s.btbMissRedirects = r.u64();
    s.syscalls = r.u64();
    s.icacheMisses = r.u64();
    s.fetchStallBranch = Cycles{r.u64()};
    s.robFullStalls = Cycles{r.u64()};
    s.iqFullStalls = Cycles{r.u64()};
    s.lsqFullStalls = Cycles{r.u64()};
    s.storeQueueStalls = Cycles{r.u64()};
    s.syscallStalls = Cycles{r.u64()};
}

void
writeEnergy(Writer &w, const EnergyBreakdown &e)
{
    w.f64(e.staticNj);
    w.f64(e.pipelineNj);
    w.f64(e.cacheNj);
    w.f64(e.bpredNj);
    w.f64(e.squashNj);
    w.f64(e.contestNj);
}

void
readEnergy(Reader &r, EnergyBreakdown &e)
{
    e.staticNj = r.f64();
    e.pipelineNj = r.f64();
    e.cacheNj = r.f64();
    e.bpredNj = r.f64();
    e.squashNj = r.f64();
    e.contestNj = r.f64();
}

/** Every CoreConfig field that shapes a simulation, in one canonical
 *  serialization shared by the single-run and contest keys. */
void
appendCoreConfig(std::ostringstream &os, const CoreConfig &core)
{
    os << "core=" << core.name << ';';
    os << "memlat=" << core.memAccessCycles.count() << ';';
    os << "fed=" << core.frontEndDepth << ';';
    os << "width=" << core.width << ';';
    os << "rob=" << core.robSize << ';';
    os << "iq=" << core.iqSize << ';';
    os << "wakeup=" << core.wakeupLatency.count() << ';';
    os << "sched=" << core.schedDepth.count() << ';';
    os << "clock=" << core.clockPeriodPs.count() << ';';
    appendCacheGeom(os, "l1d", core.l1d);
    appendCacheGeom(os, "l2", core.l2);
    os << "lsq=" << core.lsqSize << ';';
    os << "l1dports=" << core.l1dPorts << ';';
    os << "mshrs=" << core.mshrs << ';';
    char bw[64];
    std::snprintf(bw, sizeof(bw), "bw=%.17g;",
                  core.memBandwidthBytesPerNs);
    os << bw;
    os << "btbmiss=" << core.btbMissPenalty.count() << ';';
    os << "syscall=" << core.syscallHandlerCycles.count() << ';';
    os << "bpred=" << static_cast<int>(core.bpred.kind) << '/'
       << core.bpred.tableBits << '/' << core.bpred.historyBits << '/'
       << core.bpred.localHistBits << '/' << core.bpred.localTableBits
       << ';';
    os << "btb=" << core.btb.sets << '/' << core.btb.assoc << ';';
    os << "icache=" << (core.modelICache ? 1 : 0) << ';';
    appendCacheGeom(os, "l1i", core.l1i);
}

void
writeUnitStats(Writer &w, const UnitStats &s)
{
    w.u64(s.paired);
    w.u64(s.discarded);
    w.u64(s.broadcasts);
    w.u64(s.saturated ? 1 : 0);
    w.u64(s.parkedAt.count());
}

void
readUnitStats(Reader &r, UnitStats &s)
{
    s.paired = r.u64();
    s.discarded = r.u64();
    s.broadcasts = r.u64();
    s.saturated = r.u64() != 0;
    s.parkedAt = TimePs{r.u64()};
}

} // namespace

ResultCache::ResultCache(std::string cache_dir, int version)
    : dir(std::move(cache_dir)), formatVersion(version)
{
    fatal_if(dir.empty(),
             "ResultCache needs a non-empty cache directory");
}

std::string
ResultCache::singleRunKey(const CoreConfig &core,
                          const std::string &bench,
                          std::uint64_t seed, std::uint64_t trace_len)
{
    std::ostringstream os;
    os << "bench=" << bench << ";seed=" << seed
       << ";len=" << trace_len << ';';
    appendCoreConfig(os, core);
    return os.str();
}

std::string
ResultCache::contestKey(const std::string &bench,
                        const std::vector<CoreConfig> &cores,
                        const ContestConfig &config,
                        std::uint64_t seed, std::uint64_t trace_len)
{
    std::ostringstream os;
    os << "contest;bench=" << bench << ";seed=" << seed
       << ";len=" << trace_len << ';';
    os << "grb=" << config.grbLatencyPs.count() << ';';
    os << "fifo=" << config.fifoCapacity << ';';
    os << "sq=" << config.storeQueueCapacity << ';';
    os << "inj=" << static_cast<int>(config.injectionStyle) << ';';
    os << "early=" << (config.earlyBranchResolve ? 1 : 0) << ';';
    os << "park=" << (config.parkSaturatedLaggers ? 1 : 0) << ';';
    os << "exc=" << config.syscallHandlerPs.count() << ';';
    os << "intp=" << config.interruptPeriodPs.count() << ';';
    os << "inth=" << config.interruptHandlerPs.count() << ';';
    os << "wd=" << config.deadlockStuckTicks << ';';
    os << "ncores=" << cores.size() << ';';
    for (std::size_t i = 0; i < cores.size(); ++i) {
        os << '[' << i << ']';
        appendCoreConfig(os, cores[i]);
    }
    return os.str();
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    // The version participates in the digest, so a version bump
    // addresses different files; the header check below is the
    // guard against digest collisions and stale formats.
    char name[64];
    std::snprintf(name, sizeof(name), "%016llx.bin",
                  static_cast<unsigned long long>(fnv1a64(
                      std::to_string(formatVersion) + "|" + key)));
    return dir + "/" + name;
}

bool
ResultCache::load(const std::string &key, SingleRunResult &result,
                  std::vector<TimePs> &regions) const
{
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in) {
        ++missCount;
        return false;
    }
    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string data = raw.str();

    Reader r(data);
    std::string magic = r.bytes(sizeof(cacheMagic));
    if (!r.ok
        || std::memcmp(magic.data(), cacheMagic,
                       sizeof(cacheMagic)) != 0
        || static_cast<int>(r.u64()) != formatVersion) {
        ++missCount;
        return false;
    }
    std::string stored_key = r.bytes(r.u64());
    if (!r.ok || stored_key != key) {
        ++missCount;
        return false;
    }

    SingleRunResult out;
    out.timePs = TimePs{r.u64()};
    out.ipt = r.f64();
    readStats(r, out.stats);
    readEnergy(r, out.energy);
    std::vector<TimePs> series(r.u64());
    if (!r.ok || series.size() > data.size()) {
        // A corrupt length would reserve absurd memory; any entry's
        // series is necessarily smaller than the file that holds it.
        ++missCount;
        return false;
    }
    for (auto &t : series)
        t = TimePs{r.u64()};
    if (!r.ok || r.pos != data.size()) {
        ++missCount;
        return false;
    }

    result = out;
    regions = std::move(series);
    ++hitCount;
    return true;
}

void
ResultCache::store(const std::string &key,
                   const SingleRunResult &result,
                   const std::vector<TimePs> &regions) const
{
    Writer w;
    w.buf.append(cacheMagic, sizeof(cacheMagic));
    w.u64(static_cast<std::uint64_t>(formatVersion));
    w.u64(key.size());
    w.buf.append(key);
    w.u64(result.timePs.count());
    w.f64(result.ipt);
    writeStats(w, result.stats);
    writeEnergy(w, result.energy);
    w.u64(regions.size());
    for (TimePs t : regions)
        w.u64(t.count());

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("result cache: cannot create '%s': %s", dir.c_str(),
             ec.message().c_str());
        return;
    }

    // Write-then-rename so a concurrent reader (another process
    // sharing the cache directory) never sees a partial entry.
    if (!writeEntryAtomic(entryPath(key), w.buf))
        return;
    ++storeCount;
}

bool
ResultCache::loadContest(const std::string &key,
                         ContestResult &result) const
{
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in) {
        ++missCount;
        return false;
    }
    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string data = raw.str();

    Reader r(data);
    std::string magic = r.bytes(sizeof(contestMagic));
    if (!r.ok
        || std::memcmp(magic.data(), contestMagic,
                       sizeof(contestMagic)) != 0
        || static_cast<int>(r.u64()) != formatVersion) {
        ++missCount;
        return false;
    }
    std::string stored_key = r.bytes(r.u64());
    if (!r.ok || stored_key != key) {
        ++missCount;
        return false;
    }

    ContestResult out;
    out.timePs = TimePs{r.u64()};
    out.ipt = r.f64();
    std::uint64_t cores = r.u64();
    // Any per-core array longer than the file holding it announces a
    // corrupt count before the resize can reserve absurd memory.
    if (!r.ok || cores > data.size()) {
        ++missCount;
        return false;
    }
    out.coreStats.resize(cores);
    out.unitStats.resize(cores);
    out.leadFraction.resize(cores);
    out.energy.resize(cores);
    for (auto &s : out.coreStats)
        readStats(r, s);
    for (auto &s : out.unitStats)
        readUnitStats(r, s);
    for (auto &f : out.leadFraction)
        f = r.f64();
    out.leadChanges = r.u64();
    out.mergedStores = StoreSeq{r.u64()};
    out.exceptionsHandled = r.u64();
    out.interruptsHandled = r.u64();
    for (auto &e : out.energy)
        readEnergy(r, e);
    if (!r.ok || r.pos != data.size()) {
        ++missCount;
        return false;
    }

    result = std::move(out);
    ++hitCount;
    return true;
}

void
ResultCache::storeContest(const std::string &key,
                          const ContestResult &result) const
{
    // The entry is only valid if every per-core array agrees on the
    // core count; a malformed result must not poison the cache.
    const std::size_t cores = result.coreStats.size();
    if (result.unitStats.size() != cores
        || result.leadFraction.size() != cores
        || result.energy.size() != cores) {
        warn("result cache: refusing to store a contest entry with "
             "mismatched per-core array sizes");
        return;
    }

    Writer w;
    w.buf.append(contestMagic, sizeof(contestMagic));
    w.u64(static_cast<std::uint64_t>(formatVersion));
    w.u64(key.size());
    w.buf.append(key);
    w.u64(result.timePs.count());
    w.f64(result.ipt);
    w.u64(cores);
    for (const auto &s : result.coreStats)
        writeStats(w, s);
    for (const auto &s : result.unitStats)
        writeUnitStats(w, s);
    for (double f : result.leadFraction)
        w.f64(f);
    w.u64(result.leadChanges);
    w.u64(result.mergedStores.count());
    w.u64(result.exceptionsHandled);
    w.u64(result.interruptsHandled);
    for (const auto &e : result.energy)
        writeEnergy(w, e);

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("result cache: cannot create '%s': %s", dir.c_str(),
             ec.message().c_str());
        return;
    }
    if (!writeEntryAtomic(entryPath(key), w.buf))
        return;
    ++storeCount;
}

} // namespace contest
