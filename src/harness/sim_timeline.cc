#include "harness/sim_timeline.hh"

#include <algorithm>
#include <cstdio>

namespace contest
{

void
SimTimeline::record(Kind kind, std::string label,
                    Clock::time_point queued, Clock::time_point start,
                    Clock::time_point end, bool cached)
{
    Span s;
    s.kind = kind;
    s.label = std::move(label);
    s.cached = cached;
    s.queuedSec = sinceEpoch(queued);
    s.startSec = sinceEpoch(start);
    s.endSec = sinceEpoch(end);
    std::lock_guard<std::mutex> lock(mu);
    recorded.push_back(std::move(s));
}

void
SimTimeline::recordWindowStats(std::string label,
                               const WindowStats &stats)
{
    std::lock_guard<std::mutex> lock(mu);
    windows.push_back(WindowEntry{std::move(label), stats});
}

std::vector<SimTimeline::WindowEntry>
SimTimeline::windowEntries() const
{
    std::vector<WindowEntry> out;
    {
        std::lock_guard<std::mutex> lock(mu);
        out = windows;
    }
    std::sort(out.begin(), out.end(),
              [](const WindowEntry &a, const WindowEntry &b) {
                  return a.label < b.label;
              });
    return out;
}

std::vector<SimTimeline::Span>
SimTimeline::spans() const
{
    std::vector<Span> out;
    {
        std::lock_guard<std::mutex> lock(mu);
        out = recorded;
    }
    std::sort(out.begin(), out.end(),
              [](const Span &a, const Span &b) {
                  if (a.queuedSec != b.queuedSec)
                      return a.queuedSec < b.queuedSec;
                  return a.label < b.label;
              });
    return out;
}

SimTimeline::Summary
SimTimeline::summary() const
{
    Summary s;
    double first_queue = 0.0;
    double last_end = 0.0;
    bool any = false;
    for (const Span &span : spans()) {
        if (span.cached) {
            ++s.cacheHits;
        } else {
            ++s.sims;
            s.busySec += span.endSec - span.startSec;
        }
        s.queueSec += span.startSec - span.queuedSec;
        if (!any || span.queuedSec < first_queue)
            first_queue = span.queuedSec;
        if (!any || span.endSec > last_end)
            last_end = span.endSec;
        any = true;
    }
    if (any)
        s.wallSec = last_end - first_queue;
    return s;
}

JsonValue
SimTimeline::toJson(unsigned jobs) const
{
    Summary s = summary();
    JsonValue root = JsonValue::object();
    root.set("jobs", JsonValue::number(jobs));
    root.set("sims", JsonValue::number(static_cast<double>(s.sims)));
    root.set("cache_hits",
             JsonValue::number(static_cast<double>(s.cacheHits)));
    root.set("busy_sec", JsonValue::number(s.busySec));
    root.set("wall_sec", JsonValue::number(s.wallSec));
    root.set("queue_sec", JsonValue::number(s.queueSec));
    root.set("concurrency", JsonValue::number(s.concurrency()));

    JsonValue arr = JsonValue::array();
    for (const Span &span : spans()) {
        JsonValue e = JsonValue::object();
        e.set("kind", JsonValue::str(span.kind == Kind::Contest
                                         ? "contest"
                                         : "single"));
        e.set("label", JsonValue::str(span.label));
        e.set("cached", JsonValue::boolean(span.cached));
        e.set("queued_sec", JsonValue::number(span.queuedSec));
        e.set("start_sec", JsonValue::number(span.startSec));
        e.set("end_sec", JsonValue::number(span.endSec));
        arr.push(std::move(e));
    }
    root.set("spans", std::move(arr));

    JsonValue warr = JsonValue::array();
    for (const WindowEntry &we : windowEntries()) {
        const WindowStats &w = we.stats;
        JsonValue e = JsonValue::object();
        e.set("label", JsonValue::str(we.label));
        auto num = [&](const char *key, double v) {
            e.set(key, JsonValue::number(v));
        };
        num("windows", static_cast<double>(w.windows));
        num("window_ticks", static_cast<double>(w.windowTicks));
        num("lane_runs", static_cast<double>(w.laneRuns));
        num("seq_steps", static_cast<double>(w.seqSteps));
        num("burst_steps", static_cast<double>(w.burstSteps));
        num("degenerate_fallbacks",
            static_cast<double>(w.degenerateFallbacks));
        num("seq_required_fallbacks",
            static_cast<double>(w.seqRequiredFallbacks));
        num("cap_growths", static_cast<double>(w.capGrowths));
        num("final_cap_ticks", static_cast<double>(w.finalCapTicks));
        num("horizon_recomputes",
            static_cast<double>(w.horizonRecomputes));
        num("horizon_reuses", static_cast<double>(w.horizonReuses));
        num("mean_window_ticks", w.meanWindowTicks());
        num("oracle_sec", w.oracleSec);
        num("horizon_sec", w.horizonSec);
        num("lane_sec", w.laneSec);
        num("commit_sec", w.commitSec);
        JsonValue hist = JsonValue::array();
        for (unsigned b = 0; b < WindowStats::kHistBuckets; ++b)
            hist.push(JsonValue::number(
                static_cast<double>(w.ticksHist[b])));
        e.set("ticks_hist_log2", std::move(hist));
        warr.push(std::move(e));
    }
    root.set("window_stats", std::move(warr));
    return root;
}

std::string
SimTimeline::renderReport(unsigned jobs) const
{
    Summary s = summary();
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "== timing: %zu simulation(s) + %zu cache hit(s), "
                  "busy %.2f s over %.2f s wall (%.2fx mean "
                  "concurrency on %u jobs), %.2f s queued\n",
                  s.sims, s.cacheHits, s.busySec, s.wallSec,
                  s.concurrency(), jobs, s.queueSec);
    out += buf;

    std::vector<Span> slowest = spans();
    std::sort(slowest.begin(), slowest.end(),
              [](const Span &a, const Span &b) {
                  return (a.endSec - a.startSec)
                      > (b.endSec - b.startSec);
              });
    std::size_t top = std::min<std::size_t>(slowest.size(), 5);
    for (std::size_t i = 0; i < top; ++i) {
        const Span &span = slowest[i];
        std::snprintf(buf, sizeof(buf),
                      "   %-8s %-28s %7.3f s (queued %.3f s)%s\n",
                      span.kind == Kind::Contest ? "contest"
                                                 : "single",
                      span.label.c_str(), span.endSec - span.startSec,
                      span.startSec - span.queuedSec,
                      span.cached ? " [disk]" : "");
        out += buf;
    }

    const std::vector<WindowEntry> wes = windowEntries();
    if (!wes.empty()) {
        out += "== windowed contests (oracle/horizon/lane/commit "
               "overhead split):\n";
        for (const WindowEntry &we : wes) {
            const WindowStats &w = we.stats;
            std::snprintf(
                buf, sizeof(buf),
                "   %-28s %8llu win (mean %6.1f ticks, cap %llu), "
                "%llu seq (%llu burst), %llu degen\n",
                we.label.c_str(),
                static_cast<unsigned long long>(w.windows),
                w.meanWindowTicks(),
                static_cast<unsigned long long>(w.finalCapTicks),
                static_cast<unsigned long long>(w.seqSteps),
                static_cast<unsigned long long>(w.burstSteps),
                static_cast<unsigned long long>(
                    w.degenerateFallbacks));
            out += buf;
            std::snprintf(
                buf, sizeof(buf),
                "   %-28s oracle %.3f s, horizon %.3f s (%llu/%llu "
                "recompute/reuse), lane %.3f s, commit %.3f s\n",
                "", w.oracleSec, w.horizonSec,
                static_cast<unsigned long long>(w.horizonRecomputes),
                static_cast<unsigned long long>(w.horizonReuses),
                w.laneSec, w.commitSec);
            out += buf;
        }
    }
    return out;
}

} // namespace contest
