/**
 * @file
 * Region logging and oracle granularity fusion for the paper's
 * Section 2 limit study (Figure 1).
 *
 * A RegionLog records the simulated time spent retiring each
 * consecutive 20-instruction region of a run. fuseRegionTimes()
 * then models oracle switching between two configurations at a
 * given granularity: each granularity-sized block of instructions
 * is charged the time of whichever configuration retired it faster
 * (clock periods already folded in, since the log stores wall time,
 * not cycles).
 */

#ifndef CONTEST_HARNESS_REGION_LOG_HH
#define CONTEST_HARNESS_REGION_LOG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace contest
{

/** Per-region retirement times of one run. */
class RegionLog
{
  public:
    /** The paper logs cycles per 20 dynamic instructions. */
    static constexpr std::uint64_t regionInsts = 20;

    RegionLog() = default;

    /** Rebuild from a recorded series (result-cache restore). */
    explicit RegionLog(std::vector<TimePs> recorded)
        : times(std::move(recorded))
    {}

    /**
     * Observe one retirement (wired to OooCore::setRetireCallback).
     * Every regionInsts-th retirement closes a region.
     */
    CONTEST_WINDOW_SAFE // single-core harness only, never contested
    void
    onRetire(InstSeq seq, TimePs now)
    {
        if ((seq + 1).count() % regionInsts == 0) {
            times.push_back(now - regionStart);
            regionStart = now;
        }
    }

    /** Number of closed regions. */
    std::size_t size() const { return times.size(); }

    /** Time spent in region @p i, in picoseconds. */
    TimePs operator[](std::size_t i) const { return times[i]; }

    /** Total time over all closed regions. */
    TimePs total() const;

    /** The raw series (for fusion). */
    const std::vector<TimePs> &series() const { return times; }

  private:
    std::vector<TimePs> times;
    TimePs regionStart{};
};

/**
 * Oracle-fused execution time of two runs at a switching
 * granularity of @p regions_per_block regions (i.e.
 * regions_per_block * 20 instructions).
 *
 * @return total fused time in picoseconds
 */
TimePs fuseRegionTimes(const std::vector<TimePs> &a,
                       const std::vector<TimePs> &b,
                       std::uint64_t regions_per_block);

} // namespace contest

#endif // CONTEST_HARNESS_REGION_LOG_HH
