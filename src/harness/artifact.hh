/**
 * @file
 * Structured experiment artifacts. Every registered experiment emits
 * one FigureArtifact — its tables (each cell carrying both the
 * rendered text and, where applicable, the underlying number),
 * summary scalars, free-text notes, and run metadata. One renderer
 * turns the artifact into the familiar stdout figure, one writer
 * serializes it to JSON for the golden regression gate, and
 * diffArtifacts() compares two artifacts field-by-field under a
 * numeric tolerance policy.
 */

#ifndef CONTEST_HARNESS_ARTIFACT_HH
#define CONTEST_HARNESS_ARTIFACT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"

namespace contest
{

/** One table cell: rendered text plus the number it was formatted
 *  from (when the cell is a measurement rather than a label). */
struct ArtifactCell
{
    std::string text;
    bool numeric = false;
    double value = 0.0;
};

/** A label cell. */
ArtifactCell cellText(std::string text);

/** A numeric cell rendered like TextTable::num. */
ArtifactCell cellNum(double value, int precision = 2);

/** A numeric cell rendered like TextTable::pct (value stays the
 *  raw fraction, e.g. 0.153 for "+15.3%"). */
ArtifactCell cellPct(double fraction, int precision = 1);

/** A numeric cell holding an integral count. */
ArtifactCell cellCount(std::uint64_t count);

/** A numeric cell with caller-provided rendering. */
ArtifactCell cellCustom(double value, std::string text);

/** One titled table of an artifact. */
struct ArtifactTable
{
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<ArtifactCell>> rows;

    /** Append a row; fatal() when the width mismatches columns. */
    void row(std::vector<ArtifactCell> cells);

    /** Render in the TextTable format. */
    std::string renderText() const;
};

/** Run metadata stamped on every artifact. */
struct ArtifactMeta
{
    /** Bumped whenever artifact semantics change incompatibly. */
    static constexpr int currentSchema = 1;

    int schema = currentSchema;
    std::uint64_t traceLen = 0;
    std::uint64_t seed = 0;
    unsigned jobs = 1;
    bool fast = false;
    /** Hardware threads on the producing machine (0 = unknown);
     *  informational only (never compared). Wall-clock scalars —
     *  the contest_speedup_* family above all — are meaningless
     *  without it: a 4-lane "speedup" below 1.0 on a 1-CPU box is
     *  overhead accounting, not a parallelism verdict. */
    unsigned cpus = 0;
    /** `git describe --always --dirty` of the producing tree;
     *  informational only (never compared). */
    std::string git;
};

/** The ArtifactMeta of this process (env knobs + git describe). */
ArtifactMeta currentArtifactMeta();

/** Structured output of one experiment. */
struct FigureArtifact
{
    FigureArtifact() = default;
    FigureArtifact(std::string experiment_name,
                   std::string experiment_title)
        : name(std::move(experiment_name)),
          title(std::move(experiment_title)),
          meta(currentArtifactMeta())
    {}

    std::string name;  //!< registry name, e.g. "fig06"
    std::string title; //!< human title, e.g. "Figure 6: ..."
    ArtifactMeta meta;
    std::vector<ArtifactTable> tables;
    /** Named summary measurements, in insertion order. */
    std::vector<std::pair<std::string, double>> scalars;
    /** Commentary paragraphs (rendered, never diffed: they embed
     *  wall-clock times and pre-formatted numbers). */
    std::vector<std::string> notes;

    /** Start a new table and return it for filling. */
    ArtifactTable &table(std::string table_title);

    /** Record a named summary scalar; fatal() on duplicate name. */
    void scalar(const std::string &scalar_name, double value);

    /** Append a commentary paragraph. */
    void note(std::string text);

    /** The full stdout rendering: preamble, tables, notes. */
    std::string renderText() const;

    JsonValue toJson() const;

    /**
     * Rebuild from JSON. On structural failure returns an empty
     * artifact and stores a message in @p error.
     */
    static FigureArtifact fromJson(const JsonValue &v,
                                   std::string *error);
};

/** Numeric tolerance policy for golden comparison. */
struct ArtifactTolerance
{
    double rtol = 1e-6;
    double atol = 1e-9;

    /** Do two measurements agree under this policy? Any non-finite
     *  value (NaN or ±Inf) on either side is a hard failure: an
     *  infinite golden would otherwise make the rtol bound infinite
     *  and wave every candidate through. */
    bool close(double golden, double candidate) const;
};

/**
 * Field-by-field comparison of a candidate artifact against a
 * golden one: schema/trace-length/seed/fast metadata, scalar set
 * and values, table titles/columns/shape, and every cell (numeric
 * cells under the tolerance, label cells exactly). meta.jobs,
 * meta.git and the notes are informational and never compared.
 *
 * @return one human-readable line per difference; empty means equal
 */
std::vector<std::string>
diffArtifacts(const FigureArtifact &golden,
              const FigureArtifact &candidate,
              const ArtifactTolerance &tol = {});

/**
 * Where emitted artifacts go: always rendered to stdout (unless
 * muted), and written as `<out_dir>/<name>.json` when an output
 * directory is configured.
 */
class ArtifactSink
{
  public:
    /**
     * @param out_dir directory for JSON artifacts (created on first
     *        write); empty disables file output
     * @param echo render each artifact to stdout
     */
    explicit ArtifactSink(std::string out_dir = "", bool echo = true);

    /** Render and (when configured) persist one artifact. */
    void emit(const FigureArtifact &artifact);

    /** Paths written so far. */
    const std::vector<std::string> &writtenFiles() const
    {
        return files;
    }

    /** Every artifact emitted through this sink (test hook). */
    const std::vector<FigureArtifact> &emitted() const
    {
        return kept;
    }

  private:
    std::string dir;
    bool echoStdout;
    std::vector<std::string> files;
    std::vector<FigureArtifact> kept;
};

} // namespace contest

#endif // CONTEST_HARNESS_ARTIFACT_HH
