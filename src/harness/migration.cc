#include "harness/migration.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

MigrationResult
simulateMigration(const std::vector<TimePs> &a,
                  const std::vector<TimePs> &b,
                  const MigrationConfig &config)
{
    fatal_if(config.regionsPerBlock == 0,
             "simulateMigration: zero block size");
    std::size_t n = std::min(a.size(), b.size());

    MigrationResult result;
    std::uint64_t blocks_on_a = 0;
    std::uint64_t blocks = 0;

    // Execution starts on whichever core the policy would pick for
    // the first block (oracle) or core A (history, no past yet).
    int current = 0;
    bool first = true;
    TimePs prev_ta{};
    TimePs prev_tb{};

    for (std::size_t start = 0; start < n;
         start += config.regionsPerBlock) {
        std::size_t end =
            std::min(n, start + config.regionsPerBlock);
        TimePs ta{};
        TimePs tb{};
        for (std::size_t i = start; i < end; ++i) {
            ta += a[i];
            tb += b[i];
        }

        int want = current;
        switch (config.policy) {
          case MigrationPolicy::Oracle:
            want = ta <= tb ? 0 : 1;
            break;
          case MigrationPolicy::History:
            if (first)
                want = 0;
            else
                want = prev_ta <= prev_tb ? 0 : 1;
            break;
        }

        if (!first && want != current) {
            result.totalPs += config.migrationPenaltyPs;
            ++result.migrations;
        }
        current = want;
        first = false;

        result.totalPs += current == 0 ? ta : tb;
        blocks_on_a += current == 0 ? 1 : 0;
        ++blocks;
        prev_ta = ta;
        prev_tb = tb;
    }

    result.shareA = blocks
        ? static_cast<double>(blocks_on_a)
            / static_cast<double>(blocks)
        : 0.0;
    return result;
}

} // namespace contest
