#include "harness/runner.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

Runner::Runner(std::uint64_t trace_len, std::uint64_t seed)
    : len(trace_len), seed_(seed)
{
    fatal_if(trace_len < RegionLog::regionInsts,
             "Runner: trace length %llu too short",
             static_cast<unsigned long long>(trace_len));
}

TracePtr
Runner::trace(const std::string &bench)
{
    auto it = traces.find(bench);
    if (it != traces.end())
        return it->second;
    TracePtr t = makeBenchmarkTrace(bench, seed_, len);
    traces.emplace(bench, t);
    return t;
}

const LoggedRun &
Runner::single(const std::string &bench, const std::string &core)
{
    auto key = std::make_pair(bench, core);
    auto it = singles.find(key);
    if (it != singles.end())
        return it->second;

    TracePtr t = trace(bench);
    LoggedRun run;
    run.regions = std::make_shared<RegionLog>();

    OooCore sim(coreConfigByName(core), t);
    RegionLog *log = run.regions.get();
    sim.setRetireCallback(
        [log](InstSeq seq, TimePs now) { log->onRetire(seq, now); });

    TimePs now = 0;
    while (!sim.done()) {
        sim.tick(now);
        now += sim.periodPs();
    }
    run.result.timePs = now;
    run.result.ipt = instPerNs(t->size(), now);
    run.result.stats = sim.stats();

    ActivityCounts activity;
    activity.l1Accesses = sim.memory().l1().accesses();
    activity.l1Misses = sim.memory().l1().misses();
    activity.l2Accesses = sim.memory().l2().accesses();
    activity.l2Misses = sim.memory().l2().misses();
    run.result.energy = estimateEnergy(coreConfigByName(core),
                                       sim.stats(), activity, now);

    return singles.emplace(key, std::move(run)).first->second;
}

ContestResult
Runner::contested(const std::string &bench,
                  const std::vector<CoreConfig> &cores,
                  const ContestConfig &config)
{
    ContestSystem sys(cores, trace(bench), config);
    return sys.run();
}

ContestResult
Runner::contestedPair(const std::string &bench,
                      const std::string &core_a,
                      const std::string &core_b,
                      const ContestConfig &config)
{
    return contested(
        bench, {coreConfigByName(core_a), coreConfigByName(core_b)},
        config);
}

const IptMatrix &
Runner::matrix()
{
    if (cachedMatrix)
        return *cachedMatrix;

    auto m = std::make_unique<IptMatrix>();
    m->benchNames = profileNames();
    for (const auto &core : appendixAPalette())
        m->coreNames.push_back(core.name);
    for (const auto &bench : m->benchNames) {
        std::vector<double> row;
        for (const auto &core : m->coreNames)
            row.push_back(single(bench, core).result.ipt);
        m->ipt.push_back(std::move(row));
    }
    m->validate();
    cachedMatrix = std::move(m);
    return *cachedMatrix;
}

Runner::PairChoice
Runner::bestContestingPair(const std::string &bench,
                           const ContestConfig &config,
                           unsigned simulate_top)
{
    fatal_if(simulate_top == 0, "bestContestingPair: nothing to try");

    const auto &palette = appendixAPalette();

    // Rank all pairs by the oracle fusion of their region logs at a
    // fine granularity (the Figure 1 estimate of fine-grain
    // switching benefit), then contest the most promising ones.
    struct Ranked
    {
        double fusedIpt;
        std::size_t a;
        std::size_t b;
    };
    std::vector<Ranked> ranked;
    for (std::size_t a = 0; a < palette.size(); ++a) {
        const auto &ra = single(bench, palette[a].name);
        for (std::size_t b = a + 1; b < palette.size(); ++b) {
            const auto &rb = single(bench, palette[b].name);
            TimePs fused = fuseRegionTimes(ra.regions->series(),
                                           rb.regions->series(), 4);
            std::uint64_t insts =
                std::min(ra.regions->size(), rb.regions->size())
                * RegionLog::regionInsts;
            ranked.push_back(
                Ranked{instPerNs(insts, fused), a, b});
        }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &x, const Ranked &y) {
                  return x.fusedIpt > y.fusedIpt;
              });

    PairChoice best;
    double best_ipt = -1.0;
    unsigned tried = 0;
    for (const auto &cand : ranked) {
        if (tried >= simulate_top)
            break;
        ++tried;
        ContestResult r = contestedPair(bench, palette[cand.a].name,
                                        palette[cand.b].name, config);
        if (r.ipt > best_ipt) {
            best_ipt = r.ipt;
            best.coreA = palette[cand.a].name;
            best.coreB = palette[cand.b].name;
            best.result = r;
        }
    }
    panic_if(best_ipt < 0.0, "bestContestingPair tried no pairs");
    return best;
}

} // namespace contest
