#include "harness/runner.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/log.hh"

namespace contest
{

namespace
{

/** In-memory memo key of a single run: bench and core name, with a
 *  separator no name contains. */
std::string
singleMemoKey(const std::string &bench, const std::string &core)
{
    return bench + '\x1f' + core;
}

/** Timeline label of a contested run: bench @ core+core+... */
std::string
contestLabel(const std::string &bench,
             const std::vector<CoreConfig> &cores)
{
    std::string label = bench + '@';
    for (std::size_t i = 0; i < cores.size(); ++i) {
        if (i > 0)
            label += '+';
        label += cores[i].name;
    }
    return label;
}

} // namespace

Runner::Runner(std::uint64_t trace_len, std::uint64_t seed,
               ThreadPool *pool)
    : len(trace_len), seed_(seed), contestJobs_(contestJobs()),
      pool_(pool != nullptr ? pool : &ThreadPool::global())
{
    fatal_if(trace_len < RegionLog::regionInsts,
             "Runner: trace length %llu too short",
             static_cast<unsigned long long>(trace_len));
    // Steady-state sizes of the full suite (11 benches x 11 cores
    // singles, a few hundred distinct contests); reserving up front
    // keeps each shard mutex's critical section to a probe that
    // never rehashes.
    traces.reserve(32);
    singles.reserve(256);
    contests.reserve(512);
}

TracePtr
Runner::trace(const std::string &bench, std::uint64_t trace_len)
{
    const std::uint64_t use_len = trace_len != 0 ? trace_len : len;
    TraceEntry *entry = traces.entryFor(
        HashedKey(bench + '\x1f' + std::to_string(use_len)));
    std::call_once(entry->once, [&] {
        entry->value = makeBenchmarkTrace(bench, seed_, use_len);
    });
    return entry->value;
}

const LoggedRun &
Runner::single(const std::string &bench, const std::string &core)
{
    auto queued = SimTimeline::now();
    SingleEntry *entry =
        singles.entryFor(HashedKey(singleMemoKey(bench, core)));
    std::call_once(entry->once, [&] {
        auto start = SimTimeline::now();
        LoggedRun &run = entry->run;
        const CoreConfig &config = coreConfigByName(core);

        // Persistent layer first: a disk hit restores the result and
        // region series without generating the trace or simulating.
        std::string key;
        if (disk != nullptr) {
            key = ResultCache::singleRunKey(config, bench, seed_, len);
            SingleRunResult restored;
            std::vector<TimePs> series;
            if (disk->load(key, restored, series)) {
                run.result = restored;
                run.regions =
                    std::make_shared<RegionLog>(std::move(series));
                ++diskHitCount;
                if (timeline_ != nullptr)
                    timeline_->record(SimTimeline::Kind::Single,
                                      bench + '@' + core, queued,
                                      start, SimTimeline::now(),
                                      true);
                return;
            }
        }

        TracePtr t = trace(bench);
        run.regions = std::make_shared<RegionLog>();

        OooCore sim(config, t);
        RegionLog *log = run.regions.get();
        sim.setRetireCallback(
            [log](InstSeq seq, TimePs now) { log->onRetire(seq, now); });

        TimePs now{};
        while (!sim.done()) {
            sim.tick(now);
            now += sim.periodPs();
        }
        run.result.timePs = now;
        run.result.ipt = instPerNs(t->endSeq(), now);
        run.result.stats = sim.stats();
        run.result.energy = estimateEnergy(config, sim.stats(),
                                           baseActivity(sim), now);
        ++simsDone;

        if (disk != nullptr)
            disk->store(key, run.result, run.regions->series());
        if (timeline_ != nullptr)
            timeline_->record(SimTimeline::Kind::Single,
                              bench + '@' + core, queued, start,
                              SimTimeline::now(), false);
    });
    return entry->run;
}

const ContestResult &
Runner::contested(const std::string &bench,
                  const std::vector<CoreConfig> &cores,
                  const ContestConfig &config,
                  std::uint64_t trace_len)
{
    auto queued = SimTimeline::now();
    const std::uint64_t use_len = trace_len != 0 ? trace_len : len;
    // One canonical string serves as the in-memory memo key and, on
    // a miss, the persistent-cache key: two contested() calls agree
    // on it iff they are the same deterministic simulation.
    std::string key = ResultCache::contestKey(bench, cores, config,
                                              seed_, use_len);
    ContestEntry *entry =
        contests.entryFor(HashedKey(std::move(key)));
    std::call_once(entry->once, [&] {
        auto start = SimTimeline::now();
        const std::string disk_key = ResultCache::contestKey(
            bench, cores, config, seed_, use_len);
        if (disk != nullptr
            && disk->loadContest(disk_key, entry->result)) {
            ++contestDiskHitCount;
            if (timeline_ != nullptr)
                timeline_->record(SimTimeline::Kind::Contest,
                                  contestLabel(bench, cores), queued,
                                  start, SimTimeline::now(), true);
            return;
        }

        ContestSystem sys(cores, trace(bench, use_len), config);
        entry->result = sys.run(contestJobs_);
        ++contestsDone;

        if (disk != nullptr)
            disk->storeContest(disk_key, entry->result);
        if (timeline_ != nullptr) {
            timeline_->record(SimTimeline::Kind::Contest,
                              contestLabel(bench, cores), queued,
                              start, SimTimeline::now(), false);
            // WindowStats live on the system, not the cached result:
            // they describe this machine's execution, so persisting
            // them alongside the bit-exact ContestResult would be
            // wrong. Read them off the live system instead.
            if (sys.windowStats().active())
                timeline_->recordWindowStats(
                    contestLabel(bench, cores), sys.windowStats());
        }
    });
    return entry->result;
}

const ContestResult &
Runner::contestedPair(const std::string &bench,
                      const std::string &core_a,
                      const std::string &core_b,
                      const ContestConfig &config)
{
    return contested(
        bench, {coreConfigByName(core_a), coreConfigByName(core_b)},
        config);
}

const IptMatrix &
Runner::matrix()
{
    std::call_once(matrixOnce, [&] {
        auto m = std::make_unique<IptMatrix>();
        m->benchNames = profileNames();
        for (const auto &core : appendixAPalette())
            m->coreNames.push_back(core.name);

        // Warm every (bench, core) cell concurrently; each run is
        // self-contained, so the assembly below reads the same
        // values a serial sweep would have produced.
        const std::size_t nc = m->coreNames.size();
        pool_->parallelFor(
            m->benchNames.size() * nc, [&](std::size_t i) {
                single(m->benchNames[i / nc], m->coreNames[i % nc]);
            });

        for (const auto &bench : m->benchNames) {
            std::vector<double> row;
            for (const auto &core : m->coreNames)
                row.push_back(single(bench, core).result.ipt);
            m->ipt.push_back(std::move(row));
        }
        m->validate();
        cachedMatrix = std::move(m);
    });
    return *cachedMatrix;
}

Runner::PairChoice
Runner::bestContestingPair(const std::string &bench,
                           const ContestConfig &config,
                           unsigned simulate_top)
{
    fatal_if(simulate_top == 0, "bestContestingPair: nothing to try");

    const auto &palette = appendixAPalette();

    // Warm the per-core single runs concurrently before ranking.
    pool_->parallelFor(palette.size(), [&](std::size_t i) {
        single(bench, palette[i].name);
    });

    // Rank all pairs by the oracle fusion of their region logs at a
    // fine granularity (the Figure 1 estimate of fine-grain
    // switching benefit), then contest the most promising ones.
    struct Ranked
    {
        double fusedIpt;
        std::size_t a;
        std::size_t b;
    };
    std::vector<Ranked> ranked;
    for (std::size_t a = 0; a < palette.size(); ++a) {
        const auto &ra = single(bench, palette[a].name);
        for (std::size_t b = a + 1; b < palette.size(); ++b) {
            const auto &rb = single(bench, palette[b].name);
            TimePs fused = fuseRegionTimes(ra.regions->series(),
                                           rb.regions->series(), 4);
            std::uint64_t insts =
                std::min(ra.regions->size(), rb.regions->size())
                * RegionLog::regionInsts;
            ranked.push_back(
                Ranked{instPerNs(InstSeq{insts}, fused), a, b});
        }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &x, const Ranked &y) {
                  return x.fusedIpt > y.fusedIpt;
              });

    // Contest the top candidates concurrently (each run is memoized
    // under its own once-latch), then pick the winner in ranked
    // order so ties resolve exactly as the serial scan did.
    std::size_t tried = std::min<std::size_t>(simulate_top,
                                              ranked.size());
    std::vector<const ContestResult *> results(tried);
    pool_->parallelFor(tried, [&](std::size_t i) {
        results[i] = &contestedPair(bench, palette[ranked[i].a].name,
                                    palette[ranked[i].b].name,
                                    config);
    });

    PairChoice best;
    double best_ipt = -1.0;
    for (std::size_t i = 0; i < tried; ++i) {
        if (results[i]->ipt > best_ipt) {
            best_ipt = results[i]->ipt;
            best.coreA = palette[ranked[i].a].name;
            best.coreB = palette[ranked[i].b].name;
            best.result = *results[i];
        }
    }
    panic_if(best_ipt < 0.0, "bestContestingPair tried no pairs");
    return best;
}

} // namespace contest
