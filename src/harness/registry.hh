/**
 * @file
 * The experiment registry. Each figure/table/ablation registers
 * itself once (REGISTER_EXPERIMENT) as a function over a shared
 * Runner and an ArtifactSink; the contest_bench driver then runs
 * any subset in one process, so the Runner's memoized single-core
 * runs are simulated once for the whole suite instead of once per
 * standalone binary.
 */

#ifndef CONTEST_HARNESS_REGISTRY_HH
#define CONTEST_HARNESS_REGISTRY_HH

#include <string>
#include <vector>

#include "harness/artifact.hh"
#include "harness/runner.hh"

namespace contest
{

struct ExperimentContext;

using ExperimentFn = void (*)(ExperimentContext &);

/** One registered experiment. */
struct ExperimentInfo
{
    std::string name;  //!< selector, e.g. "fig06"
    std::string title; //!< human title, e.g. "Figure 6: ..."
    ExperimentFn fn = nullptr;
    /**
     * Included in `--all`. Standalone-only experiments (e.g. the
     * wall-clock throughput benchmark, whose artifact can never be
     * bit-stable) must be selected by name.
     */
    bool inSuite = true;
};

/** Everything an experiment body needs. */
struct ExperimentContext
{
    Runner &runner;
    ArtifactSink &sink;
    /** The experiment's own registration (artifact name/title). */
    const ExperimentInfo &info;

    /** A fresh artifact named after this experiment. */
    FigureArtifact
    artifact() const
    {
        return FigureArtifact(info.name, info.title);
    }
};

/**
 * Name-addressed collection of experiments. Normally used through
 * the process-wide instance() that REGISTER_EXPERIMENT populates;
 * directly constructible so tests can build private registries.
 */
class ExperimentRegistry
{
  public:
    /** The process-wide registry. */
    static ExperimentRegistry &instance();

    /** Register one experiment; fatal() on a duplicate name. */
    void add(ExperimentInfo info);

    /** Experiment by name, or nullptr. */
    const ExperimentInfo *find(const std::string &name) const;

    /**
     * All experiments sorted by name (static-initialization order
     * across translation units is unspecified, so the sorted view
     * is the deterministic one).
     */
    std::vector<const ExperimentInfo *> all() const;

    /** Number of registered experiments. */
    std::size_t size() const { return experiments.size(); }

  private:
    std::vector<ExperimentInfo> experiments;
};

/** Registration helper for namespace-scope static objects. */
struct ExperimentRegistrar
{
    ExperimentRegistrar(const char *name, const char *title,
                        ExperimentFn fn, bool in_suite = true)
    {
        ExperimentRegistry::instance().add(
            ExperimentInfo{name, title, fn, in_suite});
    }
};

} // namespace contest

/**
 * Register @p fn under @p name in the process-wide registry. Use at
 * namespace scope, one registration per experiment translation unit.
 */
#define REGISTER_EXPERIMENT(name, title, fn)                          \
    static const ::contest::ExperimentRegistrar                       \
        experimentRegistrar_##fn{name, title, fn}

/**
 * Like REGISTER_EXPERIMENT, but excluded from `--all`: the
 * experiment only runs when selected by name (or as the sole
 * registration of a standalone binary).
 */
#define REGISTER_EXPERIMENT_STANDALONE(name, title, fn)               \
    static const ::contest::ExperimentRegistrar                       \
        experimentRegistrar_##fn{name, title, fn, false}

#endif // CONTEST_HARNESS_REGISTRY_HH
