/**
 * @file
 * Shared scaffolding for the experiment suite: the process-wide
 * Runner configured from the environment (with the optional
 * persistent result cache attached), and small helpers shared by
 * every figure/table.
 */

#ifndef CONTEST_HARNESS_EXPERIMENT_HH
#define CONTEST_HARNESS_EXPERIMENT_HH

#include <string>

#include "common/env.hh"
#include "common/table.hh"
#include "harness/runner.hh"

namespace contest
{

/**
 * The process-wide runner used by the experiment suite, configured
 * from CONTEST_TRACE_LEN / CONTEST_SEED on first use. When
 * CONTEST_CACHE_DIR names a directory, a persistent ResultCache is
 * attached so single-core runs survive across processes.
 */
Runner &benchRunner();

/** Speedup of @p value over @p baseline as a fraction. */
inline double
speedup(double value, double baseline)
{
    return baseline > 0.0 ? value / baseline - 1.0 : 0.0;
}

} // namespace contest

#endif // CONTEST_HARNESS_EXPERIMENT_HH
