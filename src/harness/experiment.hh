/**
 * @file
 * Shared scaffolding for the bench binaries: the process-wide Runner
 * configured from the environment, and small formatting helpers so
 * every figure/table is printed in one consistent style.
 */

#ifndef CONTEST_HARNESS_EXPERIMENT_HH
#define CONTEST_HARNESS_EXPERIMENT_HH

#include <string>

#include "common/env.hh"
#include "common/table.hh"
#include "harness/runner.hh"

namespace contest
{

/**
 * The process-wide runner used by a bench binary, configured from
 * CONTEST_TRACE_LEN / CONTEST_SEED on first use.
 */
Runner &benchRunner();

/** Speedup of @p value over @p baseline as a fraction. */
inline double
speedup(double value, double baseline)
{
    return baseline > 0.0 ? value / baseline - 1.0 : 0.0;
}

/** Print the standard bench header (trace length, seed, mode). */
void printBenchPreamble(const std::string &experiment);

} // namespace contest

#endif // CONTEST_HARNESS_EXPERIMENT_HH
