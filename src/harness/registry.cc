#include "harness/registry.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(ExperimentInfo info)
{
    fatal_if(info.name.empty() || info.fn == nullptr,
             "experiment registration needs a name and a function");
    fatal_if(find(info.name) != nullptr,
             "experiment '%s' is registered twice",
             info.name.c_str());
    experiments.push_back(std::move(info));
}

const ExperimentInfo *
ExperimentRegistry::find(const std::string &name) const
{
    for (const auto &e : experiments)
        if (e.name == name)
            return &e;
    return nullptr;
}

std::vector<const ExperimentInfo *>
ExperimentRegistry::all() const
{
    std::vector<const ExperimentInfo *> out;
    out.reserve(experiments.size());
    for (const auto &e : experiments)
        out.push_back(&e);
    std::sort(out.begin(), out.end(),
              [](const ExperimentInfo *a, const ExperimentInfo *b) {
                  return a->name < b->name;
              });
    return out;
}

} // namespace contest
