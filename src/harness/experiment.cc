#include "harness/experiment.hh"

#include <cstdlib>

namespace contest
{

Runner &
benchRunner()
{
    static Runner runner(benchTraceLen(), benchSeed());
    static const bool attached = [] {
        const char *cache_dir = std::getenv("CONTEST_CACHE_DIR");
        if (cache_dir != nullptr && *cache_dir != '\0') {
            static ResultCache cache{std::string(cache_dir)};
            runner.setResultCache(&cache);
        }
        return true;
    }();
    (void)attached;
    return runner;
}

} // namespace contest
