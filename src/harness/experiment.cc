#include "harness/experiment.hh"

#include <cstdio>

namespace contest
{

Runner &
benchRunner()
{
    static Runner runner(benchTraceLen(), benchSeed());
    return runner;
}

void
printBenchPreamble(const std::string &experiment)
{
    std::printf(
        "# %s | trace length %llu, seed %llu, jobs %u%s\n",
        experiment.c_str(),
        static_cast<unsigned long long>(benchTraceLen()),
        static_cast<unsigned long long>(benchSeed()),
        defaultJobs(),
        benchFastMode() ? ", fast mode" : "");
    std::fflush(stdout);
}

} // namespace contest
