#include "common/stats.hh"

#include <cmath>

namespace contest
{

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double recip_sum = 0.0;
    for (double x : xs) {
        fatal_if(x <= 0.0, "harmonicMean requires positive values");
        recip_sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / recip_sum;
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        fatal_if(x <= 0.0, "geometricMean requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
weightedHarmonicMean(const std::vector<double> &xs,
                     const std::vector<double> &weights)
{
    fatal_if(xs.size() != weights.size(),
             "weightedHarmonicMean: size mismatch (%zu vs %zu)",
             xs.size(), weights.size());
    if (xs.empty())
        return 0.0;
    double w_sum = 0.0;
    double ratio_sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        fatal_if(xs[i] <= 0.0 || weights[i] <= 0.0,
                 "weightedHarmonicMean requires positive inputs");
        w_sum += weights[i];
        ratio_sum += weights[i] / xs[i];
    }
    return w_sum / ratio_sum;
}

std::size_t
argmaxFirst(const std::vector<double> &xs)
{
    fatal_if(xs.empty(), "argmaxFirst over an empty vector");
    std::size_t best = 0;
    for (std::size_t i = 1; i < xs.size(); ++i) {
        if (xs[i] > xs[best])
            best = i;
    }
    return best;
}

} // namespace contest
