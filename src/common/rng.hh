/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (workload generation,
 * annealing moves, jitter in phase lengths) draws from an Rng seeded
 * explicitly by the caller, so a given seed reproduces a run bit for
 * bit across platforms. The generator is xoshiro256**, seeded through
 * splitmix64 as its authors recommend.
 */

#ifndef CONTEST_COMMON_RNG_HH
#define CONTEST_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/log.hh"

namespace contest
{

/** Deterministic, seedable xoshiro256** generator with helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the state from a new seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below() with zero bound");
        // Lemire-style rejection to avoid modulo bias.
        std::uint64_t threshold = (~bound + 1) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(lo > hi, "Rng::range() with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial that succeeds with probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Geometric number of failures before the first success,
     * success probability p in (0, 1].
     */
    std::uint64_t
    geometric(double p)
    {
        panic_if(p <= 0.0 || p > 1.0, "Rng::geometric() needs 0 < p <= 1");
        if (p >= 1.0)
            return 0;
        std::uint64_t n = 0;
        while (!chance(p) && n < 1'000'000)
            ++n;
        return n;
    }

    /**
     * Pick an index in [0, weights.size()) with probability
     * proportional to the weights; total weight must be positive.
     */
    template <typename Container>
    std::size_t
    weighted(const Container &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        panic_if(total <= 0.0, "Rng::weighted() with non-positive total");
        double point = uniform() * total;
        std::size_t idx = 0;
        for (double w : weights) {
            if (point < w)
                return idx;
            point -= w;
            ++idx;
        }
        return weights.size() - 1;
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng
    fork()
    {
        return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::array<std::uint64_t, 4> state{};
};

} // namespace contest

#endif // CONTEST_COMMON_RNG_HH
