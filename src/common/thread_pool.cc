#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/env.hh"

namespace contest
{

/** One parallelFor() invocation: an atomic index dispenser plus a
 *  completion latch. */
struct ThreadPool::Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::atomic<std::size_t> next{0};

    std::mutex m;
    std::condition_variable doneCv;
    std::size_t done = 0; //!< tasks finished (guarded by m)

    /** Storage behind fn for post()ed tasks, which outlive their
     *  caller's stack frame. */
    std::function<void(std::size_t)> owned;
};

ThreadPool::ThreadPool(unsigned jobs_total)
{
    unsigned workers = jobs_total > 1 ? jobs_total - 1 : 0;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::runBatchTasks(Batch &batch)
{
    for (;;) {
        std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.n)
            return;
        (*batch.fn)(i);
        std::lock_guard<std::mutex> lock(batch.m);
        if (++batch.done == batch.n)
            batch.doneCv.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [this] { return stopping || !pending.empty(); });
            if (pending.empty()) {
                if (stopping)
                    return;
                continue;
            }
            batch = pending.front();
            if (batch->next.load(std::memory_order_relaxed)
                >= batch->n) {
                // Exhausted batch still queued: retire it and look
                // for more work.
                pending.pop_front();
                continue;
            }
        }
        runBatchTasks(*batch);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    {
        std::lock_guard<std::mutex> lock(mu);
        pending.push_back(batch);
    }
    cv.notify_all();

    // The caller works on its own batch, so nested calls cannot
    // deadlock even when every worker is busy elsewhere.
    runBatchTasks(*batch);

    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = std::find(pending.begin(), pending.end(), batch);
        if (it != pending.end())
            pending.erase(it);
    }
    std::unique_lock<std::mutex> lock(batch->m);
    batch->doneCv.wait(lock,
                       [&] { return batch->done == batch->n; });
}

void
ThreadPool::post(std::function<void()> fn)
{
    auto batch = std::make_shared<Batch>();
    batch->n = 1;
    batch->owned = [f = std::move(fn)](std::size_t) { f(); };
    batch->fn = &batch->owned;
    {
        std::lock_guard<std::mutex> lock(mu);
        pending.push_back(batch);
    }
    cv.notify_one();
}

bool
ThreadPool::tryRunOneTask()
{
    std::shared_ptr<Batch> batch;
    std::size_t i = 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        while (!pending.empty()) {
            batch = pending.front();
            i = batch->next.fetch_add(1, std::memory_order_relaxed);
            if (i < batch->n)
                break;
            pending.pop_front();
            batch.reset();
        }
    }
    if (!batch)
        return false;
    (*batch->fn)(i);
    std::lock_guard<std::mutex> lock(batch->m);
    if (++batch->done == batch->n)
        batch->doneCv.notify_all();
    return true;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultJobs());
    return pool;
}

namespace
{

/** Contest worker threads currently leased across the process. */
std::atomic<unsigned> contestWorkersOut{0};

} // namespace

unsigned
acquireContestWorkers(unsigned want)
{
    const unsigned jobs = defaultJobs();
    const unsigned budget = jobs > 1 ? jobs - 1 : 0;
    if (want == 0 || budget == 0)
        return 0;
    unsigned out = contestWorkersOut.load(std::memory_order_relaxed);
    for (;;) {
        if (out >= budget)
            return 0;
        unsigned grant = std::min(want, budget - out);
        if (contestWorkersOut.compare_exchange_weak(
                out, out + grant, std::memory_order_relaxed))
            return grant;
    }
}

void
releaseContestWorkers(unsigned granted)
{
    if (granted > 0)
        contestWorkersOut.fetch_sub(granted,
                                    std::memory_order_relaxed);
}

ContestWorkerGroup::ContestWorkerGroup(unsigned workers)
{
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ContestWorkerGroup::~ContestWorkerGroup()
{
    stopping.store(true, std::memory_order_relaxed);
    epoch.fetch_add(1, std::memory_order_release);
    if (sleepers.load(std::memory_order_relaxed) > 0) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
    }
    for (auto &t : threads)
        t.join();
}

void
ContestWorkerGroup::drainLanes(std::uint64_t my_epoch)
{
    const std::uint64_t lane_mask = (std::uint64_t{1} << laneBits) - 1;
    for (;;) {
        std::uint64_t claim =
            laneClaim.load(std::memory_order_relaxed);
        for (;;) {
            // A claim word from another epoch means this thread is a
            // straggler (or woke early): back out without touching
            // the new window's lanes or its task function.
            if ((claim >> laneBits) != my_epoch)
                return;
            if ((claim & lane_mask) >= taskN)
                return;
            if (laneClaim.compare_exchange_weak(
                    claim, claim + 1, std::memory_order_relaxed))
                break;
        }
        taskFn(claim & lane_mask);
        lanesDone.fetch_add(1, std::memory_order_release);
    }
}

void
ContestWorkerGroup::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spin for a new window; a window usually opens again within
        // a few microseconds of the last commit. Fall back to a
        // condition-variable sleep when the owner goes quiet (long
        // sequential stretches between windows).
        unsigned spins = 0;
        while (epoch.load(std::memory_order_acquire) == seen) {
            if (++spins < 4096) {
                std::this_thread::yield();
                continue;
            }
            std::unique_lock<std::mutex> lock(mu);
            sleepers.fetch_add(1, std::memory_order_relaxed);
            cv.wait(lock, [&] {
                return epoch.load(std::memory_order_acquire) != seen;
            });
            sleepers.fetch_sub(1, std::memory_order_relaxed);
        }
        seen = epoch.load(std::memory_order_acquire);
        if (stopping.load(std::memory_order_relaxed))
            return;
        drainLanes(seen);
    }
}

void
ContestWorkerGroup::run(std::size_t n, LaneFn fn)
{
    if (n == 0)
        return;
    if (threads.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    const std::uint64_t e =
        epoch.load(std::memory_order_relaxed) + 1;
    taskN = n;
    taskFn = fn;
    lanesDone.store(0, std::memory_order_relaxed);
    // Lane 0 is pre-claimed for the owner: the claim word starts at
    // 1, so workers never touch it and the owner runs it without any
    // CAS traffic.
    laneClaim.store((e << laneBits) | 1, std::memory_order_relaxed);
    epoch.store(e, std::memory_order_release);
    if (sleepers.load(std::memory_order_relaxed) > 0) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
    }

    // The owner runs its reserved lane, drains leftovers, then waits
    // for stragglers; the acquire pairs with each worker lane's
    // release increment so the cores' window-local state is visible
    // before the boundary commit. Only the n-1 worker-claimable lanes
    // count toward lanesDone — lane 0 finished on this thread. Spin
    // hot briefly before yielding: lanes are a few microseconds long,
    // and a premature yield can stall the commit a full timeslice.
    fn(0);
    drainLanes(e);
    unsigned spins = 0;
    while (lanesDone.load(std::memory_order_acquire) < n - 1)
        if (++spins >= 256)
            std::this_thread::yield();
}

} // namespace contest
