/**
 * @file
 * Fundamental scalar types shared by every module.
 *
 * The simulator measures global time in integer picoseconds, which is
 * finer than the paper's 0.01 ns (10 ps) handshake unit, so all of the
 * paper's clock periods (0.19 ns ... 0.49 ns) are exactly
 * representable.
 */

#ifndef CONTEST_COMMON_TYPES_HH
#define CONTEST_COMMON_TYPES_HH

#include <cstdint>

namespace contest
{

/** Global simulated time in picoseconds. */
using TimePs = std::uint64_t;

/** Core-local time in cycles of that core's clock. */
using Cycles = std::uint64_t;

/** Position in the dynamic (retired) instruction stream, 0-based. */
using InstSeq = std::uint64_t;

/** Byte address in the simulated flat address space. */
using Addr = std::uint64_t;

/** Architectural register index. */
using RegId = std::uint16_t;

/** Identifier of a core within a contesting system or CMP. */
using CoreId = std::uint32_t;

/** Picoseconds per nanosecond, for IPT conversions. */
constexpr TimePs psPerNs = 1000;

/**
 * Instructions per nanosecond ("instructions per time", IPT) — the
 * performance metric used throughout the paper.
 *
 * @param retired number of retired instructions
 * @param elapsed elapsed simulated time in picoseconds
 * @return IPT; 0.0 when no time has elapsed
 */
inline double
instPerNs(InstSeq retired, TimePs elapsed)
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(retired) * psPerNs
        / static_cast<double>(elapsed);
}

} // namespace contest

#endif // CONTEST_COMMON_TYPES_HH
