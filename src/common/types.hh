/**
 * @file
 * Fundamental scalar types shared by every module.
 *
 * The simulator measures global time in integer picoseconds, which is
 * finer than the paper's 0.01 ns (10 ps) handshake unit, so all of the
 * paper's clock periods (0.19 ns ... 0.49 ns) are exactly
 * representable.
 *
 * Time, cycle and stream-position quantities are *strong* types built
 * on the Strong<Tag, T> wrapper below rather than bare uint64_t
 * aliases. The wrapper admits only unit-correct arithmetic: adding a
 * picosecond timestamp to a cycle count is a compile error, and in
 * debug builds subtraction panics on unsigned wraparound instead of
 * silently producing a huge value (the bug class behind the original
 * SyncStoreQueue::canAccept and ResultFifo pop-counter defects). In
 * release builds (NDEBUG) every operation compiles down to the bare
 * integer op, so the wrapper is zero-overhead on the simulation hot
 * path.
 */

#ifndef CONTEST_COMMON_TYPES_HH
#define CONTEST_COMMON_TYPES_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>

#include "common/log.hh"

/** Debug builds check unsigned-wrap on strong-type subtraction. */
#ifndef NDEBUG
#define CONTEST_CHECKED_UNITS 1
#else
#define CONTEST_CHECKED_UNITS 0
#endif

namespace contest
{

/**
 * Zero-overhead strongly typed integer quantity.
 *
 * @tparam Tag an empty struct naming the unit; two Strong types with
 *         different tags do not mix in arithmetic or comparison.
 * @tparam T the underlying integer representation.
 *
 * Construction from raw integers is explicit; read the raw value back
 * with count() (or an explicit cast, e.g. for printf arguments).
 * Same-tag quantities add, subtract and compare; raw integral scalars
 * may scale or offset a quantity (q * 3, q + 1) without changing its
 * unit. Cross-unit conversions must be spelled out by the caller
 * (e.g. cyclesToPs below), which is the point of the exercise.
 */
template <typename Tag, typename T>
class Strong
{
    static_assert(std::is_integral_v<T>,
                  "Strong quantities wrap integer representations");

  public:
    using rep = T;

    /** Zero-valued quantity. */
    constexpr Strong() = default;

    /** Explicitly wrap a raw value. */
    template <typename U,
              std::enable_if_t<std::is_arithmetic_v<U>, int> = 0>
    constexpr explicit Strong(U raw) : v(static_cast<T>(raw))
    {}

    /** The raw underlying value. */
    constexpr T count() const { return v; }

    /** Explicit conversion to any arithmetic type (printf casts,
     *  double math, container indexing). */
    template <typename U,
              std::enable_if_t<std::is_arithmetic_v<U>, int> = 0>
    constexpr explicit operator U() const
    {
        return static_cast<U>(v);
    }

    /** Largest representable quantity (sentinel for "never"). */
    static constexpr Strong
    max()
    {
        return Strong{std::numeric_limits<T>::max()};
    }

    /** @name Same-unit comparison */
    /** @{ */
    friend constexpr bool
    operator==(Strong a, Strong b) { return a.v == b.v; }
    friend constexpr bool
    operator!=(Strong a, Strong b) { return a.v != b.v; }
    friend constexpr bool
    operator<(Strong a, Strong b) { return a.v < b.v; }
    friend constexpr bool
    operator<=(Strong a, Strong b) { return a.v <= b.v; }
    friend constexpr bool
    operator>(Strong a, Strong b) { return a.v > b.v; }
    friend constexpr bool
    operator>=(Strong a, Strong b) { return a.v >= b.v; }
    /** @} */

    /** @name Comparison against raw (unitless) integrals
     *
     * Comparing a quantity with a raw literal (q == 0, q < cap) is
     * unit-safe in the same way scalar offsetting is; comparing two
     * quantities of *different* units remains a compile error.
     */
    /** @{ */
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator==(Strong a, U raw) { return a.v == static_cast<T>(raw); }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator==(U raw, Strong a) { return a == raw; }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator!=(Strong a, U raw) { return !(a == raw); }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator!=(U raw, Strong a) { return !(a == raw); }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator<(Strong a, U raw) { return a.v < static_cast<T>(raw); }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator<(U raw, Strong a) { return static_cast<T>(raw) < a.v; }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator<=(Strong a, U raw) { return a.v <= static_cast<T>(raw); }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator<=(U raw, Strong a) { return static_cast<T>(raw) <= a.v; }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator>(Strong a, U raw) { return a.v > static_cast<T>(raw); }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator>(U raw, Strong a) { return static_cast<T>(raw) > a.v; }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator>=(Strong a, U raw) { return a.v >= static_cast<T>(raw); }
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr bool
    operator>=(U raw, Strong a) { return static_cast<T>(raw) >= a.v; }
    /** @} */

    /** @name Same-unit arithmetic */
    /** @{ */
    friend constexpr Strong
    operator+(Strong a, Strong b) { return Strong{a.v + b.v}; }

    /** Subtraction; debug builds panic on unsigned wraparound
     *  instead of silently wrapping. */
    friend constexpr Strong
    operator-(Strong a, Strong b)
    {
#if CONTEST_CHECKED_UNITS
        if (std::is_unsigned_v<T> && b.v > a.v)
            panic("strong-type underflow: %llu - %llu wraps below "
                  "zero (mixed or stale counters?)",
                  static_cast<unsigned long long>(a.v),
                  static_cast<unsigned long long>(b.v));
#endif
        return Strong{a.v - b.v};
    }

    constexpr Strong &
    operator+=(Strong other)
    {
        v += other.v;
        return *this;
    }

    constexpr Strong &
    operator-=(Strong other)
    {
        *this = *this - other;
        return *this;
    }

    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    constexpr Strong &
    operator+=(U raw)
    {
        return *this += Strong{raw};
    }

    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    constexpr Strong &
    operator-=(U raw)
    {
        return *this -= Strong{raw};
    }

    constexpr Strong &
    operator++()
    {
        ++v;
        return *this;
    }

    constexpr Strong
    operator++(int)
    {
        Strong old = *this;
        ++v;
        return old;
    }

    constexpr Strong &
    operator--()
    {
        *this = *this - Strong{1};
        return *this;
    }

    constexpr Strong
    operator--(int)
    {
        Strong old = *this;
        --*this;
        return old;
    }
    /** @} */

    /** @name Scaling and offsetting by raw (unitless) integers */
    /** @{ */
    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr Strong
    operator+(Strong a, U raw)
    {
        return a + Strong{raw};
    }

    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr Strong
    operator+(U raw, Strong a)
    {
        return a + Strong{raw};
    }

    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr Strong
    operator-(Strong a, U raw)
    {
        return a - Strong{raw};
    }

    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr Strong
    operator*(Strong a, U raw)
    {
        return Strong{a.v * static_cast<T>(raw)};
    }

    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr Strong
    operator*(U raw, Strong a)
    {
        return Strong{static_cast<T>(raw) * a.v};
    }

    template <typename U,
              std::enable_if_t<std::is_integral_v<U>, int> = 0>
    friend constexpr Strong
    operator/(Strong a, U raw)
    {
        return Strong{a.v / static_cast<T>(raw)};
    }

    /** Ratio of two same-unit quantities is a raw number. */
    friend constexpr T
    operator/(Strong a, Strong b) { return a.v / b.v; }
    /** @} */

  private:
    T v{};
};

/** Global simulated time in picoseconds. */
using TimePs = Strong<struct TimePsTag, std::uint64_t>;

/** Core-local time in cycles of that core's clock. */
using Cycles = Strong<struct CyclesTag, std::uint64_t>;

/** Position in the dynamic (retired) instruction stream, 0-based. */
using InstSeq = Strong<struct InstSeqTag, std::uint64_t>;

/** Position in the dynamic store stream (performed / merged store
 *  counters of the synchronizing store queue), 0-based. */
using StoreSeq = Strong<struct StoreSeqTag, std::uint64_t>;

/** Lifetime lookup count of a predictor structure. */
using LookupCount = Strong<struct LookupCountTag, std::uint64_t>;

/** Number of annealing steps (neighbor evaluations). */
using StepCount = Strong<struct StepCountTag, std::uint64_t>;

/** Byte address in the simulated flat address space. */
using Addr = std::uint64_t;

/** Architectural register index. */
using RegId = std::uint16_t;

/** Identifier of a core within a contesting system or CMP. */
using CoreId = std::uint32_t;

/** Picoseconds per nanosecond, for IPT conversions. */
constexpr std::uint64_t psPerNs = 1000;

/** Convert a cycle count to picoseconds at the given clock period.
 *  The only sanctioned way to cross the Cycles -> TimePs unit
 *  boundary. */
inline constexpr TimePs
cyclesToPs(Cycles cycles, TimePs clock_period)
{
    return TimePs{cycles.count() * clock_period.count()};
}

/**
 * Instructions per nanosecond ("instructions per time", IPT) — the
 * performance metric used throughout the paper.
 *
 * @param retired number of retired instructions
 * @param elapsed elapsed simulated time in picoseconds
 * @return IPT; 0.0 when no time has elapsed
 */
inline double
instPerNs(InstSeq retired, TimePs elapsed)
{
    if (elapsed == TimePs{})
        return 0.0;
    return static_cast<double>(retired.count())
        * static_cast<double>(psPerNs)
        / static_cast<double>(elapsed.count());
}

} // namespace contest

/** Strong quantities hash like their raw representation (for
 *  unordered containers keyed by stream position or timestamp). */
template <typename Tag, typename T>
struct std::hash<contest::Strong<Tag, T>>
{
    std::size_t
    operator()(const contest::Strong<Tag, T> &s) const noexcept
    {
        return std::hash<T>{}(s.count());
    }
};

/**
 * Marks a function definition as an audited window-safe leaf for
 * contest_lint's window-phase call-graph analysis (DESIGN.md §12):
 * the analyzer neither classifies nor traverses it. Expands to
 * nothing — it is an annotation for the linter's unpreprocessed
 * token stream, placed immediately before the definition. Use only
 * after auditing that the function cannot mutate another core's
 * contest state, allocate, or draw randomness when reached from the
 * window tick path (runtime panics and the CONTEST_CHECK_WINDOWS
 * shadow checker remain as the dynamic backstop).
 */
#define CONTEST_WINDOW_SAFE

#endif // CONTEST_COMMON_TYPES_HH
