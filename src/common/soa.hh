/**
 * @file
 * Structure-of-arrays building blocks for the hot simulation loops
 * (DESIGN.md §13): a cacheline-aligned vector, uint64 bit-mask word
 * helpers with find-first-set scanning, and power-of-two rounding for
 * ring geometries.
 *
 * The simulator's per-cycle state (ROB, issue queue, fetch queue,
 * predictor tables) is stored as parallel field arrays indexed by
 * ring position instead of arrays of structs. Each array starts on
 * its own cacheline so two hot arrays never false-share a line, and
 * per-entry booleans become one bit in a mask word so a whole
 * dependence wave is tested with a single load.
 */

#ifndef CONTEST_COMMON_SOA_HH
#define CONTEST_COMMON_SOA_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "common/log.hh"

namespace contest
{

/** Allocator placing every block on a 64-byte (cacheline) boundary,
 *  so each SoA field array starts on its own line. */
template <typename T>
class CachelineAllocator
{
  public:
    using value_type = T;
    static constexpr std::align_val_t alignment{64};

    CachelineAllocator() = default;
    template <typename U>
    CachelineAllocator(const CachelineAllocator<U> &) noexcept
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
            throw std::bad_alloc();
        return static_cast<T *>(
            ::operator new(n * sizeof(T), alignment));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, alignment);
    }

    template <typename U>
    bool
    operator==(const CachelineAllocator<U> &) const noexcept
    {
        return true;
    }
};

/** A field array of the SoA layout: contiguous, cacheline-aligned. */
template <typename T>
using SoaVec = std::vector<T, CachelineAllocator<T>>;

/** Smallest power of two >= @p n (n must be nonzero and
 *  representable). Ring capacities are rounded up with this so the
 *  position of an entry is a single mask of its sequence number. */
constexpr std::size_t
nextPow2(std::size_t n)
{
    return std::size_t{1} << std::bit_width(n - 1);
}

/** @name Mask-word helpers
 *
 * A bitset spread over uint64 words, bit i of the set living in
 * word i/64. Callers own sizing (maskWords()) and clearing.
 */
/** @{ */

/** Words needed for @p bits mask bits. */
constexpr std::size_t
maskWords(std::size_t bits)
{
    return (bits + 63) / 64;
}

inline bool
bitTest(const SoaVec<std::uint64_t> &w, std::size_t i)
{
    return (w[i >> 6] >> (i & 63)) & 1;
}

inline void
bitSet(SoaVec<std::uint64_t> &w, std::size_t i)
{
    w[i >> 6] |= std::uint64_t{1} << (i & 63);
}

inline void
bitClear(SoaVec<std::uint64_t> &w, std::size_t i)
{
    w[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
}

/**
 * Invoke @p fn(position) for every set bit of @p w at positions in
 * [begin, end), ascending (find-first-set order). @p fn returns
 * false to stop the scan early; the function then returns false.
 *
 * The scan snapshots one word at a time, so @p fn may clear bits at
 * or below the position it is handed without disturbing the
 * iteration; it must not set bits above it and expect them seen.
 */
template <typename Fn>
inline bool
scanBits(const SoaVec<std::uint64_t> &w, std::size_t begin,
         std::size_t end, Fn &&fn)
{
    if (begin >= end)
        return true;
    const std::size_t w_end = (end + 63) >> 6;
    for (std::size_t wi = begin >> 6; wi < w_end; ++wi) {
        std::uint64_t word = w[wi];
        const std::size_t base = wi << 6;
        if (base < begin)
            word &= ~std::uint64_t{0} << (begin - base);
        if ((end - base) < 64)
            word &= (std::uint64_t{1} << (end - base)) - 1;
        while (word) {
            const int b = std::countr_zero(word);
            word &= word - 1;
            // Generic visitor: callers pass lambdas the engine
            // analyzes at their definition sites.
            // contest-lint: allow(unknown-call)
            if (!fn(base + static_cast<std::size_t>(b)))
                return false;
        }
    }
    return true;
}

/** @} */

} // namespace contest

#endif // CONTEST_COMMON_SOA_HH
