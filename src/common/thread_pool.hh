/**
 * @file
 * A small, deterministic-friendly thread pool for independent
 * simulation runs.
 *
 * The pool is deliberately work-stealing-free: parallelFor() posts a
 * single shared batch whose indices are claimed from one atomic
 * counter, so scheduling is simple and the order in which indices are
 * *claimed* is irrelevant — each index writes only its own output
 * slot, which is what keeps parallel sweeps bit-identical to serial
 * ones.
 *
 * The calling thread participates in its own batch. This makes
 * nested parallelFor() calls deadlock-free: a worker that enters a
 * nested parallelFor() drains that nested batch itself instead of
 * blocking on a pool that may be fully occupied.
 */

#ifndef CONTEST_COMMON_THREAD_POOL_HH
#define CONTEST_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace contest
{

/** Fixed-size pool executing indexed batches of independent tasks. */
class ThreadPool
{
  public:
    /**
     * @param jobs total concurrency, including the calling thread:
     *        jobs-1 worker threads are spawned; jobs <= 1 means every
     *        parallelFor() runs inline, serially.
     */
    explicit ThreadPool(unsigned jobs);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the calling thread). */
    unsigned jobs() const
    {
        return static_cast<unsigned>(threads.size()) + 1;
    }

    /**
     * Run fn(0) .. fn(n-1), each exactly once, and return when all
     * have completed. The caller executes tasks too. fn must be safe
     * to call concurrently from multiple threads and must not throw.
     * Safe to call from inside a task (nested parallelism).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Queue one task and return immediately (fire-and-forget; the
     * pool owns the function). Completion is the task's own business
     * — signal it from inside the task if anyone needs to know. With
     * no worker threads the task simply waits in the queue for a
     * tryRunOneTask() caller.
     */
    void post(std::function<void()> fn);

    /**
     * Claim and run one queued task on the calling thread, if any is
     * immediately available. Returns false without blocking when the
     * queue is idle. This is how a thread that is otherwise waiting
     * (e.g. the suite driver draining results in order) donates
     * itself to the pool instead of sleeping.
     */
    bool tryRunOneTask();

    /**
     * The process-wide pool, sized from CONTEST_JOBS (default: the
     * hardware concurrency) on first use.
     */
    static ThreadPool &global();

  private:
    struct Batch;

    /** Claim and run tasks from @p batch until it is exhausted. */
    static void runBatchTasks(Batch &batch);
    void workerLoop();

    std::mutex mu;
    std::condition_variable cv;
    /** Batches with unclaimed indices, oldest first. */
    std::deque<std::shared_ptr<Batch>> pending;
    bool stopping = false;
    std::vector<std::thread> threads;
};

} // namespace contest

#endif // CONTEST_COMMON_THREAD_POOL_HH
