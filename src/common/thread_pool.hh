/**
 * @file
 * A small, deterministic-friendly thread pool for independent
 * simulation runs.
 *
 * The pool is deliberately work-stealing-free: parallelFor() posts a
 * single shared batch whose indices are claimed from one atomic
 * counter, so scheduling is simple and the order in which indices are
 * *claimed* is irrelevant — each index writes only its own output
 * slot, which is what keeps parallel sweeps bit-identical to serial
 * ones.
 *
 * The calling thread participates in its own batch. This makes
 * nested parallelFor() calls deadlock-free: a worker that enters a
 * nested parallelFor() drains that nested batch itself instead of
 * blocking on a pool that may be fully occupied.
 */

#ifndef CONTEST_COMMON_THREAD_POOL_HH
#define CONTEST_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace contest
{

/**
 * Non-owning reference to a callable invoked as fn(lane). Two words,
 * trivially copyable, and never allocates — unlike std::function,
 * whose construction heap-allocates once the captures outgrow the
 * small-object buffer. The referent must outlive every call; the
 * windowed contest loop passes a stack lambda that lives for the
 * duration of the dispatch, which is exactly that contract.
 */
class LaneFn
{
  public:
    LaneFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, LaneFn>>>
    LaneFn(F &&f)
        : obj(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          call([](void *o, std::size_t i) {
              (*static_cast<std::remove_reference_t<F> *>(o))(i);
          })
    {
    }

    void operator()(std::size_t i) const { call(obj, i); }

    explicit operator bool() const { return call != nullptr; }

  private:
    void *obj = nullptr;
    void (*call)(void *, std::size_t) = nullptr;
};

/** Fixed-size pool executing indexed batches of independent tasks. */
class ThreadPool
{
  public:
    /**
     * @param jobs total concurrency, including the calling thread:
     *        jobs-1 worker threads are spawned; jobs <= 1 means every
     *        parallelFor() runs inline, serially.
     */
    explicit ThreadPool(unsigned jobs);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the calling thread). */
    unsigned jobs() const
    {
        return static_cast<unsigned>(threads.size()) + 1;
    }

    /**
     * Run fn(0) .. fn(n-1), each exactly once, and return when all
     * have completed. The caller executes tasks too. fn must be safe
     * to call concurrently from multiple threads and must not throw.
     * Safe to call from inside a task (nested parallelism).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Queue one task and return immediately (fire-and-forget; the
     * pool owns the function). Completion is the task's own business
     * — signal it from inside the task if anyone needs to know. With
     * no worker threads the task simply waits in the queue for a
     * tryRunOneTask() caller.
     */
    void post(std::function<void()> fn);

    /**
     * Claim and run one queued task on the calling thread, if any is
     * immediately available. Returns false without blocking when the
     * queue is idle. This is how a thread that is otherwise waiting
     * (e.g. the suite driver draining results in order) donates
     * itself to the pool instead of sleeping.
     */
    bool tryRunOneTask();

    /**
     * The process-wide pool, sized from CONTEST_JOBS (default: the
     * hardware concurrency) on first use.
     */
    static ThreadPool &global();

  private:
    struct Batch;

    /** Claim and run tasks from @p batch until it is exhausted. */
    static void runBatchTasks(Batch &batch);
    void workerLoop();

    std::mutex mu;
    std::condition_variable cv;
    /** Batches with unclaimed indices, oldest first. */
    std::deque<std::shared_ptr<Batch>> pending;
    bool stopping = false;
    std::vector<std::thread> threads;
};

/**
 * @name Contest worker budget
 *
 * Intra-simulation workers (CONTEST_CONTEST_JOBS) and suite-level
 * sweeps (CONTEST_JOBS) share one machine, so the extra threads a
 * contested run may spawn are leased from a process-wide budget of
 * defaultJobs() - 1. With `--jobs J --contest-jobs C` the process
 * therefore runs at most J + (J - 1) threads, however many contests
 * are in flight — a run that finds the budget exhausted simply
 * executes its windows on the calling thread, bit-identically.
 */
/** @{ */

/** Lease up to @p want contest worker threads; returns the granted
 *  count (possibly 0). Pair with releaseContestWorkers(). */
unsigned acquireContestWorkers(unsigned want);

/** Return @p granted threads to the contest worker budget. */
void releaseContestWorkers(unsigned granted);

/** @} */

/**
 * A group of spinning workers for the windowed parallel contest
 * path. Unlike ThreadPool — whose condition-variable handoff costs
 * microseconds, fine for whole experiments — a contested run opens
 * and closes a window every few hundred simulated ticks, so the
 * handoff must be tens of nanoseconds: workers spin on an epoch
 * counter (yielding, then sleeping on a condition variable if no
 * window opens for a while).
 *
 * The owner calls run(n, fn): fn(0..n-1) executes across the workers
 * and the calling thread, and run() returns when all lanes finished.
 * The caller always executes lane 0 inline (no claim traffic, and it
 * never just barrier-waits while holding runnable work); workers
 * claim the remaining lanes from an atomic counter. Every lane
 * writes only its own core's state, so results are independent of
 * which thread runs which lane. The whole dispatch is a single
 * release (the epoch publish) / acquire (the lanes-done spin) pair
 * per window and performs no heap allocation — fn is a non-owning
 * LaneFn, not a std::function.
 */
class ContestWorkerGroup
{
  public:
    /** @param workers dedicated threads to spawn (0 is valid: run()
     *        then executes every lane inline on the caller). */
    explicit ContestWorkerGroup(unsigned workers);
    ~ContestWorkerGroup();

    ContestWorkerGroup(const ContestWorkerGroup &) = delete;
    ContestWorkerGroup &operator=(const ContestWorkerGroup &) = delete;

    /** Dedicated worker threads in the group. */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /** Run fn(0) .. fn(n-1) across the group and the calling thread;
     *  returns when every lane has completed. fn must not throw and
     *  must outlive the call (it is not copied). */
    void run(std::size_t n, LaneFn fn);

  private:
    /** Lane-claim word layout: epoch in the high bits, next
     *  unclaimed lane in the low laneBits. Tagging claims with the
     *  epoch keeps a straggler that noticed a window late from
     *  claiming (and corrupting) the next window's lanes. */
    static constexpr unsigned laneBits = 24;

    void workerLoop();
    void drainLanes(std::uint64_t my_epoch);

    /** Bumped (release) by run() to publish a new window; workers
     *  acquire it to see taskFn/taskN. */
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> laneClaim{0};
    std::atomic<std::size_t> lanesDone{0};
    std::atomic<bool> stopping{false};
    /** Set while any worker sleeps on cv (spin timed out). */
    std::atomic<unsigned> sleepers{0};
    std::size_t taskN = 0;
    LaneFn taskFn;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::thread> threads;
};

} // namespace contest

#endif // CONTEST_COMMON_THREAD_POOL_HH
