/**
 * @file
 * A small vector-backed binary min-heap.
 *
 * std::priority_queue hides its container, which prevents both
 * capacity pre-reservation and the read-only iteration the idle-skip
 * analysis needs (OooCore::nextEventCycle inspects all pending ready
 * records without popping them). This heap exposes exactly that:
 * reserve() once at construction time, items() for order-free const
 * scans, and the usual push/pop/top with strict-weak Less giving the
 * minimum at top().
 */

#ifndef CONTEST_COMMON_MIN_HEAP_HH
#define CONTEST_COMMON_MIN_HEAP_HH

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace contest
{

/** Binary min-heap: top() is the Less-minimum element. */
template <typename T, typename Less = std::less<T>>
class MinHeap
{
  public:
    void reserve(std::size_t n) { v.reserve(n); }
    bool empty() const { return v.empty(); }
    std::size_t size() const { return v.size(); }
    void clear() { v.clear(); }

    /** Heap-order-free view of every element (const scans only). */
    const std::vector<T> &items() const { return v; }

    const T &
    top() const
    {
        panic_if(v.empty(), "MinHeap::top on empty heap");
        return v.front();
    }

    void
    push(const T &x)
    {
        // The backing vector is reserve()d once at construction by
        // every core hot-path owner, so this never reallocates
        // mid-window. contest-lint: allow(window-phase)
        v.push_back(x);
        siftUp(v.size() - 1);
    }

    void
    pop()
    {
        panic_if(v.empty(), "MinHeap::pop on empty heap");
        v.front() = std::move(v.back());
        v.pop_back();
        if (!v.empty())
            siftDown(0);
    }

  private:
    void
    siftUp(std::size_t i)
    {
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!less(v[i], v[parent]))
                break;
            std::swap(v[i], v[parent]);
            i = parent;
        }
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = v.size();
        while (true) {
            std::size_t left = 2 * i + 1;
            if (left >= n)
                break;
            std::size_t child = left;
            std::size_t right = left + 1;
            if (right < n && less(v[right], v[left]))
                child = right;
            if (!less(v[child], v[i]))
                break;
            std::swap(v[i], v[child]);
            i = child;
        }
    }

    std::vector<T> v;
    Less less;
};

} // namespace contest

#endif // CONTEST_COMMON_MIN_HEAP_HH
