/**
 * @file
 * Fixed-capacity ring buffer for pipeline queues.
 *
 * The pipeline's in-order windows (ROB, fetch queue) have hard
 * architectural capacities, so a preallocated circular array beats a
 * node- or chunk-allocating std::deque on the simulator's hottest
 * paths: no allocation after construction, indexing is two adds and
 * a conditional subtract, and the storage is contiguous enough to
 * prefetch. The interface mirrors the std::deque subset the core
 * model uses (front/back/push_back/pop_front/operator[]).
 */

#ifndef CONTEST_COMMON_RING_BUFFER_HH
#define CONTEST_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"

namespace contest
{

/** Fixed-capacity FIFO over a preallocated circular array. */
template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    /** @param cap hard capacity; push_back beyond it panics. */
    explicit RingBuffer(std::size_t cap) { reset(cap); }

    /** (Re)size the backing store and drop all contents. */
    void
    reset(std::size_t cap)
    {
        fatal_if(cap == 0, "RingBuffer capacity must be positive");
        // Capacity is fixed at construction; a later reset() to the
        // same cap reuses the storage. contest-lint: allow(window-phase)
        buf.assign(cap, T{});
        head = 0;
        count = 0;
    }

    std::size_t size() const { return count; }
    std::size_t capacity() const { return buf.size(); }
    bool empty() const { return count == 0; }
    bool full() const { return count == buf.size(); }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    T &
    front()
    {
        panic_if(count == 0, "RingBuffer::front on empty buffer");
        return buf[head];
    }

    const T &
    front() const
    {
        panic_if(count == 0, "RingBuffer::front on empty buffer");
        return buf[head];
    }

    T &
    back()
    {
        panic_if(count == 0, "RingBuffer::back on empty buffer");
        return buf[wrap(head + count - 1)];
    }

    const T &
    back() const
    {
        panic_if(count == 0, "RingBuffer::back on empty buffer");
        return buf[wrap(head + count - 1)];
    }

    /** @p i counted from the front (0 = oldest). */
    T &
    operator[](std::size_t i)
    {
        panic_if(i >= count, "RingBuffer index %zu out of %zu", i,
                 count);
        return buf[wrap(head + i)];
    }

    const T &
    operator[](std::size_t i) const
    {
        panic_if(i >= count, "RingBuffer index %zu out of %zu", i,
                 count);
        return buf[wrap(head + i)];
    }

    void
    push_back(const T &v)
    {
        panic_if(full(), "RingBuffer overflow at capacity %zu",
                 buf.size());
        buf[wrap(head + count)] = v;
        ++count;
    }

    void
    pop_front()
    {
        panic_if(count == 0, "RingBuffer::pop_front on empty buffer");
        head = wrap(head + 1);
        --count;
    }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        // Capacities are small and arbitrary (not powers of two); a
        // compare-and-subtract beats an integer modulo here.
        return i >= buf.size() ? i - buf.size() : i;
    }

    std::vector<T> buf;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace contest

#endif // CONTEST_COMMON_RING_BUFFER_HH
