/**
 * @file
 * Cycle-indexed event ring (timing wheel) for the core's per-tick
 * event queues (DESIGN.md §13).
 *
 * The out-of-order core schedules every instruction's completion,
 * every load/MSHR release and every operand-arrival wakeup as a
 * (cycle, payload) event. A binary heap makes each of those an
 * O(log n) sift through scattered nodes; but the cycles involved are
 * almost always within a few hundred of "now" (scheduler depth plus
 * the worst memory round trip), so a power-of-two ring of per-cycle
 * buckets gives O(1) pushes and drains that touch only the cycles
 * that actually hold events — an occupancy bit per bucket makes
 * "when is the next event?" a find-first-set scan over a handful of
 * words. Events beyond the ring's horizon (unbounded memory-bus
 * queuing delay) spill into a small overflow heap, so no bound on
 * event latency is assumed.
 *
 * Bucket storage is one shared node pool threaded through intrusive
 * per-bucket chains. Per-bucket vectors would re-allocate whenever
 * any single bucket hit a new depth — a warm-up that never ends,
 * since the pool of buckets is large and rarely-deep ones keep
 * being hit; the shared pool's high-water mark is the *total*
 * simultaneous in-flight events, a structural bound the caller can
 * pre-reserve at init.
 *
 * Drain order within one cycle is bucket insertion order, not the
 * heap's (cycle, payload) order; every user's per-cycle handler is
 * commutative (setting ready bits, counting releases), which is what
 * keeps the replacement bit-identical.
 */

#ifndef CONTEST_COMMON_CYCLE_RING_HH
#define CONTEST_COMMON_CYCLE_RING_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/min_heap.hh"
#include "common/soa.hh"
#include "common/types.hh"

namespace contest
{

/**
 * A queue of (cycle, T) events drained in nondecreasing cycle order.
 *
 * Invariants: pushes land strictly after their push tick (a cycle
 * already due is clamped to the next drain — the same tick it would
 * have surfaced from a heap), and the clock — stepped or idle-skipped
 * — never passes a pending event, so by the time drainUpTo() runs,
 * every ring-resident event still lies within one span of the last
 * drain point (enforced by the panic below).
 */
template <typename T>
class CycleRing
{
  public:
    /**
     * Size the ring to cover at least @p min_span cycles ahead and
     * pre-reserve the event pool for @p reserve_events simultaneous
     * events. Events live in one shared node pool threaded through
     * per-bucket intrusive lists, so bucket capacity never warms up
     * bucket-by-bucket the way per-bucket vectors would: reserving
     * the caller's structural in-flight bound (ROB, IQ, LSQ size)
     * makes every steady-state push allocation-free from the first
     * tick.
     */
    void
    init(std::size_t min_span, std::size_t reserve_events = 0)
    {
        span = nextPow2(min_span);
        posMask = span - 1;
        bucketHead.assign(span, -1);
        bucketTail.assign(span, -1);
        occW.assign(maskWords(span), 0);
        poolVal.reserve(reserve_events);
        poolNext.reserve(reserve_events);
    }

    bool empty() const { return ringCount + overflow.size() == 0; }

    std::size_t size() const { return ringCount + overflow.size(); }

    /** Is some event due at or before cycle @p cur? */
    bool
    due(Cycles cur) const
    {
        return !empty() && nextAt() <= cur;
    }

    /**
     * Queue @p v for cycle @p at, pushed during the tick at cycle
     * @p now. An @p at in the past is clamped to now + 1 — the next
     * drain, exactly when a heap would have surfaced it.
     */
    void
    push(Cycles now, Cycles at, const T &v)
    {
        if (at <= now)
            at = now + 1;
        if (at > drainedUpTo + span) {
            // Beyond the horizon (pathological bus queuing): spill.
            overflow.push({at, v});
        } else {
            const std::size_t p =
                static_cast<std::size_t>(at.count()) & posMask;
            // Take a pool node (the free list covers the structural
            // in-flight bound after init; growth is a first-lap
            // rarity) and append it to the bucket's chain — tail
            // insertion keeps delivery in push order.
            std::int32_t idx = freeHead;
            if (idx >= 0) {
                freeHead = poolNext[static_cast<std::size_t>(idx)];
                poolVal[static_cast<std::size_t>(idx)] = v;
            } else {
                idx = static_cast<std::int32_t>(poolVal.size());
                // contest-lint: allow(window-phase)
                poolVal.push_back(v);
                // contest-lint: allow(window-phase)
                poolNext.push_back(-1);
            }
            poolNext[static_cast<std::size_t>(idx)] = -1;
            if (bucketTail[p] >= 0)
                poolNext[static_cast<std::size_t>(bucketTail[p])] =
                    idx;
            else
                bucketHead[p] = idx;
            bucketTail[p] = idx;
            bitSet(occW, p);
            ++ringCount;
        }
        // Only lower a valid cache: an invalidated one may hide a
        // surviving event older than this push.
        if (cacheValid && at < cachedNext)
            cachedNext = at;
    }

    /** Earliest pending event cycle (call only when !empty()). */
    Cycles
    nextAt() const
    {
        if (cacheValid)
            return cachedNext;
        Cycles best = Cycles::max();
        if (ringCount != 0) {
            // First occupied bucket after drainedUpTo: rotate a word
            // walk around the (few-word) occupancy bitmap, masking
            // the first word below the start bit.
            const std::size_t start =
                (static_cast<std::size_t>(drainedUpTo.count()) + 1)
                & posMask;
            const std::size_t words = occW.size();
            std::size_t wi = start >> 6;
            std::uint64_t word = occW[wi] & (~std::uint64_t{0}
                                             << (start & 63));
            for (std::size_t n = 0;; ++n) {
                if (word != 0) {
                    const std::size_t p =
                        (wi << 6) + std::countr_zero(word);
                    const std::size_t dist =
                        ((p + span - start) & posMask) + 1;
                    best = drainedUpTo + dist;
                    break;
                }
                // The walk may legitimately revisit the start word
                // once, for the bits below the start position.
                panic_if(n > words,
                         "CycleRing occupancy desynced from count");
                wi = wi + 1 == words ? 0 : wi + 1;
                word = occW[wi];
                if (wi == start >> 6)
                    word &= (std::uint64_t{1} << (start & 63)) - 1;
            }
        }
        if (!overflow.empty() && overflow.top().first < best)
            best = overflow.top().first;
        cachedNext = best;
        cacheValid = true;
        return best;
    }

    /**
     * Deliver every event with cycle <= @p cur to @p fn, in
     * nondecreasing cycle order (insertion order within a cycle).
     */
    template <typename Fn>
    void
    drainUpTo(Cycles cur, Fn &&fn)
    {
        if (cur <= drainedUpTo)
            return;
        bool delivered = false;
        if (ringCount != 0) {
            const auto ahead =
                static_cast<std::size_t>((cur - drainedUpTo).count());
            panic_if(ahead > span,
                     "CycleRing drained %zu past its %zu-cycle span "
                     "with events pending",
                     ahead, span);
            const auto base = static_cast<std::size_t>(
                drainedUpTo.count());
            auto deliver = [&](std::size_t p) {
                // Walk the bucket's chain in push order, returning
                // each node to the free list after its value and
                // successor are extracted — a handler may push (and
                // so reuse the node) for a later cycle immediately.
                std::int32_t i = bucketHead[p];
                while (i >= 0) {
                    const auto u = static_cast<std::size_t>(i);
                    const T v = poolVal[u];
                    const std::int32_t nx = poolNext[u];
                    poolNext[u] = freeHead;
                    freeHead = i;
                    --ringCount;
                    // Generic callback: every in-tree handler is a
                    // lambda the engine analyzes at its definition.
                    // contest-lint: allow(unknown-call)
                    fn(v);
                    i = nx;
                }
                bucketHead[p] = -1;
                bucketTail[p] = -1;
                bitClear(occW, p);
                delivered = true;
                return ringCount != 0;
            };
            if (ahead <= 4) {
                // The clock usually advances a cycle or two per
                // drain; a plain bucket walk beats a masked bitmap
                // scan at that distance.
                for (std::size_t d = 1; d <= ahead; ++d) {
                    const std::size_t p = (base + d) & posMask;
                    if (!bitTest(occW, p))
                        continue;
                    if (!deliver(p))
                        break;
                }
            } else {
                // After a longer gap (the stage was gated off while
                // nothing was due) scan the occupancy bitmap instead
                // of touching every elapsed bucket. Position order
                // along the wrapped range is cycle order.
                const std::size_t start = (base + 1) & posMask;
                const std::size_t first = std::min(ahead, span - start);
                if (scanBits(occW, start, start + first, deliver)
                    && ahead > first)
                    scanBits(occW, 0, ahead - first, deliver);
            }
        }
        while (!overflow.empty() && overflow.top().first <= cur) {
            T v = overflow.top().second;
            overflow.pop();
            // contest-lint: allow(unknown-call)
            fn(v);
            delivered = true;
        }
        drainedUpTo = cur;
        // Undelivered events all lie past cur, so an untouched queue
        // keeps its cached minimum.
        if (delivered)
            cacheValid = false;
    }

    /** Drop every pending event; future pushes are relative to
     *  @p now (the refork cycle). */
    void
    clear(Cycles now)
    {
        if (ringCount != 0) {
            auto wipe = [&](std::size_t p) {
                bucketHead[p] = -1;
                bucketTail[p] = -1;
                return true;
            };
            scanBits(occW, 0, span, wipe);
            std::fill(occW.begin(), occW.end(), 0);
            ringCount = 0;
        }
        // Rebuild the free list over the whole pool (dropped and
        // free nodes alike); a refork is rare enough that O(pool)
        // is irrelevant.
        for (std::size_t i = 0; i < poolNext.size(); ++i)
            poolNext[i] = static_cast<std::int32_t>(i) + 1;
        if (!poolNext.empty()) {
            poolNext.back() = -1;
            freeHead = 0;
        } else {
            freeHead = -1;
        }
        overflow.clear();
        drainedUpTo = now;
        cachedNext = Cycles::max();
        cacheValid = true;
    }

  private:
    std::size_t span = 0;
    std::size_t posMask = 0;
    Cycles drainedUpTo{};
    std::size_t ringCount = 0;
    /** Event node pool: values + free-list / bucket-chain links. */
    std::vector<T> poolVal;
    std::vector<std::int32_t> poolNext;
    std::int32_t freeHead = -1;
    /** Per-bucket chain bounds into the pool (-1 = empty). Tail
     *  insertion preserves push order within a cycle. */
    SoaVec<std::int32_t> bucketHead;
    SoaVec<std::int32_t> bucketTail;
    SoaVec<std::uint64_t> occW;
    MinHeap<std::pair<Cycles, T>> overflow;
    /** Min pending cycle; lazily recomputed after a drain. */
    mutable Cycles cachedNext = Cycles::max();
    mutable bool cacheValid = true;
};

} // namespace contest

#endif // CONTEST_COMMON_CYCLE_RING_HH
