/**
 * @file
 * Cycle-indexed event ring (timing wheel) for the core's per-tick
 * event queues (DESIGN.md §13).
 *
 * The out-of-order core schedules every instruction's completion,
 * every load/MSHR release and every operand-arrival wakeup as a
 * (cycle, payload) event. A binary heap makes each of those an
 * O(log n) sift through scattered nodes; but the cycles involved are
 * almost always within a few hundred of "now" (scheduler depth plus
 * the worst memory round trip), so a power-of-two ring of per-cycle
 * buckets gives O(1) pushes and drains that touch only the cycles
 * that actually hold events — an occupancy bit per bucket makes
 * "when is the next event?" a find-first-set scan over a handful of
 * words. Events beyond the ring's horizon (unbounded memory-bus
 * queuing delay) spill into a small overflow heap, so no bound on
 * event latency is assumed.
 *
 * Drain order within one cycle is bucket insertion order, not the
 * heap's (cycle, payload) order; every user's per-cycle handler is
 * commutative (setting ready bits, counting releases), which is what
 * keeps the replacement bit-identical.
 */

#ifndef COMMON_CYCLE_RING_HH
#define COMMON_CYCLE_RING_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/min_heap.hh"
#include "common/soa.hh"
#include "common/types.hh"

namespace contest
{

/**
 * A queue of (cycle, T) events drained in nondecreasing cycle order.
 *
 * Invariants: pushes land strictly after their push tick (a cycle
 * already due is clamped to the next drain — the same tick it would
 * have surfaced from a heap), and the clock — stepped or idle-skipped
 * — never passes a pending event, so by the time drainUpTo() runs,
 * every ring-resident event still lies within one span of the last
 * drain point (enforced by the panic below).
 */
template <typename T>
class CycleRing
{
  public:
    /** Size the ring to cover at least @p min_span cycles ahead. */
    void
    init(std::size_t min_span)
    {
        span = nextPow2(min_span);
        posMask = span - 1;
        buckets.resize(span);
        occW.assign(maskWords(span), 0);
    }

    bool empty() const { return ringCount + overflow.size() == 0; }

    std::size_t size() const { return ringCount + overflow.size(); }

    /** Is some event due at or before cycle @p cur? */
    bool
    due(Cycles cur) const
    {
        return !empty() && nextAt() <= cur;
    }

    /**
     * Queue @p v for cycle @p at, pushed during the tick at cycle
     * @p now. An @p at in the past is clamped to now + 1 — the next
     * drain, exactly when a heap would have surfaced it.
     */
    void
    push(Cycles now, Cycles at, const T &v)
    {
        if (at <= now)
            at = now + 1;
        if (at > drainedUpTo + span) {
            // Beyond the horizon (pathological bus queuing): spill.
            overflow.push({at, v});
        } else {
            const std::size_t p =
                static_cast<std::size_t>(at.count()) & posMask;
            // Per-core bucket storage: capacity persists across ring
            // laps, so steady-state pushes never allocate, and the
            // rare growth touches only this core's own vectors.
            // contest-lint: allow(window-phase)
            buckets[p].push_back(v);
            bitSet(occW, p);
            ++ringCount;
        }
        // Only lower a valid cache: an invalidated one may hide a
        // surviving event older than this push.
        if (cacheValid && at < cachedNext)
            cachedNext = at;
    }

    /** Earliest pending event cycle (call only when !empty()). */
    Cycles
    nextAt() const
    {
        if (cacheValid)
            return cachedNext;
        Cycles best = Cycles::max();
        if (ringCount != 0) {
            // First occupied bucket after drainedUpTo: rotate a word
            // walk around the (few-word) occupancy bitmap, masking
            // the first word below the start bit.
            const std::size_t start =
                (static_cast<std::size_t>(drainedUpTo.count()) + 1)
                & posMask;
            const std::size_t words = occW.size();
            std::size_t wi = start >> 6;
            std::uint64_t word = occW[wi] & (~std::uint64_t{0}
                                             << (start & 63));
            for (std::size_t n = 0;; ++n) {
                if (word != 0) {
                    const std::size_t p =
                        (wi << 6) + std::countr_zero(word);
                    const std::size_t dist =
                        ((p + span - start) & posMask) + 1;
                    best = drainedUpTo + dist;
                    break;
                }
                // The walk may legitimately revisit the start word
                // once, for the bits below the start position.
                panic_if(n > words,
                         "CycleRing occupancy desynced from count");
                wi = wi + 1 == words ? 0 : wi + 1;
                word = occW[wi];
                if (wi == start >> 6)
                    word &= (std::uint64_t{1} << (start & 63)) - 1;
            }
        }
        if (!overflow.empty() && overflow.top().first < best)
            best = overflow.top().first;
        cachedNext = best;
        cacheValid = true;
        return best;
    }

    /**
     * Deliver every event with cycle <= @p cur to @p fn, in
     * nondecreasing cycle order (insertion order within a cycle).
     */
    template <typename Fn>
    void
    drainUpTo(Cycles cur, Fn &&fn)
    {
        if (cur <= drainedUpTo)
            return;
        bool delivered = false;
        if (ringCount != 0) {
            const auto ahead =
                static_cast<std::size_t>((cur - drainedUpTo).count());
            panic_if(ahead > span,
                     "CycleRing drained %zu past its %zu-cycle span "
                     "with events pending",
                     ahead, span);
            const auto base = static_cast<std::size_t>(
                drainedUpTo.count());
            auto deliver = [&](std::size_t p) {
                for (T &v : buckets[p])
                    // Generic callback: every in-tree handler is a
                    // lambda the engine analyzes at its definition.
                    // contest-lint: allow(unknown-call)
                    fn(v);
                ringCount -= buckets[p].size();
                buckets[p].clear();
                bitClear(occW, p);
                delivered = true;
                return ringCount != 0;
            };
            if (ahead <= 4) {
                // The clock usually advances a cycle or two per
                // drain; a plain bucket walk beats a masked bitmap
                // scan at that distance.
                for (std::size_t d = 1; d <= ahead; ++d) {
                    const std::size_t p = (base + d) & posMask;
                    if (!bitTest(occW, p))
                        continue;
                    if (!deliver(p))
                        break;
                }
            } else {
                // After a longer gap (the stage was gated off while
                // nothing was due) scan the occupancy bitmap instead
                // of touching every elapsed bucket. Position order
                // along the wrapped range is cycle order.
                const std::size_t start = (base + 1) & posMask;
                const std::size_t first = std::min(ahead, span - start);
                if (scanBits(occW, start, start + first, deliver)
                    && ahead > first)
                    scanBits(occW, 0, ahead - first, deliver);
            }
        }
        while (!overflow.empty() && overflow.top().first <= cur) {
            T v = overflow.top().second;
            overflow.pop();
            // contest-lint: allow(unknown-call)
            fn(v);
            delivered = true;
        }
        drainedUpTo = cur;
        // Undelivered events all lie past cur, so an untouched queue
        // keeps its cached minimum.
        if (delivered)
            cacheValid = false;
    }

    /** Drop every pending event; future pushes are relative to
     *  @p now (the refork cycle). */
    void
    clear(Cycles now)
    {
        if (ringCount != 0) {
            auto wipe = [&](std::size_t p) {
                buckets[p].clear();
                return true;
            };
            scanBits(occW, 0, span, wipe);
            std::fill(occW.begin(), occW.end(), 0);
            ringCount = 0;
        }
        overflow.clear();
        drainedUpTo = now;
        cachedNext = Cycles::max();
        cacheValid = true;
    }

  private:
    std::size_t span = 0;
    std::size_t posMask = 0;
    Cycles drainedUpTo{};
    std::size_t ringCount = 0;
    std::vector<std::vector<T>> buckets;
    SoaVec<std::uint64_t> occW;
    MinHeap<std::pair<Cycles, T>> overflow;
    /** Min pending cycle; lazily recomputed after a drain. */
    mutable Cycles cachedNext = Cycles::max();
    mutable bool cacheValid = true;
};

} // namespace contest

#endif // COMMON_CYCLE_RING_HH
