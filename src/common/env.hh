/**
 * @file
 * Environment-variable knobs shared by the bench binaries.
 *
 * CONTEST_TRACE_LEN — instructions per benchmark trace (default 400k).
 * CONTEST_FAST      — when set to a non-zero value, shrinks parameter
 *                     sweeps so the whole bench suite completes
 *                     quickly (used by CI-style runs).
 * CONTEST_SEED      — base seed for workload generation (default 2009,
 *                     the paper's publication year).
 * CONTEST_JOBS      — concurrency of the parallel experiment harness
 *                     (default: the hardware concurrency). 1 runs
 *                     everything serially. Results are bit-identical
 *                     for every value.
 * CONTEST_NO_SKIP   — when set to a non-zero value, disables the
 *                     idle-cycle fast-forward and steps every core
 *                     cycle-by-cycle. The reference mode for
 *                     debugging the event-driven scheduler; results
 *                     are bit-identical either way.
 * CONTEST_CONTEST_JOBS — worker threads *inside* one contested
 *                     simulation (windowed time-synchronous
 *                     execution). 1 (the default) runs the
 *                     sequential event loop, which is the validation
 *                     oracle; results are bit-identical for every
 *                     value.
 *
 * All integer knobs parse strictly: a malformed value (trailing
 * garbage, negative, overflow) warns and falls back to the default.
 */

#ifndef CONTEST_COMMON_ENV_HH
#define CONTEST_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace contest
{

/** Read an unsigned integer env var, falling back to a default. */
std::uint64_t envU64(const std::string &name, std::uint64_t def);

/** Read a boolean (non-zero integer) env var. */
bool envFlag(const std::string &name);

/** Instructions per benchmark trace for bench binaries. */
std::uint64_t benchTraceLen();

/** Whether to shrink sweeps for a quick run. */
bool benchFastMode();

/** Base seed for deterministic workload generation. */
std::uint64_t benchSeed();

/**
 * Whether idle-cycle skipping is disabled (CONTEST_NO_SKIP). Read
 * at every run so tests can toggle the mode with setenv between
 * otherwise identical runs.
 */
bool simNoSkip();

/**
 * Concurrency for parallel experiment sweeps: CONTEST_JOBS, falling
 * back to the hardware concurrency. Always at least 1.
 */
unsigned defaultJobs();

/**
 * Concurrency inside one contested simulation
 * (CONTEST_CONTEST_JOBS). Read at every run so tests can toggle the
 * mode with setenv between otherwise identical runs. Always at
 * least 1; 1 means the sequential oracle loop.
 */
unsigned contestJobs();

/**
 * Strip a leading-anywhere `--jobs N` / `--jobs=N` from argv (before
 * any other flag parsing) and export it as CONTEST_JOBS so every
 * layer — including the process-wide thread pool — sees the same
 * setting. Call before the pool's first use.
 */
void applyJobsFlag(int *argc, char **argv);

/** Strip `--contest-jobs N` / `--contest-jobs=N` from argv and
 *  export it as CONTEST_CONTEST_JOBS. */
void applyContestJobsFlag(int *argc, char **argv);

} // namespace contest

#endif // CONTEST_COMMON_ENV_HH
