/**
 * @file
 * Plain-text table formatting for bench output. Every bench binary
 * prints its figure/table in the same aligned format so the
 * reproduction numbers are easy to diff against EXPERIMENTS.md.
 */

#ifndef CONTEST_COMMON_TABLE_HH
#define CONTEST_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace contest
{

/** Column-aligned text table with a title and header row. */
class TextTable
{
  public:
    /** @param table_title printed above the table */
    explicit TextTable(std::string table_title)
        : title(std::move(table_title))
    {}

    /** Set the header row (defines the column count). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format a percentage with a sign, e.g. "+15.3%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace contest

#endif // CONTEST_COMMON_TABLE_HH
