#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace contest
{

void
TextTable::header(std::vector<std::string> cells)
{
    fatal_if(cells.empty(), "TextTable header must not be empty");
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    fatal_if(head.empty(), "TextTable::row() before header()");
    fatal_if(cells.size() != head.size(),
             "TextTable row width %zu does not match header width %zu",
             cells.size(), head.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(head.size(), 0);
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit_row = [&](std::ostringstream &out,
                        const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << cells[c];
            out << std::string(widths[c] - cells[c].size(), ' ');
        }
        out << " |\n";
    };

    std::ostringstream out;
    out << "== " << title << " ==\n";
    if (head.empty())
        return out.str();
    emit_row(out, head);
    for (std::size_t c = 0; c < head.size(); ++c) {
        out << (c == 0 ? "|-" : "-|-");
        out << std::string(widths[c], '-');
    }
    out << "-|\n";
    for (const auto &r : rows)
        emit_row(out, r);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace contest
