/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so the failure is debuggable.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with an
 *            error code.
 * warn()   — something is modeled approximately; simulation continues.
 * inform() — normal operating status.
 */

#ifndef CONTEST_COMMON_LOG_HH
#define CONTEST_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace contest
{

/** Verbosity levels for runtime filtering of status messages. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Process-wide log level; defaults to Warn so tests stay quiet. */
LogLevel logLevel();

/** Override the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail
{
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
std::string formatMsg(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

} // namespace contest

/** Abort with a message: an internal simulator bug was detected. */
#define panic(...)                                                     \
    ::contest::detail::panicImpl(                                      \
        __FILE__, __LINE__, ::contest::detail::formatMsg(__VA_ARGS__))

/** Exit with a message: the user supplied an impossible configuration. */
#define fatal(...)                                                     \
    ::contest::detail::fatalImpl(                                      \
        __FILE__, __LINE__, ::contest::detail::formatMsg(__VA_ARGS__))

/** Emit a warning about approximate or suspicious behaviour. */
#define warn(...)                                                      \
    ::contest::detail::warnImpl(::contest::detail::formatMsg(__VA_ARGS__))

/** Emit an informational status message. */
#define inform(...)                                                    \
    ::contest::detail::informImpl(                                     \
        ::contest::detail::formatMsg(__VA_ARGS__))

/** panic() unless the given simulator invariant holds. */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            panic(__VA_ARGS__);                                        \
    } while (0)

/** fatal() unless the given user-facing precondition holds. */
#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            fatal(__VA_ARGS__);                                        \
    } while (0)

#endif // CONTEST_COMMON_LOG_HH
