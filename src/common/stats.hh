/**
 * @file
 * Lightweight statistics containers used by the core models and the
 * experiment harness: running scalar summaries, histograms, and the
 * mean families (arithmetic / harmonic / geometric) the paper's
 * figures of merit are built from.
 */

#ifndef CONTEST_COMMON_STATS_HH
#define CONTEST_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/log.hh"

namespace contest
{

/** Incremental min / max / mean / variance over a stream of samples. */
class RunningStat
{
  public:
    /** Record one sample. */
    void
    sample(double x)
    {
        ++n;
        double delta = x - meanAcc;
        meanAcc += delta / static_cast<double>(n);
        m2 += delta * (x - meanAcc);
        if (x < minV)
            minV = x;
        if (x > maxV)
            maxV = x;
    }

    /** Number of samples recorded so far. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n ? meanAcc : 0.0; }

    /** Population variance; 0 when fewer than two samples. */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample; +inf when empty. */
    double min() const { return minV; }

    /** Largest sample; -inf when empty. */
    double max() const { return maxV; }

    /** Forget all samples. */
    void
    reset()
    {
        n = 0;
        meanAcc = 0.0;
        m2 = 0.0;
        minV = std::numeric_limits<double>::infinity();
        maxV = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
};

/** Fixed-width bucketed histogram with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (> 0)
     * @param num_buckets number of regular buckets before overflow
     */
    Histogram(double bucket_width, std::size_t num_buckets)
        : width(bucket_width), counts(num_buckets + 1, 0)
    {
        fatal_if(bucket_width <= 0.0, "Histogram bucket width must be > 0");
        fatal_if(num_buckets == 0, "Histogram needs at least one bucket");
    }

    /** Record one sample; negatives clamp into the first bucket. */
    void
    sample(double x)
    {
        ++total;
        if (x < 0.0) {
            ++counts.front();
            return;
        }
        auto idx = static_cast<std::size_t>(x / width);
        if (idx >= counts.size() - 1)
            ++counts.back();
        else
            ++counts[idx];
    }

    /** Count in regular bucket i (overflow is bucket numBuckets()). */
    std::uint64_t
    bucket(std::size_t i) const
    {
        panic_if(i >= counts.size(), "Histogram bucket out of range");
        return counts[i];
    }

    /** Number of regular buckets. */
    std::size_t numBuckets() const { return counts.size() - 1; }

    /** Count in the overflow bucket. */
    std::uint64_t overflow() const { return counts.back(); }

    /** Total samples recorded. */
    std::uint64_t samples() const { return total; }

  private:
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
};

/** Arithmetic mean of a vector; 0 when empty. */
double arithmeticMean(const std::vector<double> &xs);

/** Harmonic mean of a vector of positive values; 0 when empty. */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean of a vector of positive values; 0 when empty. */
double geometricMean(const std::vector<double> &xs);

/**
 * Weighted harmonic mean: sum(w) / sum(w / x). Weights and values
 * must be positive and the two vectors the same length.
 */
double weightedHarmonicMean(const std::vector<double> &xs,
                            const std::vector<double> &weights);

/**
 * Index of the largest element, ties resolved to the FIRST
 * occurrence. Every best-row scan in the experiment suite funnels
 * through this so tie-breaking is uniform (and independent of scan
 * direction or job count); fatal() on an empty vector.
 */
std::size_t argmaxFirst(const std::vector<double> &xs);

} // namespace contest

#endif // CONTEST_COMMON_STATS_HH
