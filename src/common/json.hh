/**
 * @file
 * Minimal JSON document model for the artifact pipeline: an ordered
 * value type, a serializer whose doubles round-trip exactly (shortest
 * representation that parses back bit-identical), and a strict
 * recursive-descent parser. Objects preserve insertion order so the
 * emitted artifacts diff cleanly under version control.
 */

#ifndef CONTEST_COMMON_JSON_HH
#define CONTEST_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace contest
{

/** One JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** A null value. */
    JsonValue() = default;

    /** @name Typed constructors */
    /** @{ */
    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();
    /** @} */

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Bool; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    /** The boolean payload; panics unless isBool(). */
    bool asBool() const;
    /** The numeric payload; panics unless isNumber(). */
    double asNumber() const;
    /** The string payload; panics unless isString(). */
    const std::string &asString() const;

    /** Array elements; panics unless isArray(). */
    const std::vector<JsonValue> &elements() const;
    /** Append an element; panics unless isArray(). */
    void push(JsonValue v);

    /** Object members in insertion order; panics unless isObject(). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;
    /** Set (or overwrite) a member; panics unless isObject(). */
    void set(const std::string &key, JsonValue v);
    /** Member by key, or nullptr when absent; panics unless
     *  isObject(). */
    const JsonValue *find(const std::string &key) const;
    /** Member by key; panics when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Number of elements (array) or members (object). */
    std::size_t size() const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per nesting level; 0 emits a compact single line.
     */
    std::string dump(int indent = 2) const;

    /**
     * Containers deeper than this fail to parse. The limit keeps a
     * hostile document (e.g. one megabyte of '[') from exhausting
     * the recursive-descent parser's stack — the contest service
     * daemon parses untrusted network input with this function, so
     * malformed input must fail with an error, never a crash.
     */
    static constexpr int maxParseDepth = 64;

    /**
     * Parse a complete JSON document. On failure returns a null
     * value and, when @p error is non-null, stores a message with
     * the byte offset of the problem. Never panics: malformed
     * documents, truncated input, and over-deep nesting all report
     * through @p error.
     */
    static JsonValue parse(const std::string &text,
                           std::string *error = nullptr);

  private:
    Kind k = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string s;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    void dumpTo(std::string &out, int indent, int depth) const;
};

/** Escape @p s as the body of a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Format a double as the shortest decimal that parses back to the
 * identical bits (integers within 2^53 print without a fraction).
 */
std::string jsonNumber(double v);

} // namespace contest

#endif // CONTEST_COMMON_JSON_HH
