#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace contest
{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.k = Kind::Bool;
    v.b = b;
    return v;
}

JsonValue
JsonValue::number(double value)
{
    JsonValue v;
    v.k = Kind::Number;
    v.num = value;
    return v;
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.k = Kind::String;
    v.s = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.k = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.k = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    panic_if(k != Kind::Bool, "JsonValue::asBool on a non-bool value");
    return b;
}

double
JsonValue::asNumber() const
{
    panic_if(k != Kind::Number,
             "JsonValue::asNumber on a non-number value");
    return num;
}

const std::string &
JsonValue::asString() const
{
    panic_if(k != Kind::String,
             "JsonValue::asString on a non-string value");
    return s;
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    panic_if(k != Kind::Array,
             "JsonValue::elements on a non-array value");
    return arr;
}

// contest-lint: window-safe (artifact serialization runs after the
// simulation; call-graph reached only via the push name collision)
void
JsonValue::push(JsonValue v)
{
    panic_if(k != Kind::Array, "JsonValue::push on a non-array value");
    arr.push_back(std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    panic_if(k != Kind::Object,
             "JsonValue::members on a non-object value");
    return obj;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    panic_if(k != Kind::Object, "JsonValue::set on a non-object value");
    for (auto &m : obj) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    panic_if(k != Kind::Object,
             "JsonValue::find on a non-object value");
    for (const auto &m : obj)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    panic_if(v == nullptr, "JsonValue::at: no member named '%s'",
             key.c_str());
    return *v;
}

std::size_t
JsonValue::size() const
{
    if (k == Kind::Array)
        return arr.size();
    if (k == Kind::Object)
        return obj.size();
    panic("JsonValue::size on a scalar value");
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null-adjacent sentinels that the
        // strict parser will reject, making the corruption loud.
        return v > 0 ? "1e999" : (v < 0 ? "-1e999" : "nan");
    }
    // Integers inside the exactly-representable window print without
    // a fraction.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Shortest precision that round-trips to the identical bits.
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };
    switch (k) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += b ? "true" : "false";
        break;
      case Kind::Number:
        out += jsonNumber(num);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(s);
        out += '"';
        break;
      case Kind::Array:
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i > 0)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i > 0)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            out += '"';
            out += jsonEscape(obj[i].first);
            out += "\": ";
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace
{

/** Strict recursive-descent JSON parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : src(text), err(error)
    {}

    JsonValue
    document()
    {
        JsonValue v = value();
        if (!failed) {
            skipWs();
            if (pos != src.size())
                fail("trailing characters after the document");
        }
        return failed ? JsonValue{} : v;
    }

  private:
    const std::string &src;
    std::string *err;
    std::size_t pos = 0;
    int depth = 0;
    bool failed = false;

    /** Guard one container level; fails past maxParseDepth. */
    bool
    enter()
    {
        if (++depth > JsonValue::maxParseDepth) {
            fail("nesting deeper than "
                 + std::to_string(JsonValue::maxParseDepth)
                 + " levels");
            return false;
        }
        return true;
    }

    void leave() { --depth; }

    void
    fail(const std::string &why)
    {
        if (!failed && err != nullptr)
            *err = why + " at byte " + std::to_string(pos);
        failed = true;
    }

    void
    skipWs()
    {
        while (pos < src.size()
               && (src[pos] == ' ' || src[pos] == '\t'
                   || src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (src.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        if (pos >= src.size()) {
            fail("unexpected end of document");
            return {};
        }
        char c = src[pos];
        if (c == '{')
            return objectValue();
        if (c == '[')
            return arrayValue();
        if (c == '"')
            return JsonValue::str(stringBody());
        if (c == 't') {
            if (literal("true"))
                return JsonValue::boolean(true);
        } else if (c == 'f') {
            if (literal("false"))
                return JsonValue::boolean(false);
        } else if (c == 'n') {
            if (literal("null"))
                return {};
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            return numberValue();
        }
        fail("unexpected character");
        return {};
    }

    JsonValue
    numberValue()
    {
        const char *start = src.c_str() + pos;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start || !std::isfinite(v)) {
            fail("malformed number");
            return {};
        }
        pos += static_cast<std::size_t>(end - start);
        return JsonValue::number(v);
    }

    std::string
    stringBody()
    {
        std::string out;
        ++pos; // opening quote
        while (pos < src.size()) {
            char c = src[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= src.size())
                    break;
                char e = src[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > src.size()) {
                        fail("truncated \\u escape");
                        return out;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = src[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a') + 10;
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A') + 10;
                        else {
                            fail("malformed \\u escape");
                            return out;
                        }
                    }
                    // UTF-8 encode the basic-multilingual-plane code
                    // point (surrogate pairs are not produced by our
                    // writer and are passed through as-is).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape sequence");
                    return out;
                }
            } else {
                out += c;
                ++pos;
            }
        }
        fail("unterminated string");
        return out;
    }

    JsonValue
    arrayValue()
    {
        if (!enter())
            return {};
        JsonValue v = arrayBody();
        leave();
        return v;
    }

    JsonValue
    arrayBody()
    {
        ++pos; // '['
        JsonValue v = JsonValue::array();
        skipWs();
        if (consume(']'))
            return v;
        while (!failed) {
            v.push(value());
            if (consume(']'))
                return v;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return v;
            }
        }
        return v;
    }

    JsonValue
    objectValue()
    {
        if (!enter())
            return {};
        JsonValue v = objectBody();
        leave();
        return v;
    }

    JsonValue
    objectBody()
    {
        ++pos; // '{'
        JsonValue v = JsonValue::object();
        skipWs();
        if (consume('}'))
            return v;
        while (!failed) {
            skipWs();
            if (pos >= src.size() || src[pos] != '"') {
                fail("expected a string key in object");
                return v;
            }
            std::string key = stringBody();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return v;
            }
            v.set(key, value());
            if (consume('}'))
                return v;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return v;
            }
        }
        return v;
    }
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    Parser p(text, error);
    return p.document();
}

} // namespace contest
