/**
 * @file
 * Shared string hashing: the FNV-1a 64-bit digest used to name
 * result-cache entries on disk, and a precomputed-hash string key
 * for the Runner's memoization tables (the canonical key strings are
 * long — hash once at insertion, compare hashes before bytes).
 */

#ifndef CONTEST_COMMON_HASH_HH
#define CONTEST_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace contest
{

/** FNV-1a 64-bit digest of a byte string. */
inline std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * An unordered_map key wrapping a canonical key string with its
 * digest computed once at construction. Equality still compares the
 * full string (a digest match alone must never alias two keys), but
 * the common miss case is decided on the 64-bit hash.
 */
struct HashedKey
{
    std::uint64_t hash = 0;
    std::string key;

    HashedKey() = default;
    explicit HashedKey(std::string k)
        : hash(fnv1a64(k)), key(std::move(k))
    {}

    bool
    operator==(const HashedKey &other) const
    {
        return hash == other.hash && key == other.key;
    }
};

/** Hasher forwarding the precomputed digest. */
struct HashedKeyHash
{
    std::size_t
    operator()(const HashedKey &k) const
    {
        return static_cast<std::size_t>(k.hash);
    }
};

} // namespace contest

#endif // CONTEST_COMMON_HASH_HH
