#include "common/log.hh"

#include <cstdarg>
#include <cstdio>
#include <exception>
#include <vector>

namespace contest
{

namespace
{
LogLevel globalLevel = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail
{

std::string
formatMsg(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace contest
