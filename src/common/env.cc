#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/log.hh"

namespace contest
{

std::uint64_t
envU64(const std::string &name, std::uint64_t def)
{
    const char *raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return def;

    // Parse strictly: the whole value must be one non-negative
    // decimal integer that fits in 64 bits. strtoull alone is too
    // permissive — it silently accepts trailing garbage ("4abc"),
    // wraps negative values ("-1" becomes 2^64-1), and saturates on
    // overflow without telling the caller — so every malformed value
    // warns and falls back to the default instead of smuggling a
    // nonsense number into a knob like CONTEST_JOBS.
    const char *start = raw;
    while (std::isspace(static_cast<unsigned char>(*start)))
        ++start;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(start, &end, 10);
    const bool negative = *start == '-';
    const bool no_digits = end == start;
    const bool trailing = end != nullptr && *end != '\0';
    const bool overflow = errno == ERANGE;
    if (negative || no_digits || trailing || overflow) {
        warn("ignoring malformed %s='%s' (%s); using default %llu",
             name.c_str(), raw,
             negative    ? "negative"
             : no_digits ? "not a number"
             : trailing  ? "trailing garbage"
                         : "out of range",
             static_cast<unsigned long long>(def));
        return def;
    }
    return static_cast<std::uint64_t>(v);
}

bool
envFlag(const std::string &name)
{
    return envU64(name, 0) != 0;
}

std::uint64_t
benchTraceLen()
{
    return envU64("CONTEST_TRACE_LEN", 400'000);
}

bool
benchFastMode()
{
    return envFlag("CONTEST_FAST");
}

std::uint64_t
benchSeed()
{
    return envU64("CONTEST_SEED", 2009);
}

bool
simNoSkip()
{
    return envFlag("CONTEST_NO_SKIP");
}

unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    std::uint64_t jobs = envU64("CONTEST_JOBS", hw > 0 ? hw : 1);
    if (jobs < 1)
        jobs = 1;
    if (jobs > 1024)
        jobs = 1024;
    return static_cast<unsigned>(jobs);
}

unsigned
contestJobs()
{
    std::uint64_t jobs = envU64("CONTEST_CONTEST_JOBS", 1);
    if (jobs < 1)
        jobs = 1;
    if (jobs > 256)
        jobs = 256;
    return static_cast<unsigned>(jobs);
}

/** Strip `--<flag> V` / `--<flag>=V` from argv into @p env_name. */
static void
stripValueFlag(int *argc, char **argv, const char *flag,
               const char *env_name)
{
    const std::size_t n = std::strlen(flag);
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        std::string value;
        if (std::strcmp(arg, flag) == 0 && i + 1 < *argc) {
            value = argv[++i];
        } else if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') {
            value = arg + n + 1;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        setenv(env_name, value.c_str(), 1);
    }
    argv[out] = nullptr;
    *argc = out;
}

void
applyJobsFlag(int *argc, char **argv)
{
    stripValueFlag(argc, argv, "--jobs", "CONTEST_JOBS");
}

void
applyContestJobsFlag(int *argc, char **argv)
{
    stripValueFlag(argc, argv, "--contest-jobs",
                   "CONTEST_CONTEST_JOBS");
}

} // namespace contest
