#include "common/env.hh"

#include <cstdlib>

namespace contest
{

std::uint64_t
envU64(const std::string &name, std::uint64_t def)
{
    const char *raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return def;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw)
        return def;
    return static_cast<std::uint64_t>(v);
}

bool
envFlag(const std::string &name)
{
    return envU64(name, 0) != 0;
}

std::uint64_t
benchTraceLen()
{
    return envU64("CONTEST_TRACE_LEN", 400'000);
}

bool
benchFastMode()
{
    return envFlag("CONTEST_FAST");
}

std::uint64_t
benchSeed()
{
    return envU64("CONTEST_SEED", 2009);
}

} // namespace contest
