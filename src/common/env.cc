#include "common/env.hh"

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace contest
{

std::uint64_t
envU64(const std::string &name, std::uint64_t def)
{
    const char *raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return def;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw)
        return def;
    return static_cast<std::uint64_t>(v);
}

bool
envFlag(const std::string &name)
{
    return envU64(name, 0) != 0;
}

std::uint64_t
benchTraceLen()
{
    return envU64("CONTEST_TRACE_LEN", 400'000);
}

bool
benchFastMode()
{
    return envFlag("CONTEST_FAST");
}

std::uint64_t
benchSeed()
{
    return envU64("CONTEST_SEED", 2009);
}

bool
simNoSkip()
{
    return envFlag("CONTEST_NO_SKIP");
}

unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    std::uint64_t jobs = envU64("CONTEST_JOBS", hw > 0 ? hw : 1);
    if (jobs < 1)
        jobs = 1;
    if (jobs > 1024)
        jobs = 1024;
    return static_cast<unsigned>(jobs);
}

void
applyJobsFlag(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        std::string value;
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < *argc) {
            value = argv[++i];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        setenv("CONTEST_JOBS", value.c_str(), 1);
    }
    argv[out] = nullptr;
    *argc = out;
}

} // namespace contest
