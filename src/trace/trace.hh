/**
 * @file
 * A materialized dynamic instruction trace plus summary statistics.
 */

#ifndef CONTEST_TRACE_TRACE_HH
#define CONTEST_TRACE_TRACE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/decode.hh"
#include "trace/instr.hh"

namespace contest
{

/** Aggregate composition statistics of a trace. */
struct TraceMix
{
    std::uint64_t alu = 0;
    std::uint64_t mul = 0;
    std::uint64_t div = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t uncondBranches = 0;
    std::uint64_t syscalls = 0;

    std::uint64_t
    total() const
    {
        return alu + mul + div + loads + stores + condBranches
            + uncondBranches + syscalls;
    }
};

/**
 * The retired dynamic instruction stream of one workload, together
 * with the generator's phase annotation (which archetype produced
 * each instruction — used by tests and analysis tools only; the
 * timing models never look at it).
 */
class Trace
{
  public:
    Trace() = default;

    /** @param workload_name human-readable workload identifier */
    explicit Trace(std::string workload_name)
        : name_(std::move(workload_name))
    {}

    /** Reserve storage for the expected instruction count. */
    void
    reserve(std::size_t n)
    {
        insts.reserve(n);
        phases.reserve(n);
        flags_.reserve(n);
    }

    /** Append one instruction produced by the given phase id.
     *  Trace construction happens before any simulation; the call
     *  graph reaches this only through the bare-name collision with
     *  MinHeap::push. contest-lint: window-safe */
    void
    push(const TraceInst &inst, std::uint8_t phase_id)
    {
        insts.push_back(inst);
        phases.push_back(phase_id);
        flags_.push_back(decodeFlags(inst));
    }

    /** Number of instructions in the trace. */
    std::size_t size() const { return insts.size(); }

    /** Is the trace empty? */
    bool empty() const { return insts.empty(); }

    /** The i-th retired instruction. */
    const TraceInst &operator[](std::size_t i) const { return insts[i]; }

    /** The retired instruction at stream position @p seq. */
    const TraceInst &
    operator[](InstSeq seq) const
    {
        return insts[static_cast<std::size_t>(seq.count())];
    }

    /** One past the last stream position — the typed size(), so
     *  fetch/retire counters compare without leaving the unit. */
    InstSeq endSeq() const { return InstSeq{insts.size()}; }

    /** Raw base of the instruction array (batched-decode access). */
    const TraceInst *data() const { return insts.data(); }

    /** Raw base of the pre-decoded flags array, parallel to data(). */
    const std::uint8_t *decodedFlags() const { return flags_.data(); }

    /** Pre-decoded flags of the instruction at position @p seq. */
    std::uint8_t
    flagsOf(InstSeq seq) const
    {
        return flags_[static_cast<std::size_t>(seq.count())];
    }

    /**
     * Up to @p max_count pre-decoded instructions starting at stream
     * position @p seq, clipped to the end of the trace. The block
     * aliases the trace arrays: no copying, valid while the trace
     * lives.
     */
    FetchBlock
    block(InstSeq seq, std::uint32_t max_count) const
    {
        const auto i = static_cast<std::size_t>(seq.count());
        const std::size_t n =
            std::min<std::size_t>(max_count, insts.size() - i);
        return FetchBlock{insts.data() + i, flags_.data() + i,
                          static_cast<std::uint32_t>(n)};
    }

    /** Generator phase id of the i-th instruction. */
    std::uint8_t phaseOf(std::size_t i) const { return phases[i]; }

    /** Workload name. */
    const std::string &name() const { return name_; }

    /** Compute the operation mix of the whole trace. */
    TraceMix mix() const;

    /**
     * Number of phase changes (adjacent instructions whose phase ids
     * differ) — a direct measure of fine-grain behaviour variation.
     */
    std::uint64_t phaseChanges() const;

  private:
    std::string name_;
    std::vector<TraceInst> insts;
    std::vector<std::uint8_t> phases;
    /** Pre-decoded flags byte per instruction, parallel to insts. */
    std::vector<std::uint8_t> flags_;
};

/** Shared ownership alias; traces are immutable once generated. */
using TracePtr = std::shared_ptr<const Trace>;

} // namespace contest

#endif // CONTEST_TRACE_TRACE_HH
