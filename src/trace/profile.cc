#include "trace/profile.hh"

#include "common/log.hh"

namespace contest
{

namespace
{

/** Shorthand: canonical archetype with a weight. */
PhaseSpec
ph(PhaseKind kind, double weight)
{
    return PhaseSpec{PhaseParams::canonical(kind), weight};
}

/*
 * Footprints below are scaled to the default bench trace length
 * (hundreds of thousands of instructions, standing in for the
 * paper's 100M-instruction SimPoints) so working sets warm up and
 * the palette's L1 capacities (8KB-256KB), L2 capacities
 * (128KB-4MB) and block sizes (8B-512B) each discriminate between
 * core types the way the full benchmarks discriminate between the
 * customized cores.
 */

/**
 * bzip2: block-sorting compression. Long entropy-coding dependence
 * chains alternate with sequential sweeps over a block buffer that
 * only the multi-megabyte L2s retain across wrap-arounds.
 */
BenchmarkProfile
makeBzip()
{
    BenchmarkProfile p;
    p.name = "bzip";
    auto serial = ph(PhaseKind::SerialChain, 0.40);
    serial.params.meanLen = 500;
    // Sort/entropy inner loops: serialized sweeps over a buffer
    // that lives in the low-latency two-cycle L1.
    auto stream = ph(PhaseKind::Streaming, 0.35);
    stream.params.footprintBytes = 48 * 1024;
    stream.params.strideBytes = 8;
    stream.params.serialFrac = 0.50;
    stream.params.freshSrcFrac = 0.15;
    stream.params.meanLen = 600;
    auto branchy = ph(PhaseKind::Branchy, 0.12);
    branchy.params.meanLen = 250;
    branchy.params.takenBias = 0.90;
    branchy.params.randomSiteFrac = 0.08;
    branchy.params.serialFrac = 0.40;
    branchy.params.freshSrcFrac = 0.20;
    branchy.params.footprintBytes = 24 * 1024;
    auto hot = ph(PhaseKind::HotLoop, 0.13);
    p.phases = {serial, stream, branchy, hot};
    return p;
}

/**
 * crafty: chess search. Bitboard arithmetic gives wide ILP; control
 * is frequent but well predicted; the working set is tiny.
 */
BenchmarkProfile
makeCrafty()
{
    BenchmarkProfile p;
    p.name = "crafty";
    auto ilp = ph(PhaseKind::IlpCompute, 0.55);
    ilp.params.meanLen = 350;
    // Bitboards: nearly flat dataflow that only raw fetch/issue
    // width can exploit.
    ilp.params.freshSrcFrac = 0.85;
    ilp.params.serialFrac = 0.01;
    ilp.params.twoSrcFrac = 0.20;
    ilp.params.fracLoad = 0.10;
    ilp.params.fracStore = 0.04;
    ilp.params.takenBias = 0.98;
    ilp.params.randomSiteFrac = 0.02;
    auto hot = ph(PhaseKind::HotLoop, 0.20);
    auto branchy = ph(PhaseKind::Branchy, 0.20);
    branchy.params.takenBias = 0.94;
    branchy.params.randomSiteFrac = 0.04;
    branchy.params.numBranchSites = 64;
    branchy.params.footprintBytes = 48 * 1024;
    // Bitboard tests are flat dataflow, not chains.
    branchy.params.freshSrcFrac = 0.60;
    branchy.params.twoSrcFrac = 0.30;
    auto serial = ph(PhaseKind::SerialChain, 0.05);
    serial.params.meanLen = 150;
    p.phases = {ilp, hot, branchy, serial};
    return p;
}

/** gap: group theory interpreter — compute over streamed vectors
 *  whose large L2 blocks amortize the memory sweeps. */
BenchmarkProfile
makeGap()
{
    BenchmarkProfile p;
    p.name = "gap";
    auto ilp = ph(PhaseKind::IlpCompute, 0.35);
    ilp.params.footprintBytes = 12 * 1024;
    // Small-vector arithmetic with serialized accumulation: lives
    // in the 8-16KB range where only the two-cycle 16KB L1 wins.
    auto stream = ph(PhaseKind::HotLoop, 0.30);
    stream.params.footprintBytes = 12 * 1024;
    stream.params.fracLoad = 0.30;
    stream.params.serialFrac = 0.50;
    stream.params.freshSrcFrac = 0.15;
    stream.params.reuseFrac = 0.40;
    stream.params.reuseWindow = 64;
    auto hot = ph(PhaseKind::HotLoop, 0.20);
    auto serial = ph(PhaseKind::SerialChain, 0.15);
    p.phases = {ilp, stream, hot, serial};
    return p;
}

/**
 * gcc: the most phase-diverse benchmark — every archetype appears
 * and phases are short. The paper finds gcc gains the most from
 * contesting (25% in Fig. 6, 41% on HET-A).
 */
BenchmarkProfile
makeGcc()
{
    BenchmarkProfile p;
    p.name = "gcc";
    // gcc works one graded ~192KB pool of IR data from every loop:
    // the union lives in the gcc core's word-granular 256KB L1 and
    // nowhere else.
    p.shareDataRegions = true;
    auto ilp = ph(PhaseKind::IlpCompute, 0.20);
    ilp.params.meanLen = 250;
    ilp.params.footprintBytes = 32 * 1024;
    auto serial = ph(PhaseKind::SerialChain, 0.12);
    serial.params.meanLen = 200;
    serial.params.footprintBytes = 16 * 1024;
    auto chase = ph(PhaseKind::PointerChase, 0.18);
    chase.params.footprintBytes = 192 * 1024;
    chase.params.chaseChains = 24;
    chase.params.chaseHotFrac = 0.55;
    chase.params.meanLen = 250;
    // IR walks: word-granularity pointer code with no spatial
    // locality — exactly what the gcc core's 8B blocks serve.
    auto stream = ph(PhaseKind::PointerChase, 0.15);
    stream.params.footprintBytes = 96 * 1024;
    stream.params.chaseChains = 16;
    stream.params.meanLen = 220;
    auto branchy = ph(PhaseKind::Branchy, 0.20);
    branchy.params.numBranchSites = 96;
    branchy.params.randomSiteFrac = 0.10;
    branchy.params.footprintBytes = 96 * 1024;
    branchy.params.reuseFrac = 0.35;
    branchy.params.meanLen = 180;
    auto hot = ph(PhaseKind::HotLoop, 0.15);
    hot.params.meanLen = 200;
    hot.params.footprintBytes = 8 * 1024;
    p.phases = {ilp, serial, chase, stream, branchy, hot};
    return p;
}

/** gzip: LZ77 — wide-block streaming over a window that fits only
 *  the larger caches, plus serial match loops. */
BenchmarkProfile
makeGzip()
{
    BenchmarkProfile p;
    p.name = "gzip";
    auto stream = ph(PhaseKind::Streaming, 0.40);
    stream.params.footprintBytes = 160 * 1024;
    stream.params.strideBytes = 16;
    // LZ77 match loops are serialized byte scans: latency-exposed,
    // so the wide-block low-latency cache front pays off.
    stream.params.serialFrac = 0.45;
    stream.params.freshSrcFrac = 0.15;
    auto serial = ph(PhaseKind::SerialChain, 0.30);
    serial.params.meanLen = 600;
    auto hot = ph(PhaseKind::HotLoop, 0.15);
    auto branchy = ph(PhaseKind::Branchy, 0.15);
    branchy.params.takenBias = 0.92;
    branchy.params.randomSiteFrac = 0.05;
    branchy.params.footprintBytes = 24 * 1024;
    p.phases = {stream, serial, hot, branchy};
    return p;
}

/**
 * mcf: network simplex — pointer chasing over a footprint larger
 * than any cache with a hot core that only the biggest L2 retains.
 * The customized core compensates with a huge window and a slow
 * clock (Appendix A).
 */
BenchmarkProfile
makeMcf()
{
    BenchmarkProfile p;
    p.name = "mcf";
    auto chase = ph(PhaseKind::PointerChase, 0.60);
    chase.params.footprintBytes = 5 * 1024 * 1024;
    chase.params.chaseChains = 24;
    chase.params.chaseHotFrac = 0.80;
    chase.params.chaseHotPortion = 1.0 / 3.0;
    chase.params.meanLen = 900;
    auto serial = ph(PhaseKind::SerialChain, 0.20);
    serial.params.meanLen = 400;
    auto stream = ph(PhaseKind::Streaming, 0.10);
    stream.params.footprintBytes = 2 * 1024 * 1024;
    auto branchy = ph(PhaseKind::Branchy, 0.10);
    branchy.params.randomSiteFrac = 0.12;
    p.phases = {chase, serial, stream, branchy};
    return p;
}

/** parser: link grammar — mid-size chasing that lives in the large
 *  L1s, and a hard-to-predict dictionary walk. */
BenchmarkProfile
makeParser()
{
    BenchmarkProfile p;
    p.name = "parser";
    p.shareDataRegions = true;
    auto chase = ph(PhaseKind::PointerChase, 0.35);
    chase.params.footprintBytes = 64 * 1024;
    chase.params.chaseChains = 16;
    chase.params.chaseHotFrac = 0.60;
    chase.params.meanLen = 300;
    auto branchy = ph(PhaseKind::Branchy, 0.25);
    branchy.params.numBranchSites = 48;
    branchy.params.randomSiteFrac = 0.18;
    branchy.params.footprintBytes = 32 * 1024;
    branchy.params.meanLen = 200;
    auto hot = ph(PhaseKind::HotLoop, 0.20);
    hot.params.meanLen = 250;
    auto serial = ph(PhaseKind::SerialChain, 0.20);
    serial.params.meanLen = 200;
    p.phases = {chase, branchy, hot, serial};
    return p;
}

/**
 * perl: interpreter dispatch — a large but well-predicted static
 * branch working set, plus stretches of ILP-rich opcode bodies.
 */
BenchmarkProfile
makePerl()
{
    BenchmarkProfile p;
    p.name = "perl";
    auto branchy = ph(PhaseKind::Branchy, 0.40);
    branchy.params.numBranchSites = 96;
    branchy.params.takenBias = 0.95;
    branchy.params.randomSiteFrac = 0.05;
    branchy.params.footprintBytes = 96 * 1024;
    // Dispatch bodies are flat table lookups, not chains.
    branchy.params.freshSrcFrac = 0.55;
    auto ilp = ph(PhaseKind::IlpCompute, 0.30);
    auto hot = ph(PhaseKind::HotLoop, 0.15);
    auto serial = ph(PhaseKind::SerialChain, 0.15);
    serial.params.meanLen = 200;
    p.phases = {branchy, ilp, hot, serial};
    return p;
}

/**
 * twolf: placement/routing with very short alternating phases —
 * the benchmark with the largest fine-grain switching potential in
 * the paper's Fig. 1.
 */
BenchmarkProfile
makeTwolf()
{
    BenchmarkProfile p;
    p.name = "twolf";
    auto chase = ph(PhaseKind::PointerChase, 0.30);
    chase.params.footprintBytes = 320 * 1024;
    chase.params.chaseChains = 8;
    chase.params.chaseHotFrac = 0.75;
    chase.params.meanLen = 120;
    auto serial = ph(PhaseKind::SerialChain, 0.25);
    serial.params.meanLen = 100;
    auto hot = ph(PhaseKind::HotLoop, 0.25);
    hot.params.meanLen = 120;
    auto branchy = ph(PhaseKind::Branchy, 0.20);
    branchy.params.meanLen = 100;
    branchy.params.randomSiteFrac = 0.22;
    p.phases = {chase, serial, hot, branchy};
    return p;
}

/** vortex: object database — wide ILP, predictable control, and
 *  object sweeps sized to the mid-range L2s. */
BenchmarkProfile
makeVortex()
{
    BenchmarkProfile p;
    p.name = "vortex";
    auto ilp = ph(PhaseKind::IlpCompute, 0.40);
    ilp.params.meanLen = 600;
    ilp.params.footprintBytes = 24 * 1024;
    auto hot = ph(PhaseKind::HotLoop, 0.20);
    auto stream = ph(PhaseKind::Streaming, 0.20);
    stream.params.footprintBytes = 192 * 1024;
    // Object sweeps issue wide and independent.
    stream.params.freshSrcFrac = 0.55;
    stream.params.serialFrac = 0.05;
    auto branchy = ph(PhaseKind::Branchy, 0.20);
    branchy.params.takenBias = 0.94;
    branchy.params.randomSiteFrac = 0.03;
    branchy.params.footprintBytes = 160 * 1024;
    p.phases = {ilp, hot, stream, branchy};
    return p;
}

/** vpr: place & route — serial arithmetic and small-set chasing
 *  served from a fast low-latency cache front. */
BenchmarkProfile
makeVpr()
{
    BenchmarkProfile p;
    p.name = "vpr";
    auto serial = ph(PhaseKind::SerialChain, 0.30);
    serial.params.meanLen = 200;
    auto chase = ph(PhaseKind::PointerChase, 0.30);
    chase.params.footprintBytes = 256 * 1024;
    chase.params.chaseChains = 12;
    chase.params.chaseHotFrac = 0.50;
    chase.params.meanLen = 250;
    auto branchy = ph(PhaseKind::Branchy, 0.20);
    branchy.params.randomSiteFrac = 0.18;
    branchy.params.footprintBytes = 24 * 1024;
    auto hot = ph(PhaseKind::HotLoop, 0.20);
    p.phases = {serial, chase, branchy, hot};
    return p;
}

} // namespace

const std::vector<BenchmarkProfile> &
spec2000IntProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = {
        makeBzip(), makeCrafty(), makeGap(), makeGcc(), makeGzip(),
        makeMcf(), makeParser(), makePerl(), makeTwolf(), makeVortex(),
        makeVpr(),
    };
    return profiles;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &p : spec2000IntProfiles())
        if (p.name == name)
            return p;
    fatal("unknown benchmark profile '%s'", name.c_str());
}

std::vector<std::string>
profileNames()
{
    std::vector<std::string> names;
    for (const auto &p : spec2000IntProfiles())
        names.push_back(p.name);
    return names;
}

} // namespace contest
