#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/log.hh"

namespace contest
{

namespace
{

constexpr char magic[4] = {'C', 'T', 'R', 'C'};
constexpr std::uint32_t formatVersion = 1;

/** On-disk layout of one instruction (packed, 29 bytes). */
struct PackedInst
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint64_t target;
    std::uint16_t src1;
    std::uint16_t src2;
    std::uint16_t dst;
    std::uint8_t op;
    std::uint8_t taken;
};

PackedInst
pack(const TraceInst &inst)
{
    PackedInst p;
    p.pc = inst.pc;
    p.addr = inst.addr;
    p.target = inst.target;
    p.src1 = inst.src1;
    p.src2 = inst.src2;
    p.dst = inst.dst;
    p.op = static_cast<std::uint8_t>(inst.op);
    p.taken = inst.taken ? 1 : 0;
    return p;
}

TraceInst
unpack(const PackedInst &p)
{
    TraceInst inst;
    inst.pc = p.pc;
    inst.addr = p.addr;
    inst.target = p.target;
    inst.src1 = p.src1;
    inst.src2 = p.src2;
    inst.dst = p.dst;
    inst.op = static_cast<OpClass>(p.op);
    inst.taken = p.taken != 0;
    return inst;
}

/** RAII FILE handle. */
struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
writeAll(std::FILE *f, const void *data, std::size_t bytes,
         const std::string &path)
{
    fatal_if(std::fwrite(data, 1, bytes, f) != bytes,
             "short write to trace file '%s'", path.c_str());
}

void
readAll(std::FILE *f, void *data, std::size_t bytes,
        const std::string &path)
{
    fatal_if(std::fread(data, 1, bytes, f) != bytes,
             "short read from trace file '%s'", path.c_str());
}

} // namespace

void
writeTrace(const std::string &path, const Trace &trace)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    fatal_if(!f, "cannot open trace file '%s' for writing",
             path.c_str());

    writeAll(f.get(), magic, sizeof(magic), path);
    writeAll(f.get(), &formatVersion, sizeof(formatVersion), path);

    auto name_len =
        static_cast<std::uint32_t>(trace.name().size());
    writeAll(f.get(), &name_len, sizeof(name_len), path);
    writeAll(f.get(), trace.name().data(), name_len, path);

    std::uint64_t count = trace.size();
    writeAll(f.get(), &count, sizeof(count), path);

    for (std::size_t i = 0; i < trace.size(); ++i) {
        PackedInst p = pack(trace[i]);
        writeAll(f.get(), &p, sizeof(p), path);
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::uint8_t phase = trace.phaseOf(i);
        writeAll(f.get(), &phase, sizeof(phase), path);
    }
}

TracePtr
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    fatal_if(!f, "cannot open trace file '%s'", path.c_str());

    char got_magic[4];
    readAll(f.get(), got_magic, sizeof(got_magic), path);
    fatal_if(std::memcmp(got_magic, magic, sizeof(magic)) != 0,
             "'%s' is not a contest trace file", path.c_str());

    std::uint32_t version = 0;
    readAll(f.get(), &version, sizeof(version), path);
    fatal_if(version != formatVersion,
             "trace file '%s' has unsupported version %u",
             path.c_str(), version);

    std::uint32_t name_len = 0;
    readAll(f.get(), &name_len, sizeof(name_len), path);
    fatal_if(name_len > 4096,
             "trace file '%s' has an implausible name length",
             path.c_str());
    std::string name(name_len, '\0');
    readAll(f.get(), name.data(), name_len, path);

    std::uint64_t count = 0;
    readAll(f.get(), &count, sizeof(count), path);

    auto trace = std::make_shared<Trace>(name);
    trace->reserve(count);
    std::vector<PackedInst> packed(count);
    if (count > 0)
        readAll(f.get(), packed.data(),
                count * sizeof(PackedInst), path);
    std::vector<std::uint8_t> phases(count);
    if (count > 0)
        readAll(f.get(), phases.data(), count, path);

    for (std::uint64_t i = 0; i < count; ++i)
        trace->push(unpack(packed[i]), phases[i]);
    return trace;
}

} // namespace contest
