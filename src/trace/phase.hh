/**
 * @file
 * Phase archetypes: parameterized fine-grain behaviour regimes that
 * synthetic workloads are composed of.
 *
 * The paper's central observation (Section 2) is that workload
 * behaviour varies at granularities below a thousand instructions,
 * and that different microarchitectures win in different fine-grain
 * regions. The archetypes expose exactly the properties that make
 * one core configuration beat another:
 *
 *  - IlpCompute   wide independent ALU work: rewards issue width
 *  - SerialChain  long dependence chains: rewards low effective
 *                 per-op latency (wakeup latency x clock period)
 *  - PointerChase dependent loads over a large footprint: rewards
 *                 ROB size (memory-level parallelism) and L2 capacity
 *  - Streaming    sequential memory sweeps: rewards block size
 *  - Branchy      hard-to-predict control: rewards shallow front-ends
 *  - HotLoop      small predictable loops: rewards raw clock rate
 */

#ifndef CONTEST_TRACE_PHASE_HH
#define CONTEST_TRACE_PHASE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace contest
{

/** The six behaviour archetypes workloads are mixtures of. */
enum class PhaseKind : std::uint8_t
{
    IlpCompute,
    SerialChain,
    PointerChase,
    Streaming,
    Branchy,
    HotLoop,
};

/** Human-readable archetype name. */
const char *phaseKindName(PhaseKind kind);

/** Memory reference pattern of a phase. */
enum class MemPattern : std::uint8_t
{
    Hot,    //!< uniform over a small hot region
    Stream, //!< sequential with a fixed stride, wrapping
    Chase,  //!< dependent pseudo-random walk (pointer chasing)
};

/** Full parameterization of one phase archetype instance. */
struct PhaseParams
{
    PhaseKind kind = PhaseKind::IlpCompute;

    /** @name Operation mix (fractions of all instructions) */
    /** @{ */
    double fracLoad = 0.2;
    double fracStore = 0.1;
    double fracCondBranch = 0.12;
    double fracUncondBranch = 0.02;
    double fracMul = 0.02;
    double fracDiv = 0.0;
    /** @} */

    /** @name Dependence structure */
    /** @{ */
    /** Probability that src1 is the immediately preceding producer. */
    double serialFrac = 0.2;
    /** How many recent producers sources may reach back to. */
    unsigned depWindow = 16;
    /** Probability that a second source operand is present. */
    double twoSrcFrac = 0.4;
    /**
     * Probability that a (non-serial) source is a fresh dataflow
     * root — an immediate, a stable base register, a constant —
     * rather than a recent producer. Roots bound the global
     * dataflow depth; without them the whole trace degenerates
     * into one serialized DAG.
     */
    double freshSrcFrac = 0.3;
    /** @} */

    /** @name Branch behaviour */
    /** @{ */
    /** P(taken) for biased branch sites. */
    double takenBias = 0.9;
    /** Fraction of branch sites with 50/50 (unpredictable) outcome. */
    double randomSiteFrac = 0.1;
    /** Number of static conditional branch sites in the phase. */
    unsigned numBranchSites = 16;
    /**
     * Fraction of branches whose condition depends on recently
     * loaded data (and therefore resolves late when the load
     * misses); the rest test fresh ALU results such as induction
     * variables and resolve quickly.
     */
    double dataDepBranchFrac = 0.15;
    /** @} */

    /** @name Memory behaviour */
    /** @{ */
    MemPattern memPattern = MemPattern::Hot;
    /** Bytes of data touched by the phase. */
    Addr footprintBytes = 32 * 1024;
    /** Stride between consecutive streaming references. */
    unsigned strideBytes = 8;
    /**
     * Number of independent pointer-chase chains (Chase pattern
     * only). Each chain serializes its own loads; the count bounds
     * the memory-level parallelism a large window can extract.
     */
    unsigned chaseChains = 32;
    /**
     * Temporal locality of Hot references: probability that an
     * access re-touches one of the last reuseWindow addresses
     * instead of a fresh random location in the footprint.
     */
    double reuseFrac = 0.75;
    /** Size of the recent-address reuse set for Hot references. */
    unsigned reuseWindow = 32;
    /**
     * Chase-pattern skew: probability that a chase step lands in
     * the hot portion of the footprint (real pointer codes revisit
     * a hot core of their data structure; this is what makes large
     * L2s pay off for them).
     */
    double chaseHotFrac = 0.6;
    /** Fraction of the footprint that forms the hot region. */
    double chaseHotPortion = 1.0 / 6.0;
    /** @} */

    /** Mean phase length in instructions (jittered +/-50%). */
    unsigned meanLen = 400;

    /**
     * Build the canonical parameterization for an archetype. The
     * caller then overrides footprint / length / mix fields to shape
     * a specific workload.
     */
    static PhaseParams canonical(PhaseKind kind);
};

} // namespace contest

#endif // CONTEST_TRACE_PHASE_HH
