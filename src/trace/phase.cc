#include "trace/phase.hh"

#include "common/log.hh"

namespace contest
{

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::IlpCompute:
        return "IlpCompute";
      case PhaseKind::SerialChain:
        return "SerialChain";
      case PhaseKind::PointerChase:
        return "PointerChase";
      case PhaseKind::Streaming:
        return "Streaming";
      case PhaseKind::Branchy:
        return "Branchy";
      case PhaseKind::HotLoop:
        return "HotLoop";
    }
    panic("unknown PhaseKind %d", static_cast<int>(kind));
}

PhaseParams
PhaseParams::canonical(PhaseKind kind)
{
    PhaseParams p;
    p.kind = kind;
    switch (kind) {
      case PhaseKind::IlpCompute:
        // Wide independent integer work on a small warm hot set.
        p.fracLoad = 0.16;
        p.fracStore = 0.06;
        p.fracCondBranch = 0.08;
        p.fracUncondBranch = 0.02;
        p.fracMul = 0.04;
        p.serialFrac = 0.02;
        p.depWindow = 48;
        p.twoSrcFrac = 0.3;
        p.freshSrcFrac = 0.75;
        p.takenBias = 0.96;
        p.randomSiteFrac = 0.04;
        p.numBranchSites = 12;
        p.dataDepBranchFrac = 0.10;
        p.memPattern = MemPattern::Hot;
        p.footprintBytes = 8 * 1024;
        p.meanLen = 400;
        break;
      case PhaseKind::SerialChain:
        // One long dependence chain; almost no exploitable ILP.
        p.fracLoad = 0.10;
        p.fracStore = 0.05;
        p.fracCondBranch = 0.06;
        p.fracUncondBranch = 0.01;
        p.fracMul = 0.02;
        p.serialFrac = 0.85;
        p.depWindow = 2;
        p.twoSrcFrac = 0.3;
        p.freshSrcFrac = 0.08;
        p.takenBias = 0.96;
        p.randomSiteFrac = 0.03;
        p.numBranchSites = 8;
        p.dataDepBranchFrac = 0.10;
        p.memPattern = MemPattern::Hot;
        p.footprintBytes = 8 * 1024;
        p.meanLen = 400;
        break;
      case PhaseKind::PointerChase:
        // Dependent loads over a skewed footprint: MLP is bounded
        // by the number of independent chase chains in the window.
        p.fracLoad = 0.34;
        p.fracStore = 0.06;
        p.fracCondBranch = 0.10;
        p.fracUncondBranch = 0.01;
        p.fracMul = 0.0;
        p.serialFrac = 0.30;
        p.depWindow = 8;
        p.twoSrcFrac = 0.3;
        p.freshSrcFrac = 0.30;
        p.takenBias = 0.90;
        p.randomSiteFrac = 0.12;
        p.numBranchSites = 24;
        p.dataDepBranchFrac = 0.50;
        p.memPattern = MemPattern::Chase;
        p.footprintBytes = 512 * 1024;
        p.chaseChains = 32;
        p.chaseHotFrac = 0.6;
        p.meanLen = 600;
        break;
      case PhaseKind::Streaming:
        // Sequential sweeps; large blocks amortize misses and L2
        // capacity decides whether the wrap-around re-hits.
        p.fracLoad = 0.30;
        p.fracStore = 0.14;
        p.fracCondBranch = 0.08;
        p.fracUncondBranch = 0.01;
        p.fracMul = 0.01;
        p.serialFrac = 0.10;
        p.depWindow = 24;
        p.twoSrcFrac = 0.35;
        p.freshSrcFrac = 0.35;
        p.takenBias = 0.98;
        p.randomSiteFrac = 0.01;
        p.numBranchSites = 6;
        p.dataDepBranchFrac = 0.05;
        p.memPattern = MemPattern::Stream;
        p.footprintBytes = 512 * 1024;
        p.strideBytes = 8;
        p.meanLen = 500;
        break;
      case PhaseKind::Branchy:
        // Control-dominated code with a big static branch working
        // set and a hard-to-predict minority of sites.
        p.fracLoad = 0.20;
        p.fracStore = 0.08;
        p.fracCondBranch = 0.22;
        p.fracUncondBranch = 0.04;
        p.fracMul = 0.0;
        p.serialFrac = 0.15;
        p.depWindow = 12;
        p.twoSrcFrac = 0.35;
        p.freshSrcFrac = 0.35;
        p.takenBias = 0.85;
        p.randomSiteFrac = 0.20;
        p.numBranchSites = 48;
        p.dataDepBranchFrac = 0.30;
        p.memPattern = MemPattern::Hot;
        p.footprintBytes = 32 * 1024;
        // Control-heavy code walks its tables with less temporal
        // reuse than loop code, so footprint size really bites.
        p.reuseFrac = 0.50;
        p.reuseWindow = 96;
        p.meanLen = 300;
        break;
      case PhaseKind::HotLoop:
        // Tight, perfectly predictable loop on a tiny data set.
        p.fracLoad = 0.18;
        p.fracStore = 0.08;
        p.fracCondBranch = 0.10;
        p.fracUncondBranch = 0.01;
        p.fracMul = 0.03;
        p.serialFrac = 0.10;
        p.depWindow = 20;
        p.twoSrcFrac = 0.35;
        p.freshSrcFrac = 0.55;
        p.takenBias = 0.99;
        p.randomSiteFrac = 0.0;
        p.numBranchSites = 4;
        p.dataDepBranchFrac = 0.02;
        p.memPattern = MemPattern::Hot;
        p.footprintBytes = 2 * 1024;
        p.meanLen = 350;
        break;
    }
    return p;
}

} // namespace contest
