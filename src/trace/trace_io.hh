/**
 * @file
 * Binary trace serialization: save a generated workload once, replay
 * it everywhere (cross-run reproducibility, external analysis, and
 * diffing traces between library versions).
 *
 * Format (little-endian, native field widths):
 *   magic "CTRC" | u32 version | u32 name length | name bytes |
 *   u64 instruction count | per-instruction packed records |
 *   per-instruction phase ids.
 */

#ifndef CONTEST_TRACE_TRACE_IO_HH
#define CONTEST_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace contest
{

/** Serialize a trace to a file; fatal() on I/O failure. */
void writeTrace(const std::string &path, const Trace &trace);

/** Load a trace from a file; fatal() on I/O or format errors. */
TracePtr readTrace(const std::string &path);

} // namespace contest

#endif // CONTEST_TRACE_TRACE_IO_HH
