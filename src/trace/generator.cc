#include "trace/generator.hh"

#include <algorithm>

#include "common/log.hh"

namespace contest
{

namespace
{

/** Stateless 64-bit mix used for deterministic chase walks. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a hash of a string, for per-profile seed salting. */
std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &bench_profile,
                               std::uint64_t seed)
    : profile(bench_profile), rng(seed ^ hashName(bench_profile.name))
{
    fatal_if(profile.phases.empty(),
             "profile '%s' has no phases", profile.name.c_str());

    states.resize(profile.phases.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        const PhaseParams &params = profile.phases[i].params;
        PhaseState &st = states[i];
        // Disjoint 256 MB data region and private code region per
        // phase spec, so footprints never alias across phases —
        // unless the profile declares a shared working set. The
        // per-region stagger keeps different regions from landing
        // on the same cache sets (256 MB strides alone would map
        // every region to index 0 of every cache).
        st.dataBase = profile.shareDataRegions
            ? 0x1000'0000ULL
            : 0x1000'0000ULL * (i + 1) + 0x2A'AAA8ULL * i;
        // Code regions get the same treatment: a pure power-of-two
        // stride would alias every phase's branch sites onto the
        // same predictor and BTB entries.
        st.codeBase = 0x40'0000ULL + (0x4'0000ULL + 0x1A4CULL) * i;
        st.chainDst.assign(std::max(1u, params.chaseChains),
                           invalidReg);
        st.chainPos.assign(std::max(1u, params.chaseChains), 0);
        for (std::size_t c = 0; c < st.chainPos.size(); ++c)
            st.chainPos[c] = rng.next();
        st.sites.resize(std::max(1u, params.numBranchSites));
        for (std::size_t s = 0; s < st.sites.size(); ++s) {
            BranchSite &site = st.sites[s];
            site.pc = st.codeBase + 0x8000 + s * 4;
            site.takenTarget =
                st.codeBase + (mix64(s * 31 + 7) % 4096) * 4;
            if (rng.chance(params.randomSiteFrac)) {
                site.cls = BranchSite::Class::Random;
            } else if (rng.chance(0.3)) {
                site.cls = BranchSite::Class::Loop;
                // Short periods are fully learnable by the global
                // history; a handful of longer ones keep predictors
                // honest.
                site.loopPeriod =
                    static_cast<unsigned>(rng.range(2, 10));
            } else {
                site.cls = BranchSite::Class::Biased;
            }
        }
    }

    if (profile.syscallGap > 0)
        syscallCountdown = rng.range(profile.syscallGap / 2,
                                     profile.syscallGap * 3 / 2);
}

RegId
TraceGenerator::producerAt(unsigned distance) const
{
    if (recentCount == 0)
        return invalidReg;
    unsigned d = std::min(distance, recentCount);
    d = std::max(d, 1u);
    unsigned idx = (recentHead + ringSize - d) % ringSize;
    return recent[idx];
}

RegId
TraceGenerator::allocDst()
{
    RegId r = nextDstReg;
    nextDstReg = static_cast<RegId>(nextDstReg + 1);
    if (nextDstReg >= numArchRegs)
        nextDstReg = 1;
    return r;
}

void
TraceGenerator::pushProducer(RegId dst)
{
    recent[recentHead] = dst;
    recentHead = (recentHead + 1) % ringSize;
    if (recentCount < ringSize)
        ++recentCount;
}

Addr
TraceGenerator::hotAddr(std::size_t spec_idx)
{
    const PhaseParams &p = profile.phases[spec_idx].params;
    PhaseState &st = states[spec_idx];

    if (!st.recentAddrs.empty() && rng.chance(p.reuseFrac))
        return st.recentAddrs[rng.below(st.recentAddrs.size())];

    std::uint64_t slots = std::max<std::uint64_t>(
        1, p.footprintBytes / 8);
    Addr addr = st.dataBase + rng.below(slots) * 8;
    if (st.recentAddrs.size() < p.reuseWindow) {
        st.recentAddrs.push_back(addr);
    } else if (!st.recentAddrs.empty()) {
        st.recentAddrs[st.recentAddrHead] = addr;
        st.recentAddrHead =
            (st.recentAddrHead + 1) % st.recentAddrs.size();
    }
    return addr;
}

std::size_t
TraceGenerator::pickNextPhase(std::size_t current)
{
    if (profile.phases.size() == 1)
        return 0;
    std::vector<double> weights;
    weights.reserve(profile.phases.size());
    for (std::size_t i = 0; i < profile.phases.size(); ++i)
        weights.push_back(i == current ? 0.0
                                       : profile.phases[i].weight);
    return rng.weighted(weights);
}

void
TraceGenerator::emitInst(Trace &out, std::size_t spec_idx)
{
    const PhaseParams &p = profile.phases[spec_idx].params;
    PhaseState &st = states[spec_idx];

    TraceInst inst;
    inst.pc = st.codeBase + (st.pcCursor % 4096) * 4;
    ++st.pcCursor;

    // Synchronous exceptions are injected independently of the mix.
    if (profile.syscallGap > 0 && syscallCountdown == 0) {
        inst.op = OpClass::Syscall;
        syscallCountdown = rng.range(profile.syscallGap / 2,
                                     profile.syscallGap * 3 / 2);
        out.push(inst, static_cast<std::uint8_t>(spec_idx));
        return;
    }
    if (syscallCountdown > 0)
        --syscallCountdown;

    double roll = rng.uniform();
    double acc = 0.0;
    auto in_band = [&](double frac) {
        acc += frac;
        return roll < acc;
    };

    if (in_band(p.fracLoad)) {
        inst.op = OpClass::Load;
    } else if (in_band(p.fracStore)) {
        inst.op = OpClass::Store;
    } else if (in_band(p.fracCondBranch)) {
        inst.op = OpClass::BranchCond;
    } else if (in_band(p.fracUncondBranch)) {
        inst.op = OpClass::BranchUncond;
    } else if (in_band(p.fracMul)) {
        inst.op = OpClass::IntMul;
    } else if (in_band(p.fracDiv)) {
        inst.op = OpClass::IntDiv;
    } else {
        inst.op = OpClass::IntAlu;
    }

    auto pick_src = [&]() -> RegId {
        if (rng.chance(p.serialFrac))
            return producerAt(1);
        // Fresh dataflow roots (immediates, stable bases) bound the
        // global dependence depth.
        if (rng.chance(p.freshSrcFrac))
            return invalidReg;
        unsigned d = static_cast<unsigned>(rng.range(1, p.depWindow));
        return producerAt(d);
    };

    switch (inst.op) {
      case OpClass::Load:
        {
            if (p.memPattern == MemPattern::Chase) {
                // Round-robin over independent chase chains; each
                // chain's next address depends on its previous load.
                unsigned chain = st.nextChain;
                st.nextChain = (st.nextChain + 1)
                    % static_cast<unsigned>(st.chainDst.size());
                inst.src1 = st.chainDst[chain];
                if (inst.src1 == invalidReg)
                    inst.src1 = pick_src();
                std::uint64_t slots =
                    std::max<std::uint64_t>(1, p.footprintBytes / 8);
                auto hot_slots = static_cast<std::uint64_t>(
                    static_cast<double>(slots) * p.chaseHotPortion);
                hot_slots = std::max<std::uint64_t>(1, hot_slots);
                st.chainPos[chain] = mix64(st.chainPos[chain]);
                std::uint64_t range =
                    rng.chance(p.chaseHotFrac) ? hot_slots : slots;
                inst.addr =
                    st.dataBase + (st.chainPos[chain] % range) * 8;
                inst.dst = allocDst();
                st.chainDst[chain] = inst.dst;
                pushProducer(inst.dst);
            } else {
                inst.src1 = pick_src();
                if (p.memPattern == MemPattern::Stream) {
                    st.streamPos += p.strideBytes;
                    if (st.streamPos >= p.footprintBytes)
                        st.streamPos = 0;
                    inst.addr = st.dataBase + st.streamPos;
                } else { // Hot
                    inst.addr = hotAddr(spec_idx);
                }
                inst.dst = allocDst();
                pushProducer(inst.dst);
            }
        }
        break;

      case OpClass::Store:
        {
            inst.src1 = pick_src();
            inst.src2 = pick_src();
            if (p.memPattern == MemPattern::Stream) {
                st.streamPos += p.strideBytes;
                if (st.streamPos >= p.footprintBytes)
                    st.streamPos = 0;
                inst.addr = st.dataBase + st.streamPos;
            } else {
                // Stores in Hot and Chase phases write into the
                // same reuse set the loads read.
                inst.addr = hotAddr(spec_idx);
            }
        }
        break;

      case OpClass::BranchCond:
        {
            // Branch sites cycle with occasional random re-entry so
            // predictors see a stable pc -> behaviour mapping.
            if (rng.chance(0.2))
                st.branchCursor = rng.next();
            BranchSite &site =
                st.sites[st.branchCursor % st.sites.size()];
            ++st.branchCursor;
            inst.pc = site.pc;
            inst.target = site.takenTarget;
            // Most branch conditions test fresh ALU results such as
            // induction variables; a workload-dependent fraction
            // tests loaded data and resolves only when the load
            // returns.
            if (rng.chance(p.dataDepBranchFrac))
                inst.src1 = producerAt(
                    static_cast<unsigned>(rng.range(1, 2)));
            else
                inst.src1 = lastAluDst;
            switch (site.cls) {
              case BranchSite::Class::Biased:
                inst.taken = rng.chance(p.takenBias);
                break;
              case BranchSite::Class::Random:
                inst.taken = rng.chance(0.5);
                break;
              case BranchSite::Class::Loop:
                ++site.counter;
                inst.taken = (site.counter % site.loopPeriod) != 0;
                break;
            }
        }
        break;

      case OpClass::BranchUncond:
        inst.taken = true;
        inst.target = st.codeBase + (mix64(st.pcCursor) % 4096) * 4;
        break;

      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::IntAlu:
        inst.src1 = pick_src();
        if (rng.chance(p.twoSrcFrac))
            inst.src2 = pick_src();
        inst.dst = allocDst();
        pushProducer(inst.dst);
        lastAluDst = inst.dst;
        break;

      case OpClass::Syscall:
      default:
        panic("unreachable op selection");
    }

    out.push(inst, static_cast<std::uint8_t>(spec_idx));
}

TracePtr
TraceGenerator::generate(std::uint64_t num_insts)
{
    auto trace = std::make_shared<Trace>(profile.name);
    trace->reserve(num_insts);

    std::size_t phase = pickNextPhase(profile.phases.size());
    while (trace->size() < num_insts) {
        const PhaseParams &p = profile.phases[phase].params;
        std::uint64_t len = rng.range(
            std::max<std::uint64_t>(10, p.meanLen / 2),
            p.meanLen * 3 / 2);
        len = std::min<std::uint64_t>(len,
                                      num_insts - trace->size());
        for (std::uint64_t i = 0; i < len; ++i)
            emitInst(*trace, phase);
        phase = pickNextPhase(phase);
    }
    return trace;
}

TracePtr
makeBenchmarkTrace(const std::string &name, std::uint64_t seed,
                   std::uint64_t num_insts)
{
    TraceGenerator gen(profileByName(name), seed);
    return gen.generate(num_insts);
}

} // namespace contest
