/**
 * @file
 * The dynamic instruction record consumed by the timing models.
 *
 * The simulator is trace-driven: a trace carries the *retired*
 * (correct-path) instruction stream with everything the timing model
 * needs — operation class, register dependences, effective address,
 * and branch outcome/target. Values are abstract; contesting forwards
 * instruction *completion*, which is exactly the information the
 * timing model consumes.
 */

#ifndef CONTEST_TRACE_INSTR_HH
#define CONTEST_TRACE_INSTR_HH

#include <cstdint>

#include "common/types.hh"

namespace contest
{

/** Operation classes distinguished by the timing model. */
enum class OpClass : std::uint8_t
{
    IntAlu,      //!< single-cycle integer op
    IntMul,      //!< pipelined multiply
    IntDiv,      //!< unpipelined divide
    Load,        //!< memory read through the data cache
    Store,       //!< memory write through the data cache
    BranchCond,  //!< conditional direct branch
    BranchUncond,//!< unconditional direct branch / call / return
    Syscall,     //!< synchronous exception (system call, TLB miss...)
};

/** Number of architectural integer registers in the abstract ISA. */
constexpr RegId numArchRegs = 64;

/** Sentinel meaning "operand not used". */
constexpr RegId invalidReg = 0xffff;

/**
 * One retired dynamic instruction.
 *
 * The fetch stage streams this struct every cycle, so its size is a
 * first-order throughput constant: the effective address and the
 * branch target share one slot (an instruction is a memory access or
 * a control transfer, never both), packing the record into 24 bytes
 * — three cache lines hold eight instructions instead of five.
 */
struct TraceInst
{
    Addr pc = 0;                //!< instruction address
    union {
        Addr addr = 0;          //!< effective address (Load/Store)
        Addr target;            //!< branch target (Branch*)
    };
    RegId src1 = invalidReg;    //!< first source register
    RegId src2 = invalidReg;    //!< second source register
    RegId dst = invalidReg;     //!< destination register
    OpClass op = OpClass::IntAlu;
    bool taken = false;         //!< branch outcome (Branch*)

    /** Is this any kind of control transfer? */
    bool
    isBranch() const
    {
        return op == OpClass::BranchCond || op == OpClass::BranchUncond;
    }

    /** Does this instruction access memory? */
    bool
    isMem() const
    {
        return op == OpClass::Load || op == OpClass::Store;
    }

    /** Does this instruction write a register value? */
    bool producesValue() const { return dst != invalidReg; }

    /** Base execution latency in cycles, excluding memory time. */
    Cycles
    execLatency() const
    {
        switch (op) {
          case OpClass::IntMul:
            return Cycles{3};
          case OpClass::IntDiv:
            return Cycles{12};
          case OpClass::Syscall:
            return Cycles{1};
          default:
            return Cycles{1};
        }
    }
};

static_assert(sizeof(TraceInst) == 24,
              "TraceInst is streamed by fetch every cycle; a size "
              "change shifts every block-fetch stride — repack before "
              "growing");
static_assert(alignof(TraceInst) == 8,
              "TraceInst arrays are indexed by raw stream position; "
              "keep natural 8-byte alignment so no padding appears "
              "between records");

} // namespace contest

#endif // CONTEST_TRACE_INSTR_HH
