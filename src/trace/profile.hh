/**
 * @file
 * Benchmark profiles: named mixtures of phase archetypes that stand
 * in for the SPEC2000 integer benchmarks.
 *
 * The paper evaluates the eleven SPEC2000 integer SimPoints that
 * compile under SimpleScalar (eon excluded). We cannot ship SPEC
 * binaries, so each benchmark is modeled as a deterministic mixture
 * of phase archetypes whose composition reflects the benchmark's
 * published behaviour (memory footprint, branch behaviour, ILP), and
 * whose phase lengths are concentrated below ~1000 instructions —
 * the fine-grain variation the paper's Section 2 measures.
 */

#ifndef CONTEST_TRACE_PROFILE_HH
#define CONTEST_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/phase.hh"

namespace contest
{

/** One archetype instance within a profile, with a selection weight. */
struct PhaseSpec
{
    PhaseParams params;
    double weight = 1.0;
};

/** A named synthetic workload: a weighted set of phase archetypes. */
struct BenchmarkProfile
{
    std::string name;
    std::vector<PhaseSpec> phases;
    /** Mean instructions between synchronous exceptions; 0 = none. */
    std::uint64_t syscallGap = 200'000;
    /**
     * When true, every phase references the same data region (the
     * program works one structure from different loops) instead of
     * disjoint per-phase regions; this avoids cross-phase conflict
     * thrash in low-associativity caches.
     */
    bool shareDataRegions = false;
};

/**
 * The eleven SPEC2000-integer-like profiles used throughout the
 * paper's evaluation, in the paper's order: bzip, crafty, gap, gcc,
 * gzip, mcf, parser, perl, twolf, vortex, vpr.
 */
const std::vector<BenchmarkProfile> &spec2000IntProfiles();

/** Look up a profile by name; fatal() if unknown. */
const BenchmarkProfile &profileByName(const std::string &name);

/** Names of all profiles, in canonical order. */
std::vector<std::string> profileNames();

} // namespace contest

#endif // CONTEST_TRACE_PROFILE_HH
