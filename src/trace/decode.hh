/**
 * @file
 * Batched pre-decode of the instruction stream (DESIGN.md §13).
 *
 * The fetch stage used to re-derive "is this a load / store / branch
 * / syscall, does it write a register" from OpClass for every
 * instruction, every cycle, on every lane. A trace is immutable once
 * generated, so those predicates are computed exactly once at trace
 * construction and stored as one flags byte per instruction in an
 * array parallel to the TraceInst array. fetch() then pulls a
 * FetchBlock — raw pointers into both arrays — and the per-cycle
 * loops reduce every predicate to a single AND.
 */

#ifndef CONTEST_TRACE_DECODE_HH
#define CONTEST_TRACE_DECODE_HH

#include <cstdint>

#include "trace/instr.hh"

namespace contest
{

/** @name Pre-decoded instruction flags (one byte per instruction) */
/** @{ */
constexpr std::uint8_t kDecLoad = 1u << 0;
constexpr std::uint8_t kDecStore = 1u << 1;
constexpr std::uint8_t kDecCondBr = 1u << 2;
constexpr std::uint8_t kDecUncondBr = 1u << 3;
constexpr std::uint8_t kDecSyscall = 1u << 4;
constexpr std::uint8_t kDecTaken = 1u << 5;      //!< branch outcome
constexpr std::uint8_t kDecWritesReg = 1u << 6;  //!< dst != invalidReg

/** Composite masks for the common compound predicates. */
constexpr std::uint8_t kDecMem = kDecLoad | kDecStore;
constexpr std::uint8_t kDecBranch = kDecCondBr | kDecUncondBr;
/** @} */

/** Decode one instruction's flags byte (trace-construction time). */
constexpr std::uint8_t
decodeFlags(const TraceInst &inst)
{
    std::uint8_t f = 0;
    switch (inst.op) {
      case OpClass::Load:
        f |= kDecLoad;
        break;
      case OpClass::Store:
        f |= kDecStore;
        break;
      case OpClass::BranchCond:
        f |= kDecCondBr;
        break;
      case OpClass::BranchUncond:
        f |= kDecUncondBr;
        break;
      case OpClass::Syscall:
        f |= kDecSyscall;
        break;
      default:
        break;
    }
    if (inst.taken)
        f |= kDecTaken;
    if (inst.dst != invalidReg)
        f |= kDecWritesReg;
    return f;
}

/**
 * A contiguous run of pre-decoded instructions handed to fetch():
 * raw pointers into the trace's instruction and flags arrays,
 * valid as long as the (immutable) trace lives.
 */
struct FetchBlock
{
    const TraceInst *insts = nullptr;
    const std::uint8_t *flags = nullptr;
    std::uint32_t count = 0;
};

} // namespace contest

#endif // CONTEST_TRACE_DECODE_HH
