#include "trace/trace.hh"

namespace contest
{

TraceMix
Trace::mix() const
{
    TraceMix m;
    for (const auto &inst : insts) {
        switch (inst.op) {
          case OpClass::IntAlu:
            ++m.alu;
            break;
          case OpClass::IntMul:
            ++m.mul;
            break;
          case OpClass::IntDiv:
            ++m.div;
            break;
          case OpClass::Load:
            ++m.loads;
            break;
          case OpClass::Store:
            ++m.stores;
            break;
          case OpClass::BranchCond:
            ++m.condBranches;
            break;
          case OpClass::BranchUncond:
            ++m.uncondBranches;
            break;
          case OpClass::Syscall:
            ++m.syscalls;
            break;
        }
    }
    return m;
}

std::uint64_t
Trace::phaseChanges() const
{
    std::uint64_t changes = 0;
    for (std::size_t i = 1; i < phases.size(); ++i)
        if (phases[i] != phases[i - 1])
            ++changes;
    return changes;
}

} // namespace contest
