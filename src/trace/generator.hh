/**
 * @file
 * Deterministic synthetic trace generation from a benchmark profile.
 */

#ifndef CONTEST_TRACE_GENERATOR_HH
#define CONTEST_TRACE_GENERATOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"

namespace contest
{

/**
 * Generates the retired dynamic instruction stream of a synthetic
 * workload. Generation is a pure function of (profile, seed, length):
 * repeated calls with the same inputs produce identical traces, and
 * phase state (stream positions, pointer-chase chains, branch-site
 * behaviour classes) persists across phase revisits so that returning
 * to a phase re-touches the same data — which is what makes caches
 * behave realistically across phase changes.
 */
class TraceGenerator
{
  public:
    /**
     * @param bench_profile workload composition
     * @param seed deterministic seed for all stochastic choices
     */
    TraceGenerator(const BenchmarkProfile &bench_profile,
                   std::uint64_t seed);

    /** Generate a trace of exactly num_insts instructions. */
    TracePtr generate(std::uint64_t num_insts);

  private:
    /** Behaviour class of one static conditional branch site. */
    struct BranchSite
    {
        enum class Class : std::uint8_t { Biased, Random, Loop };
        Class cls = Class::Biased;
        unsigned loopPeriod = 8;
        unsigned counter = 0;
        Addr pc = 0;
        Addr takenTarget = 0;
    };

    /** Mutable state of one phase spec, persisting across revisits. */
    struct PhaseState
    {
        Addr dataBase = 0;
        Addr codeBase = 0;
        std::uint64_t streamPos = 0;
        std::vector<RegId> chainDst;  //!< last dst of each chase chain
        std::vector<std::uint64_t> chainPos;
        unsigned nextChain = 0;
        std::vector<BranchSite> sites;
        std::uint64_t branchCursor = 0;
        std::uint64_t pcCursor = 0;
        /** Recently touched addresses (temporal-reuse set). */
        std::vector<Addr> recentAddrs;
        unsigned recentAddrHead = 0;
    };

    /** Next Hot-pattern data address honoring temporal reuse. */
    Addr hotAddr(std::size_t spec_idx);

    /** Emit one instruction of the current phase into the trace. */
    void emitInst(Trace &out, std::size_t spec_idx);

    /** Pick the next phase, never repeating the current one. */
    std::size_t pickNextPhase(std::size_t current);

    /** Source register at the given dependence distance. */
    RegId producerAt(unsigned distance) const;

    /** Allocate the next destination register (round-robin). */
    RegId allocDst();

    /** Record a new producer in the recent-producer ring. */
    void pushProducer(RegId dst);

    const BenchmarkProfile &profile;
    Rng rng;
    std::vector<PhaseState> states;

    static constexpr unsigned ringSize = 64;
    std::array<RegId, ringSize> recent{};
    unsigned recentHead = 0;
    unsigned recentCount = 0;
    RegId nextDstReg = 1;
    /** Destination of the most recent ALU op (branch conditions). */
    RegId lastAluDst = invalidReg;

    std::uint64_t syscallCountdown = 0;
};

/**
 * Convenience: generate the trace for a named SPEC2000-like profile.
 *
 * @param name profile name, e.g. "gcc"
 * @param seed deterministic seed
 * @param num_insts trace length in instructions
 */
TracePtr makeBenchmarkTrace(const std::string &name, std::uint64_t seed,
                            std::uint64_t num_insts);

} // namespace contest

#endif // CONTEST_TRACE_GENERATOR_HH
