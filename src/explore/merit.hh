/**
 * @file
 * Figures of merit for heterogeneous CMP design (paper Section 6.1).
 *
 * Given the IPT of every benchmark on every core type, a figure of
 * merit scores a candidate set of core types under the assumption
 * that each benchmark runs on the most suitable core in the set:
 *
 *  - avg     arithmetic-mean IPT: raw throughput, robust to unknown
 *            benchmark frequencies
 *  - har     harmonic-mean IPT: minimizes total time of a one-by-one
 *            benchmark submission
 *  - cw-har  contention-weighted harmonic-mean IPT: divides each
 *            benchmark's IPT by the number of benchmarks sharing its
 *            preferred core type (Little's-law queueing under heavy
 *            load), then takes the harmonic mean
 */

#ifndef CONTEST_EXPLORE_MERIT_HH
#define CONTEST_EXPLORE_MERIT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace contest
{

/** IPT of every benchmark (row) on every core type (column). */
struct IptMatrix
{
    std::vector<std::string> benchNames;
    std::vector<std::string> coreNames;
    /** ipt[b][c] = IPT of benchmark b on core type c. */
    std::vector<std::vector<double>> ipt;

    /** Number of benchmarks. */
    std::size_t numBenches() const { return benchNames.size(); }

    /** Number of core types. */
    std::size_t numCores() const { return coreNames.size(); }

    /** Column index of a core type by name; fatal() if unknown. */
    std::size_t coreIndex(const std::string &name) const;

    /** Row index of a benchmark by name; fatal() if unknown. */
    std::size_t benchIndex(const std::string &name) const;

    /** Sanity-check shape consistency; fatal() on mismatch. */
    void validate() const;
};

/** The three figures of merit from Section 6.1. */
enum class Merit { Avg, Har, CwHar };

/** Human-readable merit name ("avg", "har", "cw-har"). */
const char *meritName(Merit merit);

/**
 * Index of the most suitable core for benchmark @p bench within the
 * candidate set @p cores (ties to the earlier entry).
 */
std::size_t bestCoreFor(const IptMatrix &matrix, std::size_t bench,
                        const std::vector<std::size_t> &cores);

/** IPT of each benchmark on its best core within the set. */
std::vector<double>
bestIpts(const IptMatrix &matrix,
         const std::vector<std::size_t> &cores);

/** Score the candidate core set under the given figure of merit. */
double scoreCmp(const IptMatrix &matrix,
                const std::vector<std::size_t> &cores, Merit merit);

/**
 * Weighted variant of scoreCmp (paper Section 6.1: "this figure of
 * merit is improved if the benchmarks are weighted by the frequency
 * with which they occur in the system"). Weights must be positive
 * and one per benchmark; for Avg they weight the arithmetic mean,
 * for Har/CwHar the harmonic mean, and for CwHar they additionally
 * replace the uniform job-arrival assumption in the per-core
 * contention shares.
 */
double scoreCmpWeighted(const IptMatrix &matrix,
                        const std::vector<std::size_t> &cores,
                        Merit merit,
                        const std::vector<double> &weights);

} // namespace contest

#endif // CONTEST_EXPLORE_MERIT_HH
