#include "explore/cmp_design.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/stats.hh"

namespace contest
{

namespace
{

/** Enumerate k-combinations of [0, n), calling fn on each. */
template <typename Fn>
void
forEachCombination(std::size_t n, unsigned k, Fn &&fn)
{
    std::vector<std::size_t> combo(k);
    for (unsigned i = 0; i < k; ++i)
        combo[i] = i;
    if (k == 0 || k > n)
        return;
    for (;;) {
        fn(combo);
        // Advance to the next combination.
        unsigned i = k;
        while (i > 0) {
            --i;
            if (combo[i] != i + n - k) {
                ++combo[i];
                for (unsigned j = i + 1; j < k; ++j)
                    combo[j] = combo[j - 1] + 1;
                break;
            }
            if (i == 0)
                return;
        }
    }
}

} // namespace

CmpDesign
designCmp(const IptMatrix &matrix, unsigned num_types, Merit merit,
          const std::string &name)
{
    fatal_if(num_types == 0 || num_types > matrix.numCores(),
             "designCmp: cannot pick %u of %zu core types", num_types,
             matrix.numCores());

    CmpDesign best;
    best.name = name;
    best.merit = merit;
    best.score = -1.0;
    forEachCombination(
        matrix.numCores(), num_types,
        [&](const std::vector<std::size_t> &combo) {
            double score = scoreCmp(matrix, combo, merit);
            if (score > best.score) {
                best.score = score;
                best.cores = combo;
            }
        });
    panic_if(best.cores.empty(), "designCmp found no combination");
    return best;
}

CmpDesign
designHom(const IptMatrix &matrix, Merit merit,
          const std::string &name)
{
    return designCmp(matrix, 1, merit, name);
}

CmpDesign
designHetAll(const IptMatrix &matrix, const std::string &name)
{
    CmpDesign d;
    d.name = name;
    d.merit = Merit::Har;
    for (std::size_t c = 0; c < matrix.numCores(); ++c)
        d.cores.push_back(c);
    d.score = scoreCmp(matrix, d.cores, Merit::Har);
    return d;
}

std::string
designCoreNames(const IptMatrix &matrix, const CmpDesign &design)
{
    std::string out;
    for (std::size_t i = 0; i < design.cores.size(); ++i) {
        if (i > 0)
            out += " & ";
        out += matrix.coreNames[design.cores[i]];
    }
    return out;
}

double
designHarmonicIpt(const IptMatrix &matrix, const CmpDesign &design)
{
    return harmonicMean(bestIpts(matrix, design.cores));
}

} // namespace contest
