/**
 * @file
 * Constrained heterogeneous CMP design: exhaustive search over
 * combinations of core types under a figure of merit (paper
 * Section 6.2), reproducing the HET-A/B/C/D and HOM designs.
 */

#ifndef CONTEST_EXPLORE_CMP_DESIGN_HH
#define CONTEST_EXPLORE_CMP_DESIGN_HH

#include <string>
#include <vector>

#include "explore/merit.hh"

namespace contest
{

/** A CMP design: a named set of core-type columns. */
struct CmpDesign
{
    std::string name;
    std::vector<std::size_t> cores;  //!< column indices
    Merit merit = Merit::Har;        //!< merit it was designed under
    double score = 0.0;              //!< merit score achieved
};

/**
 * Search all combinations of exactly @p num_types core types for the
 * one maximizing the figure of merit.
 */
CmpDesign designCmp(const IptMatrix &matrix, unsigned num_types,
                    Merit merit, const std::string &name);

/** The best single core type (the HOM design). */
CmpDesign designHom(const IptMatrix &matrix, Merit merit,
                    const std::string &name);

/** The all-core-types design (HET-ALL). */
CmpDesign designHetAll(const IptMatrix &matrix,
                       const std::string &name);

/** Comma-joined core-type names of a design. */
std::string designCoreNames(const IptMatrix &matrix,
                            const CmpDesign &design);

/** Harmonic-mean IPT of the design (the Table 1 summary column). */
double designHarmonicIpt(const IptMatrix &matrix,
                         const CmpDesign &design);

} // namespace contest

#endif // CONTEST_EXPLORE_CMP_DESIGN_HH
