/**
 * @file
 * XpScalar-style simulated-annealing design-space exploration
 * (paper Section 5.1, reference [19]).
 *
 * The explorer varies the same parameters the paper's appendix
 * reports: superscalar width, ROB / issue-queue / load-store-queue
 * sizes, front-end and scheduler depths, wakeup latency, L1/L2
 * geometry, and clock period. A simple technology model ties the
 * clock period to the sizes of the cycle-critical structures so the
 * annealer faces the same IPC-versus-frequency tradeoff the paper's
 * exploration did — growing the issue queue or widening the machine
 * costs clock rate, and cache latency follows capacity.
 */

#ifndef CONTEST_EXPLORE_ANNEALER_HH
#define CONTEST_EXPLORE_ANNEALER_HH

#include <cstdint>
#include <functional>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/config.hh"

namespace contest
{

/** Knobs of the annealing schedule. */
struct AnnealConfig
{
    StepCount steps{200};            //!< neighbor evaluations
    double initialTemperature = 0.2; //!< relative objective scale
    double coolingFactor = 0.97;     //!< temperature decay per step
    std::uint64_t seed = 1;          //!< move-generation seed
    /**
     * Neighbors evaluated concurrently per round (speculative
     * annealing): each round mutates @c batch candidates from the
     * current point, scores them on the thread pool, and accepts the
     * first (in generation order) that passes the Metropolis test —
     * later candidates of the round are discarded. 1 reproduces the
     * classic serial walk. For a fixed (seed, batch) the trajectory
     * is bit-identical for every job count; different batch sizes
     * walk different (equally valid) trajectories.
     */
    std::uint64_t batch = 1;
};

/** Result of one exploration. */
struct AnnealResult
{
    CoreConfig best;
    double bestScore = 0.0;
    std::uint64_t evaluations = 0;
    std::uint64_t accepted = 0;
};

/**
 * Derive the clock period and cache latencies implied by a
 * configuration's structure sizes (the technology model). Called on
 * every candidate so that the score always reflects a physically
 * consistent design point.
 */
void applyTechnologyModel(CoreConfig &config);

/**
 * Simulated-annealing exploration of the core design space.
 *
 * @param objective scores a candidate (higher is better); typically
 *        the IPT of a workload via runSingle(). With batch > 1 it
 *        must be safe to call concurrently.
 * @param start initial design point
 * @param anneal_config schedule parameters
 * @param pool thread pool for batched neighbor evaluation (default:
 *        the process-wide pool); unused when batch <= 1
 */
AnnealResult
annealCoreConfig(const std::function<double(const CoreConfig &)> &objective,
                 const CoreConfig &start,
                 const AnnealConfig &anneal_config,
                 ThreadPool *pool = nullptr);

} // namespace contest

#endif // CONTEST_EXPLORE_ANNEALER_HH
