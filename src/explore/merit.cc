#include "explore/merit.hh"

#include "common/log.hh"
#include "common/stats.hh"

namespace contest
{

std::size_t
IptMatrix::coreIndex(const std::string &name) const
{
    for (std::size_t c = 0; c < coreNames.size(); ++c)
        if (coreNames[c] == name)
            return c;
    fatal("IptMatrix: unknown core type '%s'", name.c_str());
}

std::size_t
IptMatrix::benchIndex(const std::string &name) const
{
    for (std::size_t b = 0; b < benchNames.size(); ++b)
        if (benchNames[b] == name)
            return b;
    fatal("IptMatrix: unknown benchmark '%s'", name.c_str());
}

void
IptMatrix::validate() const
{
    fatal_if(ipt.size() != benchNames.size(),
             "IptMatrix: %zu rows for %zu benchmarks", ipt.size(),
             benchNames.size());
    for (const auto &row : ipt) {
        fatal_if(row.size() != coreNames.size(),
                 "IptMatrix: row width %zu for %zu core types",
                 row.size(), coreNames.size());
        for (double v : row)
            fatal_if(v <= 0.0, "IptMatrix: non-positive IPT %f", v);
    }
}

const char *
meritName(Merit merit)
{
    switch (merit) {
      case Merit::Avg:
        return "avg";
      case Merit::Har:
        return "har";
      case Merit::CwHar:
        return "cw-har";
    }
    panic("unknown Merit %d", static_cast<int>(merit));
}

std::size_t
bestCoreFor(const IptMatrix &matrix, std::size_t bench,
            const std::vector<std::size_t> &cores)
{
    panic_if(cores.empty(), "bestCoreFor with empty core set");
    std::size_t best = cores.front();
    for (std::size_t c : cores)
        if (matrix.ipt[bench][c] > matrix.ipt[bench][best])
            best = c;
    return best;
}

std::vector<double>
bestIpts(const IptMatrix &matrix, const std::vector<std::size_t> &cores)
{
    std::vector<double> out;
    out.reserve(matrix.numBenches());
    for (std::size_t b = 0; b < matrix.numBenches(); ++b)
        out.push_back(matrix.ipt[b][bestCoreFor(matrix, b, cores)]);
    return out;
}

double
scoreCmp(const IptMatrix &matrix,
         const std::vector<std::size_t> &cores, Merit merit)
{
    panic_if(cores.empty(), "scoreCmp with empty core set");

    std::vector<double> best = bestIpts(matrix, cores);
    switch (merit) {
      case Merit::Avg:
        return arithmeticMean(best);
      case Merit::Har:
        return harmonicMean(best);
      case Merit::CwHar:
        {
            // Each benchmark's effective IPT is divided by the
            // number of benchmarks that prefer the same core type
            // (Little's law under the queue-at-preferred-core
            // scheduling policy of Section 6.1).
            std::vector<std::size_t> share(matrix.numCores(), 0);
            std::vector<std::size_t> pref(matrix.numBenches());
            for (std::size_t b = 0; b < matrix.numBenches(); ++b) {
                pref[b] = bestCoreFor(matrix, b, cores);
                ++share[pref[b]];
            }
            std::vector<double> weighted;
            weighted.reserve(matrix.numBenches());
            for (std::size_t b = 0; b < matrix.numBenches(); ++b)
                weighted.push_back(
                    best[b] / static_cast<double>(share[pref[b]]));
            return harmonicMean(weighted);
        }
    }
    panic("unknown Merit %d", static_cast<int>(merit));
}

double
scoreCmpWeighted(const IptMatrix &matrix,
                 const std::vector<std::size_t> &cores, Merit merit,
                 const std::vector<double> &weights)
{
    panic_if(cores.empty(), "scoreCmpWeighted with empty core set");
    fatal_if(weights.size() != matrix.numBenches(),
             "scoreCmpWeighted: %zu weights for %zu benchmarks",
             weights.size(), matrix.numBenches());
    for (double w : weights)
        fatal_if(w <= 0.0,
                 "scoreCmpWeighted requires positive weights");

    std::vector<double> best = bestIpts(matrix, cores);
    switch (merit) {
      case Merit::Avg:
        {
            double w_sum = 0.0;
            double acc = 0.0;
            for (std::size_t b = 0; b < best.size(); ++b) {
                w_sum += weights[b];
                acc += weights[b] * best[b];
            }
            return acc / w_sum;
        }
      case Merit::Har:
        return weightedHarmonicMean(best, weights);
      case Merit::CwHar:
        {
            // The contention share of a core type is the total
            // submission weight of the benchmarks preferring it,
            // normalized so uniform weights reduce to the plain
            // benchmark count.
            std::vector<double> share(matrix.numCores(), 0.0);
            std::vector<std::size_t> pref(matrix.numBenches());
            double w_sum = 0.0;
            for (std::size_t b = 0; b < matrix.numBenches(); ++b) {
                pref[b] = bestCoreFor(matrix, b, cores);
                share[pref[b]] += weights[b];
                w_sum += weights[b];
            }
            double mean_w =
                w_sum / static_cast<double>(matrix.numBenches());
            std::vector<double> weighted;
            weighted.reserve(matrix.numBenches());
            for (std::size_t b = 0; b < matrix.numBenches(); ++b)
                weighted.push_back(best[b]
                                   / (share[pref[b]] / mean_w));
            return weightedHarmonicMean(weighted, weights);
        }
    }
    panic("unknown Merit %d", static_cast<int>(merit));
}

} // namespace contest
