#include "explore/annealer.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace contest
{

namespace
{

/** Integer log2 of a power of two. */
unsigned
ilog2(std::uint64_t x)
{
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Pick the nearest entry of a menu not equal to current, stepping
 *  one position up or down. */
template <std::size_t N>
unsigned
stepMenu(const unsigned (&menu)[N], unsigned current, bool up)
{
    std::size_t idx = 0;
    for (std::size_t i = 0; i < N; ++i)
        if (menu[i] == current)
            idx = i;
    if (up && idx + 1 < N)
        ++idx;
    else if (!up && idx > 0)
        --idx;
    return menu[idx];
}

constexpr unsigned robMenu[] = {64, 128, 256, 512, 1024};
constexpr unsigned iqMenu[] = {16, 32, 64, 128};
constexpr unsigned lsqMenu[] = {32, 64, 128, 256};
constexpr unsigned setsMenu[] = {128, 256, 512, 1024, 2048, 4096,
                                 8192, 16384, 32768};
constexpr unsigned blockMenu[] = {8, 16, 32, 64, 128, 256, 512};
constexpr unsigned assocMenu[] = {1, 2, 4, 8, 16};

} // namespace

void
applyTechnologyModel(CoreConfig &config)
{
    // Stylized 70nm timing model: the cycle-critical structures
    // (issue window, rename/bypass width) set the unpipelined delay,
    // and deeper scheduling / wakeup / front-end pipelining buys
    // frequency back. The palette configurations keep their
    // published periods; this model governs explored points only.
    double structural = 140.0 + 1.0 * config.iqSize
        + 2.5 * config.width * config.width
        + 6.0 * ilog2(config.robSize);
    double pipelining = 0.7 + 0.15 * static_cast<double>(config.schedDepth)
        + 0.25 * static_cast<double>(config.wakeupLatency)
        + 0.04 * config.frontEndDepth;
    double period = structural / pipelining;
    config.clockPeriodPs = static_cast<TimePs>(
        std::clamp(period, 150.0, 600.0));

    // Cache latency follows capacity (and a tax for associativity).
    auto cache_latency = [](const CacheConfig &c, unsigned floor) {
        double kb = static_cast<double>(c.capacityBytes()) / 1024.0;
        double lat = static_cast<double>(floor)
            + std::max(0.0, std::log2(kb / 16.0)) * 0.8
            + (c.assoc > 4 ? 1.0 : 0.0);
        return static_cast<Cycles>(std::max(1.0, std::round(lat)));
    };
    config.l1d.latency = cache_latency(config.l1d, 2);
    config.l2.latency = cache_latency(config.l2, 4) + 2;

    // Fixed ~55ns shared level, converted to this design's cycles.
    config.memAccessCycles = static_cast<Cycles>(
        55'000.0 / static_cast<double>(config.clockPeriodPs) + 0.5);

    config.l1dPorts = std::max(2u, (config.width + 1) / 2);
}

AnnealResult
annealCoreConfig(
    const std::function<double(const CoreConfig &)> &objective,
    const CoreConfig &start, const AnnealConfig &anneal_config,
    ThreadPool *pool)
{
    fatal_if(!objective, "annealCoreConfig needs an objective");

    Rng rng(anneal_config.seed);

    auto mutate = [&](CoreConfig cfg) {
        bool up = rng.chance(0.5);
        switch (rng.below(12)) {
          case 0:
            cfg.width = std::clamp<unsigned>(cfg.width + (up ? 1 : -1),
                                             2, 8);
            break;
          case 1:
            cfg.robSize = stepMenu(robMenu, cfg.robSize, up);
            break;
          case 2:
            cfg.iqSize = stepMenu(iqMenu, cfg.iqSize, up);
            break;
          case 3:
            cfg.lsqSize = stepMenu(lsqMenu, cfg.lsqSize, up);
            break;
          case 4:
            cfg.frontEndDepth = std::clamp<unsigned>(
                cfg.frontEndDepth + (up ? 1 : -1), 4, 12);
            break;
          case 5:
            cfg.schedDepth = up
                ? std::min(cfg.schedDepth + 1, Cycles{4})
                : std::max(cfg.schedDepth - 1, Cycles{1});
            break;
          case 6:
            cfg.wakeupLatency =
                up ? std::min(cfg.wakeupLatency + 1, Cycles{3})
                   : (cfg.wakeupLatency > Cycles{}
                          ? cfg.wakeupLatency - 1
                          : Cycles{});
            break;
          case 7:
            cfg.l1d.sets = stepMenu(setsMenu, cfg.l1d.sets, up);
            break;
          case 8:
            cfg.l1d.blockBytes =
                stepMenu(blockMenu, cfg.l1d.blockBytes, up);
            break;
          case 9:
            cfg.l1d.assoc = stepMenu(assocMenu, cfg.l1d.assoc, up);
            break;
          case 10:
            cfg.l2.sets = stepMenu(setsMenu, cfg.l2.sets, up);
            break;
          default:
            cfg.l2.blockBytes =
                stepMenu(blockMenu, cfg.l2.blockBytes, up);
            break;
        }
        cfg.iqSize = std::min(cfg.iqSize, cfg.robSize);
        applyTechnologyModel(cfg);
        cfg.validate();
        return cfg;
    };

    AnnealResult result;
    CoreConfig current = start;
    applyTechnologyModel(current);
    current.validate();
    double current_score = objective(current);
    result.best = current;
    result.bestScore = current_score;
    result.evaluations = 1;

    double temperature =
        anneal_config.initialTemperature * std::abs(current_score);
    if (temperature <= 0.0)
        temperature = anneal_config.initialTemperature;

    auto record_accept = [&](const CoreConfig &candidate,
                             double score) {
        current = candidate;
        current_score = score;
        ++result.accepted;
        if (score > result.bestScore) {
            result.bestScore = score;
            result.best = candidate;
        }
    };

    if (anneal_config.batch <= 1) {
        // Classic serial walk, kept bit-compatible with the
        // pre-batching annealer: the acceptance draw happens only
        // when the Metropolis test actually needs one.
        for (StepCount step{}; step < anneal_config.steps;
             ++step) {
            CoreConfig candidate = mutate(current);
            double score = objective(candidate);
            ++result.evaluations;

            bool accept = score >= current_score;
            if (!accept && temperature > 0.0) {
                double p =
                    std::exp((score - current_score) / temperature);
                accept = rng.chance(p);
            }
            if (accept)
                record_accept(candidate, score);
            temperature *= anneal_config.coolingFactor;
        }
        return result;
    }

    // Speculative batches: mutate a round of neighbors from the
    // current point (consuming the rng serially, so the trajectory
    // is independent of the job count), score them concurrently,
    // then replay the Metropolis scan in generation order. The
    // acceptance uniform is pre-drawn per candidate because the
    // winning index is unknown until the scan.
    ThreadPool &workers =
        pool != nullptr ? *pool : ThreadPool::global();
    StepCount consumed{};
    std::vector<CoreConfig> candidates;
    std::vector<double> uniforms;
    std::vector<double> scores;
    while (consumed < anneal_config.steps) {
        std::uint64_t round = std::min<std::uint64_t>(
            anneal_config.batch,
            (anneal_config.steps - consumed).count());
        candidates.clear();
        uniforms.clear();
        for (std::uint64_t i = 0; i < round; ++i) {
            candidates.push_back(mutate(current));
            uniforms.push_back(rng.uniform());
        }
        scores.assign(round, 0.0);
        workers.parallelFor(round, [&](std::size_t i) {
            scores[i] = objective(candidates[i]);
        });
        result.evaluations += round;

        for (std::uint64_t i = 0; i < round; ++i) {
            ++consumed;
            bool accept = scores[i] >= current_score;
            if (!accept && temperature > 0.0) {
                double p = std::exp((scores[i] - current_score)
                                    / temperature);
                accept = uniforms[i] < p;
            }
            temperature *= anneal_config.coolingFactor;
            if (accept) {
                record_accept(candidates[i], scores[i]);
                break; // discard the round's later speculations
            }
        }
    }
    return result;
}

} // namespace contest
