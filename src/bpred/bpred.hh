/**
 * @file
 * Branch direction predictors and branch target buffer.
 *
 * Appendix A of the paper does not vary predictor geometry across
 * the customized cores, so every core instantiates the same default
 * tournament predictor; the classes are nonetheless fully
 * parameterized and unit-tested independently.
 *
 * The core model fetches only correct-path instructions (trace
 * driven), so predictors are updated with the architectural outcome
 * at prediction time; a misprediction is detected by comparing the
 * prediction with the trace's outcome and charged as a timing
 * penalty when the branch resolves.
 */

#ifndef CONTEST_BPRED_BPRED_HH
#define CONTEST_BPRED_BPRED_HH

#include <cstdint>
#include <vector>

#include "common/soa.hh"
#include "common/types.hh"

namespace contest
{

/** Saturating 2-bit counter helper. */
class SatCounter2
{
  public:
    /** Construct with an initial value in [0, 3]. */
    explicit SatCounter2(std::uint8_t init = 1) : val(init) {}

    /** Increment, saturating at 3. */
    void
    inc()
    {
        if (val < 3)
            ++val;
    }

    /** Decrement, saturating at 0. */
    void
    dec()
    {
        if (val > 0)
            --val;
    }

    /** Train toward the given outcome. */
    void
    train(bool taken)
    {
        if (taken)
            inc();
        else
            dec();
    }

    /** Predicted direction. */
    bool taken() const { return val >= 2; }

    /** Raw counter value. */
    std::uint8_t raw() const { return val; }

  private:
    std::uint8_t val;
};

/**
 * A table of 2-bit saturating counters packed 32 per uint64 word
 * (DESIGN.md §13): a default 8K-entry PHT is 2 KiB instead of 8 KiB,
 * so the tournament predictor's three tables and the choice table
 * stay L1-resident per lane. Semantically identical to a
 * vector<SatCounter2> indexed the same way.
 */
class PackedSatCounters
{
  public:
    /** Size to @p n counters, each initialized to @p init in [0,3]. */
    void
    assign(std::size_t n, std::uint8_t init)
    {
        // Replicate the 2-bit init pattern across the word.
        words.assign((n + 31) / 32,
                     std::uint64_t{0x5555555555555555ull} * init);
    }

    /** Raw value of counter @p i. */
    std::uint8_t
    raw(std::size_t i) const
    {
        return (words[i >> 5] >> ((i & 31) * 2)) & 3;
    }

    /** Predicted direction of counter @p i. */
    bool taken(std::size_t i) const { return raw(i) >= 2; }

    /** Train counter @p i toward the given outcome, saturating. */
    void
    train(std::size_t i, bool taken_outcome)
    {
        std::uint64_t &w = words[i >> 5];
        const unsigned sh = (i & 31) * 2;
        std::uint8_t v = (w >> sh) & 3;
        if (taken_outcome) {
            if (v < 3)
                ++v;
        } else {
            if (v > 0)
                --v;
        }
        w = (w & ~(std::uint64_t{3} << sh))
            | (std::uint64_t{v} << sh);
    }

  private:
    SoaVec<std::uint64_t> words;
};

/** Geometry and flavor of a direction predictor. */
struct BPredConfig
{
    enum class Kind { Bimodal, GShare, Local, Tournament };

    Kind kind = Kind::Tournament;
    unsigned tableBits = 13;    //!< log2 entries of each PHT
    unsigned historyBits = 12;  //!< global history length (GShare)
    unsigned localHistBits = 10;//!< per-branch history length
    unsigned localTableBits = 10;//!< log2 entries of the local
                                 //!< history table
};

/**
 * Branch direction predictor: bimodal, gshare, per-branch local
 * history, or an Alpha-21264-style tournament of gshare and local
 * with a choice table. The local component is what captures short
 * loop periods that pollute the shared global history.
 */
class BranchPredictor
{
  public:
    /** Build the tables described by the config. */
    explicit BranchPredictor(const BPredConfig &config);

    /**
     * Predict the direction of the branch at pc, then train all
     * tables and the global history with the actual outcome.
     *
     * @param pc branch address
     * @param actual_taken architectural outcome from the trace
     * @param count update the lookup/misprediction statistics
     *        (false when training on an injected branch whose
     *        outcome came from a result FIFO and was never
     *        predicted)
     * @return the direction that was predicted (before training)
     */
    bool predictAndTrain(Addr pc, bool actual_taken,
                         bool count = true);

    /** Lifetime conditional-branch predictions made. */
    LookupCount lookups() const { return numLookups; }

    /** Lifetime mispredictions. */
    std::uint64_t mispredicts() const { return numMispredicts; }

    /** Misprediction rate in [0, 1]. */
    double
    mispredictRate() const
    {
        return numLookups != LookupCount{}
            ? static_cast<double>(numMispredicts)
                / static_cast<double>(numLookups.count())
            : 0.0;
    }

  private:
    std::size_t bimodalIndex(Addr pc) const;
    std::size_t gshareIndex(Addr pc) const;
    std::size_t localHistIndex(Addr pc) const;

    BPredConfig cfg;
    /** Bit-packed pattern-history tables (2 bits per counter). */
    PackedSatCounters bimodal;
    PackedSatCounters gshare;
    PackedSatCounters local;
    /** Per-branch histories: localHistBits <= 16, so one uint16
     *  per branch keeps the whole table in a few cachelines. */
    SoaVec<std::uint16_t> localHist;
    PackedSatCounters choice;
    std::uint64_t history = 0;
    std::uint64_t historyMask;
    std::uint32_t localHistMask = 0;
    LookupCount numLookups{};
    std::uint64_t numMispredicts = 0;
};

/** Branch target buffer configuration. */
struct BtbConfig
{
    unsigned sets = 512;
    unsigned assoc = 4;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    explicit Btb(const BtbConfig &config);

    /**
     * Look up the target for the branch at pc and train the entry
     * with the actual target.
     *
     * @param pc branch address
     * @param actual_target architectural target from the trace
     * @return true iff the BTB held the correct target before
     *         training (i.e. the front end could redirect at fetch)
     */
    bool lookupAndTrain(Addr pc, Addr actual_target);

    /** Lifetime lookups. */
    LookupCount lookups() const { return numLookups; }

    /** Lifetime lookups that hit with the correct target. */
    std::uint64_t hits() const { return numHits; }

  private:
    BtbConfig cfg;
    /** Structure-of-arrays entry storage indexed set * assoc + way;
     *  the valid flags are one bit each, so a whole set's validity
     *  and the tag run needed by the way loop stay in L1. */
    SoaVec<Addr> tags;
    SoaVec<Addr> targets;
    SoaVec<std::uint64_t> lastUse;
    SoaVec<std::uint64_t> validW;
    std::uint64_t useClock = 0;
    LookupCount numLookups{};
    std::uint64_t numHits = 0;
};

} // namespace contest

#endif // CONTEST_BPRED_BPRED_HH
