/**
 * @file
 * Branch direction predictors and branch target buffer.
 *
 * Appendix A of the paper does not vary predictor geometry across
 * the customized cores, so every core instantiates the same default
 * tournament predictor; the classes are nonetheless fully
 * parameterized and unit-tested independently.
 *
 * The core model fetches only correct-path instructions (trace
 * driven), so predictors are updated with the architectural outcome
 * at prediction time; a misprediction is detected by comparing the
 * prediction with the trace's outcome and charged as a timing
 * penalty when the branch resolves.
 */

#ifndef CONTEST_BPRED_BPRED_HH
#define CONTEST_BPRED_BPRED_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace contest
{

/** Saturating 2-bit counter helper. */
class SatCounter2
{
  public:
    /** Construct with an initial value in [0, 3]. */
    explicit SatCounter2(std::uint8_t init = 1) : val(init) {}

    /** Increment, saturating at 3. */
    void
    inc()
    {
        if (val < 3)
            ++val;
    }

    /** Decrement, saturating at 0. */
    void
    dec()
    {
        if (val > 0)
            --val;
    }

    /** Train toward the given outcome. */
    void
    train(bool taken)
    {
        if (taken)
            inc();
        else
            dec();
    }

    /** Predicted direction. */
    bool taken() const { return val >= 2; }

    /** Raw counter value. */
    std::uint8_t raw() const { return val; }

  private:
    std::uint8_t val;
};

/** Geometry and flavor of a direction predictor. */
struct BPredConfig
{
    enum class Kind { Bimodal, GShare, Local, Tournament };

    Kind kind = Kind::Tournament;
    unsigned tableBits = 13;    //!< log2 entries of each PHT
    unsigned historyBits = 12;  //!< global history length (GShare)
    unsigned localHistBits = 10;//!< per-branch history length
    unsigned localTableBits = 10;//!< log2 entries of the local
                                 //!< history table
};

/**
 * Branch direction predictor: bimodal, gshare, per-branch local
 * history, or an Alpha-21264-style tournament of gshare and local
 * with a choice table. The local component is what captures short
 * loop periods that pollute the shared global history.
 */
class BranchPredictor
{
  public:
    /** Build the tables described by the config. */
    explicit BranchPredictor(const BPredConfig &config);

    /**
     * Predict the direction of the branch at pc, then train all
     * tables and the global history with the actual outcome.
     *
     * @param pc branch address
     * @param actual_taken architectural outcome from the trace
     * @param count update the lookup/misprediction statistics
     *        (false when training on an injected branch whose
     *        outcome came from a result FIFO and was never
     *        predicted)
     * @return the direction that was predicted (before training)
     */
    bool predictAndTrain(Addr pc, bool actual_taken,
                         bool count = true);

    /** Lifetime conditional-branch predictions made. */
    LookupCount lookups() const { return numLookups; }

    /** Lifetime mispredictions. */
    std::uint64_t mispredicts() const { return numMispredicts; }

    /** Misprediction rate in [0, 1]. */
    double
    mispredictRate() const
    {
        return numLookups != LookupCount{}
            ? static_cast<double>(numMispredicts)
                / static_cast<double>(numLookups.count())
            : 0.0;
    }

  private:
    std::size_t bimodalIndex(Addr pc) const;
    std::size_t gshareIndex(Addr pc) const;
    std::size_t localHistIndex(Addr pc) const;

    BPredConfig cfg;
    std::vector<SatCounter2> bimodal;
    std::vector<SatCounter2> gshare;
    std::vector<SatCounter2> local;
    std::vector<std::uint32_t> localHist;
    std::vector<SatCounter2> choice;
    std::uint64_t history = 0;
    std::uint64_t historyMask;
    std::uint32_t localHistMask = 0;
    LookupCount numLookups{};
    std::uint64_t numMispredicts = 0;
};

/** Branch target buffer configuration. */
struct BtbConfig
{
    unsigned sets = 512;
    unsigned assoc = 4;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    explicit Btb(const BtbConfig &config);

    /**
     * Look up the target for the branch at pc and train the entry
     * with the actual target.
     *
     * @param pc branch address
     * @param actual_target architectural target from the trace
     * @return true iff the BTB held the correct target before
     *         training (i.e. the front end could redirect at fetch)
     */
    bool lookupAndTrain(Addr pc, Addr actual_target);

    /** Lifetime lookups. */
    LookupCount lookups() const { return numLookups; }

    /** Lifetime lookups that hit with the correct target. */
    std::uint64_t hits() const { return numHits; }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    BtbConfig cfg;
    std::vector<Entry> entries;
    std::uint64_t useClock = 0;
    LookupCount numLookups{};
    std::uint64_t numHits = 0;
};

} // namespace contest

#endif // CONTEST_BPRED_BPRED_HH
