#include "bpred/bpred.hh"

#include "common/log.hh"

namespace contest
{

BranchPredictor::BranchPredictor(const BPredConfig &config)
    : cfg(config)
{
    fatal_if(cfg.tableBits == 0 || cfg.tableBits > 24,
             "predictor tableBits %u out of range", cfg.tableBits);
    fatal_if(cfg.historyBits > 32,
             "predictor historyBits %u out of range", cfg.historyBits);
    fatal_if(cfg.localHistBits == 0 || cfg.localHistBits > 16,
             "predictor localHistBits %u out of range",
             cfg.localHistBits);
    fatal_if(cfg.localTableBits == 0 || cfg.localTableBits > 20,
             "predictor localTableBits %u out of range",
             cfg.localTableBits);

    std::size_t entries = std::size_t{1} << cfg.tableBits;
    historyMask = (std::uint64_t{1} << cfg.historyBits) - 1;
    localHistMask =
        (std::uint32_t{1} << cfg.localHistBits) - 1;

    auto make_local = [&]() {
        local.assign(std::size_t{1} << cfg.localHistBits, 1);
        localHist.assign(std::size_t{1} << cfg.localTableBits, 0);
    };

    switch (cfg.kind) {
      case BPredConfig::Kind::Bimodal:
        bimodal.assign(entries, 1);
        break;
      case BPredConfig::Kind::GShare:
        gshare.assign(entries, 1);
        break;
      case BPredConfig::Kind::Local:
        make_local();
        break;
      case BPredConfig::Kind::Tournament:
        gshare.assign(entries, 1);
        make_local();
        choice.assign(entries, 1);
        break;
    }
}

std::size_t
BranchPredictor::bimodalIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << cfg.tableBits) - 1);
}

std::size_t
BranchPredictor::gshareIndex(Addr pc) const
{
    return ((pc >> 2) ^ (history & historyMask))
        & ((std::size_t{1} << cfg.tableBits) - 1);
}

std::size_t
BranchPredictor::localHistIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << cfg.localTableBits) - 1);
}

bool
BranchPredictor::predictAndTrain(Addr pc, bool actual_taken,
                                 bool count)
{
    if (count)
        ++numLookups;

    bool prediction = false;
    switch (cfg.kind) {
      case BPredConfig::Kind::Bimodal:
        {
            const std::size_t i = bimodalIndex(pc);
            prediction = bimodal.taken(i);
            bimodal.train(i, actual_taken);
        }
        break;
      case BPredConfig::Kind::GShare:
        {
            const std::size_t i = gshareIndex(pc);
            prediction = gshare.taken(i);
            gshare.train(i, actual_taken);
        }
        break;
      case BPredConfig::Kind::Local:
        {
            std::uint16_t &hist = localHist[localHistIndex(pc)];
            const std::size_t i = hist & localHistMask;
            prediction = local.taken(i);
            local.train(i, actual_taken);
            hist = static_cast<std::uint16_t>(
                ((hist << 1) | (actual_taken ? 1 : 0))
                & localHistMask);
        }
        break;
      case BPredConfig::Kind::Tournament:
        {
            // Alpha-21264-style: a per-branch local-history
            // component competes with a global gshare component.
            std::uint16_t &hist = localHist[localHistIndex(pc)];
            const std::size_t li = hist & localHistMask;
            const std::size_t gi = gshareIndex(pc);
            const std::size_t ci = bimodalIndex(pc);
            bool loc_pred = local.taken(li);
            bool gsh_pred = gshare.taken(gi);
            prediction = choice.taken(ci) ? gsh_pred : loc_pred;
            if (loc_pred != gsh_pred)
                choice.train(ci, gsh_pred == actual_taken);
            local.train(li, actual_taken);
            gshare.train(gi, actual_taken);
            hist = static_cast<std::uint16_t>(
                ((hist << 1) | (actual_taken ? 1 : 0))
                & localHistMask);
        }
        break;
    }

    history = ((history << 1) | (actual_taken ? 1 : 0)) & historyMask;

    if (count && prediction != actual_taken)
        ++numMispredicts;
    return prediction;
}

Btb::Btb(const BtbConfig &config)
    : cfg(config)
{
    fatal_if(cfg.sets == 0 || (cfg.sets & (cfg.sets - 1)) != 0,
             "BTB sets must be a non-zero power of two (got %u)",
             cfg.sets);
    fatal_if(cfg.assoc == 0, "BTB associativity must be non-zero");
    const std::size_t n = std::size_t{cfg.sets} * cfg.assoc;
    tags.assign(n, 0);
    targets.assign(n, 0);
    lastUse.assign(n, 0);
    validW.assign(maskWords(n), 0);
}

bool
Btb::lookupAndTrain(Addr pc, Addr actual_target)
{
    ++numLookups;
    ++useClock;

    std::size_t set = (pc >> 2) & (cfg.sets - 1);
    const std::size_t base = set * cfg.assoc;

    // Same walk the old array-of-structs code did: hit on a valid
    // matching tag, else victimize the last invalid way, else the
    // LRU (min lastUse) valid way.
    std::size_t found = base + cfg.assoc; // sentinel: one past set
    std::size_t victim = base;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const std::size_t e = base + w;
        const bool valid = bitTest(validW, e);
        if (valid && tags[e] == pc) {
            found = e;
            break;
        }
        if (!valid) {
            victim = e;
        } else if (bitTest(validW, victim)
                   && lastUse[e] < lastUse[victim]) {
            victim = e;
        }
    }

    bool correct = false;
    if (found != base + cfg.assoc) {
        correct = targets[found] == actual_target;
        targets[found] = actual_target;
        lastUse[found] = useClock;
    } else {
        bitSet(validW, victim);
        tags[victim] = pc;
        targets[victim] = actual_target;
        lastUse[victim] = useClock;
    }

    if (correct)
        ++numHits;
    return correct;
}

} // namespace contest
