#include "bpred/bpred.hh"

#include "common/log.hh"

namespace contest
{

BranchPredictor::BranchPredictor(const BPredConfig &config)
    : cfg(config)
{
    fatal_if(cfg.tableBits == 0 || cfg.tableBits > 24,
             "predictor tableBits %u out of range", cfg.tableBits);
    fatal_if(cfg.historyBits > 32,
             "predictor historyBits %u out of range", cfg.historyBits);
    fatal_if(cfg.localHistBits == 0 || cfg.localHistBits > 16,
             "predictor localHistBits %u out of range",
             cfg.localHistBits);
    fatal_if(cfg.localTableBits == 0 || cfg.localTableBits > 20,
             "predictor localTableBits %u out of range",
             cfg.localTableBits);

    std::size_t entries = std::size_t{1} << cfg.tableBits;
    historyMask = (std::uint64_t{1} << cfg.historyBits) - 1;
    localHistMask =
        (std::uint32_t{1} << cfg.localHistBits) - 1;

    auto make_local = [&]() {
        local.assign(std::size_t{1} << cfg.localHistBits,
                     SatCounter2(1));
        localHist.assign(std::size_t{1} << cfg.localTableBits, 0);
    };

    switch (cfg.kind) {
      case BPredConfig::Kind::Bimodal:
        bimodal.assign(entries, SatCounter2(1));
        break;
      case BPredConfig::Kind::GShare:
        gshare.assign(entries, SatCounter2(1));
        break;
      case BPredConfig::Kind::Local:
        make_local();
        break;
      case BPredConfig::Kind::Tournament:
        gshare.assign(entries, SatCounter2(1));
        make_local();
        choice.assign(entries, SatCounter2(1));
        break;
    }
}

std::size_t
BranchPredictor::bimodalIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << cfg.tableBits) - 1);
}

std::size_t
BranchPredictor::gshareIndex(Addr pc) const
{
    return ((pc >> 2) ^ (history & historyMask))
        & ((std::size_t{1} << cfg.tableBits) - 1);
}

std::size_t
BranchPredictor::localHistIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << cfg.localTableBits) - 1);
}

bool
BranchPredictor::predictAndTrain(Addr pc, bool actual_taken,
                                 bool count)
{
    if (count)
        ++numLookups;

    bool prediction = false;
    switch (cfg.kind) {
      case BPredConfig::Kind::Bimodal:
        {
            auto &ctr = bimodal[bimodalIndex(pc)];
            prediction = ctr.taken();
            ctr.train(actual_taken);
        }
        break;
      case BPredConfig::Kind::GShare:
        {
            auto &ctr = gshare[gshareIndex(pc)];
            prediction = ctr.taken();
            ctr.train(actual_taken);
        }
        break;
      case BPredConfig::Kind::Local:
        {
            std::uint32_t &hist = localHist[localHistIndex(pc)];
            auto &ctr = local[hist & localHistMask];
            prediction = ctr.taken();
            ctr.train(actual_taken);
            hist = ((hist << 1) | (actual_taken ? 1 : 0))
                & localHistMask;
        }
        break;
      case BPredConfig::Kind::Tournament:
        {
            // Alpha-21264-style: a per-branch local-history
            // component competes with a global gshare component.
            std::uint32_t &hist = localHist[localHistIndex(pc)];
            auto &loc = local[hist & localHistMask];
            auto &gsh = gshare[gshareIndex(pc)];
            auto &sel = choice[bimodalIndex(pc)];
            bool loc_pred = loc.taken();
            bool gsh_pred = gsh.taken();
            prediction = sel.taken() ? gsh_pred : loc_pred;
            if (loc_pred != gsh_pred)
                sel.train(gsh_pred == actual_taken);
            loc.train(actual_taken);
            gsh.train(actual_taken);
            hist = ((hist << 1) | (actual_taken ? 1 : 0))
                & localHistMask;
        }
        break;
    }

    history = ((history << 1) | (actual_taken ? 1 : 0)) & historyMask;

    if (count && prediction != actual_taken)
        ++numMispredicts;
    return prediction;
}

Btb::Btb(const BtbConfig &config)
    : cfg(config)
{
    fatal_if(cfg.sets == 0 || (cfg.sets & (cfg.sets - 1)) != 0,
             "BTB sets must be a non-zero power of two (got %u)",
             cfg.sets);
    fatal_if(cfg.assoc == 0, "BTB associativity must be non-zero");
    entries.assign(std::size_t{cfg.sets} * cfg.assoc, Entry{});
}

bool
Btb::lookupAndTrain(Addr pc, Addr actual_target)
{
    ++numLookups;
    ++useClock;

    std::size_t set = (pc >> 2) & (cfg.sets - 1);
    Entry *base = &entries[set * cfg.assoc];

    Entry *found = nullptr;
    Entry *victim = &base[0];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == pc) {
            found = &e;
            break;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }

    bool correct = false;
    if (found != nullptr) {
        correct = found->target == actual_target;
        found->target = actual_target;
        found->lastUse = useClock;
    } else {
        victim->valid = true;
        victim->tag = pc;
        victim->target = actual_target;
        victim->lastUse = useClock;
    }

    if (correct)
        ++numHits;
    return correct;
}

} // namespace contest
