/**
 * @file
 * Out-of-order core configuration — exactly the parameter set the
 * paper's XpScalar exploration varies (Appendix A), plus fixed
 * structural defaults the paper holds constant.
 */

#ifndef CONTEST_CORE_CONFIG_HH
#define CONTEST_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "bpred/bpred.hh"
#include "common/types.hh"
#include "mem/cache.hh"

namespace contest
{

/** Full parameterization of one core type. */
struct CoreConfig
{
    /** Core-type name (the benchmark it was customized for). */
    std::string name = "default";

    /** @name Appendix A parameters */
    /** @{ */
    /** Shared-level (memory) access latency in core cycles. */
    Cycles memAccessCycles{180};
    /** Front-end pipeline depth (fetch to rename) in stages. */
    unsigned frontEndDepth = 6;
    /** Dispatch, issue, and commit width. */
    unsigned width = 4;
    /** Reorder buffer / register file size. */
    unsigned robSize = 256;
    /** Issue queue size. */
    unsigned iqSize = 32;
    /** Minimum latency for awakening a dependent instruction. */
    Cycles wakeupLatency{1};
    /** Pipeline depth of the scheduler / register file read. */
    Cycles schedDepth{2};
    /** Clock period in picoseconds. */
    TimePs clockPeriodPs{300};
    /** L1 data cache geometry (latency in cycles). */
    CacheConfig l1d{1024, 2, 32, Cycles{2}, false, true};
    /** Private L2 cache geometry (latency in cycles). */
    CacheConfig l2{1024, 8, 128, Cycles{12}, false, true};
    /** Load-store queue size. */
    unsigned lsqSize = 128;
    /** @} */

    /** @name Structural defaults held constant across core types */
    /** @{ */
    /** L1D ports: memory instructions issued per cycle. */
    unsigned l1dPorts = 2;
    /** Outstanding cache misses (MSHRs). */
    unsigned mshrs = 8;
    /**
     * Shared-level (memory) bandwidth in bytes per nanosecond,
     * identical for every core type. One L2-block fill occupies the
     * bus for blockBytes / bandwidth nanoseconds.
     */
    double memBandwidthBytesPerNs = 16.0;
    /** Extra fetch-redirect penalty for a taken branch whose target
     *  missed in the BTB, in cycles. */
    Cycles btbMissPenalty{2};
    /** Cycles to run a synchronous exception handler. */
    Cycles syscallHandlerCycles{64};
    /** Direction predictor geometry. */
    BPredConfig bpred{};
    /** Branch target buffer geometry. */
    BtbConfig btb{};
    /**
     * Model the L1 instruction cache. The paper's Appendix A does
     * not vary I-cache geometry across the customized cores, so the
     * palette runs with a perfect I-cache by default; enabling this
     * charges fetch-group misses through the (unified) L2.
     */
    bool modelICache = false;
    /** L1 instruction cache geometry (when modeled). The synthetic
     *  workloads' code regions total ~100KB per benchmark, so the
     *  default is sized like a shared-era 64KB L1I. */
    CacheConfig l1i{512, 2, 64, Cycles{1}, false, true};
    /** @} */

    /** Clock frequency in GHz, derived from the period. */
    double
    frequencyGHz() const
    {
        return 1000.0 / static_cast<double>(clockPeriodPs.count());
    }

    /**
     * Peak retirement rate in instructions per nanosecond — the
     * quantity the paper's saturated-lagger condition (Section
     * 4.1.4) compares across cores.
     */
    double
    peakIps() const
    {
        return static_cast<double>(width) * static_cast<double>(psPerNs)
            / static_cast<double>(clockPeriodPs.count());
    }

    /** Bus occupancy of one L2-block fill, in core cycles. */
    Cycles
    loadFillGapCycles() const
    {
        double gap_ps = static_cast<double>(l2.blockBytes)
            * static_cast<double>(psPerNs) / memBandwidthBytesPerNs;
        return static_cast<Cycles>(
            gap_ps / static_cast<double>(clockPeriodPs.count()) + 0.999);
    }

    /** Bus occupancy of one write-through word drain, in cycles. */
    Cycles
    storeDrainGapCycles() const
    {
        double gap_ps =
            8.0 * static_cast<double>(psPerNs) / memBandwidthBytesPerNs;
        return static_cast<Cycles>(
            gap_ps / static_cast<double>(clockPeriodPs.count()) + 0.999);
    }

    /** fatal() if any parameter is structurally impossible. */
    void validate() const;
};

} // namespace contest

#endif // CONTEST_CORE_CONFIG_HH
