/**
 * @file
 * Trace-driven cycle-level out-of-order superscalar core model.
 *
 * The model honors every Appendix A parameter: fetch is width-bound
 * and taken-branch-bound; fetched instructions spend frontEndDepth
 * cycles reaching rename; dispatch is bound by ROB/IQ/LSQ occupancy;
 * issue selects up to width ready instructions oldest-first with
 * wakeupLatency between a producer's execution and its dependents'
 * earliest issue; loads occupy MSHRs on misses and L1D ports at
 * issue; schedDepth cycles separate issue from completion (paid by
 * branch resolution and retirement, hidden from dependents by the
 * bypass network); commit is in-order and width-bound.
 *
 * Wrong-path instructions are not modeled (trace-driven): a
 * misprediction stalls fetch until the branch resolves, which
 * charges the same resolution + front-end-refill penalty to baseline
 * and contested runs alike.
 *
 * Hot-path structure (DESIGN.md §13): all per-instruction pipeline
 * state lives in structure-of-arrays form. The ROB and fetch queue
 * are implicit rings — in-flight stream positions are contiguous, so
 * an entry's index is just `seq & ringMask` and no per-entry seq is
 * stored. Per-entry booleans (issued/completed/injected/ready) are
 * single bits in uint64 mask words, so issue select is a
 * find-first-set scan over the ready mask in age order instead of a
 * heap, and a 64-entry dependence wave costs one load. The issue
 * queue is a slot pool driven by a wakeup network — an instruction
 * waits on its producers' waiter chains and is queued on a
 * cycle-indexed wakeup ring when the last producer issues; when the
 * operand time arrives its ready bit is set. Completion, LSQ-release
 * and MSHR-release events ride the same timing-wheel structure
 * (common/cycle_ring.hh), so per-tick event delivery is bucket reads
 * instead of heap sifts. On top of that the core can prove an idle
 * window (nextEventCycle) and fast-forward through it
 * (skipIdleCycles), replaying the per-cycle stall counters exactly;
 * schedulers use this to elide provably dead ticks while staying
 * bit-identical to cycle-by-cycle stepping.
 *
 * Contesting hooks (fetch pairing, retirement broadcast, store
 * merging, exception rendezvous, saturated-lagger parking) are
 * injected through the ContestHooks interface so the core library
 * has no dependency on the contesting machinery.
 */

#ifndef CONTEST_CORE_OOO_CORE_HH
#define CONTEST_CORE_OOO_CORE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bpred/bpred.hh"
#include "common/cycle_ring.hh"
#include "common/soa.hh"
#include "core/config.hh"
#include "core/contest_iface.hh"
#include "core/stats.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace contest
{

/** How a popped result completes a trailing core's instruction. */
enum class InjectionStyle
{
    /**
     * Write the value into the physical register at rename, using
     * write ports transferred from the writeback stage (the paper's
     * primary scheme, Section 4.1.3). Injected instructions bypass
     * the issue queue entirely.
     */
    PortSteal,
    /**
     * Dispatch into the issue queue marked immediately ready (the
     * paper's "more straightforward alternative"). Injected
     * instructions consume issue-queue slots and issue bandwidth.
     */
    MarkReady,
};

/** Cycle-level out-of-order core executing one trace. */
class OooCore
{
  public:
    /** Called on every retirement: (stream position, global time). */
    using RetireCallback = std::function<void(InstSeq, TimePs)>;

    /**
     * @param core_config validated core parameters
     * @param trace_ptr the retired instruction stream to execute
     * @param core_id identifier within a multi-core system
     */
    OooCore(const CoreConfig &core_config, TracePtr trace_ptr,
            CoreId core_id = 0);

    /** Attach contesting hooks (optional; pass nullptr to detach). */
    void attachContest(ContestHooks *contest_hooks,
                       InjectionStyle injection_style);

    /** Register a retirement observer (region logging etc.). */
    void setRetireCallback(RetireCallback cb) { retireCb = std::move(cb); }

    /** Advance one clock cycle at global time @p now (picoseconds). */
    void tick(TimePs now);

    /**
     * The earliest cycle at which ticking could change state again.
     * Returns curCycle itself when no idle window is provable, and
     * a later cycle X when every tick in [curCycle, X) is a no-op
     * except for its per-cycle stall counters. Conservative: the
     * reported window may end before the next real event, never
     * after it.
     */
    Cycles nextEventCycle() const;

    /**
     * Fast-forward over provably idle cycles: advances the clock by
     * up to min(nextEventCycle() - curCycle, @p max_ticks) cycles,
     * incrementing exactly the stall counters that cycle-by-cycle
     * ticking would have. Call after tick(); the caller advances
     * its own timeline by the returned tick count.
     */
    Cycles skipIdleCycles(Cycles max_ticks);

    /**
     * Un-apply the last @p n ticks of the most recent
     * skipIdleCycles window. Schedulers use this when the core is
     * parked mid-window: elided ticks that would have ordered after
     * the parking event must not count.
     */
    void rewindIdleTicks(Cycles n);

    /** Cycles elided by skipIdleCycles over the whole run. */
    Cycles idleSkipped() const { return skippedTotal; }

    /**
     * Squash all in-flight work and restart execution at stream
     * position @p seq — the terminate-and-refork step of the
     * paper's asynchronous interrupt handling (Section 4.3). Cache
     * and predictor state is preserved (it is architectural
     * history, not thread context).
     */
    void reforkTo(InstSeq seq);

    /** Has the whole trace retired on this core? */
    bool done() const { return numRetired == trace->endSeq(); }

    /** Instructions retired so far. */
    InstSeq retired() const { return numRetired; }

    /** Stream position of the next instruction to fetch — the
     *  paper's (checkpoint-corrected) fetch counter. */
    InstSeq nextFetchSeq() const { return fetchSeq; }

    /**
     * Lower bound on the stream position of the next contesting-hook
     * argument this core can produce: the stalled branch being
     * polled through externalBranchResolve, or the fetch counter.
     * Hook arguments are nondecreasing over time, so everything the
     * core asks its FIFOs about from now on is at or above this —
     * the windowed parallel scheduler uses it to prove that another
     * core's in-window broadcasts stay strictly late (pure Scenario
     * #1 discards) for the whole window.
     */
    InstSeq
    hookArgFloor() const
    {
        return stalledBranch ? *stalledBranch : fetchSeq;
    }

    /** Core cycles elapsed. */
    Cycles cycle() const { return curCycle; }

    /** Clock period in picoseconds. */
    TimePs periodPs() const { return cfg.clockPeriodPs; }

    /** This core's identifier. */
    CoreId id() const { return coreId; }

    /** The active configuration. */
    const CoreConfig &config() const { return cfg; }

    /** Execution statistics. */
    const CoreStats &stats() const { return st; }

    /** The private data-memory hierarchy (for statistics). */
    const DataHierarchy &memory() const { return hier; }

    /** The L1 instruction cache, if modeled. */
    const Cache *instructionCache() const { return icache.get(); }

    /** Mutable hierarchy access (write-policy switching). */
    DataHierarchy &memory() { return hier; }

  private:
    /** Operand-time wakeup record, bucketed by ready cycle; (seq,
     *  slot) revalidates against the pool at drain. */
    struct TimedReady
    {
        InstSeq seq{};
        std::int32_t slot = -1;

        /** Overflow-heap tie-break; the pair's cycle orders first
         *  and same-cycle handlers commute, so seq alone is enough. */
        bool
        operator<(const TimedReady &o) const
        {
            return seq < o.seq;
        }
    };
    // Two records per 32B half-cacheline; a grown field would
    // silently halve the wheel's bucket density.
    static_assert(sizeof(TimedReady) == 16,
                  "TimedReady must stay two-per-half-cacheline");

    /** Why dispatch cannot accept the fetch-queue front right now. */
    enum class DispatchBlock
    {
        None,           //!< front would dispatch
        Empty,          //!< nothing renamed yet (or queue empty)
        ConsumesEarly,  //!< front consumes the earlyResolved patch
        SyscallDrain,   //!< syscall serializing on a non-empty ROB
        RobFull,
        IqFull,
        LsqFull,
    };

    void doCommit(TimePs now);
    void doComplete(TimePs now);
    void doIssue(TimePs now);
    void doDispatch(TimePs now);
    void doFetch(TimePs now);

    /** @name Implicit-ring position maps
     *
     * ROB and fetch-queue seqs are contiguous, so position is a mask
     * of the raw stream position. robPosChecked preserves the old
     * robFor() window panics for paths that must not see a stale or
     * undispatched seq.
     */
    /** @{ */
    std::size_t
    ringPos(InstSeq seq) const
    {
        return static_cast<std::size_t>(seq.count()) & ringMask;
    }

    std::size_t
    fqPos(InstSeq seq) const
    {
        return static_cast<std::size_t>(seq.count()) & fqMask;
    }

    std::size_t robPosChecked(InstSeq seq) const;
    /** @} */

    /** Is the given producer's value available, and when? */
    bool srcStatus(InstSeq producer, Cycles &ready_at) const;

    /** @name Issue-queue pool */
    /** @{ */
    int allocIqSlot();
    void freeIqSlot(int slot);
    /** Move every waiter of the producer at ROB ring position
     *  @p prod_pos to the timed-ready heap. */
    void wakeWaiters(std::size_t prod_pos);
    /** An in-queue instruction was completed externally (early
     *  branch resolution): queue it for a scan-order reap. */
    void markIqStale(InstSeq seq, int slot);
    /** Reap stale IQ entries older than @p before (the point the
     *  old linear scan would have reached). */
    void reapStaleBefore(InstSeq before);
    /** Drop a stale slot: unchain pending operands and free it. */
    void dropStaleSlot(int slot);
    /** @} */

    /**
     * Invoke @p fn(seq) for every set ready bit with stream position
     * in [from, to), oldest first. The ring maps the range onto at
     * most two linear bit segments. @p fn returns false to stop.
     */
    template <typename Fn>
    void
    forEachReady(InstSeq from, InstSeq to, Fn &&fn) const
    {
        if (!(from < to))
            return;
        const auto span =
            static_cast<std::size_t>((to - from).count());
        const std::size_t pos0 = ringPos(from);
        const std::size_t lin = std::min(span, ringCap - pos0);
        const auto relay = [&](std::size_t base_pos, InstSeq base_seq,
                               std::size_t count) {
            return scanBits(readyW, base_pos, base_pos + count,
                            [&](std::size_t p) {
                                // contest-lint: allow(unknown-call)
                                return fn(base_seq + (p - base_pos));
                            });
        };
        if (!relay(pos0, from, lin))
            return;
        if (span > lin)
            relay(0, from + lin, span - lin);
    }

    /** Classify the dispatch stage's view of the fetch-queue front. */
    DispatchBlock dispatchBlock() const;

    const CoreConfig cfg;
    TracePtr trace;
    const CoreId coreId;

    DataHierarchy hier;
    BranchPredictor bpred;
    Btb btb;
    /** Optional L1 instruction cache (perfect when absent). */
    std::unique_ptr<Cache> icache;

    ContestHooks *hooks = nullptr;
    InjectionStyle style = InjectionStyle::PortSteal;
    RetireCallback retireCb;

    /** Batched decode: raw bases of the trace's instruction and
     *  pre-decoded flags arrays (the trace is immutable). */
    const TraceInst *trInsts = nullptr;
    const std::uint8_t *trFlags = nullptr;

    Cycles curCycle{};
    InstSeq fetchSeq{};
    InstSeq numRetired{};

    /** @name ROB (structure-of-arrays over an implicit ring)
     *
     * ringCap is a power of two with 2*width+2 slack beyond robSize:
     * an early-resolved entry can commit while its IQ slot is still
     * awaiting its reap point, and by the reap the head may have
     * advanced up to width in the commit tick plus width in the next
     * tick's commit stage — the slack keeps such a stale seq's bit
     * position distinct from every live entry's.
     */
    /** @{ */
    std::size_t ringCap = 0;
    std::size_t ringMask = 0;
    InstSeq robHeadSeq{};
    std::size_t robOcc = 0;
    SoaVec<Cycles> robValueReadyAt;
    /** Issue-queue slot of each entry, or -1. */
    SoaVec<std::int32_t> robIqSlot;
    /** Head of the chain of IQ slots waiting on each entry's value
     *  (slot * 2 + operand), or -1. */
    SoaVec<std::int32_t> robFirstWaiter;
    SoaVec<std::uint64_t> robIssuedW;
    SoaVec<std::uint64_t> robCompletedW;
    SoaVec<std::uint64_t> robInjectedW;
    /** Bit set: the entry sits in the IQ with all operands timed in
     *  — the issue select scans this word array oldest-first. */
    SoaVec<std::uint64_t> readyW;
    /** @} */

    /** @name Front-end (fetch-to-rename) pipeline ring */
    /** @{ */
    std::size_t fetchQueueCap = 0;
    std::size_t fqCap = 0;
    std::size_t fqMask = 0;
    std::size_t fqOcc = 0;
    SoaVec<Cycles> fqRenameReadyAt;
    SoaVec<std::uint64_t> fqInjectedW;
    /** @} */

    /** @name Issue-queue slot pool (structure-of-arrays) */
    /** @{ */
    SoaVec<InstSeq> iqSeq;
    SoaVec<InstSeq> iqSrcProd0;
    SoaVec<InstSeq> iqSrcProd1;
    SoaVec<Cycles> iqSrcReady0;
    SoaVec<Cycles> iqSrcReady1;
    /** Next slot*2+operand waiting on the same producer, or -1. */
    SoaVec<std::int32_t> iqNextWaiter0;
    SoaVec<std::int32_t> iqNextWaiter1;
    /** Free-list link when the in-use bit is clear. */
    SoaVec<std::int32_t> iqFreeNext;
    /** Bit set: the operand still waits for its producer. */
    SoaVec<std::uint64_t> iqPend0W;
    SoaVec<std::uint64_t> iqPend1W;
    SoaVec<std::uint64_t> iqInjectedW;
    SoaVec<std::uint64_t> iqInUseW;
    int iqFreeHead = -1;
    unsigned iqCount = 0;
    CycleRing<TimedReady> timedReady;
    /** Set bits in readyW (lets doIssue skip a scan-free tick). */
    unsigned readyCount = 0;
    /** Externally completed in-queue entries awaiting their reap
     *  point, sorted by seq (almost always empty or a singleton);
     *  parallel arrays. */
    std::vector<InstSeq> staleSeqs;
    std::vector<std::int32_t> staleSlots;
    /** @} */

    /** @name Rename map (producer per architectural register; the
     *  in-flight flags are one mask word — numArchRegs is 64). */
    /** @{ */
    SoaVec<InstSeq> renameProducer;
    std::uint64_t renameInFlightW = 0;
    /** @} */

    unsigned lsqOcc = 0;
    /** Data-return times of outstanding misses (MSHR release). */
    CycleRing<std::uint8_t> mshrReleases;
    /** One completion event, packed into a single word: bit 0 set
     *  when the instruction is a load whose LSQ slot releases the
     *  cycle its data returns — the same cycle the completion fires
     *  — so the release rides the completion instead of its own
     *  event ring; the remaining bits are the instruction seq. */
    static constexpr std::uint64_t
    packCompletion(InstSeq seq, bool lsq_release)
    {
        return seq.count() << 1 | (lsq_release ? 1 : 0);
    }
    /** Completion events of issued-but-incomplete instructions. */
    CycleRing<std::uint64_t> completions;

    /** @name Fetch-stall state */
    /** @{ */
    std::optional<InstSeq> stalledBranch;
    /** Early-resolved (Fig. 5) branch not yet dispatched/patched. */
    std::optional<InstSeq> earlyResolved;
    bool stalledSyscall = false;
    Cycles fetchResumeAt{};
    /** @} */

    /** Syscall commit-block state. */
    std::optional<TimePs> syscallResumePs;
    bool syscallHandled = false;

    /** @name Idle-skip bookkeeping */
    /** @{ */
    /** The last skip window's tick count and replayed counters,
     *  kept so a mid-window park can rewind the tail. */
    struct SkipWindow
    {
        Cycles ticks{};
        bool robFull = false;
        bool iqFull = false;
        bool lsqFull = false;
        bool branchStall = false;
    };
    SkipWindow lastSkip;
    Cycles skippedTotal{};
    /** @} */

    CoreStats st;
};

} // namespace contest

#endif // CONTEST_CORE_OOO_CORE_HH
