/**
 * @file
 * Trace-driven cycle-level out-of-order superscalar core model.
 *
 * The model honors every Appendix A parameter: fetch is width-bound
 * and taken-branch-bound; fetched instructions spend frontEndDepth
 * cycles reaching rename; dispatch is bound by ROB/IQ/LSQ occupancy;
 * issue selects up to width ready instructions oldest-first with
 * wakeupLatency between a producer's execution and its dependents'
 * earliest issue; loads occupy MSHRs on misses and L1D ports at
 * issue; schedDepth cycles separate issue from completion (paid by
 * branch resolution and retirement, hidden from dependents by the
 * bypass network); commit is in-order and width-bound.
 *
 * Wrong-path instructions are not modeled (trace-driven): a
 * misprediction stalls fetch until the branch resolves, which
 * charges the same resolution + front-end-refill penalty to baseline
 * and contested runs alike.
 *
 * Contesting hooks (fetch pairing, retirement broadcast, store
 * merging, exception rendezvous, saturated-lagger parking) are
 * injected through the ContestHooks interface so the core library
 * has no dependency on the contesting machinery.
 */

#ifndef CONTEST_CORE_OOO_CORE_HH
#define CONTEST_CORE_OOO_CORE_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "bpred/bpred.hh"
#include "core/config.hh"
#include "core/contest_iface.hh"
#include "core/stats.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace contest
{

/** How a popped result completes a trailing core's instruction. */
enum class InjectionStyle
{
    /**
     * Write the value into the physical register at rename, using
     * write ports transferred from the writeback stage (the paper's
     * primary scheme, Section 4.1.3). Injected instructions bypass
     * the issue queue entirely.
     */
    PortSteal,
    /**
     * Dispatch into the issue queue marked immediately ready (the
     * paper's "more straightforward alternative"). Injected
     * instructions consume issue-queue slots and issue bandwidth.
     */
    MarkReady,
};

/** Cycle-level out-of-order core executing one trace. */
class OooCore
{
  public:
    /** Called on every retirement: (stream position, global time). */
    using RetireCallback = std::function<void(InstSeq, TimePs)>;

    /**
     * @param core_config validated core parameters
     * @param trace_ptr the retired instruction stream to execute
     * @param core_id identifier within a multi-core system
     */
    OooCore(const CoreConfig &core_config, TracePtr trace_ptr,
            CoreId core_id = 0);

    /** Attach contesting hooks (optional; pass nullptr to detach). */
    void attachContest(ContestHooks *contest_hooks,
                       InjectionStyle injection_style);

    /** Register a retirement observer (region logging etc.). */
    void setRetireCallback(RetireCallback cb) { retireCb = std::move(cb); }

    /** Advance one clock cycle at global time @p now (picoseconds). */
    void tick(TimePs now);

    /**
     * Squash all in-flight work and restart execution at stream
     * position @p seq — the terminate-and-refork step of the
     * paper's asynchronous interrupt handling (Section 4.3). Cache
     * and predictor state is preserved (it is architectural
     * history, not thread context).
     */
    void reforkTo(InstSeq seq);

    /** Has the whole trace retired on this core? */
    bool done() const { return numRetired == trace->endSeq(); }

    /** Instructions retired so far. */
    InstSeq retired() const { return numRetired; }

    /** Stream position of the next instruction to fetch — the
     *  paper's (checkpoint-corrected) fetch counter. */
    InstSeq nextFetchSeq() const { return fetchSeq; }

    /** Core cycles elapsed. */
    Cycles cycle() const { return curCycle; }

    /** Clock period in picoseconds. */
    TimePs periodPs() const { return cfg.clockPeriodPs; }

    /** This core's identifier. */
    CoreId id() const { return coreId; }

    /** The active configuration. */
    const CoreConfig &config() const { return cfg; }

    /** Execution statistics. */
    const CoreStats &stats() const { return st; }

    /** The private data-memory hierarchy (for statistics). */
    const DataHierarchy &memory() const { return hier; }

    /** The L1 instruction cache, if modeled. */
    const Cache *instructionCache() const { return icache.get(); }

    /** Mutable hierarchy access (write-policy switching). */
    DataHierarchy &memory() { return hier; }

  private:
    /** One reorder-buffer entry. */
    struct RobEntry
    {
        InstSeq seq{};
        bool issued = false;
        bool completed = false;
        bool injected = false;
        Cycles completeAt{};
        Cycles valueReadyAt{};
    };

    /** One front-end (fetch-to-rename) pipeline entry. */
    struct FetchEntry
    {
        InstSeq seq{};
        Cycles renameReadyAt{};
        bool injected = false;
    };

    /** One issue-queue entry. */
    struct IqEntry
    {
        InstSeq seq{};
        InstSeq srcProd[2] = {InstSeq{}, InstSeq{}};
        bool srcPending[2] = {false, false};
        Cycles srcReadyAt[2] = {Cycles{}, Cycles{}};
        bool injected = false;
    };

    /** Rename-map entry for one architectural register. */
    struct RenameRef
    {
        InstSeq producer{};
        bool inFlight = false;
    };

    void doCommit(TimePs now);
    void doComplete(TimePs now);
    void doIssue(TimePs now);
    void doDispatch(TimePs now);
    void doFetch(TimePs now);

    /** ROB entry for an in-flight stream position. */
    RobEntry &robFor(InstSeq seq);

    /** Is the given producer's value available, and when? */
    bool srcStatus(InstSeq producer, Cycles &ready_at) const;

    const CoreConfig cfg;
    TracePtr trace;
    const CoreId coreId;

    DataHierarchy hier;
    BranchPredictor bpred;
    Btb btb;
    /** Optional L1 instruction cache (perfect when absent). */
    std::unique_ptr<Cache> icache;

    ContestHooks *hooks = nullptr;
    InjectionStyle style = InjectionStyle::PortSteal;
    RetireCallback retireCb;

    Cycles curCycle{};
    InstSeq fetchSeq{};
    InstSeq numRetired{};

    std::deque<FetchEntry> fetchQueue;
    std::size_t fetchQueueCap;
    std::deque<RobEntry> rob;
    std::vector<IqEntry> iq;
    std::vector<RenameRef> renameMap;

    unsigned lsqOcc = 0;
    /** Completion times of in-flight loads (LSQ release). */
    std::priority_queue<Cycles, std::vector<Cycles>,
                        std::greater<Cycles>> loadReleases;
    /** Data-return times of outstanding misses (MSHR release). */
    std::priority_queue<Cycles, std::vector<Cycles>,
                        std::greater<Cycles>> mshrReleases;
    /** (completeAt, seq) of issued-but-incomplete instructions. */
    using CompletionEvent = std::pair<Cycles, InstSeq>;
    std::priority_queue<CompletionEvent,
                        std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>> completions;

    /** @name Fetch-stall state */
    /** @{ */
    std::optional<InstSeq> stalledBranch;
    /** Early-resolved (Fig. 5) branch not yet dispatched/patched. */
    std::optional<InstSeq> earlyResolved;
    bool stalledSyscall = false;
    Cycles fetchResumeAt{};
    /** @} */

    /** Syscall commit-block state. */
    std::optional<TimePs> syscallResumePs;
    bool syscallHandled = false;

    CoreStats st;
};

} // namespace contest

#endif // CONTEST_CORE_OOO_CORE_HH
