/**
 * @file
 * Trace-driven cycle-level out-of-order superscalar core model.
 *
 * The model honors every Appendix A parameter: fetch is width-bound
 * and taken-branch-bound; fetched instructions spend frontEndDepth
 * cycles reaching rename; dispatch is bound by ROB/IQ/LSQ occupancy;
 * issue selects up to width ready instructions oldest-first with
 * wakeupLatency between a producer's execution and its dependents'
 * earliest issue; loads occupy MSHRs on misses and L1D ports at
 * issue; schedDepth cycles separate issue from completion (paid by
 * branch resolution and retirement, hidden from dependents by the
 * bypass network); commit is in-order and width-bound.
 *
 * Wrong-path instructions are not modeled (trace-driven): a
 * misprediction stalls fetch until the branch resolves, which
 * charges the same resolution + front-end-refill penalty to baseline
 * and contested runs alike.
 *
 * Hot-path structure: the ROB and fetch queue are fixed ring buffers
 * sized by their architectural capacities, and the issue queue is a
 * slot pool driven by a wakeup network — an instruction waits on its
 * producers' waiter chains, moves to a (readyAt, seq) heap when the
 * last producer issues, and to the oldest-first issue heap when its
 * operands' time arrives, so doIssue touches only issuable entries
 * instead of scanning the whole queue. On top of that the core can
 * prove an idle window (nextEventCycle) and fast-forward through it
 * (skipIdleCycles), replaying the per-cycle stall counters exactly;
 * schedulers use this to elide provably dead ticks while staying
 * bit-identical to cycle-by-cycle stepping.
 *
 * Contesting hooks (fetch pairing, retirement broadcast, store
 * merging, exception rendezvous, saturated-lagger parking) are
 * injected through the ContestHooks interface so the core library
 * has no dependency on the contesting machinery.
 */

#ifndef CONTEST_CORE_OOO_CORE_HH
#define CONTEST_CORE_OOO_CORE_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bpred/bpred.hh"
#include "common/min_heap.hh"
#include "common/ring_buffer.hh"
#include "core/config.hh"
#include "core/contest_iface.hh"
#include "core/stats.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace contest
{

/** How a popped result completes a trailing core's instruction. */
enum class InjectionStyle
{
    /**
     * Write the value into the physical register at rename, using
     * write ports transferred from the writeback stage (the paper's
     * primary scheme, Section 4.1.3). Injected instructions bypass
     * the issue queue entirely.
     */
    PortSteal,
    /**
     * Dispatch into the issue queue marked immediately ready (the
     * paper's "more straightforward alternative"). Injected
     * instructions consume issue-queue slots and issue bandwidth.
     */
    MarkReady,
};

/** Cycle-level out-of-order core executing one trace. */
class OooCore
{
  public:
    /** Called on every retirement: (stream position, global time). */
    using RetireCallback = std::function<void(InstSeq, TimePs)>;

    /**
     * @param core_config validated core parameters
     * @param trace_ptr the retired instruction stream to execute
     * @param core_id identifier within a multi-core system
     */
    OooCore(const CoreConfig &core_config, TracePtr trace_ptr,
            CoreId core_id = 0);

    /** Attach contesting hooks (optional; pass nullptr to detach). */
    void attachContest(ContestHooks *contest_hooks,
                       InjectionStyle injection_style);

    /** Register a retirement observer (region logging etc.). */
    void setRetireCallback(RetireCallback cb) { retireCb = std::move(cb); }

    /** Advance one clock cycle at global time @p now (picoseconds). */
    void tick(TimePs now);

    /**
     * The earliest cycle at which ticking could change state again.
     * Returns curCycle itself when no idle window is provable, and
     * a later cycle X when every tick in [curCycle, X) is a no-op
     * except for its per-cycle stall counters. Conservative: the
     * reported window may end before the next real event, never
     * after it.
     */
    Cycles nextEventCycle() const;

    /**
     * Fast-forward over provably idle cycles: advances the clock by
     * up to min(nextEventCycle() - curCycle, @p max_ticks) cycles,
     * incrementing exactly the stall counters that cycle-by-cycle
     * ticking would have. Call after tick(); the caller advances
     * its own timeline by the returned tick count.
     */
    Cycles skipIdleCycles(Cycles max_ticks);

    /**
     * Un-apply the last @p n ticks of the most recent
     * skipIdleCycles window. Schedulers use this when the core is
     * parked mid-window: elided ticks that would have ordered after
     * the parking event must not count.
     */
    void rewindIdleTicks(Cycles n);

    /** Cycles elided by skipIdleCycles over the whole run. */
    Cycles idleSkipped() const { return skippedTotal; }

    /**
     * Squash all in-flight work and restart execution at stream
     * position @p seq — the terminate-and-refork step of the
     * paper's asynchronous interrupt handling (Section 4.3). Cache
     * and predictor state is preserved (it is architectural
     * history, not thread context).
     */
    void reforkTo(InstSeq seq);

    /** Has the whole trace retired on this core? */
    bool done() const { return numRetired == trace->endSeq(); }

    /** Instructions retired so far. */
    InstSeq retired() const { return numRetired; }

    /** Stream position of the next instruction to fetch — the
     *  paper's (checkpoint-corrected) fetch counter. */
    InstSeq nextFetchSeq() const { return fetchSeq; }

    /**
     * Lower bound on the stream position of the next contesting-hook
     * argument this core can produce: the stalled branch being
     * polled through externalBranchResolve, or the fetch counter.
     * Hook arguments are nondecreasing over time, so everything the
     * core asks its FIFOs about from now on is at or above this —
     * the windowed parallel scheduler uses it to prove that another
     * core's in-window broadcasts stay strictly late (pure Scenario
     * #1 discards) for the whole window.
     */
    InstSeq
    hookArgFloor() const
    {
        return stalledBranch ? *stalledBranch : fetchSeq;
    }

    /** Core cycles elapsed. */
    Cycles cycle() const { return curCycle; }

    /** Clock period in picoseconds. */
    TimePs periodPs() const { return cfg.clockPeriodPs; }

    /** This core's identifier. */
    CoreId id() const { return coreId; }

    /** The active configuration. */
    const CoreConfig &config() const { return cfg; }

    /** Execution statistics. */
    const CoreStats &stats() const { return st; }

    /** The private data-memory hierarchy (for statistics). */
    const DataHierarchy &memory() const { return hier; }

    /** The L1 instruction cache, if modeled. */
    const Cache *instructionCache() const { return icache.get(); }

    /** Mutable hierarchy access (write-policy switching). */
    DataHierarchy &memory() { return hier; }

  private:
    /** One reorder-buffer entry. */
    struct RobEntry
    {
        InstSeq seq{};
        bool issued = false;
        bool completed = false;
        bool injected = false;
        Cycles completeAt{};
        Cycles valueReadyAt{};
        /** Issue-queue slot of this instruction, or -1. */
        int iqSlot = -1;
        /** Head of the chain of IQ slots waiting on this value
         *  (slot * 2 + operand), or -1. */
        int firstWaiter = -1;
    };

    /** One front-end (fetch-to-rename) pipeline entry. */
    struct FetchEntry
    {
        InstSeq seq{};
        Cycles renameReadyAt{};
        bool injected = false;
    };

    /** One issue-queue slot (pool storage, free-listed). */
    struct IqSlot
    {
        InstSeq seq{};
        InstSeq srcProd[2] = {InstSeq{}, InstSeq{}};
        Cycles srcReadyAt[2] = {Cycles{}, Cycles{}};
        /** Next slot*2+operand waiting on the same producer. */
        int nextWaiter[2] = {-1, -1};
        /** Bit s set: operand s still waits for its producer. */
        std::uint8_t pendingMask = 0;
        bool injected = false;
        bool inUse = false;
        /** Free-list link when !inUse. */
        int freeNext = -1;
    };

    /** Rename-map entry for one architectural register. */
    struct RenameRef
    {
        InstSeq producer{};
        bool inFlight = false;
    };

    /** Operand-time wakeup record: migrates to issueReady when
     *  readyAt arrives. (seq, slot) revalidates against the pool. */
    struct TimedReady
    {
        Cycles readyAt{};
        InstSeq seq{};
        int slot = -1;

        bool
        operator<(const TimedReady &o) const
        {
            return readyAt != o.readyAt ? readyAt < o.readyAt
                                        : seq < o.seq;
        }
    };

    /** Issuable-now record, ordered oldest-first like the select. */
    struct IssueReady
    {
        InstSeq seq{};
        int slot = -1;

        bool operator<(const IssueReady &o) const { return seq < o.seq; }
    };

    /** Why dispatch cannot accept the fetch-queue front right now. */
    enum class DispatchBlock
    {
        None,           //!< front would dispatch
        Empty,          //!< nothing renamed yet (or queue empty)
        ConsumesEarly,  //!< front consumes the earlyResolved patch
        SyscallDrain,   //!< syscall serializing on a non-empty ROB
        RobFull,
        IqFull,
        LsqFull,
    };

    void doCommit(TimePs now);
    void doComplete(TimePs now);
    void doIssue(TimePs now);
    void doDispatch(TimePs now);
    void doFetch(TimePs now);

    /** ROB entry for an in-flight stream position. */
    RobEntry &robFor(InstSeq seq);
    const RobEntry &robFor(InstSeq seq) const;

    /** Is the given producer's value available, and when? */
    bool srcStatus(InstSeq producer, Cycles &ready_at) const;

    /** @name Issue-queue pool */
    /** @{ */
    int allocIqSlot();
    void freeIqSlot(int slot);
    /** Move every waiter of @p producer to the timed-ready heap. */
    void wakeWaiters(RobEntry &producer);
    /** An in-queue instruction was completed externally (early
     *  branch resolution): queue it for a scan-order reap. */
    void markIqStale(RobEntry &entry);
    /** Reap stale IQ entries older than @p before (the point the
     *  old linear scan would have reached). */
    void reapStaleBefore(InstSeq before);
    /** Drop a stale slot: unchain pending operands and free it. */
    void dropStaleSlot(int slot);
    /** @} */

    /** Classify the dispatch stage's view of the fetch-queue front. */
    DispatchBlock dispatchBlock() const;

    const CoreConfig cfg;
    TracePtr trace;
    const CoreId coreId;

    DataHierarchy hier;
    BranchPredictor bpred;
    Btb btb;
    /** Optional L1 instruction cache (perfect when absent). */
    std::unique_ptr<Cache> icache;

    ContestHooks *hooks = nullptr;
    InjectionStyle style = InjectionStyle::PortSteal;
    RetireCallback retireCb;

    Cycles curCycle{};
    InstSeq fetchSeq{};
    InstSeq numRetired{};

    RingBuffer<FetchEntry> fetchQueue;
    std::size_t fetchQueueCap;
    RingBuffer<RobEntry> rob;

    /** @name Issue queue */
    /** @{ */
    std::vector<IqSlot> iqPool;
    int iqFreeHead = -1;
    unsigned iqCount = 0;
    MinHeap<TimedReady> timedReady;
    MinHeap<IssueReady> issueReady;
    /** Per-cycle scratch for port/MSHR-blocked pops (no realloc). */
    std::vector<IssueReady> deferScratch;
    /** Externally completed in-queue entries awaiting their reap
     *  point, sorted by seq (almost always empty or a singleton). */
    std::vector<IssueReady> staleIq;
    /** @} */

    std::vector<RenameRef> renameMap;

    unsigned lsqOcc = 0;
    /** Completion times of in-flight loads (LSQ release). */
    MinHeap<Cycles> loadReleases;
    /** Data-return times of outstanding misses (MSHR release). */
    MinHeap<Cycles> mshrReleases;
    /** (completeAt, seq) of issued-but-incomplete instructions. */
    using CompletionEvent = std::pair<Cycles, InstSeq>;
    MinHeap<CompletionEvent> completions;

    /** @name Fetch-stall state */
    /** @{ */
    std::optional<InstSeq> stalledBranch;
    /** Early-resolved (Fig. 5) branch not yet dispatched/patched. */
    std::optional<InstSeq> earlyResolved;
    bool stalledSyscall = false;
    Cycles fetchResumeAt{};
    /** @} */

    /** Syscall commit-block state. */
    std::optional<TimePs> syscallResumePs;
    bool syscallHandled = false;

    /** @name Idle-skip bookkeeping */
    /** @{ */
    /** The last skip window's tick count and replayed counters,
     *  kept so a mid-window park can rewind the tail. */
    struct SkipWindow
    {
        Cycles ticks{};
        bool robFull = false;
        bool iqFull = false;
        bool lsqFull = false;
        bool branchStall = false;
    };
    SkipWindow lastSkip;
    Cycles skippedTotal{};
    /** @} */

    CoreStats st;
};

} // namespace contest

#endif // CONTEST_CORE_OOO_CORE_HH
