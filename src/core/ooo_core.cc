#include "core/ooo_core.hh"

#include <algorithm>

#include "common/log.hh"
#include "trace/decode.hh"

namespace contest
{

// The SoA field arrays are indexed by raw ring position; any padding
// or size drift would silently change the cache footprint the layout
// was sized for (DESIGN.md §13).
static_assert(sizeof(Cycles) == sizeof(std::uint64_t)
              && alignof(Cycles) == alignof(std::uint64_t),
              "Cycles must stay a bare uint64 wrapper: the ROB/IQ "
              "ready-time arrays are sized as one word per entry");
static_assert(sizeof(InstSeq) == sizeof(std::uint64_t)
              && alignof(InstSeq) == alignof(std::uint64_t),
              "InstSeq must stay a bare uint64 wrapper: the IQ "
              "producer arrays are sized as one word per entry");
static_assert(static_cast<std::size_t>(
                  CachelineAllocator<std::uint64_t>::alignment) == 64,
              "SoA field arrays must start cacheline-aligned so two "
              "hot arrays never share a line");
static_assert(numArchRegs == 64,
              "the rename in-flight flags are a single uint64 mask "
              "word — one bit per architectural register");

OooCore::OooCore(const CoreConfig &core_config, TracePtr trace_ptr,
                 CoreId core_id)
    : cfg(core_config), trace(std::move(trace_ptr)), coreId(core_id),
      hier(cfg.l1d, cfg.l2, cfg.memAccessCycles,
           cfg.loadFillGapCycles(), cfg.storeDrainGapCycles()),
      bpred(cfg.bpred), btb(cfg.btb)
{
    cfg.validate();
    fatal_if(!trace, "core '%s' constructed without a trace",
             cfg.name.c_str());
    if (cfg.wakeupLatency > cfg.schedDepth)
        warn("core '%s': wakeup latency (%llu) exceeds scheduler depth "
             "(%llu); committed producers are treated as ready",
             cfg.name.c_str(),
             static_cast<unsigned long long>(cfg.wakeupLatency),
             static_cast<unsigned long long>(cfg.schedDepth));
    trInsts = trace->data();
    trFlags = trace->decodedFlags();

    fetchQueueCap = std::size_t{cfg.width} * (cfg.frontEndDepth + 2);
    fqCap = nextPow2(fetchQueueCap);
    fqMask = fqCap - 1;
    fqRenameReadyAt.assign(fqCap, Cycles{});
    fqInjectedW.assign(maskWords(fqCap), 0);

    // Slack past robSize: see the ring-geometry comment in the header.
    ringCap = nextPow2(cfg.robSize + 2 * std::size_t{cfg.width} + 2);
    ringMask = ringCap - 1;
    robValueReadyAt.assign(ringCap, Cycles{});
    robIqSlot.assign(ringCap, -1);
    robFirstWaiter.assign(ringCap, -1);
    robIssuedW.assign(maskWords(ringCap), 0);
    robCompletedW.assign(maskWords(ringCap), 0);
    robInjectedW.assign(maskWords(ringCap), 0);
    readyW.assign(maskWords(ringCap), 0);

    iqSeq.assign(cfg.iqSize, InstSeq{});
    iqSrcProd0.assign(cfg.iqSize, InstSeq{});
    iqSrcProd1.assign(cfg.iqSize, InstSeq{});
    iqSrcReady0.assign(cfg.iqSize, Cycles{});
    iqSrcReady1.assign(cfg.iqSize, Cycles{});
    iqNextWaiter0.assign(cfg.iqSize, -1);
    iqNextWaiter1.assign(cfg.iqSize, -1);
    iqFreeNext.assign(cfg.iqSize, -1);
    iqPend0W.assign(maskWords(cfg.iqSize), 0);
    iqPend1W.assign(maskWords(cfg.iqSize), 0);
    iqInjectedW.assign(maskWords(cfg.iqSize), 0);
    iqInUseW.assign(maskWords(cfg.iqSize), 0);
    for (int i = 0; i < static_cast<int>(cfg.iqSize); ++i)
        iqFreeNext[i] = i + 1 < static_cast<int>(cfg.iqSize)
            ? i + 1 : -1;
    iqFreeHead = 0;

    // Event rings cover the longest ordinary event horizon — a full
    // memory round trip past the scheduler — with headroom for bus
    // queuing; rarer, longer delays spill to each ring's overflow
    // heap without loss.
    const std::size_t event_span = static_cast<std::size_t>(
        cfg.schedDepth.count() + cfg.wakeupLatency.count()
        + cfg.l1d.latency.count() + cfg.l2.latency.count()
        + cfg.memAccessCycles.count()) + 256;
    // Pool reservations are the structural in-flight bounds: wakeup
    // events are per IQ operand, completion events per ROB entry,
    // MSHR releases per LSQ slot — so steady-state pushes never
    // allocate (the zero-alloc window criterion, DESIGN.md §14).
    timedReady.init(event_span, 2 * cfg.iqSize + 8);
    completions.init(event_span, cfg.robSize + 8);
    mshrReleases.init(event_span, cfg.lsqSize + 8);
    staleSeqs.reserve(cfg.iqSize);
    staleSlots.reserve(cfg.iqSize);
    renameProducer.assign(numArchRegs, InstSeq{});
    if (cfg.modelICache)
        icache = std::make_unique<Cache>(cfg.l1i);
}

void
OooCore::attachContest(ContestHooks *contest_hooks,
                       InjectionStyle injection_style)
{
    hooks = contest_hooks;
    style = injection_style;
}

std::size_t
OooCore::robPosChecked(InstSeq seq) const
{
    panic_if(robOcc == 0, "robFor(%llu) on empty ROB",
             static_cast<unsigned long long>(seq));
    panic_if(seq < robHeadSeq || seq >= robHeadSeq + robOcc,
             "robFor(%llu) outside window [%llu, %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(robHeadSeq),
             static_cast<unsigned long long>(robHeadSeq + robOcc));
    return ringPos(seq);
}

bool
OooCore::srcStatus(InstSeq producer, Cycles &ready_at) const
{
    if (robOcc == 0 || producer < robHeadSeq) {
        // The producer has committed; its value is architectural.
        ready_at = Cycles{};
        return true;
    }
    panic_if(producer >= robHeadSeq + robOcc,
             "source producer %llu not yet dispatched",
             static_cast<unsigned long long>(producer));
    const std::size_t pos = ringPos(producer);
    if (!bitTest(robIssuedW, pos))
        return false;
    ready_at = robValueReadyAt[pos];
    return true;
}

int
OooCore::allocIqSlot()
{
    panic_if(iqFreeHead == -1, "IQ slot pool exhausted past iqSize");
    const int slot = iqFreeHead;
    iqFreeHead = iqFreeNext[slot];
    iqSeq[slot] = InstSeq{};
    iqSrcProd0[slot] = iqSrcProd1[slot] = InstSeq{};
    iqSrcReady0[slot] = iqSrcReady1[slot] = Cycles{};
    iqNextWaiter0[slot] = iqNextWaiter1[slot] = -1;
    iqFreeNext[slot] = -1;
    bitClear(iqPend0W, slot);
    bitClear(iqPend1W, slot);
    bitClear(iqInjectedW, slot);
    bitSet(iqInUseW, slot);
    ++iqCount;
    return slot;
}

void
OooCore::freeIqSlot(int slot)
{
    panic_if(!bitTest(iqInUseW, slot),
             "double free of IQ slot %d", slot);
    bitClear(iqInUseW, slot);
    bitClear(iqPend0W, slot);
    bitClear(iqPend1W, slot);
    iqNextWaiter0[slot] = iqNextWaiter1[slot] = -1;
    iqFreeNext[slot] = iqFreeHead;
    iqFreeHead = slot;
    panic_if(iqCount == 0, "IQ occupancy underflow");
    --iqCount;
}

void
OooCore::wakeWaiters(std::size_t prod_pos)
{
    std::int32_t w = robFirstWaiter[prod_pos];
    robFirstWaiter[prod_pos] = -1;
    const Cycles ready = robValueReadyAt[prod_pos];
    while (w != -1) {
        const int slot = w >> 1;
        std::int32_t next;
        if ((w & 1) == 0) {
            next = iqNextWaiter0[slot];
            iqNextWaiter0[slot] = -1;
            iqSrcReady0[slot] = ready;
            bitClear(iqPend0W, slot);
        } else {
            next = iqNextWaiter1[slot];
            iqNextWaiter1[slot] = -1;
            iqSrcReady1[slot] = ready;
            bitClear(iqPend1W, slot);
        }
        if (!bitTest(iqPend0W, slot) && !bitTest(iqPend1W, slot)) {
            const Cycles at =
                std::max(iqSrcReady0[slot], iqSrcReady1[slot]);
            timedReady.push(curCycle, at, {iqSeq[slot], slot});
        }
        w = next;
    }
}

void
OooCore::markIqStale(InstSeq seq, int slot)
{
    // Bounded by live IQ slots and reserve()d to cfg.iqSize at
    // construction, so the sorted inserts never reallocate.
    const auto it =
        std::upper_bound(staleSeqs.begin(), staleSeqs.end(), seq);
    const auto at = it - staleSeqs.begin();
    // contest-lint: allow(window-phase)
    staleSeqs.insert(it, seq);
    // contest-lint: allow(window-phase)
    staleSlots.insert(staleSlots.begin() + at, slot);
}

void
OooCore::dropStaleSlot(int slot)
{
    panic_if(!bitTest(iqInUseW, slot),
             "reaping a freed IQ slot %d", slot);
    for (int s = 0; s < 2; ++s) {
        const bool pending = s == 0 ? bitTest(iqPend0W, slot)
                                    : bitTest(iqPend1W, slot);
        if (!pending)
            continue;
        // A pending operand's producer cannot have issued (the wakeup
        // would have cleared the bit) and therefore cannot have
        // committed; unlink this slot from its waiter chain.
        const InstSeq prod =
            s == 0 ? iqSrcProd0[slot] : iqSrcProd1[slot];
        panic_if(robOcc == 0 || prod < robHeadSeq,
                 "stale IQ slot waits on a committed producer");
        const std::size_t prod_pos = robPosChecked(prod);
        const std::int32_t want = slot * 2 + s;
        std::int32_t *link = &robFirstWaiter[prod_pos];
        while (*link != -1 && *link != want)
            link = (*link & 1) == 0 ? &iqNextWaiter0[*link >> 1]
                                    : &iqNextWaiter1[*link >> 1];
        panic_if(*link == -1,
                 "stale IQ slot missing from its waiter chain");
        if (s == 0) {
            *link = iqNextWaiter0[slot];
            iqNextWaiter0[slot] = -1;
        } else {
            *link = iqNextWaiter1[slot];
            iqNextWaiter1[slot] = -1;
        }
    }
    // The entry may have become issuable before it went stale; its
    // ready bit is the select-scan record and must die with the slot.
    const std::size_t rp = ringPos(iqSeq[slot]);
    if (bitTest(readyW, rp)) {
        bitClear(readyW, rp);
        --readyCount;
    }
    freeIqSlot(slot);
}

void
OooCore::reapStaleBefore(InstSeq before)
{
    while (!staleSeqs.empty() && staleSeqs.front() < before) {
        dropStaleSlot(staleSlots.front());
        staleSeqs.erase(staleSeqs.begin());
        staleSlots.erase(staleSlots.begin());
    }
}

void
OooCore::reforkTo(InstSeq seq)
{
    fatal_if(seq > trace->endSeq(),
             "reforkTo(%llu) beyond trace end",
             static_cast<unsigned long long>(seq));
    fqOcc = 0;
    std::fill(fqInjectedW.begin(), fqInjectedW.end(), 0);
    robOcc = 0;
    robHeadSeq = seq;
    std::fill(robIssuedW.begin(), robIssuedW.end(), 0);
    std::fill(robCompletedW.begin(), robCompletedW.end(), 0);
    std::fill(robInjectedW.begin(), robInjectedW.end(), 0);
    std::fill(readyW.begin(), readyW.end(), 0);
    std::fill(robIqSlot.begin(), robIqSlot.end(), -1);
    std::fill(robFirstWaiter.begin(), robFirstWaiter.end(), -1);
    for (int i = 0; i < static_cast<int>(cfg.iqSize); ++i)
        iqFreeNext[i] = i + 1 < static_cast<int>(cfg.iqSize)
            ? i + 1 : -1;
    std::fill(iqNextWaiter0.begin(), iqNextWaiter0.end(), -1);
    std::fill(iqNextWaiter1.begin(), iqNextWaiter1.end(), -1);
    std::fill(iqPend0W.begin(), iqPend0W.end(), 0);
    std::fill(iqPend1W.begin(), iqPend1W.end(), 0);
    std::fill(iqInjectedW.begin(), iqInjectedW.end(), 0);
    std::fill(iqInUseW.begin(), iqInUseW.end(), 0);
    iqFreeHead = 0;
    iqCount = 0;
    timedReady.clear(curCycle);
    staleSeqs.clear();
    staleSlots.clear();
    completions.clear(curCycle);
    mshrReleases.clear(curCycle);
    readyCount = 0;
    lsqOcc = 0;
    stalledBranch.reset();
    earlyResolved.reset();
    stalledSyscall = false;
    syscallResumePs.reset();
    lastSkip = SkipWindow{};
    renameInFlightW = 0;
    fetchSeq = seq;
    numRetired = seq;
    // The refilled pipeline starts fetching next cycle.
    fetchResumeAt = curCycle + 1;
}

void
OooCore::tick(TimePs now)
{
    if (done())
        return;
    if (hooks != nullptr && hooks->parked())
        return;

    // Each stage call is gated by the exact condition under which its
    // body would do nothing (not even touch a counter), so a stage
    // with no work this cycle costs one or two loads instead of a
    // call and a queue inspection.
    if (completions.due(curCycle))
        doComplete(now);
    if (robOcc != 0 && bitTest(robCompletedW, ringPos(robHeadSeq)))
        doCommit(now);
    doIssue(now);
    if (fqOcc != 0
        && fqRenameReadyAt[fqPos(fetchSeq - fqOcc)] <= curCycle)
        doDispatch(now);
    doFetch(now);

    ++curCycle;
    ++st.cycles;
}

void
OooCore::doComplete(TimePs)
{
    completions.drainUpTo(curCycle, [&](std::uint64_t packed) {
        if (packed & 1) {
            // The load's data returned this cycle: its LSQ slot
            // frees here whether or not the entry still lives in
            // the ROB (an early-resolved load may have committed).
            panic_if(lsqOcc == 0, "LSQ underflow at load return");
            --lsqOcc;
        }
        const InstSeq seq{packed >> 1};
        if (robOcc == 0 || seq < robHeadSeq)
            return; // early-resolved and already committed
        const std::size_t pos = robPosChecked(seq);
        if (bitTest(robCompletedW, pos))
            return; // early resolution beat own execution
        bitSet(robCompletedW, pos);
        if (stalledBranch && *stalledBranch == seq) {
            stalledBranch.reset();
            fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
        }
    });
}

void
OooCore::doCommit(TimePs now)
{
    unsigned committed = 0;
    while (committed < cfg.width && robOcc != 0) {
        const std::size_t pos = ringPos(robHeadSeq);
        if (!bitTest(robCompletedW, pos))
            break;

        const InstSeq seq = robHeadSeq;
        const bool injected = bitTest(robInjectedW, pos);
        const TraceInst &inst = trInsts[seq.count()];
        const std::uint8_t fl = trFlags[seq.count()];

        if (fl & kDecStore) {
            if (hooks != nullptr && !hooks->storeCanCommit(now)) {
                ++st.storeQueueStalls;
                break;
            }
            // Redundant private store (write-through in contesting
            // mode); its latency is hidden by the store buffer.
            hier.access(inst.addr, true, curCycle);
            if (hooks != nullptr)
                hooks->onStoreCommit(inst.addr, now);
            if (!injected) {
                panic_if(lsqOcc == 0, "LSQ underflow at store commit");
                --lsqOcc;
            }
        } else if (fl & kDecSyscall) {
            if (!syscallResumePs) {
                if (hooks != nullptr) {
                    auto resume = hooks->onSyscall(seq, now);
                    if (!resume) {
                        ++st.syscallStalls;
                        break; // rendezvous incomplete; retry
                    }
                    syscallResumePs = *resume;
                } else {
                    syscallResumePs = now
                        + cyclesToPs(cfg.syscallHandlerCycles,
                                     cfg.clockPeriodPs);
                }
            }
            if (now < *syscallResumePs) {
                ++st.syscallStalls;
                break;
            }
            syscallResumePs.reset();
            stalledSyscall = false;
            fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
            ++st.syscalls;
        }

        if (fl & kDecWritesReg) {
            if ((renameInFlightW >> inst.dst & 1)
                && renameProducer[inst.dst] == seq)
                renameInFlightW &= ~(std::uint64_t{1} << inst.dst);
        }

        if (hooks != nullptr)
            hooks->onRetire(seq, inst, now);
        if (retireCb)
            // Region-log callback; only the single-core harness
            // attaches one, contested cores leave it empty.
            // contest-lint: allow(unknown-call)
            retireCb(seq, now);

        ++robHeadSeq;
        --robOcc;
        ++numRetired;
        ++st.retired;
        ++committed;
    }
}

void
OooCore::doIssue(TimePs)
{
    // Nothing due, nothing ready, nothing stale: the whole stage
    // would fall through without touching state.
    if (readyCount == 0 && staleSeqs.empty()
        && !mshrReleases.due(curCycle) && !timedReady.due(curCycle))
        return;

    // Release MSHRs of returned misses before selecting. (Returned
    // loads released their LSQ slots in doComplete this tick —
    // their release cycle is their completion cycle.)
    mshrReleases.drainUpTo(curCycle, [](std::uint8_t) {});

    // Wakeups whose operand time has arrived set their ready bit;
    // the find-first-set scan over the ready words then replays the
    // old linear select's oldest-first order over exactly the
    // issuable entries.
    timedReady.drainUpTo(curCycle, [&](const TimedReady &tr) {
        if (bitTest(iqInUseW, tr.slot) && iqSeq[tr.slot] == tr.seq) {
            const std::size_t rp = ringPos(tr.seq);
            if (!bitTest(readyW, rp)) {
                bitSet(readyW, rp);
                ++readyCount;
            }
        }
    });

    unsigned issued = 0;
    unsigned mem_issued = 0;
    // A stale (externally completed, already committed) entry's bit
    // sits below the head; start the age scan at the oldest of the
    // two so its reap point is still visited in order.
    InstSeq scan_from = robHeadSeq;
    if (!staleSeqs.empty() && staleSeqs.front() < scan_from)
        scan_from = staleSeqs.front();
    forEachReady(scan_from, robHeadSeq + robOcc, [&](InstSeq seq) {
        if (issued >= cfg.width)
            return false;

        // The old linear select erased externally completed entries
        // as its age-ordered scan passed them; reaching seq with
        // issue slots to spare means the scan passed everything
        // older first.
        reapStaleBefore(seq);

        if (robOcc == 0 || seq < robHeadSeq
            || bitTest(robCompletedW, ringPos(seq))) {
            // This entry is itself externally completed (early
            // branch resolution): the scan reached it, drop it.
            const auto it = std::find(staleSeqs.begin(),
                                      staleSeqs.end(), seq);
            panic_if(it == staleSeqs.end(),
                     "completed IQ entry missing from the stale list");
            const auto at = it - staleSeqs.begin();
            const int slot = staleSlots[at];
            staleSeqs.erase(it);
            staleSlots.erase(staleSlots.begin() + at);
            dropStaleSlot(slot);
            return true;
        }

        const std::size_t pos = ringPos(seq);
        const int slot = robIqSlot[pos];
        const TraceInst &inst = trInsts[seq.count()];
        const std::uint8_t fl = trFlags[seq.count()];
        const bool injected = bitTest(iqInjectedW, slot);

        const bool is_mem = (fl & kDecMem) && !injected;
        if (is_mem && mem_issued >= cfg.l1dPorts) {
            // Port-blocked: the bit stays set, and the monotonic
            // scan will not revisit it until the next tick — the
            // same deferral the old select's scratch re-push gave.
            return true;
        }

        Cycles lat_total{};
        if (injected) {
            // MarkReady injection: the value travels with the
            // instruction; issuing just writes it back.
            lat_total = Cycles{1};
        } else if (fl & kDecLoad) {
            const bool l1_hit = hier.l1().probe(inst.addr);
            if (!l1_hit && mshrReleases.size() >= cfg.mshrs)
                return true; // no MSHR for the miss; bit stays set
            auto res = hier.access(inst.addr, false, curCycle);
            lat_total = res.latency;
            if (res.level != MemLevel::L1)
                mshrReleases.push(curCycle, curCycle + lat_total, 0);
        } else if (fl & kDecStore) {
            lat_total = Cycles{1}; // address generation; data at commit
        } else {
            lat_total = inst.execLatency();
        }

        bitClear(readyW, pos);
        --readyCount;
        bitSet(robIssuedW, pos);
        robValueReadyAt[pos] = curCycle + lat_total + cfg.wakeupLatency;
        const Cycles complete_at = curCycle + cfg.schedDepth + lat_total;
        completions.push(
            curCycle, complete_at,
            packCompletion(seq, (fl & kDecLoad) != 0 && !injected));
        wakeWaiters(pos);
        robIqSlot[pos] = -1;
        freeIqSlot(slot);

        if (is_mem)
            ++mem_issued;
        ++issued;
        return true;
    });
    if (issued < cfg.width) {
        // The old scan would have walked to the end of the queue.
        reapStaleBefore(InstSeq::max());
    }
}

OooCore::DispatchBlock
OooCore::dispatchBlock() const
{
    if (fqOcc == 0)
        return DispatchBlock::Empty;
    const InstSeq fseq = fetchSeq - fqOcc;
    if (fqRenameReadyAt[fqPos(fseq)] > curCycle)
        return DispatchBlock::Empty;
    if (earlyResolved && *earlyResolved == fseq)
        return DispatchBlock::ConsumesEarly;
    const std::uint8_t fl = trFlags[fseq.count()];
    const bool is_syscall = fl & kDecSyscall;
    if (is_syscall && robOcc != 0)
        return DispatchBlock::SyscallDrain;
    if (robOcc >= cfg.robSize)
        return DispatchBlock::RobFull;
    const bool injected = bitTest(fqInjectedW, fqPos(fseq));
    const bool port_steal = injected && style == InjectionStyle::PortSteal;
    const bool needs_iq = !is_syscall && !port_steal;
    if (needs_iq && iqCount >= cfg.iqSize)
        return DispatchBlock::IqFull;
    const bool needs_lsq = (fl & kDecMem) && !injected;
    if (needs_lsq && lsqOcc >= cfg.lsqSize)
        return DispatchBlock::LsqFull;
    return DispatchBlock::None;
}

void
OooCore::doDispatch(TimePs)
{
    unsigned dispatched = 0;
    while (dispatched < cfg.width && fqOcc != 0) {
        const InstSeq fseq = fetchSeq - fqOcc;
        const std::size_t fpos = fqPos(fseq);
        if (fqRenameReadyAt[fpos] > curCycle)
            break;

        const TraceInst &inst = trInsts[fseq.count()];
        const std::uint8_t fl = trFlags[fseq.count()];
        bool injected = bitTest(fqInjectedW, fpos);
        if (earlyResolved && *earlyResolved == fseq) {
            injected = true;
            earlyResolved.reset();
            ++st.injected;
        }

        const bool is_syscall = fl & kDecSyscall;
        if (is_syscall && robOcc != 0)
            break; // serialize: drain before dispatching

        if (robOcc >= cfg.robSize) {
            ++st.robFullStalls;
            break;
        }
        const bool port_steal =
            injected && style == InjectionStyle::PortSteal;
        const bool needs_iq = !is_syscall && !port_steal;
        if (needs_iq && iqCount >= cfg.iqSize) {
            ++st.iqFullStalls;
            break;
        }
        const bool needs_lsq = (fl & kDecMem) && !injected;
        if (needs_lsq && lsqOcc >= cfg.lsqSize) {
            ++st.lsqFullStalls;
            break;
        }

        // Allocate the ROB tail entry (in-flight seqs stay
        // contiguous, so the ring position follows from the seq).
        if (robOcc == 0)
            robHeadSeq = fseq;
        panic_if(fseq != robHeadSeq + robOcc,
                 "non-contiguous ROB allocation at %llu",
                 static_cast<unsigned long long>(fseq));
        const std::size_t pos = ringPos(fseq);
        bitClear(robIssuedW, pos);
        bitClear(robCompletedW, pos);
        bitClear(robInjectedW, pos);
        robFirstWaiter[pos] = -1;
        robIqSlot[pos] = -1;
        robValueReadyAt[pos] = Cycles{};
        if (injected)
            bitSet(robInjectedW, pos);

        if (port_steal || is_syscall) {
            // Injected results complete at rename (port stealing);
            // syscalls execute in the handler, not the pipeline.
            bitSet(robIssuedW, pos);
            robValueReadyAt[pos] = curCycle + 1;
            completions.push(curCycle, curCycle + 1,
                             packCompletion(fseq, false));
        } else {
            const int slot = allocIqSlot();
            iqSeq[slot] = fseq;
            if (injected)
                bitSet(iqInjectedW, slot);
            if (!injected) {
                const RegId srcs[2] = {inst.src1, inst.src2};
                for (int s = 0; s < 2; ++s) {
                    if (srcs[s] == invalidReg)
                        continue;
                    if (!(renameInFlightW >> srcs[s] & 1))
                        continue; // value already architectural
                    const InstSeq prod = renameProducer[srcs[s]];
                    Cycles r{};
                    if (srcStatus(prod, r)) {
                        (s == 0 ? iqSrcReady0 : iqSrcReady1)[slot] = r;
                    } else {
                        // Producer still executing: chain onto its
                        // waiter list for an issue-time wakeup.
                        const std::size_t prod_pos = robPosChecked(prod);
                        if (s == 0) {
                            bitSet(iqPend0W, slot);
                            iqSrcProd0[slot] = prod;
                            iqNextWaiter0[slot] =
                                robFirstWaiter[prod_pos];
                        } else {
                            bitSet(iqPend1W, slot);
                            iqSrcProd1[slot] = prod;
                            iqNextWaiter1[slot] =
                                robFirstWaiter[prod_pos];
                        }
                        robFirstWaiter[prod_pos] = slot * 2 + s;
                    }
                }
            }
            if (!bitTest(iqPend0W, slot) && !bitTest(iqPend1W, slot)) {
                const Cycles at =
                    std::max(iqSrcReady0[slot], iqSrcReady1[slot]);
                if (at <= curCycle) {
                    // Operands already architectural: the entry is
                    // issuable at the next doIssue — the same tick a
                    // clamped wakeup would have surfaced it — so set
                    // the ready bit directly and skip the ring.
                    const std::size_t rp = ringPos(fseq);
                    if (!bitTest(readyW, rp)) {
                        bitSet(readyW, rp);
                        ++readyCount;
                    }
                } else {
                    timedReady.push(curCycle, at, {fseq, slot});
                }
            }
            robIqSlot[pos] = slot;
            if (needs_lsq)
                ++lsqOcc;
        }

        if (fl & kDecWritesReg) {
            renameProducer[inst.dst] = fseq;
            renameInFlightW |= std::uint64_t{1} << inst.dst;
        }

        ++robOcc;
        --fqOcc;
        ++dispatched;
    }
}

void
OooCore::doFetch(TimePs now)
{
    if (fetchSeq >= trace->endSeq())
        return;

    if (stalledBranch) {
        // Figure 5 corner case: a retired instance of the branch may
        // arrive on a result FIFO before the core resolves it.
        if (hooks != nullptr) {
            auto arrival =
                hooks->externalBranchResolve(*stalledBranch, now);
            if (arrival && *arrival <= now) {
                const InstSeq bseq = *stalledBranch;
                hooks->confirmEarlyResolve(bseq, now);
                ++st.earlyResolves;
                stalledBranch.reset();
                fetchResumeAt = std::max(fetchResumeAt, curCycle + 1);
                if (robOcc != 0 && bseq >= robHeadSeq
                    && bseq < robHeadSeq + robOcc) {
                    const std::size_t pos = ringPos(bseq);
                    if (!bitTest(robCompletedW, pos)) {
                        bitSet(robCompletedW, pos);
                        bitSet(robInjectedW, pos);
                        bitSet(robIssuedW, pos);
                        robValueReadyAt[pos] = curCycle + 1;
                        wakeWaiters(pos);
                        if (robIqSlot[pos] != -1)
                            markIqStale(bseq, robIqSlot[pos]);
                    }
                } else {
                    // Still in the front-end pipe: complete it as an
                    // injected instruction at dispatch.
                    earlyResolved = bseq;
                }
            }
        }
        if (stalledBranch) {
            ++st.fetchStallBranch;
            return;
        }
    }

    if (curCycle < fetchResumeAt || stalledSyscall)
        return;

    // The fetch group's leading access probes the I-cache; a miss
    // stalls the front end while the block fills through L2.
    if (icache && fqOcc < fetchQueueCap) {
        const Addr pc = trInsts[fetchSeq.count()].pc;
        auto probe = icache->access(pc, false);
        if (!probe.hit) {
            ++st.icacheMisses;
            fetchResumeAt = curCycle + cfg.l1i.latency
                + hier.instrFill(pc, curCycle);
            return;
        }
    }

    // Batched decode: pull the whole candidate fetch group as raw
    // pointers into the trace's pre-decoded arrays in one call.
    const std::size_t room = fetchQueueCap - fqOcc;
    const unsigned budget = static_cast<unsigned>(
        std::min<std::size_t>(cfg.width, room));
    const FetchBlock blk = trace->block(fetchSeq, budget);
    const Cycles rename_ready = curCycle + cfg.frontEndDepth;
    for (std::uint32_t i = 0; i < blk.count; ++i) {
        const TraceInst &inst = blk.insts[i];
        const std::uint8_t fl = blk.flags[i];

        FetchOutcome out;
        if (hooks != nullptr)
            out = hooks->onFetch(fetchSeq, now);

        bool end_group = false;
        bool mispred = false;
        const bool taken = fl & kDecTaken;
        if (out.injected) {
            ++st.injected;
            if (fl & kDecCondBr) {
                ++st.condBranches;
                // The injected outcome still trains the predictor
                // and history (hardware trains at retirement), so
                // the core predicts well when it later takes the
                // lead.
                bpred.predictAndTrain(inst.pc, taken, false);
            }
            if ((fl & kDecBranch) && taken) {
                btb.lookupAndTrain(inst.pc, inst.target);
                end_group = true;
            }
        } else if (fl & kDecCondBr) {
            ++st.condBranches;
            const bool pred = bpred.predictAndTrain(inst.pc, taken);
            bool btb_ok = true;
            if (taken)
                btb_ok = btb.lookupAndTrain(inst.pc, inst.target);
            if (pred != taken) {
                mispred = true;
            } else if (taken) {
                end_group = true;
                if (!btb_ok) {
                    ++st.btbMissRedirects;
                    fetchResumeAt =
                        curCycle + 1 + cfg.btbMissPenalty;
                }
            }
        } else if (fl & kDecUncondBr) {
            const bool btb_ok = btb.lookupAndTrain(inst.pc, inst.target);
            end_group = true;
            if (!btb_ok) {
                ++st.btbMissRedirects;
                fetchResumeAt = curCycle + 1 + cfg.btbMissPenalty;
            }
        } else if (fl & kDecSyscall) {
            stalledSyscall = true;
        }

        const std::size_t fpos = fqPos(fetchSeq);
        fqRenameReadyAt[fpos] = rename_ready;
        if (out.injected)
            bitSet(fqInjectedW, fpos);
        else
            bitClear(fqInjectedW, fpos);
        ++fqOcc;
        ++fetchSeq;

        if (mispred) {
            ++st.mispredicts;
            stalledBranch = fetchSeq - 1;
            break;
        }
        if (stalledSyscall || end_group)
            break;
    }
}

Cycles
OooCore::nextEventCycle() const
{
    // A tick is a provable no-op when every stage is inert and stays
    // inert: nothing completes or releases, the commit head is not
    // completed, no issue-queue entry can issue, dispatch is blocked
    // (or empty), and fetch is stalled. The returned bound is
    // conservative — the window may end before the next real event
    // (the caller simply resumes cycle-by-case stepping), never
    // after it.
    if (done())
        return curCycle;
    if (hooks != nullptr && stalledBranch)
        return curCycle; // polls external resolution every cycle
    if (!staleSeqs.empty())
        return curCycle; // a pending reap mutates IQ occupancy
    if (robOcc != 0 && bitTest(robCompletedW, ringPos(robHeadSeq)))
        return curCycle; // commits (or replays a commit-stall hook)

    // Cheap immediate-action checks run first: while the pipeline is
    // busy, dispatch or fetch almost always acts next tick, and the
    // answer is curCycle before the ready-mask scan or the event
    // rings are ever consulted.
    const DispatchBlock db = dispatchBlock();
    if (db == DispatchBlock::None || db == DispatchBlock::ConsumesEarly)
        return curCycle; // dispatch acts (or consumes the patch)
    if (fetchSeq < trace->endSeq() && !stalledBranch && !stalledSyscall
        && curCycle >= fetchResumeAt && fqOcc < fetchQueueCap)
        return curCycle; // fetch proceeds next tick

    Cycles next = Cycles::max();
    auto consider = [&next](Cycles c) {
        if (c < next)
            next = c;
    };

    if (!completions.empty())
        consider(completions.nextAt());
    if (!mshrReleases.empty())
        consider(mshrReleases.nextAt());
    if (!timedReady.empty())
        consider(timedReady.nextAt());

    // Issuable entries act immediately — unless every one is a load
    // blocked on a full MSHR file, which frees at
    // mshrReleases.nextAt() (already considered above). With the
    // stale list empty every ready bit is a live in-window entry.
    bool acts_now = false;
    forEachReady(robHeadSeq, robHeadSeq + robOcc, [&](InstSeq seq) {
        const std::size_t pos = ringPos(seq);
        if (bitTest(robCompletedW, pos)) {
            acts_now = true; // next doIssue reaps it
            return false;
        }
        const std::uint8_t fl = trFlags[seq.count()];
        if (!(fl & kDecLoad) || bitTest(iqInjectedW, robIqSlot[pos])) {
            acts_now = true; // issues next tick
            return false;
        }
        if (hier.l1().probe(trInsts[seq.count()].addr)
            || mshrReleases.size() < cfg.mshrs) {
            acts_now = true; // issues next tick
            return false;
        }
        return true;
    });
    if (acts_now)
        return curCycle;

    switch (db) {
      case DispatchBlock::Empty:
        if (fqOcc != 0)
            consider(fqRenameReadyAt[fqPos(fetchSeq - fqOcc)]);
        break;
      default:
        // SyscallDrain/RobFull/IqFull/LsqFull unblock through a
        // commit, issue, or release — all bounded by the events
        // considered above.
        break;
    }

    if (fetchSeq < trace->endSeq()) {
        if (stalledBranch || stalledSyscall) {
            // Resolution arrives via a completion (branch) or the
            // syscall's commit — bounded above.
        } else if (curCycle < fetchResumeAt) {
            consider(fetchResumeAt);
        }
        // Else the fetch queue is full (we returned curCycle above
        // otherwise), which drains through dispatch — bounded above.
    }

    if (next == Cycles::max())
        return curCycle; // no provable bound; step normally
    return next;
}

Cycles
OooCore::skipIdleCycles(Cycles max_ticks)
{
    lastSkip = SkipWindow{};
    if (max_ticks == Cycles{} || done())
        return Cycles{};
    if (hooks != nullptr && hooks->parked())
        return Cycles{};

    Cycles ev = nextEventCycle();
    if (ev <= curCycle)
        return Cycles{};
    Cycles n = ev - curCycle;
    if (max_ticks < n)
        n = max_ticks;

    // The pipeline state is frozen across the window, so every
    // elided tick would have incremented exactly the same stall
    // counters: the (stable) first failing dispatch check, and the
    // mispredict fetch stall when no hooks poll for it.
    SkipWindow w;
    w.ticks = n;
    switch (dispatchBlock()) {
      case DispatchBlock::RobFull:
        w.robFull = true;
        break;
      case DispatchBlock::IqFull:
        w.iqFull = true;
        break;
      case DispatchBlock::LsqFull:
        w.lsqFull = true;
        break;
      default:
        break;
    }
    w.branchStall = stalledBranch.has_value() && hooks == nullptr
        && fetchSeq < trace->endSeq();

    curCycle += n;
    st.cycles += n;
    if (w.robFull)
        st.robFullStalls += n;
    if (w.iqFull)
        st.iqFullStalls += n;
    if (w.lsqFull)
        st.lsqFullStalls += n;
    if (w.branchStall)
        st.fetchStallBranch += n;
    lastSkip = w;
    skippedTotal += n;
    return n;
}

void
OooCore::rewindIdleTicks(Cycles n)
{
    if (n == Cycles{})
        return;
    panic_if(n > lastSkip.ticks,
             "rewinding %llu ticks but the last window elided %llu",
             static_cast<unsigned long long>(n),
             static_cast<unsigned long long>(lastSkip.ticks));
    curCycle = curCycle - n;
    st.cycles = st.cycles - n;
    if (lastSkip.robFull)
        st.robFullStalls = st.robFullStalls - n;
    if (lastSkip.iqFull)
        st.iqFullStalls = st.iqFullStalls - n;
    if (lastSkip.lsqFull)
        st.lsqFullStalls = st.lsqFullStalls - n;
    if (lastSkip.branchStall)
        st.fetchStallBranch = st.fetchStallBranch - n;
    lastSkip.ticks = lastSkip.ticks - n;
    skippedTotal = skippedTotal - n;
}

} // namespace contest
